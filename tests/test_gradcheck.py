"""Tests for the public gradcheck utility."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck, numerical_gradient


class TestNumericalGradient:
    def test_quadratic(self):
        t = Tensor(np.array([2.0, -1.0]), requires_grad=True)
        num = numerical_gradient(lambda: (t * t).sum(), t)
        np.testing.assert_allclose(num, [4.0, -2.0], atol=1e-6)

    def test_restores_data(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        before = t.data.copy()
        numerical_gradient(lambda: (t * 3.0).sum(), t)
        np.testing.assert_array_equal(t.data, before)


class TestGradcheck:
    def test_passes_for_correct_op(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        assert gradcheck(lambda: ((a @ b).relu() ** 2).sum(), [a, b])

    def test_fails_for_broken_gradient(self):
        """A deliberately wrong backward must be caught."""

        def broken_square(x: Tensor) -> Tensor:
            out_data = x.data**2

            def backward(g, out=None):
                if x.requires_grad:
                    out._accumulate(x, g * 3.0 * x.data)  # wrong: should be 2x

            out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
            return out

        t = Tensor(np.array([1.5, -0.5]), requires_grad=True)
        with pytest.raises(AssertionError, match="mismatch"):
            gradcheck(lambda: broken_square(t).sum(), [t])
        assert not gradcheck(lambda: broken_square(t).sum(), [t], raise_on_fail=False)

    def test_detects_unreached_tensor(self):
        a = Tensor(np.ones(2), requires_grad=True)
        unused = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(AssertionError, match="no gradient"):
            gradcheck(lambda: (a * 2.0).sum(), [a, unused])

    def test_rejects_nonscalar(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            gradcheck(lambda: a * 2.0, [a])

    def test_rejects_non_grad_tensors(self):
        a = Tensor(np.ones(2))
        with pytest.raises(ValueError, match="require grad"):
            gradcheck(lambda: (a * 2.0).sum(), [a])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no tensors"):
            gradcheck(lambda: Tensor(np.array(0.0)), [])
