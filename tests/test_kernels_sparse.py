"""Sparse backend: packing, dispatch, parity across densities, DropBack wiring.

The contract under test (``docs/sparse.md``): registered or transiently
packed operands run through CSR and match ``reference`` to float
tolerance; anything above the density cutoff is delegated verbatim to
``fast`` and is therefore *bit-exact* with it; pack construction and the
dirty-flag value refresh are deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DropBack
from repro.models import mlp
from repro.tensor import Tensor, cross_entropy, gradcheck, kernels
from repro.tensor.kernels import fast as fast_mod
from repro.tensor.kernels import registry
from repro.tensor.kernels import sparse

pytestmark = pytest.mark.skipif(
    not sparse.is_available(), reason="scipy.sparse unavailable"
)

RNG = np.random.default_rng(20260808)

#: The density sweep the issue gates on (benchmarks/common.py mirrors it).
DENSITIES = (0.01, 0.05, 0.25, 0.9)

GEMM_RTOL = 2e-5
GEMM_ATOL = 1e-6


def _sparse_matrix(shape, density, rng=RNG):
    mask = rng.random(shape) < density
    return (rng.standard_normal(shape) * mask).astype(np.float32)


@pytest.fixture(autouse=True)
def _clean_sparse_state():
    """No pack or cutoff state may leak between tests."""
    yield
    sparse.invalidate_all()
    sparse.set_density_cutoff(None)


# --------------------------------------------------------------------- #
# pack construction
# --------------------------------------------------------------------- #


class TestPackConstruction:
    @pytest.mark.parametrize("transpose", [False, True])
    def test_pack_from_indices_bitwise_matches_pack_dense(self, transpose):
        w = _sparse_matrix((12, 9), 0.2)
        flat = np.flatnonzero(w.ravel())
        from_idx = sparse.pack_from_indices(
            w.shape, flat, w.ravel()[flat], transpose=transpose
        )
        from_dense = sparse.pack_dense(w, transpose=transpose)
        np.testing.assert_array_equal(from_idx.matrix.indptr, from_dense.matrix.indptr)
        np.testing.assert_array_equal(from_idx.matrix.indices, from_dense.matrix.indices)
        np.testing.assert_array_equal(from_idx.matrix.data, from_dense.matrix.data)
        assert from_idx.shape == from_dense.shape

    def test_pack_properties(self):
        w = _sparse_matrix((10, 10), 0.1)
        pack = sparse.pack_dense(w)
        assert pack.nnz == np.count_nonzero(w)
        assert pack.density == pytest.approx(pack.nnz / 100)
        assert pack.nbytes > 0

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            sparse.pack_from_indices((4, 4), np.array([16]), np.array([1.0]))

    def test_misaligned_values_rejected(self):
        with pytest.raises(ValueError, match="one-to-one"):
            sparse.pack_from_indices((4, 4), np.array([0, 1]), np.array([1.0]))

    def test_values_or_base_required(self):
        with pytest.raises(ValueError, match="values or a base"):
            sparse.pack_from_indices((4, 4), np.array([0]))

    def test_pack_dense_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            sparse.pack_dense(np.zeros((2, 2, 2), dtype=np.float32))


# --------------------------------------------------------------------- #
# density cutoff + auto-dispatch
# --------------------------------------------------------------------- #


class TestDensityCutoff:
    def test_default(self):
        sparse.set_density_cutoff(None)
        assert sparse.density_cutoff() == sparse.DEFAULT_DENSITY_CUTOFF

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_DENSITY_CUTOFF", "0.5")
        sparse.set_density_cutoff(None)  # drop the cached value, re-read env
        assert sparse.density_cutoff() == 0.5

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_DENSITY_CUTOFF", "nope")
        sparse.set_density_cutoff(None)
        with pytest.raises(ValueError, match="DENSITY_CUTOFF"):
            sparse.density_cutoff()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            sparse.set_density_cutoff(1.5)

    def test_above_cutoff_matmul_bit_exact_with_fast(self):
        # The fallback literally runs the fast kernel: bitwise equality.
        a = RNG.standard_normal((32, 24)).astype(np.float32)
        b = RNG.standard_normal((24, 16)).astype(np.float32)  # density 1.0
        np.testing.assert_array_equal(sparse.matmul(a, b), fast_mod.matmul(a, b))

    def test_above_cutoff_conv_bit_exact_with_fast(self):
        x = RNG.standard_normal((2, 3, 6, 6)).astype(np.float32)
        w = RNG.standard_normal((4, 3, 3, 3)).astype(np.float32)
        b = RNG.standard_normal(4).astype(np.float32)
        g = RNG.standard_normal((2, 4, 6, 6)).astype(np.float32)
        out_s, ctx_s = sparse.conv2d_forward(x, w, b, 1, 1, 6, 6)
        out_f, ctx_f = fast_mod.conv2d_forward(x, w, b, 1, 1, 6, 6)
        np.testing.assert_array_equal(out_s, out_f)
        # The fallback ctx is fast-layout; the sparse backward must route it
        # to the fast backward, bitwise.
        for got, want in zip(
            sparse.conv2d_backward(g, ctx_s, True, True, True),
            fast_mod.conv2d_backward(g, ctx_f, True, True, True),
        ):
            np.testing.assert_array_equal(got, want)

    def test_cutoff_moves_the_dispatch_boundary(self):
        b = _sparse_matrix((40, 30), 0.5)
        a = RNG.standard_normal((8, 40)).astype(np.float32)
        sparse.set_density_cutoff(0.0)  # nothing auto-packs
        np.testing.assert_array_equal(sparse.matmul(a, b), fast_mod.matmul(a, b))
        sparse.set_density_cutoff(1.0)  # everything auto-packs
        np.testing.assert_allclose(
            sparse.matmul(a, b), fast_mod.matmul(a, b), rtol=GEMM_RTOL, atol=GEMM_ATOL
        )


# --------------------------------------------------------------------- #
# parity + gradcheck across the density grid (sanitized)
# --------------------------------------------------------------------- #


class TestParityAcrossDensities:
    @pytest.mark.parametrize("density", DENSITIES)
    def test_matmul_matches_reference(self, density, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        ref = registry._KERNELS["matmul"]["reference"]
        b = _sparse_matrix((48, 32), density)
        a = RNG.standard_normal((8, 48)).astype(np.float32)
        np.testing.assert_allclose(
            sparse.matmul(a, b), ref(a, b), rtol=GEMM_RTOL, atol=GEMM_ATOL
        )

    @pytest.mark.parametrize("density", DENSITIES)
    def test_matvec_matches_reference(self, density):
        ref = registry._KERNELS["matmul"]["reference"]
        b = _sparse_matrix((48, 32), density)
        a = RNG.standard_normal(48).astype(np.float32)
        np.testing.assert_allclose(
            sparse.matmul(a, b), ref(a, b), rtol=GEMM_RTOL, atol=GEMM_ATOL
        )

    @pytest.mark.parametrize("density", DENSITIES)
    def test_conv_forward_backward_match_reference(self, density, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        ref_fwd = registry._KERNELS["conv2d_forward"]["reference"]
        ref_bwd = registry._KERNELS["conv2d_backward"]["reference"]
        x = RNG.standard_normal((2, 3, 6, 6)).astype(np.float32)
        w = _sparse_matrix((4, 3 * 3 * 3), density).reshape(4, 3, 3, 3)
        b = RNG.standard_normal(4).astype(np.float32)
        g = RNG.standard_normal((2, 4, 6, 6)).astype(np.float32)
        out_s, ctx_s = sparse.conv2d_forward(x, w, b, 1, 1, 6, 6)
        out_r, ctx_r = ref_fwd(x, w, b, 1, 1, 6, 6)
        np.testing.assert_allclose(out_s, out_r, rtol=GEMM_RTOL, atol=GEMM_ATOL)
        for got, want in zip(
            sparse.conv2d_backward(g, ctx_s, True, True, True),
            ref_bwd(g, ctx_r, True, True, True),
        ):
            np.testing.assert_allclose(got, want, rtol=GEMM_RTOL, atol=1e-4)

    @pytest.mark.parametrize("density", DENSITIES)
    def test_gradcheck_matmul(self, density, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        a = Tensor(RNG.standard_normal((4, 6)), requires_grad=True)
        b_data = _sparse_matrix((6, 3), density).astype(np.float64)
        b_data[0, 0] = 0.5  # at least one nonzero, so the loss has signal
        b = Tensor(b_data, requires_grad=True)
        with kernels.use_backend("sparse"):
            gradcheck(lambda: ((a @ b) ** 2).sum(), (a, b))

    def test_model_level_conv_net_forward_parity(self):
        from repro import nn

        def build():
            return nn.Sequential(
                nn.Conv2d(2, 4, 3, padding=1),
                nn.ReLU(),
                nn.MaxPool2d(2),
                nn.Flatten(),
                nn.Linear(4 * 3 * 3, 5),
            ).finalize(seed=11)

        x_data = RNG.standard_normal((3, 2, 6, 6)).astype(np.float32)
        outs = {}
        for backend in ("reference", "sparse"):
            model = build()
            # 95% of every weight at exactly zero: the frozen zero_untracked
            # regime's shape, reached here by masking instead of training.
            mask_rng = np.random.default_rng(3)
            for p in model.parameters():
                if p.data.ndim >= 2:
                    p.data *= (mask_rng.random(p.data.shape) < 0.05)
            model.eval()
            with kernels.use_backend(backend):
                outs[backend] = model(Tensor(x_data)).numpy()
        np.testing.assert_allclose(
            outs["sparse"], outs["reference"], rtol=GEMM_RTOL, atol=GEMM_ATOL
        )


# --------------------------------------------------------------------- #
# registered packs: keying, staleness, invalidation
# --------------------------------------------------------------------- #


class TestRegisteredPacks:
    def test_both_orientations_registered_for_2d(self):
        w = _sparse_matrix((8, 6), 0.2)
        keys = sparse.register_weight(w)
        assert len(keys) == 2
        assert sparse.registered_pack_count() == 2
        assert sparse.invalidate(keys) == 2
        assert sparse.registered_pack_count() == 0

    def test_registered_pack_wins_regardless_of_density(self):
        # A dense registered weight still runs packed: registration is the
        # caller asserting sparsity knowledge the per-call probe lacks.
        w = RNG.standard_normal((8, 6)).astype(np.float32)
        sparse.register_weight(w, np.arange(48, dtype=np.int64))
        out = sparse.matmul(np.eye(6, dtype=np.float32), w.T)
        np.testing.assert_allclose(out, w.T, rtol=GEMM_RTOL, atol=GEMM_ATOL)

    def test_values_stale_until_marked_dirty(self):
        w = np.zeros((8, 6), dtype=np.float32)
        flat = np.array([0, 7, 13, 25, 41], dtype=np.int64)
        w.reshape(-1)[flat] = 1.0
        keys = sparse.register_weight(w, flat)
        x = RNG.standard_normal((4, 6)).astype(np.float32)
        before = sparse.matmul(x, w.T)
        w.reshape(-1)[flat] = 2.0  # in-place rewrite, as the frozen step does
        np.testing.assert_array_equal(sparse.matmul(x, w.T), before)  # stale
        assert sparse.mark_dirty(keys) == len(keys)
        # Doubling every value doubles the products and sums exactly.
        np.testing.assert_array_equal(sparse.matmul(x, w.T), 2.0 * before)

    def test_mark_dirty_ignores_unknown_keys(self):
        assert sparse.mark_dirty([("bogus",)]) == 0

    def test_non_contiguous_weight_rejected(self):
        w = _sparse_matrix((8, 6), 0.2)
        with pytest.raises(ValueError, match="C-contiguous"):
            sparse.register_weight(w.T)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError, match="2-D/4-D"):
            sparse.register_weight(np.zeros(5, dtype=np.float32))

    def test_registered_4d_conv_pack_used(self):
        x = RNG.standard_normal((2, 3, 6, 6)).astype(np.float32)
        w = _sparse_matrix((4, 3 * 3 * 3), 0.1).reshape(4, 3, 3, 3).copy()
        sparse.register_weight(w)
        ref_fwd = registry._KERNELS["conv2d_forward"]["reference"]
        out_s, _ = sparse.conv2d_forward(x, w, None, 1, 1, 6, 6)
        out_r, _ = ref_fwd(x, w, None, 1, 1, 6, 6)
        np.testing.assert_allclose(out_s, out_r, rtol=GEMM_RTOL, atol=GEMM_ATOL)


# --------------------------------------------------------------------- #
# DropBack wiring: freeze/unfreeze/rebind lifecycle + frozen-phase parity
# --------------------------------------------------------------------- #


def _warm_opt(zero_untracked=True, k=24, seed=7):
    model = mlp(16, (12,), 4).finalize(seed)
    opt = DropBack(model, k=k, lr=0.1, zero_untracked=zero_untracked)
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(32, 16)).astype(np.float32))
    y = rng.integers(0, 4, size=32)
    for _ in range(2):
        model.zero_grad()
        cross_entropy(model(x), y).backward()
        opt.step()
    return model, opt, (x, y)


class TestDropBackWiring:
    def test_freeze_registers_unfreeze_invalidates(self):
        sparse.set_density_cutoff(1.0)  # register every prunable param
        _, opt, _ = _warm_opt()
        assert sparse.registered_pack_count() == 0  # nothing before freeze
        opt.freeze()
        count = sparse.registered_pack_count()
        assert count > 0
        opt.rebind_plane()  # re-home: packs rebuilt, not leaked
        assert sparse.registered_pack_count() == count
        opt.unfreeze()
        assert sparse.registered_pack_count() == 0

    def test_regeneration_mode_never_registers(self):
        sparse.set_density_cutoff(1.0)
        _, opt, _ = _warm_opt(zero_untracked=False)
        opt.freeze()
        # Untracked weights sit at W(0): the plane is dense, packing invalid.
        assert sparse.registered_pack_count() == 0

    def test_params_above_cutoff_not_registered(self):
        sparse.set_density_cutoff(0.0)
        _, opt, _ = _warm_opt()
        opt.freeze()
        assert sparse.registered_pack_count() == 0

    def test_frozen_training_parity_with_fast(self):
        """Frozen steps through registered packs track the dense run: the
        dirty-flag refresh must propagate every tracked-value update."""
        planes = {}
        for backend in ("fast", "sparse"):
            sparse.set_density_cutoff(1.0)
            model, opt, (x, y) = _warm_opt()
            opt.freeze()
            with kernels.use_backend(backend):
                for _ in range(3):
                    model.zero_grad()
                    cross_entropy(model(x), y).backward()
                    opt.step()
            planes[backend] = model.weight_plane.copy()
            sparse.invalidate_all()
        np.testing.assert_allclose(
            planes["sparse"], planes["fast"], rtol=1e-4, atol=1e-6
        )
