"""Tests for the autograd core: Tensor mechanics, tape, broadcasting."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad, unbroadcast
from tests.conftest import finite_difference_check, rand_tensor


class TestTensorBasics:
    def test_wraps_array(self):
        t = Tensor(np.ones((2, 3)))
        assert t.shape == (2, 3)
        assert t.size == 6
        assert t.ndim == 2

    def test_requires_grad_default_false(self):
        assert not Tensor(np.ones(3)).requires_grad

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.arange(3), requires_grad=True)

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        c = (b * 3.0).sum()
        assert not c.requires_grad

    def test_repr_mentions_shape(self):
        assert "(2, 3)" in repr(Tensor(np.zeros((2, 3))))

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_from_tensor_shares_data(self):
        a = Tensor(np.ones(3))
        b = Tensor(a)
        assert b.data is a.data


class TestBackwardMechanics:
    def test_scalar_backward_implicit_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 3.0])

    def test_nonscalar_backward_requires_grad_arg(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2.0).backward(np.array([1.0, 0.0, 2.0]))
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 4.0])

    def test_backward_on_leaf_without_grad_raises(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * 1.0).sum().backward()
        (a * 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_reused_tensor_gets_summed_grad(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = (a * a).sum()  # d/da (a^2) = 2a = 4
        out.backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2.0
        c = a * 5.0
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_deep_chain_does_not_recurse(self):
        # 5000-op chain exceeds Python's default recursion limit if the
        # topo sort were recursive.
        a = Tensor(np.array([1.0]), requires_grad=True)
        x = a
        for _ in range(5000):
            x = x + 0.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_zero_grad(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None


class TestNoGrad:
    def test_disables_graph(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            b = a * 2.0
        assert not b.requires_grad

    def test_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()


class TestUnbroadcast:
    def test_identity_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_prepended_axes(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 4.0))

    def test_sums_stretched_axes(self):
        g = np.ones((2, 5))
        out = unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, np.full((2, 1), 5.0))

    def test_scalar_target(self):
        g = np.ones((3, 3))
        assert unbroadcast(g, ()) == pytest.approx(9.0)

    def test_mixed(self):
        g = np.ones((4, 2, 5))
        out = unbroadcast(g, (1, 5))
        np.testing.assert_allclose(out, np.full((1, 5), 8.0))


class TestArithmeticGradients:
    def test_add_broadcast(self, rng):
        a = rand_tensor(rng, (3, 4))
        b = rand_tensor(rng, (4,))
        finite_difference_check(lambda: ((a + b) ** 2).sum(), [a, b])

    def test_sub(self, rng):
        a = rand_tensor(rng, (2, 3))
        b = rand_tensor(rng, (2, 3))
        finite_difference_check(lambda: ((a - b) ** 2).sum(), [a, b])

    def test_rsub_scalar(self, rng):
        a = rand_tensor(rng, (3,))
        finite_difference_check(lambda: ((1.0 - a) ** 2).sum(), [a])

    def test_mul_broadcast(self, rng):
        a = rand_tensor(rng, (3, 4))
        b = rand_tensor(rng, (3, 1))
        finite_difference_check(lambda: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = rand_tensor(rng, (3,))
        b = Tensor(rng.uniform(1.0, 2.0, size=3), requires_grad=True)
        finite_difference_check(lambda: (a / b).sum(), [a, b])

    def test_rdiv_scalar(self, rng):
        b = Tensor(rng.uniform(1.0, 2.0, size=3), requires_grad=True)
        finite_difference_check(lambda: (2.0 / b).sum(), [b])

    def test_neg(self, rng):
        a = rand_tensor(rng, (3,))
        finite_difference_check(lambda: (-a * 3.0).sum(), [a])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        finite_difference_check(lambda: (a**3).sum(), [a])

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            a ** Tensor(np.ones(2))

    def test_matmul(self, rng):
        a = rand_tensor(rng, (3, 4))
        b = rand_tensor(rng, (4, 2))
        finite_difference_check(lambda: (a @ b).sum(), [a, b])

    def test_batched_matmul(self, rng):
        a = rand_tensor(rng, (2, 3, 4))
        b = rand_tensor(rng, (2, 4, 5))
        finite_difference_check(lambda: (a @ b).sum(), [a, b])

    def test_radd_scalar(self, rng):
        a = rand_tensor(rng, (3,))
        finite_difference_check(lambda: ((5.0 + a) ** 2).sum(), [a])


class TestShapeOpGradients:
    def test_reshape(self, rng):
        a = rand_tensor(rng, (3, 4))
        finite_difference_check(lambda: (a.reshape(2, 6) ** 2).sum(), [a])

    def test_reshape_minus_one(self, rng):
        a = rand_tensor(rng, (3, 4))
        out = a.reshape(-1)
        assert out.shape == (12,)

    def test_transpose(self, rng):
        a = rand_tensor(rng, (2, 3, 4))
        finite_difference_check(lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a])

    def test_T(self, rng):
        a = rand_tensor(rng, (2, 3))
        assert a.T.shape == (3, 2)
        finite_difference_check(lambda: (a.T @ a).sum(), [a])

    def test_getitem_slice(self, rng):
        a = rand_tensor(rng, (4, 5))
        finite_difference_check(lambda: (a[1:3, :2] ** 2).sum(), [a])

    def test_getitem_repeated_index_accumulates(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        idx = np.array([0, 0, 1])
        out = a[idx].sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [2.0, 1.0])


class TestReductionGradients:
    def test_sum_all(self, rng):
        a = rand_tensor(rng, (3, 4))
        finite_difference_check(lambda: (a.sum() ** 2), [a])

    def test_sum_axis(self, rng):
        a = rand_tensor(rng, (3, 4))
        finite_difference_check(lambda: (a.sum(axis=0) ** 2).sum(), [a])

    def test_sum_keepdims(self, rng):
        a = rand_tensor(rng, (3, 4))
        finite_difference_check(lambda: (a.sum(axis=1, keepdims=True) * a).sum(), [a])

    def test_mean(self, rng):
        a = rand_tensor(rng, (4, 2))
        finite_difference_check(lambda: (a.mean() ** 2), [a])

    def test_mean_axis(self, rng):
        a = rand_tensor(rng, (4, 2))
        finite_difference_check(lambda: (a.mean(axis=0) ** 2).sum(), [a])

    def test_max_all(self, rng):
        a = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [0, 0]])

    def test_max_axis(self, rng):
        a = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [1, 0]])

    def test_max_ties_split(self):
        a = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


class TestPointwiseGradients:
    def test_exp(self, rng):
        a = rand_tensor(rng, (3,))
        finite_difference_check(lambda: a.exp().sum(), [a])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        finite_difference_check(lambda: a.log().sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=4), requires_grad=True)
        finite_difference_check(lambda: a.sqrt().sum(), [a])

    def test_relu(self, rng):
        a = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0])

    def test_tanh(self, rng):
        a = rand_tensor(rng, (4,))
        finite_difference_check(lambda: a.tanh().sum(), [a])

    def test_sigmoid(self, rng):
        a = rand_tensor(rng, (4,))
        finite_difference_check(lambda: a.sigmoid().sum(), [a])

    def test_abs(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])

    def test_clip_gradient_masked(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_clip_values(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]))
        np.testing.assert_allclose(a.clip(-1, 1).numpy(), [-1.0, 0.5, 1.0])
