"""Tests for the LeNet-5 variants and data transforms."""

import numpy as np
import pytest

from repro.core import DropBack
from repro.data import (
    AugmentedLoader,
    Compose,
    DataLoader,
    Dataset,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
)
from repro.models import lenet5, lenet5_bn, lenet5_prelu
from repro.nn import PReLU
from repro.optim import ConstantLR
from repro.tensor import Tensor
from repro.train import Trainer


def _x(n=2, c=1, s=28, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=(n, c, s, s)).astype(np.float32))


class TestLeNet5:
    def test_forward_shapes(self):
        for factory in (lenet5, lenet5_prelu, lenet5_bn):
            m = factory().finalize(1)
            assert m(_x()).shape == (2, 10)

    def test_param_counts_close(self):
        base = lenet5().num_parameters()
        prelu = lenet5_prelu().num_parameters()
        bn = lenet5_bn().num_parameters()
        # PReLU adds one slope per activation channel/unit.
        assert prelu == base + 6 + 16 + 120 + 84
        # BN adds 2 params per conv channel.
        assert bn == base + 2 * (6 + 16)

    def test_prelu_slopes_are_prunable_parameters(self):
        m = lenet5_prelu().finalize(1)
        slopes = [p for n, p in m.named_parameters() if "slope" in n]
        assert slopes and all(p.prunable for p in slopes)
        np.testing.assert_allclose(slopes[0].data, 0.25)

    def test_dropback_prunes_prelu_slopes(self, tiny_mnist):
        """The paper's unique claim: PReLU parameters participate in the
        budget, and untracked slopes regenerate to their 0.25 constant."""
        train, test = tiny_mnist
        m = lenet5_prelu().finalize(3)
        opt = DropBack(m, k=m.num_parameters() // 10, lr=0.1)
        Trainer(m, opt, schedule=ConstantLR(0.1)).fit(
            DataLoader(train, 64, seed=0), test, epochs=1
        )
        counts = opt.tracked_counts()
        slope_keys = [k for k in counts if "slope" in k]
        assert slope_keys
        # Untracked slopes sit exactly at the constant init.
        slopes = [p for n, p in m.named_parameters() if "slope" in n]
        at_init = sum(int(np.sum(p.data == 0.25)) for p in slopes)
        total = sum(p.size for p in slopes)
        tracked = sum(counts[k] for k in slope_keys)
        assert at_init >= total - tracked

    def test_lenet5_trains(self, tiny_mnist):
        train, test = tiny_mnist
        m = lenet5().finalize(3)
        from repro.optim import SGD

        h = Trainer(m, SGD(m, lr=0.1), schedule=ConstantLR(0.1)).fit(
            DataLoader(train, 64, seed=0), test, epochs=4
        )
        # Conv nets warm up slowly on the 600-sample fixture; well above
        # the 10% chance level is enough to prove the model learns.
        assert h.best_val_accuracy > 0.4


class TestTransforms:
    def _batch(self, n=8, c=3, s=8, seed=0):
        return np.random.default_rng(seed).random((n, c, s, s)).astype(np.float32)

    def test_normalize(self):
        x = self._batch()
        t = Normalize(mean=[0.5, 0.5, 0.5], std=[0.25, 0.25, 0.25])
        out = t(x, np.random.default_rng(0))
        np.testing.assert_allclose(out, (x - 0.5) / 0.25, rtol=1e-6)

    def test_normalize_validation(self):
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])

    def test_flip_probability_extremes(self):
        x = self._batch()
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(RandomHorizontalFlip(0.0)(x, rng), x)
        flipped = RandomHorizontalFlip(1.0)(x, rng)
        np.testing.assert_array_equal(flipped, x[:, :, :, ::-1])

    def test_flip_preserves_content(self):
        x = self._batch()
        out = RandomHorizontalFlip(0.5)(x, np.random.default_rng(1))
        # Every image is either itself or its mirror.
        for i in range(len(x)):
            same = np.array_equal(out[i], x[i])
            mirrored = np.array_equal(out[i], x[i, :, :, ::-1])
            assert same or mirrored

    def test_flip_validation(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(1.5)

    def test_crop_shape_preserved(self):
        x = self._batch()
        out = RandomCrop(2)(x, np.random.default_rng(0))
        assert out.shape == x.shape

    def test_crop_centers_content(self):
        # A crop with offset exactly p recovers the original image.
        x = self._batch(n=200)
        out = RandomCrop(2)(x, np.random.default_rng(0))
        recovered = sum(np.array_equal(out[i], x[i]) for i in range(len(x)))
        assert recovered > 0  # offset (p, p) occurs with prob 1/25 per image

    def test_crop_validation(self):
        with pytest.raises(ValueError):
            RandomCrop(0)

    def test_noise_statistics(self):
        x = np.zeros((4, 1, 32, 32), np.float32)
        out = GaussianNoise(0.1)(x, np.random.default_rng(0))
        assert abs(out.std() - 0.1) < 0.01

    def test_noise_zero_sigma_identity(self):
        x = self._batch()
        assert GaussianNoise(0.0)(x, np.random.default_rng(0)) is x

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            GaussianNoise(-0.1)

    def test_compose_order(self):
        x = np.ones((1, 1, 4, 4), np.float32)
        t = Compose([Normalize([1.0], [2.0]), GaussianNoise(0.0)])
        out = t(x, np.random.default_rng(0))
        np.testing.assert_allclose(out, 0.0)

    def test_augmented_loader(self):
        ds = Dataset(self._batch(16), np.zeros(16, np.int64))
        base = DataLoader(ds, 8, shuffle=False)
        aug = AugmentedLoader(base, RandomHorizontalFlip(1.0), seed=0)
        assert len(aug) == 2
        (xb, yb), (x0, y0) = next(iter(aug)), next(iter(base))
        np.testing.assert_array_equal(xb, x0[:, :, :, ::-1])
        np.testing.assert_array_equal(yb, y0)

    def test_augmented_training_runs(self, tiny_mnist):
        train, test = tiny_mnist
        from repro.models import mnist_100_100
        from repro.optim import SGD

        m = mnist_100_100().finalize(1)
        loader = AugmentedLoader(
            DataLoader(train, 64, seed=0),
            Compose([GaussianNoise(0.02)]),
            seed=1,
        )
        h = Trainer(m, SGD(m, lr=0.4), schedule=ConstantLR(0.4)).fit(loader, test, epochs=2)
        assert h.best_val_accuracy > 0.6
