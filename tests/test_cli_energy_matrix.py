"""Parametrized CLI coverage: energy analysis across the full model zoo."""

import pytest

from repro.cli import MODELS, main


class TestEnergyAcrossModels:
    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_energy_runs_for_every_model(self, model, capsys):
        assert main(["energy", "--model", model, "--compression", "5",
                     "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "saving" in out
        assert "5.0x" in out

    @pytest.mark.parametrize("compression", ["1.5", "20", "100"])
    def test_energy_compression_sweep(self, compression, capsys):
        assert main(["energy", "--model", "mnist-100-100",
                     "--compression", compression, "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "stored weights" in out

    def test_saving_reflects_compression(self, capsys):
        main(["energy", "--model", "lenet-300-100", "--compression", "10",
              "--steps", "1"])
        out = capsys.readouterr().out
        # 266,610 / 10 = 26,661 stored weights.
        assert "26,661" in out
