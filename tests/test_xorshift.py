"""Tests for the xorshift PRNG and stateless regeneration."""

import numpy as np
import pytest

from repro.init.xorshift import (
    REGEN_FLOAT_OPS,
    REGEN_INT_OPS,
    Xorshift128,
    Xorshift32,
    normal_at,
    uniform_at,
    xorshift_at,
)


class TestXorshift32:
    def test_reference_sequence(self):
        # xorshift32 with seed 1: x ^= x<<13; x ^= x>>17; x ^= x<<5.
        g = Xorshift32(1)
        first = g.next_u32()
        # Manually computed reference: 1 -> 8193 -> 8193^(8193>>17)=8193 -> 8193^(8193<<5)
        x = 1
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        assert first == x

    def test_deterministic(self):
        a = [Xorshift32(42).next_u32() for _ in range(1)]
        b = [Xorshift32(42).next_u32() for _ in range(1)]
        assert a == b

    def test_sequence_advances(self):
        g = Xorshift32(7)
        vals = {g.next_u32() for _ in range(100)}
        assert len(vals) == 100  # no short cycles

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Xorshift32(0)

    def test_next_float_in_unit_interval(self):
        g = Xorshift32(9)
        for _ in range(100):
            f = g.next_float()
            assert 0.0 <= f < 1.0

    def test_full_32bit_range_used(self):
        g = Xorshift32(123)
        vals = [g.next_u32() for _ in range(2000)]
        assert max(vals) > 2**31  # top bit gets exercised
        assert min(vals) < 2**28


class TestXorshift128:
    def test_deterministic(self):
        g1, g2 = Xorshift128(5), Xorshift128(5)
        assert [g1.next_u32() for _ in range(10)] == [g2.next_u32() for _ in range(10)]

    def test_different_seeds_diverge(self):
        g1, g2 = Xorshift128(5), Xorshift128(6)
        a = [g1.next_u32() for _ in range(10)]
        b = [g2.next_u32() for _ in range(10)]
        assert a != b

    def test_no_short_cycle(self):
        g = Xorshift128(1)
        vals = [g.next_u32() for _ in range(1000)]
        assert len(set(vals)) == 1000

    def test_next_float_unit_interval(self):
        g = Xorshift128(3)
        fs = [g.next_float() for _ in range(500)]
        assert all(0.0 <= f < 1.0 for f in fs)
        assert 0.3 < np.mean(fs) < 0.7


class TestStatelessGeneration:
    def test_pure_function_of_seed_and_index(self):
        idx = np.arange(1000)
        a = xorshift_at(99, idx)
        b = xorshift_at(99, idx)
        np.testing.assert_array_equal(a, b)

    def test_single_index_matches_batch(self):
        idx = np.arange(100)
        batch = xorshift_at(7, idx)
        for i in (0, 13, 99):
            assert xorshift_at(7, np.array([i]))[0] == batch[i]

    def test_different_seeds_differ(self):
        idx = np.arange(256)
        assert not np.array_equal(xorshift_at(1, idx), xorshift_at(2, idx))

    def test_indices_decorrelated(self):
        # Consecutive indices should not produce correlated outputs.
        out = xorshift_at(5, np.arange(10000)).astype(np.float64)
        u = out / 2**32
        corr = np.corrcoef(u[:-1], u[1:])[0, 1]
        assert abs(corr) < 0.05

    def test_shape_preserved(self):
        idx = np.arange(24).reshape(2, 3, 4)
        assert xorshift_at(3, idx).shape == (2, 3, 4)

    def test_nonzero_everywhere(self):
        out = xorshift_at(0, np.arange(100000))
        assert np.all(out != 0) or np.count_nonzero(out == 0) < 3  # zero is astronomically rare


class TestUniformAt:
    def test_range(self):
        u = uniform_at(11, np.arange(10000))
        assert u.min() >= 0.0 and u.max() < 1.0

    def test_approximately_uniform(self):
        u = uniform_at(11, np.arange(50000))
        hist, _ = np.histogram(u, bins=10, range=(0, 1))
        # Each decile should hold ~5000 +- 10%.
        assert np.all(np.abs(hist - 5000) < 500)


class TestNormalAt:
    def test_deterministic(self):
        idx = np.arange(512)
        np.testing.assert_array_equal(normal_at(7, idx), normal_at(7, idx))

    def test_moments(self):
        z = normal_at(21, np.arange(200000), std=1.0).astype(np.float64)
        assert abs(z.mean()) < 0.02
        assert abs(z.std() - 1.0) < 0.02

    def test_scaled_std(self):
        z = normal_at(21, np.arange(100000), std=0.05).astype(np.float64)
        assert abs(z.std() - 0.05) < 0.003

    def test_mean_shift(self):
        z = normal_at(21, np.arange(50000), std=0.1, mean=2.0).astype(np.float64)
        assert abs(z.mean() - 2.0) < 0.01

    def test_gaussian_shape(self):
        # Kolmogorov-ish check: central mass fractions of a standard normal.
        z = normal_at(4, np.arange(100000)).astype(np.float64)
        within1 = np.mean(np.abs(z) < 1.0)
        within2 = np.mean(np.abs(z) < 2.0)
        assert abs(within1 - 0.6827) < 0.02
        assert abs(within2 - 0.9545) < 0.01

    def test_dtype(self):
        assert normal_at(1, np.arange(8)).dtype == np.float32
        assert normal_at(1, np.arange(8), dtype=np.float64).dtype == np.float64

    def test_disjoint_index_blocks_are_independent_streams(self):
        a = normal_at(9, np.arange(0, 1000))
        b = normal_at(9, np.arange(1000, 2000))
        assert not np.array_equal(a, b)
        # regenerating block a later still matches
        np.testing.assert_array_equal(a, normal_at(9, np.arange(0, 1000)))


def test_regen_cost_constants_match_paper():
    # Six 32-bit integer ops plus one float op (Section 2.1).
    assert REGEN_INT_OPS == 6
    assert REGEN_FLOAT_OPS == 1
