"""Meta-tests for the interprocedural concurrency rules (RPA010-013).

Each rule gets (a) a fixture tree with one seeded bug that must produce
exactly that finding, (b) a corrected fixture that must run clean, and
(c) the acceptance check that the real package has zero findings.  The
fixtures are tiny packages written into tmp_path — the engine sees them
exactly as it sees ``src/repro``.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analyze import LintEngine
from repro.analyze.callgraph import build_index
from repro.analyze.facts import collect_module_facts, module_name_for

REPO = Path(__file__).resolve().parent.parent

CONCURRENCY = ["RPA010", "RPA011", "RPA012", "RPA013"]


def lint_tree(tmp_path: Path, files: dict[str, str], select=None):
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text))
    engine = LintEngine(select=select or CONCURRENCY, root=tmp_path)
    return engine.lint_paths([tmp_path])


# ---------------------------------------------------------------------- #
# pass-1 building blocks
# ---------------------------------------------------------------------- #


class TestFacts:
    def test_module_name_for(self):
        assert module_name_for("src/repro/serve/registry.py") == "repro.serve.registry"
        assert module_name_for("src/repro/analyze/__init__.py") == "repro.analyze"

    def test_with_lock_held_tracking(self):
        import ast

        tree = ast.parse(
            textwrap.dedent(
                """
                import threading
                A_LOCK = threading.Lock()
                B_LOCK = threading.Lock()
                def f():
                    with A_LOCK:
                        with B_LOCK:
                            pass
                """
            )
        )
        mf = collect_module_facts(tree, "src/pkg/m.py")
        acquires = mf.functions["f"].acquires
        assert [a.lock for a in acquires] == ["pkg.m.A_LOCK", "pkg.m.B_LOCK"]
        assert acquires[1].held == ("pkg.m.A_LOCK",)

    def test_self_lock_normalizes_to_class_attr(self):
        import ast

        tree = ast.parse(
            textwrap.dedent(
                """
                import threading
                class R:
                    def __init__(self):
                        self._lock = threading.RLock()
                    def go(self):
                        with self._lock:
                            self.x = 1
                """
            )
        )
        mf = collect_module_facts(tree, "src/pkg/m.py")
        assert mf.classes["R"].lock_attrs == {"_lock": 5}
        go = mf.functions["R.go"]
        assert go.acquires[0].lock == "R._lock"
        assert go.mutations[0].held == ("R._lock",)

    def test_facts_json_roundtrip(self):
        import ast

        from repro.analyze.facts import ModuleFacts

        src = (REPO / "src/repro/parallel/trainer.py").read_text()
        mf = collect_module_facts(
            ast.parse(src), "src/repro/parallel/trainer.py"
        )
        again = ModuleFacts.from_dict(mf.to_dict())
        assert again.to_dict() == mf.to_dict()


class TestCallGraph:
    def _index(self, files: dict[str, str]):
        import ast

        return build_index(
            {
                rel: (ast.parse(textwrap.dedent(text)), textwrap.dedent(text))
                for rel, text in files.items()
            }
        )

    def test_cross_module_call_resolution(self):
        idx = self._index(
            {
                "src/pkg/a.py": """
                    def helper():
                        pass
                """,
                "src/pkg/b.py": """
                    from pkg.a import helper
                    def top():
                        helper()
                """,
            }
        )
        edges = idx.call_edges("pkg.b:top")
        assert [c for c, _l, _h in edges] == ["pkg.a:helper"]
        assert idx.reachable(["pkg.b:top"]) == {"pkg.b:top", "pkg.a:helper"}

    def test_nested_functions_are_reachable(self):
        idx = self._index(
            {
                "src/pkg/a.py": """
                    def outer():
                        def inner():
                            pass
                        return inner
                """,
            }
        )
        assert "pkg.a:outer.inner" in idx.reachable(["pkg.a:outer"])

    def test_locks_below_is_transitive(self):
        idx = self._index(
            {
                "src/pkg/a.py": """
                    import threading
                    DEEP_LOCK = threading.Lock()
                    def bottom():
                        with DEEP_LOCK:
                            pass
                    def top():
                        bottom()
                """,
            }
        )
        assert idx.locks_below("pkg.a:top") == {"pkg.a.DEEP_LOCK"}

    def test_index_cache_reuses_unchanged_files(self, tmp_path):
        import ast

        files = {"src/pkg/a.py": "def f():\n    pass\n"}
        cache = tmp_path / "idx.json"
        sources = {rel: (ast.parse(t), t) for rel, t in files.items()}
        build_index(sources, cache_path=cache)
        assert cache.is_file()
        idx2 = build_index(sources, cache_path=cache)
        assert "pkg.a:f" in idx2.functions


# ---------------------------------------------------------------------- #
# RPA010: lock-order cycles
# ---------------------------------------------------------------------- #


_LOCKS_MODULE = """
    import threading
    REGISTRY_LOCK = threading.Lock()
    BATCH_LOCK = threading.Lock()
"""


class TestLockOrderCycle:
    def test_reversed_lock_order_across_modules_fires(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/serve/locks.py": _LOCKS_MODULE,
                "src/pkg/serve/one.py": """
                    from pkg.serve.locks import REGISTRY_LOCK, BATCH_LOCK
                    def forward():
                        with REGISTRY_LOCK:
                            with BATCH_LOCK:
                                pass
                """,
                "src/pkg/parallel/two.py": """
                    from pkg.serve.locks import REGISTRY_LOCK, BATCH_LOCK
                    def backward():
                        with BATCH_LOCK:
                            with REGISTRY_LOCK:
                                pass
                """,
            },
        )
        assert [v.code for v in violations] == ["RPA010"]
        assert "lock-order cycle" in violations[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/serve/locks.py": _LOCKS_MODULE,
                "src/pkg/serve/one.py": """
                    from pkg.serve.locks import REGISTRY_LOCK, BATCH_LOCK
                    def forward():
                        with REGISTRY_LOCK:
                            with BATCH_LOCK:
                                pass
                """,
                "src/pkg/parallel/two.py": """
                    from pkg.serve.locks import REGISTRY_LOCK, BATCH_LOCK
                    def backward():
                        with REGISTRY_LOCK:
                            with BATCH_LOCK:
                                pass
                """,
            },
        )
        assert violations == []

    def test_inversion_through_callee_fires(self, tmp_path):
        """The cycle only exists through the call graph: g() acquires the
        registry lock *inside* a call made while the batch lock is held."""
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/serve/locks.py": _LOCKS_MODULE,
                "src/pkg/serve/one.py": """
                    from pkg.serve.locks import REGISTRY_LOCK, BATCH_LOCK
                    def forward():
                        with REGISTRY_LOCK:
                            with BATCH_LOCK:
                                pass
                """,
                "src/pkg/serve/two.py": """
                    from pkg.serve.locks import REGISTRY_LOCK, BATCH_LOCK
                    def helper():
                        with REGISTRY_LOCK:
                            pass
                    def backward():
                        with BATCH_LOCK:
                            helper()
                """,
            },
        )
        assert [v.code for v in violations] == ["RPA010"]

    def test_reentrant_same_lock_is_not_a_cycle(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/serve/one.py": """
                    import threading
                    A_LOCK = threading.RLock()
                    def f():
                        with A_LOCK:
                            with A_LOCK:
                                pass
                """,
            },
        )
        assert violations == []

    def test_outside_concurrent_dirs_is_ignored(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/util/one.py": """
                    import threading
                    A_LOCK = threading.Lock()
                    B_LOCK = threading.Lock()
                    def f():
                        with A_LOCK:
                            with B_LOCK:
                                pass
                    def g():
                        with B_LOCK:
                            with A_LOCK:
                                pass
                """,
            },
        )
        assert violations == []


# ---------------------------------------------------------------------- #
# RPA011: unfenced arena writes
# ---------------------------------------------------------------------- #


class TestBarrierPhaseWrite:
    def test_unfenced_arena_write_fires(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/trainer.py": """
                    def child(arena, barrier, rank):
                        arena.grads[rank] = 1.0
                        return arena.losses[rank]
                """,
            },
        )
        assert [v.code for v in violations] == ["RPA011"]
        assert "grads" in violations[0].message

    def test_barrier_after_write_is_clean(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/trainer.py": """
                    def child(arena, barrier, rank):
                        arena.grads[rank] = 1.0
                        barrier.wait()
                """,
            },
        )
        assert violations == []

    def test_fence_in_caller_is_clean(self, tmp_path):
        """The write sits in a helper; the barrier lives after the call
        site in the only caller — interprocedural fencing."""
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/trainer.py": """
                    def write_partial(arena, rank):
                        arena.grads[rank] = 1.0
                    def child(arena, barrier, rank):
                        write_partial(arena, rank)
                        barrier.wait()
                """,
            },
        )
        assert violations == []

    def test_fence_through_sync_helper_is_clean(self, tmp_path):
        """The fence point is itself a call into a barrier-awaiting helper
        (the real trainer's `self._sync`)."""
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/trainer.py": """
                    def sync(barrier):
                        barrier.wait()
                    def child(arena, barrier, rank):
                        arena.losses[rank] = 2.0
                        sync(barrier)
                """,
            },
        )
        assert violations == []

    def test_monitoring_regions_exempt(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/trainer.py": """
                    def child(arena, rank):
                        arena.timers[rank, 0] = 1.0
                        arena.control[0] = 1
                """,
            },
        )
        assert violations == []

    def test_out_kwarg_write_fires(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/trainer.py": """
                    import numpy as np
                    def child(arena, rank, parts):
                        np.sum(parts, axis=0, out=arena.grads[rank])
                """,
            },
        )
        assert [v.code for v in violations] == ["RPA011"]


# ---------------------------------------------------------------------- #
# RPA012: fork-tainted RNG
# ---------------------------------------------------------------------- #


class TestForkTaintedRng:
    def test_post_spawn_unseeded_draw_fires(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/worker.py": """
                    import multiprocessing
                    import numpy as np
                    def worker(rank):
                        return np.random.default_rng().normal()
                    def fit():
                        p = multiprocessing.Process(target=worker, args=(0,))
                        p.start()
                """,
            },
        )
        assert [v.code for v in violations] == ["RPA012"]
        assert "unseeded" in violations[0].message

    def test_seeded_draw_after_spawn_is_clean(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/worker.py": """
                    import multiprocessing
                    import numpy as np
                    def worker(rank):
                        rng = np.random.default_rng((123, rank))
                        return rng.normal()
                    def fit():
                        p = multiprocessing.Process(target=worker, args=(0,))
                        p.start()
                """,
            },
        )
        assert violations == []

    def test_global_draw_after_fork_fires(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/worker.py": """
                    import os
                    import numpy as np
                    def spawn_and_draw():
                        pid = os.fork()
                        if pid == 0:
                            return np.random.rand(4)
                        return None
                """,
            },
        )
        assert [v.code for v in violations] == ["RPA012"]
        assert "global" in violations[0].message

    def test_draw_before_fork_is_clean(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/worker.py": """
                    import os
                    import numpy as np
                    def spawn_after_draw():
                        x = np.random.rand(4)
                        pid = os.fork()
                        return pid, x
                """,
            },
        )
        assert violations == []

    def test_taint_follows_calls_below_spawn_target(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/parallel/worker.py": """
                    import multiprocessing
                    from pkg.parallel.aug import draw
                    def worker(rank):
                        return draw()
                    def fit():
                        p = multiprocessing.Process(target=worker, args=(0,))
                        p.start()
                """,
                "src/pkg/parallel/aug.py": """
                    import numpy as np
                    def draw():
                        return np.random.default_rng().normal()
                """,
            },
        )
        assert [v.code for v in violations] == ["RPA012"]
        assert violations[0].path == "src/pkg/parallel/aug.py"


# ---------------------------------------------------------------------- #
# RPA013: unguarded shared mutation
# ---------------------------------------------------------------------- #


_REGISTRY_BUGGY = """
    import threading
    class Registry:
        def __init__(self):
            self._lock = threading.RLock()
            self._entries = {}
        def register(self, key, value):
            with self._lock:
                self._entries[key] = value
        def evict(self, key):
            self._entries.pop(key)
"""

_REGISTRY_CLEAN = """
    import threading
    class Registry:
        def __init__(self):
            self._lock = threading.RLock()
            self._entries = {}
        def register(self, key, value):
            with self._lock:
                self._entries[key] = value
        def evict(self, key):
            with self._lock:
                self._entries.pop(key)
"""


class TestUnguardedSharedMutation:
    def test_lockless_mutation_of_guarded_attr_fires(self, tmp_path):
        violations = lint_tree(
            tmp_path, {"src/pkg/serve/registry.py": _REGISTRY_BUGGY}
        )
        assert [v.code for v in violations] == ["RPA013"]
        assert "Registry._entries" in violations[0].message
        assert violations[0].scope == "Registry.evict"

    def test_locked_mutation_is_clean(self, tmp_path):
        violations = lint_tree(
            tmp_path, {"src/pkg/serve/registry.py": _REGISTRY_CLEAN}
        )
        assert violations == []

    def test_lock_propagates_through_private_helper(self, tmp_path):
        """_drop is only ever called with the lock held, so its lockless
        body is fine — the call-site lock-propagation fixpoint proves it."""
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/serve/registry.py": """
                    import threading
                    class Registry:
                        def __init__(self):
                            self._lock = threading.RLock()
                            self._entries = {}
                        def register(self, key, value):
                            with self._lock:
                                self._entries[key] = value
                        def evict(self, key):
                            with self._lock:
                                self._drop(key)
                        def _drop(self, key):
                            self._entries.pop(key)
                """,
            },
        )
        assert violations == []

    def test_never_locked_attr_is_not_flagged(self, tmp_path):
        """Attributes never mutated under the lock (owner-thread-only
        state, e.g. a worker-thread list) stay unguarded."""
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/serve/batcher.py": """
                    import threading
                    class Batcher:
                        def __init__(self):
                            self._cond = threading.Condition()
                            self._queues = {}
                            self._threads = []
                        def submit(self, item):
                            with self._cond:
                                self._queues.setdefault("m", []).append(item)
                        def start(self):
                            self._threads.append(object())
                """,
            },
        )
        assert violations == []

    def test_init_is_exempt(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/serve/registry.py": """
                    import threading
                    class Registry:
                        def __init__(self):
                            self._lock = threading.RLock()
                            self._entries = {}
                        def register(self, key, value):
                            with self._lock:
                                self._entries[key] = value
                """,
            },
        )
        assert violations == []

    def test_kernel_registry_mutation_from_serve_fires(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/serve/handler.py": """
                    from pkg.tensor import kernels
                    def setup():
                        kernels.set_backend("fast")
                """,
            },
        )
        assert [v.code for v in violations] == ["RPA013"]
        assert "kernel-dispatch" in violations[0].message

    def test_kernel_mutation_outside_serve_is_clean(self, tmp_path):
        violations = lint_tree(
            tmp_path,
            {
                "src/pkg/cli.py": """
                    from pkg.tensor import kernels
                    def setup():
                        kernels.set_backend("fast")
                """,
            },
        )
        assert violations == []

    def test_noqa_suppresses_project_rule_finding(self, tmp_path):
        buggy = _REGISTRY_BUGGY.replace(
            "self._entries.pop(key)",
            "self._entries.pop(key)  # repro: noqa[RPA013] owner-thread only",
        )
        violations = lint_tree(tmp_path, {"src/pkg/serve/registry.py": buggy})
        assert violations == []


# ---------------------------------------------------------------------- #
# acceptance: the real package is clean
# ---------------------------------------------------------------------- #


class TestRealPackageIsClean:
    def test_concurrency_rules_zero_findings_on_src(self):
        engine = LintEngine(select=CONCURRENCY, root=REPO)
        violations = engine.lint_paths([REPO / "src"])
        assert not engine.errors
        assert violations == [], "\n".join(v.format() for v in violations)
