"""Tests for the command-line interface."""

import pytest

from repro.cli import MODELS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "mnist-100-100"
        assert args.optimizer == "dropback"
        assert args.compression == 4.5

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "alexnet"])

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--optimizer", "adam"])

    def test_train_parallel_knobs(self):
        args = build_parser().parse_args(["train"])
        assert args.workers == 1 and args.microbatch is None and args.prefetch == 2
        args = build_parser().parse_args(
            ["train", "--workers", "2", "--microbatch", "16", "--prefetch", "0"]
        )
        assert (args.workers, args.microbatch, args.prefetch) == (2, 16, 0)


class TestCommands:
    def test_info_lists_all_models(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in MODELS:
            assert name in out
        assert "36,479,194" in out  # WRN-28-10 paper-scale count

    def test_energy_output(self, capsys):
        assert main(["energy", "--model", "mnist-100-100", "--compression", "10",
                     "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "saving" in out
        assert "10.0x" in out

    @pytest.mark.parametrize("optimizer", ["sgd", "dropback", "dropback-q8", "magnitude",
                                           "gradual", "dsd"])
    def test_train_every_optimizer_smoke(self, optimizer, capsys):
        code = main([
            "train", "--model", "mnist-100-100", "--optimizer", optimizer,
            "--epochs", "1", "--train-size", "300", "--compression", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best validation error" in out

    def test_train_parallel_smoke(self, capsys):
        code = main([
            "train", "--model", "mnist-100-100", "--optimizer", "dropback",
            "--epochs", "1", "--train-size", "256", "--batch-size", "64",
            "--workers", "2", "--compression", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "data-parallel: 2 workers" in out
        assert "best validation error" in out

    def test_train_conv_model_smoke(self, capsys):
        code = main([
            "train", "--model", "densenet-tiny", "--optimizer", "dropback",
            "--epochs", "1", "--train-size", "200", "--lr", "0.1",
            "--image-size", "16",
        ])
        assert code == 0

    def test_train_with_freeze(self, capsys):
        code = main([
            "train", "--model", "mnist-100-100", "--optimizer", "dropback",
            "--epochs", "2", "--train-size", "300", "--freeze-epoch", "1",
        ])
        assert code == 0


class TestKernelsCommand:
    def test_lists_dispatch_table(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for op in ("matmul", "conv2d_forward", "bn_relu_forward"):
            assert op in out
        assert "reference" in out
        assert "active backend:" in out
        assert "sparse density cutoff:" in out
        assert "REPRO_SPARSE_DENSITY_CUTOFF" in out

    def test_table_shows_per_op_override(self, capsys):
        from repro.tensor.kernels import registry

        registry.set_op_backend("matmul", "sparse")
        try:
            assert main(["kernels"]) == 0
            out = capsys.readouterr().out
            row = next(line for line in out.splitlines() if line.startswith("matmul "))
            # Both the pin and the backend it resolves to are visible.
            assert row.rstrip().endswith("sparse    sparse")
        finally:
            registry.set_op_backend("matmul", None)

    def test_bench_writes_perf_report(self, tmp_path, capsys):
        from repro.profile import PerfReport

        out_path = tmp_path / "perf_kernels.json"
        assert main(["kernels", "--bench", "--rounds", "2", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "vs reference" in out
        report = PerfReport.load(out_path)
        assert "kernels.matmul.reference" in report.ops
        assert "kernels.conv2d_forward.fast" in report.ops
        for meta_key in ("speedup_conv_gemm", "speedup_bn_relu", "speedup_conv_forward"):
            assert isinstance(report.meta[meta_key], float)
        assert report.meta["rounds"] == 2
        assert report.meta["sparse_density_cutoff"] == 0.25
        assert report.meta["op_overrides"] == {}
