"""Tests for FLOP counting, seed statistics, and quantized checkpoints."""


import numpy as np
import pytest

from repro.analysis import (
    SeedStats,
    count_flops,
    regen_overhead_ratio,
    seed_sweep,
    summarize,
)
from repro.core import DropBack
from repro.data import DataLoader
from repro.io import load_sparse_quantized, save_sparse, save_sparse_quantized
from repro.models import lenet5, mnist_100_100, vgg_s
from repro.nn import Linear, Sequential
from repro.optim import ConstantLR
from repro.train import Trainer, evaluate


class TestCountFlops:
    def test_linear_flops_exact(self):
        m = Sequential(Linear(10, 5))
        lf = count_flops(m, (10,))
        assert lf[0].flops == 2 * 10 * 5 + 5
        assert lf[0].out_shape == (5,)

    def test_linear_no_bias(self):
        m = Sequential(Linear(10, 5, bias=False))
        assert count_flops(m, (10,))[0].flops == 100

    def test_mnist_mlp_total(self):
        m = mnist_100_100()
        total = sum(lf.flops for lf in count_flops(m, (1, 28, 28)))
        # ~2 FLOPs per weight + biases: just under 180k.
        assert 2 * 89_400 < total < 2 * 89_610 + 1000

    def test_conv_net_shapes_propagate(self):
        m = lenet5()
        layers = count_flops(m, (1, 28, 28))
        assert layers[-1].out_shape == (10,)
        conv_flops = layers[0].flops
        # conv1: 6 out x 28x28 x 1x5x5 MACs x2 + bias adds.
        assert conv_flops == 2 * 6 * 28 * 28 * 25 + 6 * 28 * 28

    def test_conv_dominates_fc_in_vgg(self):
        m = vgg_s(width_mult=0.25)
        layers = count_flops(m, (3, 32, 32))
        conv = sum(lf.flops for lf in layers if lf.layer.startswith("Conv2d"))
        fc = sum(lf.flops for lf in layers if lf.layer.startswith("Linear"))
        assert conv > 10 * fc

    def test_non_sequential_rejected(self):
        from repro.models import wrn_10_1

        with pytest.raises(TypeError):
            count_flops(wrn_10_1(), (3, 16, 16))


class TestRegenOverhead:
    def test_small_for_conv_nets(self):
        m = lenet5()
        ratio = regen_overhead_ratio(m, (1, 28, 28), k=m.num_parameters() // 10)
        # Regeneration is a tiny fraction of the conv arithmetic.
        assert ratio < 0.5

    def test_decreases_with_larger_k(self):
        m = mnist_100_100()
        r_small_k = regen_overhead_ratio(m, (1, 28, 28), k=1_000)
        r_large_k = regen_overhead_ratio(m, (1, 28, 28), k=80_000)
        assert r_large_k < r_small_k

    def test_zero_when_all_tracked(self):
        m = mnist_100_100()
        assert regen_overhead_ratio(m, (1, 28, 28), k=m.num_parameters()) == 0.0


class TestSeedStats:
    def test_basic_statistics(self):
        s = SeedStats((1.0, 2.0, 3.0))
        assert s.mean == 2.0
        assert s.min == 1.0 and s.max == 3.0
        assert s.std == pytest.approx(1.0)
        assert s.n == 3

    def test_single_value_std_zero(self):
        s = SeedStats((5.0,))
        assert s.std == 0.0
        assert s.confidence_interval() == (5.0, 5.0)

    def test_confidence_interval_brackets_mean(self):
        s = SeedStats((1.0, 2.0, 3.0, 4.0))
        lo, hi = s.confidence_interval()
        assert lo < s.mean < hi

    def test_str_format(self):
        assert "n=2" in str(SeedStats((1.0, 2.0)))

    def test_seed_sweep_runs_all(self):
        calls = []

        def run(seed):
            calls.append(seed)
            return seed * 0.1

        s = seed_sweep(run, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert s.mean == pytest.approx(0.2)

    def test_seed_sweep_empty_rejected(self):
        with pytest.raises(ValueError):
            seed_sweep(lambda s: 0.0, [])

    def test_seed_sweep_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            seed_sweep(lambda s: float("nan"), [1])

    def test_summarize(self):
        text = summarize({"err": SeedStats((0.1, 0.2)), "acc": SeedStats((0.9,))})
        assert "err" in text and "acc" in text

    def test_training_across_seeds_has_modest_variance(self, tiny_mnist):
        """Integration: three seeds of DropBack 10x give consistent error."""
        train, test = tiny_mnist

        def run(seed):
            m = mnist_100_100().finalize(seed)
            opt = DropBack(m, k=9_000, lr=0.4)
            h = Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
                DataLoader(train, 64, seed=0), test, epochs=4
            )
            return h.best_val_error

        s = seed_sweep(run, [1, 2, 3])
        assert s.std < 0.1
        assert s.mean < 0.35


class TestQuantizedCheckpoint:
    def _trained(self, tiny_mnist, k=4000):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(3)
        opt = DropBack(m, k=k, lr=0.4)
        Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
            DataLoader(train, 64, seed=0), test, epochs=2
        )
        return m, opt, test

    def test_roundtrip_accuracy_close(self, tmp_path, tiny_mnist):
        m, opt, test = self._trained(tiny_mnist)
        path = str(tmp_path / "q.npz")
        save_sparse_quantized(m, opt, path, bits=8)
        m2 = load_sparse_quantized(mnist_100_100(), path)
        assert abs(evaluate(m2, test) - evaluate(m, test)) < 0.05

    def test_untracked_still_exact(self, tmp_path, tiny_mnist):
        m, opt, test = self._trained(tiny_mnist)
        path = str(tmp_path / "q.npz")
        save_sparse_quantized(m, opt, path, bits=8)
        m2 = load_sparse_quantized(mnist_100_100(), path)
        mask = opt.tracked_mask
        flat2 = np.concatenate([p.data.reshape(-1) for p in m2.parameters()])
        w0 = np.concatenate([p.initial_values(3).reshape(-1) for p in m2.parameters()])
        np.testing.assert_array_equal(flat2[~mask], w0[~mask])

    def test_smaller_than_float_sparse(self, tmp_path, tiny_mnist):
        import os

        m, opt, test = self._trained(tiny_mnist, k=8000)
        qp = str(tmp_path / "q.npz")
        sp = str(tmp_path / "s.npz")
        save_sparse_quantized(m, opt, qp, bits=8)
        save_sparse(m, opt, sp)
        assert os.path.getsize(qp) < os.path.getsize(sp)

    def test_requires_trained(self, tmp_path):
        m = mnist_100_100().finalize(1)
        opt = DropBack(m, k=100, lr=0.4)
        with pytest.raises(RuntimeError):
            save_sparse_quantized(m, opt, str(tmp_path / "x.npz"))

    def test_values_snap_to_grid(self, tmp_path, tiny_mnist):
        m, opt, test = self._trained(tiny_mnist)
        path = str(tmp_path / "q.npz")
        save_sparse_quantized(m, opt, path, bits=8)
        with np.load(path) as data:
            q = data["q_values"]
            assert q.dtype == np.int8
            assert int(data["bits"]) == 8
