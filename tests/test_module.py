"""Tests for the Module/Parameter system and finalize semantics."""

import numpy as np
import pytest

from repro.init import ConstantInit, ScaledNormalInit
from repro.models import mnist_100_100
from repro.nn import Linear, Module, Parameter, ReLU, Sequential


class TestParameter:
    def test_requires_grad(self):
        p = Parameter((3, 2), ScaledNormalInit(0.1))
        assert p.requires_grad

    def test_unfinalized_initial_values_raises(self):
        p = Parameter((3,), ConstantInit(0.0))
        with pytest.raises(RuntimeError):
            p.initial_values(0)

    def test_initialize_sets_values_and_index(self):
        p = Parameter((4, 5), ScaledNormalInit(0.1))
        p.initialize(7, 100)
        assert p.base_index == 100
        np.testing.assert_array_equal(
            p.data, ScaledNormalInit(0.1).regenerate(7, 100, (4, 5))
        )

    def test_initial_values_pure(self):
        p = Parameter((4,), ScaledNormalInit(0.5))
        p.initialize(3, 10)
        w0 = p.initial_values(3)
        p.data = p.data + 100.0  # training moves weights
        np.testing.assert_array_equal(w0, p.initial_values(3))

    def test_prunable_default_true(self):
        assert Parameter((1,), ConstantInit(0.0)).prunable

    def test_repr(self):
        p = Parameter((2,), ConstantInit(0.0))
        assert "Parameter" in repr(p)


class TestModuleDiscovery:
    def test_named_parameters_order_stable(self):
        m = mnist_100_100()
        names = [n for n, _ in m.named_parameters()]
        assert names == [
            "layers.1.weight",
            "layers.1.bias",
            "layers.3.weight",
            "layers.3.bias",
            "layers.5.weight",
            "layers.5.bias",
        ]

    def test_parameters_count(self):
        m = mnist_100_100()
        assert m.num_parameters() == 89610

    def test_modules_traversal(self):
        m = Sequential(Linear(2, 3), ReLU(), Sequential(Linear(3, 1)))
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds.count("Linear") == 2
        assert kinds.count("Sequential") == 2
        assert kinds.count("ReLU") == 1

    def test_nested_attribute_modules(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2)
                self.b = Linear(2, 1)

            def forward(self, x):
                return self.b(self.a(x).relu())

        names = [n for n, _ in Net().named_parameters()]
        assert names == ["a.weight", "a.bias", "b.weight", "b.bias"]


class TestFinalize:
    def test_consecutive_index_ranges(self):
        m = mnist_100_100().finalize(5)
        offset = 0
        for _, p in m.named_parameters():
            assert p.base_index == offset
            offset += p.size
        assert offset == m.num_parameters()

    def test_same_seed_same_weights(self):
        a = mnist_100_100().finalize(9)
        b = mnist_100_100().finalize(9)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = mnist_100_100().finalize(9)
        b = mnist_100_100().finalize(10)
        assert any(
            not np.array_equal(pa.data, pb.data)
            for pa, pb in zip(a.parameters(), b.parameters())
            if pa.size > 10 and pa.data.std() > 0  # skip constant inits
        )

    def test_seed_property(self):
        m = mnist_100_100()
        assert not m.is_finalized
        with pytest.raises(RuntimeError):
            _ = m.seed
        m.finalize(3)
        assert m.seed == 3
        assert m.is_finalized

    def test_optimizer_requires_finalized(self):
        from repro.optim import SGD

        with pytest.raises(RuntimeError):
            SGD(mnist_100_100(), lr=0.1)

    def test_weight_std_matches_lecun(self):
        m = mnist_100_100().finalize(11)
        w = dict(m.named_parameters())["layers.1.weight"].data
        assert abs(w.std() - 1.0 / np.sqrt(784)) < 0.002

    def test_bias_initialized_zero(self):
        m = mnist_100_100().finalize(11)
        b = dict(m.named_parameters())["layers.1.bias"].data
        np.testing.assert_array_equal(b, 0.0)


class TestTrainEvalAndGrads:
    def test_train_eval_propagates(self):
        m = Sequential(Linear(2, 2), Sequential(Linear(2, 2)))
        m.eval()
        assert all(not mod.training for mod in m.modules())
        m.train()
        assert all(mod.training for mod in m.modules())

    def test_zero_grad(self):
        from repro.tensor import Tensor

        m = mnist_100_100().finalize(1)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 28, 28)).astype(np.float32))
        m(x).sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_roundtrip(self):
        m1 = mnist_100_100().finalize(1)
        m2 = mnist_100_100().finalize(2)
        m2.load_state_dict(m1.state_dict())
        for pa, pb in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_copy(self):
        m = mnist_100_100().finalize(1)
        st = m.state_dict()
        st["layers.1.weight"][...] = 0
        assert m.parameters()[0].data.std() > 0

    def test_unknown_key_raises(self):
        m = mnist_100_100().finalize(1)
        with pytest.raises(KeyError):
            m.load_state_dict({"nope": np.zeros(3)})

    def test_shape_mismatch_raises(self):
        m = mnist_100_100().finalize(1)
        with pytest.raises(ValueError):
            m.load_state_dict({"layers.1.weight": np.zeros((2, 2))})

    def test_batchnorm_buffers_in_state(self):
        from repro.models import wrn_10_1

        m = wrn_10_1().finalize(1)
        st = m.state_dict()
        assert any("running_mean" in k for k in st)
        assert any("running_var" in k for k in st)

    def test_buffer_roundtrip(self):
        from repro.models import wrn_10_1

        m1 = wrn_10_1().finalize(1)
        # mutate a buffer
        next(iter(m1._named_buffers()))[2][...] = 7.0
        m2 = wrn_10_1().finalize(2)
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_array_equal(next(iter(m2._named_buffers()))[2], 7.0)
