"""Tests for the energy model — the paper's quantitative motivation."""

import numpy as np
import pytest

from repro.core import DropBack
from repro.energy import (
    PJ_DRAM_ACCESS,
    PJ_FLOAT_OP,
    EnergyModel,
    EnergyReport,
)
from repro.models import mnist_100_100
from repro.optim import SGD
from repro.optim.base import AccessCounter
from repro.tensor import Tensor, cross_entropy


class TestConstants:
    def test_45nm_values(self):
        # Han et al. 2016 numbers the paper quotes: 640 pJ vs 0.9 pJ.
        assert PJ_DRAM_ACCESS == 640.0
        assert PJ_FLOAT_OP == 0.9

    def test_dram_vs_flop_over_700x(self):
        # Paper Section 1: "over 700x more energy".
        assert EnergyModel().dram_vs_flop_ratio > 700

    def test_regen_cost_about_1_5pj(self):
        # Paper Section 2.1: regeneration "amounts to about 1.5 pJ".
        assert EnergyModel().regen_pj_per_value == pytest.approx(1.5, abs=0.01)

    def test_regen_vs_dram_427x(self):
        # Paper Sections 2.1 & 6: "427x less energy than a single off-chip
        # memory access".
        assert EnergyModel().regen_vs_dram_ratio == pytest.approx(427, abs=1)


class TestEnergyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(pj_dram=-1)

    def test_report_arithmetic(self):
        c = AccessCounter(weight_reads=100, weight_writes=50, regenerations=1000, steps=2)
        r = EnergyModel().report(c)
        assert r.dram_pj == pytest.approx(150 * 640.0)
        assert r.regen_pj == pytest.approx(1000 * 1.5)
        assert r.total_pj == r.dram_pj + r.regen_pj
        assert r.total_uj == pytest.approx(r.total_pj * 1e-6)
        assert r.steps == 2

    def test_report_str(self):
        r = EnergyReport(dram_pj=1.0, regen_pj=2.0, steps=1)
        assert "pJ" in str(r)

    def test_training_ratio_validation(self):
        em = EnergyModel()
        empty = AccessCounter()
        with pytest.raises(ValueError):
            em.training_energy_ratio(AccessCounter(weight_reads=1), empty)


class TestTrainingEnergyComparison:
    def _train_one_epoch(self, opt_cls, **kw):
        m = mnist_100_100().finalize(1)
        opt = opt_cls(m, lr=0.4, **kw)
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = Tensor(rng.normal(size=(32, 784)).astype(np.float32))
            y = rng.integers(0, 10, size=32)
            m.zero_grad()
            loss = cross_entropy(m(x), y)
            loss.backward()
            opt.step()
        return opt

    def test_dropback_cuts_weight_memory_energy(self):
        """The paper's headline: DropBack slashes training-time weight
        traffic energy roughly in proportion to the compression ratio."""
        sgd = self._train_one_epoch(SGD)
        db = self._train_one_epoch(DropBack, k=5_000)
        em = EnergyModel()
        ratio = em.training_energy_ratio(sgd.counter, db.counter)
        # 89,610 / 5,000 ≈ 17.9x compression; regen overhead trims it a bit.
        assert ratio > 10.0

    def test_ratio_tracks_budget(self):
        db_small = self._train_one_epoch(DropBack, k=1_000)
        db_large = self._train_one_epoch(DropBack, k=20_000)
        em = EnergyModel()
        sgd = self._train_one_epoch(SGD)
        r_small = em.training_energy_ratio(sgd.counter, db_small.counter)
        r_large = em.training_energy_ratio(sgd.counter, db_large.counter)
        assert r_small > r_large

    def test_regen_energy_far_below_saved_dram(self):
        db = self._train_one_epoch(DropBack, k=5_000)
        r = EnergyModel().report(db.counter)
        assert r.regen_pj < 0.05 * r.dram_pj
