"""Tests for functional ops: batchnorm, softmax, losses, dropout, prelu."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    batch_norm,
    cross_entropy,
    dropout,
    linear,
    log_softmax,
    mse_loss,
    nll_loss,
    prelu,
    softmax,
)
from tests.conftest import finite_difference_check, rand_tensor


class TestLinear:
    def test_forward(self):
        x = Tensor(np.array([[1.0, 2.0]]))
        w = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]))
        b = Tensor(np.array([0.0, 0.0, 1.0]))
        out = linear(x, w, b).numpy()
        np.testing.assert_allclose(out, [[1.0, 2.0, 4.0]])

    def test_gradients(self, rng):
        x = rand_tensor(rng, (4, 3))
        w = rand_tensor(rng, (5, 3))
        b = rand_tensor(rng, (5,))
        finite_difference_check(lambda: (linear(x, w, b) ** 2).sum(), [x, w, b])


class TestPReLU:
    def test_positive_passes_through(self):
        x = Tensor(np.array([[1.0, 2.0]]))
        a = Tensor(np.array([0.25]))
        np.testing.assert_allclose(prelu(x, a).numpy(), [[1.0, 2.0]])

    def test_negative_scaled(self):
        x = Tensor(np.array([[-4.0]]))
        a = Tensor(np.array([0.25]))
        np.testing.assert_allclose(prelu(x, a).numpy(), [[-1.0]])

    def test_per_channel_slope_nchw(self):
        x = Tensor(-np.ones((1, 2, 2, 2), dtype=np.float64))
        a = Tensor(np.array([0.1, 0.5]))
        out = prelu(x, a).numpy()
        np.testing.assert_allclose(out[0, 0], -0.1)
        np.testing.assert_allclose(out[0, 1], -0.5)

    def test_gradients(self, rng):
        x = rand_tensor(rng, (3, 4))
        a = Tensor(np.array([0.25, 0.1, 0.4, 0.3]), requires_grad=True)
        finite_difference_check(lambda: (prelu(x, a) ** 2).sum(), [x, a])

    def test_scalar_slope_gradients(self, rng):
        x = rand_tensor(rng, (5,))
        a = Tensor(np.array([0.25]), requires_grad=True)
        finite_difference_check(lambda: (prelu(x, a) ** 2).sum(), [x, a])


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones(100))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_p_zero_is_identity(self):
        x = Tensor(np.ones(10))
        assert dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_zeroes_and_scales(self):
        x = Tensor(np.ones(10000))
        out = dropout(x, 0.5, np.random.default_rng(0)).numpy()
        zero_frac = np.mean(out == 0.0)
        assert 0.45 < zero_frac < 0.55
        assert np.allclose(out[out != 0], 2.0)

    def test_expectation_preserved(self):
        x = Tensor(np.ones(100000))
        out = dropout(x, 0.3, np.random.default_rng(1)).numpy()
        assert abs(out.mean() - 1.0) < 0.02

    def test_invalid_p(self):
        x = Tensor(np.ones(3))
        with pytest.raises(ValueError):
            dropout(x, 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            dropout(x, -0.1, np.random.default_rng(0))

    def test_gradient_masked_like_forward(self):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = dropout(x, 0.5, np.random.default_rng(2))
        out.sum().backward()
        mask = out.numpy() != 0
        np.testing.assert_allclose(x.grad[mask], 2.0)
        np.testing.assert_allclose(x.grad[~mask], 0.0)


class TestBatchNorm:
    def _buffers(self, c):
        return np.zeros(c, np.float64), np.ones(c, np.float64)

    def test_normalizes_batch(self, rng):
        x = Tensor(rng.normal(3.0, 2.0, size=(64, 4)))
        g = Tensor(np.ones(4))
        b = Tensor(np.zeros(4))
        rm, rv = self._buffers(4)
        out = batch_norm(x, g, b, rm, rv, training=True).numpy()
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self, rng):
        x = Tensor(rng.normal(size=(32, 2)))
        g = Tensor(np.array([2.0, 3.0]))
        b = Tensor(np.array([1.0, -1.0]))
        rm, rv = self._buffers(2)
        out = batch_norm(x, g, b, rm, rv, training=True).numpy()
        assert np.allclose(out.mean(axis=0), [1.0, -1.0], atol=1e-6)

    def test_running_stats_updated(self, rng):
        x = Tensor(rng.normal(5.0, 1.0, size=(128, 3)))
        g, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        rm, rv = self._buffers(3)
        batch_norm(x, g, b, rm, rv, training=True, momentum=1.0)
        assert np.allclose(rm, 5.0, atol=0.5)
        assert np.allclose(rv, 1.0, atol=0.3)

    def test_eval_uses_running_stats(self):
        x = Tensor(np.full((4, 2), 10.0))
        g, b = Tensor(np.ones(2)), Tensor(np.zeros(2))
        rm = np.full(2, 10.0)
        rv = np.full(2, 4.0)
        out = batch_norm(x, g, b, rm, rv, training=False).numpy()
        np.testing.assert_allclose(out, 0.0, atol=1e-3)

    def test_eval_mode_does_not_touch_buffers(self):
        x = Tensor(np.ones((4, 2)))
        g, b = Tensor(np.ones(2)), Tensor(np.zeros(2))
        rm, rv = np.zeros(2), np.ones(2)
        batch_norm(x, g, b, rm.copy(), rv.copy(), training=False)
        rm2, rv2 = np.zeros(2), np.ones(2)
        np.testing.assert_array_equal(rm, rm2)
        np.testing.assert_array_equal(rv, rv2)

    def test_train_gradients(self, rng):
        x = rand_tensor(rng, (8, 3))
        g = Tensor(rng.normal(1.0, 0.1, size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        rm, rv = self._buffers(3)
        finite_difference_check(
            lambda: (batch_norm(x, g, b, rm.copy(), rv.copy(), training=True) ** 2).sum(),
            [x, g, b],
        )

    def test_eval_gradients(self, rng):
        x = rand_tensor(rng, (8, 3))
        g = Tensor(rng.normal(1.0, 0.1, size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)
        rm = rng.normal(size=3)
        rv = rng.uniform(0.5, 1.5, size=3)
        finite_difference_check(
            lambda: (batch_norm(x, g, b, rm, rv, training=False) ** 2).sum(), [x, g, b]
        )

    def test_nchw_gradients(self, rng):
        x = rand_tensor(rng, (4, 2, 3, 3))
        g = Tensor(rng.normal(1.0, 0.1, size=2), requires_grad=True)
        b = Tensor(rng.normal(size=2), requires_grad=True)
        rm, rv = self._buffers(2)
        finite_difference_check(
            lambda: (batch_norm(x, g, b, rm.copy(), rv.copy(), training=True) ** 2).sum(),
            [x, g, b],
        )


class TestSoftmaxAndLosses:
    def test_log_softmax_normalized(self, rng):
        x = Tensor(rng.normal(size=(5, 7)))
        ls = log_softmax(x).numpy()
        np.testing.assert_allclose(np.exp(ls).sum(axis=1), 1.0, rtol=1e-6)

    def test_log_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = log_softmax(x).numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(np.exp(out).sum(), 1.0, rtol=1e-6)

    def test_log_softmax_gradient(self, rng):
        x = rand_tensor(rng, (4, 5))
        finite_difference_check(lambda: (log_softmax(x) ** 2).sum(), [x])

    def test_softmax_probabilities(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        p = softmax(x).numpy()
        assert np.all(p >= 0)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-6)

    def test_cross_entropy_value(self):
        # Uniform logits -> loss = log(C).
        x = Tensor(np.zeros((2, 4)))
        loss = cross_entropy(x, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4), rel=1e-6)

    def test_cross_entropy_perfect_prediction(self):
        x = Tensor(np.array([[100.0, 0.0, 0.0]]))
        loss = cross_entropy(x, np.array([0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient(self, rng):
        x = rand_tensor(rng, (6, 4))
        y = rng.integers(0, 4, size=6)
        finite_difference_check(lambda: cross_entropy(x, y), [x])

    def test_nll_loss_gradient(self, rng):
        x = rand_tensor(rng, (5, 3))
        y = rng.integers(0, 3, size=5)
        finite_difference_check(lambda: nll_loss(log_softmax(x), y), [x])

    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_mse_gradient(self, rng):
        pred = rand_tensor(rng, (4,))
        target = rng.normal(size=4)
        finite_difference_check(lambda: mse_loss(pred, target), [pred])

    def test_mse_accepts_tensor_target(self, rng):
        pred = rand_tensor(rng, (4,))
        target = Tensor(rng.normal(size=4))
        assert np.isfinite(mse_loss(pred, target).item())
