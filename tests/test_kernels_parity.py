"""Backend parity: every registered kernel against the reference oracle.

The ``reference`` backend is the pre-dispatch numpy code verbatim, so any
other backend must reproduce it — bit-exactly for pure gather/scatter and
elementwise ops (im2col, relu masks, pooling argmax), and within float32
round-off for ops whose fast path reassociates a GEMM or a normalization.
Backwards are checked through the matching kernel pair (a fast forward's
ctx feeds the fast backward), exactly as the tape wires them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck, kernels
from repro.tensor.conv import clear_workspace_cache
from repro.tensor.kernels import fast as fast_mod
from repro.tensor.kernels import registry

RNG = np.random.default_rng(1234)

#: Relative tolerance for kernels that reorder float32 summations.
GEMM_RTOL = 2e-5
GEMM_ATOL = 1e-6

#: Backends checked against reference for every op they register.
FAST_BACKENDS = [b for b in kernels.list_backends() if b != "reference"]


def _pair(op: str, backend: str):
    """(reference_fn, backend_fn) for ``op``, skipping unregistered combos."""
    ref = registry._KERNELS[op]["reference"]
    fn = registry._KERNELS[op].get(backend)
    if fn is None:
        pytest.skip(f"{op} not registered on {backend}")
    return ref, fn


@pytest.fixture(autouse=True)
def _fresh_pool():
    clear_workspace_cache()
    yield
    clear_workspace_cache()


# --------------------------------------------------------------------- #
# matmul
# --------------------------------------------------------------------- #


class TestMatmulParity:
    # Shapes straddling every fast-path decision boundary: the batched
    # flatten (trailing <= FLAT_MATMUL_MAX_COLS), its refusal, the 2-D
    # tiled path, and plain fallthrough.
    SHAPES = [
        ((8, 16), (16, 12)),
        ((256, 2304), (8, 2304, 16)),                       # flattened batch path
        ((64, 128), (4, 128, fast_mod.FLAT_MATMUL_MAX_COLS + 8)),  # refused: wide
        ((fast_mod.TILE_MIN_ROWS + 64, 32), (32, 8)),       # tiled 2-D path
        ((3, 7, 5), (3, 5, 9)),                             # batched 3-D @ 3-D
    ]

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    @pytest.mark.parametrize("ashape,bshape", SHAPES)
    def test_matches_reference(self, backend, ashape, bshape):
        ref, fn = _pair("matmul", backend)
        a = RNG.standard_normal(ashape).astype(np.float32)
        b = RNG.standard_normal(bshape).astype(np.float32)
        np.testing.assert_allclose(fn(a, b), ref(a, b), rtol=GEMM_RTOL, atol=GEMM_ATOL)

    def test_mixed_dtype_falls_through(self):
        _, fn = _pair("matmul", "fast")
        a = RNG.standard_normal((300, 20)).astype(np.float32)
        b = RNG.standard_normal((20, 4)).astype(np.float64)
        np.testing.assert_allclose(fn(a, b), a @ b)

    def test_threaded_split_paths_with_forced_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "3")
        ref, fn = _pair("matmul", "threaded")
        a2 = RNG.standard_normal((600, 32)).astype(np.float32)   # row split
        b2 = RNG.standard_normal((32, 16)).astype(np.float32)
        np.testing.assert_allclose(fn(a2, b2), ref(a2, b2), rtol=GEMM_RTOL, atol=GEMM_ATOL)
        a3 = RNG.standard_normal((8, 12, 10)).astype(np.float32)  # batch split
        b3 = RNG.standard_normal((8, 10, 6)).astype(np.float32)
        np.testing.assert_allclose(fn(a3, b3), ref(a3, b3), rtol=GEMM_RTOL, atol=GEMM_ATOL)


# --------------------------------------------------------------------- #
# im2col (bit-exact gather: fixed iteration order on both backends)
# --------------------------------------------------------------------- #


class TestIm2colParity:
    @pytest.mark.parametrize("stride", [1, 2])
    def test_bit_exact(self, stride):
        ref, fn = _pair("im2col", "fast")
        xp = RNG.standard_normal((3, 4, 9, 9)).astype(np.float32)
        oh = ow = (9 - 3) // stride + 1
        np.testing.assert_array_equal(
            fn(xp, 3, 3, stride, stride, oh, ow), ref(xp, 3, 3, stride, stride, oh, ow)
        )


# --------------------------------------------------------------------- #
# conv2d
# --------------------------------------------------------------------- #

CONV_CASES = [
    # (n, c, f, hw, k, stride, pad) — both the flat small-output path and
    # the batched path above FLAT_CONV_MAX_OHW.
    (2, 3, 4, 6, 3, 1, 1),      # flat: ohw = 36
    (2, 3, 4, 6, 3, 2, 0),      # flat, strided
    (1, 2, 3, 5, 1, 1, 0),      # flat, 1x1 kernel
    (2, 3, 4, 16, 3, 1, 1),     # batched: ohw = 256 > FLAT_CONV_MAX_OHW
]


class TestConvParity:
    @pytest.mark.parametrize("n,c,f,hw,k,stride,pad", CONV_CASES)
    @pytest.mark.parametrize("with_bias", [True, False])
    def test_forward(self, n, c, f, hw, k, stride, pad, with_bias):
        ref, fn = _pair("conv2d_forward", "fast")
        oh = ow = (hw + 2 * pad - k) // stride + 1
        x = RNG.standard_normal((n, c, hw, hw)).astype(np.float32)
        w = RNG.standard_normal((f, c, k, k)).astype(np.float32)
        b = RNG.standard_normal(f).astype(np.float32) if with_bias else None
        out_f, _ = fn(x, w, b, stride, pad, oh, ow)
        out_r, _ = ref(x, w, b, stride, pad, oh, ow)
        assert out_f.shape == out_r.shape == (n, f, oh, ow)
        np.testing.assert_allclose(out_f, out_r, rtol=GEMM_RTOL, atol=GEMM_ATOL)

    @pytest.mark.parametrize("n,c,f,hw,k,stride,pad", CONV_CASES)
    def test_backward(self, n, c, f, hw, k, stride, pad):
        fwd_r, fwd_f = _pair("conv2d_forward", "fast")
        bwd_r, bwd_f = _pair("conv2d_backward", "fast")
        oh = ow = (hw + 2 * pad - k) // stride + 1
        x = RNG.standard_normal((n, c, hw, hw)).astype(np.float32)
        w = RNG.standard_normal((f, c, k, k)).astype(np.float32)
        b = RNG.standard_normal(f).astype(np.float32)
        g = RNG.standard_normal((n, f, oh, ow)).astype(np.float32)
        _, ctx_f = fwd_f(x, w, b, stride, pad, oh, ow)
        _, ctx_r = fwd_r(x, w, b, stride, pad, oh, ow)
        gx_f, gw_f, gb_f = bwd_f(g, ctx_f, True, True, True)
        gx_r, gw_r, gb_r = bwd_r(g, ctx_r, True, True, True)
        np.testing.assert_allclose(gb_f, gb_r, rtol=GEMM_RTOL, atol=1e-4)
        np.testing.assert_allclose(gw_f, gw_r, rtol=GEMM_RTOL, atol=1e-4)
        np.testing.assert_allclose(gx_f, gx_r, rtol=GEMM_RTOL, atol=1e-4)

    def test_backward_need_flags_return_none(self):
        fwd_r, fwd_f = _pair("conv2d_forward", "fast")
        bwd_r, bwd_f = _pair("conv2d_backward", "fast")
        x = RNG.standard_normal((2, 3, 6, 6)).astype(np.float32)
        w = RNG.standard_normal((4, 3, 3, 3)).astype(np.float32)
        g = RNG.standard_normal((2, 4, 6, 6)).astype(np.float32)
        for fwd, bwd in ((fwd_f, bwd_f), (fwd_r, bwd_r)):
            _, ctx = fwd(x, w, None, 1, 1, 6, 6)
            gx, gw, gb = bwd(g, ctx, False, True, False)
            assert gx is None and gb is None and gw is not None


# --------------------------------------------------------------------- #
# relu (bit-exact: identical mask semantics)
# --------------------------------------------------------------------- #


class TestReluParity:
    def test_forward_and_backward_bit_exact(self):
        fwd_r, fwd_f = _pair("relu_forward", "fast")
        bwd_r, bwd_f = _pair("relu_backward", "fast")
        x = RNG.standard_normal((64, 32)).astype(np.float32)
        x[0, 0] = 0.0
        x[0, 1] = -0.0
        g = RNG.standard_normal((64, 32)).astype(np.float32)
        out_f, ctx_f = fwd_f(x)
        out_r, ctx_r = fwd_r(x)
        np.testing.assert_array_equal(out_f, out_r)
        np.testing.assert_array_equal(bwd_f(g, ctx_f), bwd_r(g, ctx_r))

    def test_grad_dtype_preserved(self):
        _, fwd_f = _pair("relu_forward", "fast")
        _, bwd_f = _pair("relu_backward", "fast")
        x = RNG.standard_normal((4, 4)).astype(np.float32)
        _, ctx = fwd_f(x)
        assert bwd_f(np.ones((4, 4), dtype=np.float32), ctx).dtype == np.float32


# --------------------------------------------------------------------- #
# batch norm / fused bn+relu
# --------------------------------------------------------------------- #


def _bn_args(shape):
    x = RNG.standard_normal(shape).astype(np.float32)
    axes = (0,) if len(shape) == 2 else (0, 2, 3)
    pshape = (1, -1) if len(shape) == 2 else (1, -1, 1, 1)
    c = shape[1]
    g_ = (1.0 + 0.1 * RNG.standard_normal(c)).astype(np.float32).reshape(pshape)
    b_ = (0.1 * RNG.standard_normal(c)).astype(np.float32).reshape(pshape)
    mu = x.mean(axis=axes, keepdims=True)
    var = x.var(axis=axes, keepdims=True)
    return x, g_, b_, mu, var, axes


BN_SHAPES = [(16, 8), (4, 6, 5, 5)]


class TestBatchNormParity:
    @pytest.mark.parametrize("shape", BN_SHAPES)
    @pytest.mark.parametrize("op", ["batch_norm", "bn_relu"])
    def test_forward(self, shape, op):
        ref, fn = _pair(f"{op}_forward", "fast")
        x, g_, b_, mu, var, _ = _bn_args(shape)
        out_f, _ = fn(x, g_, b_, mu, var, 1e-5)
        out_r, _ = ref(x, g_, b_, mu, var, 1e-5)
        np.testing.assert_allclose(out_f, out_r, rtol=2e-5, atol=1e-5)
        if op == "bn_relu":
            assert out_f.min() >= 0.0

    @pytest.mark.parametrize("shape", BN_SHAPES)
    @pytest.mark.parametrize("op", ["batch_norm", "bn_relu"])
    @pytest.mark.parametrize("training", [True, False])
    def test_backward(self, shape, op, training):
        fwd_r, fwd_f = _pair(f"{op}_forward", "fast")
        bwd_r, bwd_f = _pair(f"{op}_backward", "fast")
        x, g_, b_, mu, var, axes = _bn_args(shape)
        g = RNG.standard_normal(shape).astype(np.float32)
        _, ctx_f = fwd_f(x, g_, b_, mu, var, 1e-5)
        _, ctx_r = fwd_r(x, g_, b_, mu, var, 1e-5)
        grads_f = bwd_f(g, ctx_f, axes, training, True, True, True)
        grads_r = bwd_r(g, ctx_r, axes, training, True, True, True)
        for got, want in zip(grads_f, grads_r):
            np.testing.assert_allclose(got, want, rtol=5e-5, atol=1e-5)

    def test_bn_relu_matches_composed_reference(self):
        # The fused op's contract: identical to batch_norm followed by relu.
        bn_ref = registry._KERNELS["batch_norm_forward"]["reference"]
        relu_ref = registry._KERNELS["relu_forward"]["reference"]
        fused = registry._KERNELS["bn_relu_forward"]["fast"]
        x, g_, b_, mu, var, _ = _bn_args((4, 6, 5, 5))
        bn_out, _ = bn_ref(x, g_, b_, mu, var, 1e-5)
        composed, _ = relu_ref(bn_out)
        out, _ = fused(x, g_, b_, mu, var, 1e-5)
        np.testing.assert_allclose(out, composed, rtol=2e-5, atol=1e-5)


# --------------------------------------------------------------------- #
# pooling (bit-exact: argmax and window sums iterate identically)
# --------------------------------------------------------------------- #


class TestPoolingParity:
    @pytest.mark.parametrize("op", ["max_pool2d", "avg_pool2d"])
    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 2)])
    def test_forward_bit_exact(self, op, kernel, stride):
        ref, fn = _pair(f"{op}_forward", "fast")
        x = RNG.standard_normal((2, 3, 9, 9)).astype(np.float32)
        oh = ow = (9 - kernel) // stride + 1
        out_f, _ = fn(x, kernel, stride, oh, ow)
        out_r, _ = ref(x, kernel, stride, oh, ow)
        np.testing.assert_array_equal(out_f, out_r)

    @pytest.mark.parametrize("op", ["max_pool2d", "avg_pool2d"])
    def test_backward_through_fast_forward_ctx(self, op):
        # Pool backwards resolve to reference; they must accept the ctx a
        # fast forward produced (ctx schema is part of the kernel contract).
        ref_fwd, fast_fwd = _pair(f"{op}_forward", "fast")
        bwd = registry._KERNELS[f"{op}_backward"]["reference"]
        x = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        g = RNG.standard_normal((2, 3, 4, 4)).astype(np.float32)
        _, ctx_f = fast_fwd(x, 2, 2, 4, 4)
        _, ctx_r = ref_fwd(x, 2, 2, 4, 4)
        np.testing.assert_array_equal(bwd(g, ctx_f), bwd(g, ctx_r))


# --------------------------------------------------------------------- #
# end-to-end gradcheck on the non-reference backends
# --------------------------------------------------------------------- #


class TestGradcheckOnFastBackends:
    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_conv2d(self, backend):
        from repro.tensor import conv2d

        x = Tensor(RNG.standard_normal((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(0.5 * RNG.standard_normal((3, 2, 3, 3)), requires_grad=True)
        b = Tensor(0.1 * RNG.standard_normal(3), requires_grad=True)
        with kernels.use_backend(backend):
            gradcheck(lambda: (conv2d(x, w, b, stride=1, pad=1) ** 2).sum(), (x, w, b))

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_batch_norm(self, backend):
        from repro.tensor import batch_norm

        x = Tensor(RNG.standard_normal((6, 4)), requires_grad=True)
        gamma = Tensor(1.0 + 0.1 * RNG.standard_normal(4), requires_grad=True)
        beta = Tensor(0.1 * RNG.standard_normal(4), requires_grad=True)
        rm = np.zeros(4)
        rv = np.ones(4)
        with kernels.use_backend(backend):
            gradcheck(
                lambda: (
                    batch_norm(x, gamma, beta, rm.copy(), rv.copy(), training=True) ** 2
                ).sum(),
                (x, gamma, beta),
            )

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_batch_norm_relu(self, backend):
        from repro.tensor import batch_norm_relu

        x = Tensor(RNG.standard_normal((6, 4)), requires_grad=True)
        gamma = Tensor(1.0 + 0.1 * RNG.standard_normal(4), requires_grad=True)
        beta = Tensor(0.5 + 0.1 * RNG.standard_normal(4), requires_grad=True)
        rm = np.zeros(4)
        rv = np.ones(4)
        with kernels.use_backend(backend):
            gradcheck(
                lambda: (
                    batch_norm_relu(x, gamma, beta, rm.copy(), rv.copy(), training=True) ** 2
                ).sum(),
                (x, gamma, beta),
            )

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_matmul_and_relu(self, backend):
        a = Tensor(RNG.standard_normal((4, 6)), requires_grad=True)
        b = Tensor(RNG.standard_normal((6, 3)), requires_grad=True)
        with kernels.use_backend(backend):
            gradcheck(lambda: ((a @ b).relu() ** 2).sum(), (a, b))


# --------------------------------------------------------------------- #
# module-level parity: a small conv net end to end
# --------------------------------------------------------------------- #


class TestModelLevelParity:
    def test_forward_and_grads_agree_across_backends(self):
        from repro import nn

        def build():
            m = nn.Sequential(
                nn.Conv2d(2, 4, 3, padding=1),
                nn.BatchNorm2d(4),
                nn.ReLU(),
                nn.MaxPool2d(2),
                nn.Flatten(),
                nn.Linear(4 * 3 * 3, 5),
            )
            return m.finalize(seed=11)

        x_data = RNG.standard_normal((3, 2, 6, 6)).astype(np.float32)
        results = {}
        for backend in ["reference", "fast"]:
            model = build()
            x = Tensor(x_data, requires_grad=True)
            with kernels.use_backend(backend):
                y = model(x)
                y.sum().backward()
            results[backend] = (y.data, x.grad, [p.grad.copy() for p in model.parameters()])
        y_r, gx_r, gp_r = results["reference"]
        y_f, gx_f, gp_f = results["fast"]
        np.testing.assert_allclose(y_f, y_r, rtol=2e-5, atol=1e-5)
        np.testing.assert_allclose(gx_f, gx_r, rtol=2e-4, atol=1e-4)
        for got, want in zip(gp_f, gp_r):
            np.testing.assert_allclose(got, want, rtol=2e-4, atol=1e-4)
