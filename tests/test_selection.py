"""Tests for top-k selection strategies."""

import numpy as np
import pytest

from repro.core import HeapSelector, SortSelector, top_k_mask


class TestTopKMask:
    def test_selects_largest(self):
        scores = np.array([0.1, 5.0, 0.3, 4.0, 0.2])
        mask = top_k_mask(scores, 2)
        np.testing.assert_array_equal(mask, [False, True, False, True, False])

    def test_k_zero(self):
        assert not top_k_mask(np.arange(5.0), 0).any()

    def test_k_equals_n(self):
        assert top_k_mask(np.arange(5.0), 5).all()

    def test_k_exceeds_n(self):
        assert top_k_mask(np.arange(5.0), 50).all()

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            top_k_mask(np.arange(3.0), -1)

    def test_exactly_k_selected(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=1000)
        for k in (1, 10, 500, 999):
            assert top_k_mask(scores, k).sum() == k

    def test_threshold_property(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=200)
        mask = top_k_mask(scores, 50)
        assert scores[mask].min() >= scores[~mask].max()


class TestSelectors:
    def test_sort_selector_delegates(self):
        scores = np.array([3.0, 1.0, 2.0])
        mask = SortSelector().select(scores, 2)
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_heap_selector_basic(self):
        scores = np.array([3.0, 1.0, 2.0])
        mask = HeapSelector().select(scores, 2)
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_heap_matches_sort_on_distinct_scores(self):
        rng = np.random.default_rng(2)
        for trial in range(5):
            scores = rng.permutation(np.linspace(0, 1, 300))  # all distinct
            k = int(rng.integers(1, 299))
            np.testing.assert_array_equal(
                HeapSelector().select(scores, k), SortSelector().select(scores, k)
            )

    def test_heap_edge_cases(self):
        scores = np.arange(5.0)
        assert not HeapSelector().select(scores, 0).any()
        assert HeapSelector().select(scores, 5).all()
        assert HeapSelector().select(scores, 10).all()

    def test_both_select_exactly_k(self):
        rng = np.random.default_rng(3)
        scores = rng.normal(size=100)
        assert SortSelector().select(scores, 17).sum() == 17
        assert HeapSelector().select(scores, 17).sum() == 17
