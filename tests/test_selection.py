"""Tests for top-k selection strategies."""

import numpy as np
import pytest

from repro.core import HeapSelector, SortSelector, top_k_mask


class TestTopKMask:
    def test_selects_largest(self):
        scores = np.array([0.1, 5.0, 0.3, 4.0, 0.2])
        mask = top_k_mask(scores, 2)
        np.testing.assert_array_equal(mask, [False, True, False, True, False])

    def test_k_zero(self):
        assert not top_k_mask(np.arange(5.0), 0).any()

    def test_k_equals_n(self):
        assert top_k_mask(np.arange(5.0), 5).all()

    def test_k_exceeds_n(self):
        assert top_k_mask(np.arange(5.0), 50).all()

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            top_k_mask(np.arange(3.0), -1)

    def test_exactly_k_selected(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=1000)
        for k in (1, 10, 500, 999):
            assert top_k_mask(scores, k).sum() == k

    def test_threshold_property(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=200)
        mask = top_k_mask(scores, 50)
        assert scores[mask].min() >= scores[~mask].max()


class TestSelectors:
    def test_sort_selector_delegates(self):
        scores = np.array([3.0, 1.0, 2.0])
        mask = SortSelector().select(scores, 2)
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_heap_selector_basic(self):
        scores = np.array([3.0, 1.0, 2.0])
        mask = HeapSelector().select(scores, 2)
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_heap_matches_sort_on_distinct_scores(self):
        rng = np.random.default_rng(2)
        for trial in range(5):
            scores = rng.permutation(np.linspace(0, 1, 300))  # all distinct
            k = int(rng.integers(1, 299))
            np.testing.assert_array_equal(
                HeapSelector().select(scores, k), SortSelector().select(scores, k)
            )

    def test_heap_edge_cases(self):
        scores = np.arange(5.0)
        assert not HeapSelector().select(scores, 0).any()
        assert HeapSelector().select(scores, 5).all()
        assert HeapSelector().select(scores, 10).all()

    def test_both_select_exactly_k(self):
        rng = np.random.default_rng(3)
        scores = rng.normal(size=100)
        assert SortSelector().select(scores, 17).sum() == 17
        assert HeapSelector().select(scores, 17).sum() == 17


class TestHeapFastPath:
    """HeapSelector.select (argpartition + threshold scan) must reproduce
    the streaming scan exactly, index-order tie-breaking included."""

    def test_matches_scan_on_crafted_ties(self):
        sel = HeapSelector()
        cases = [
            (np.array([1.0, 2.0, 2.0, 2.0, 0.5, 2.0, 3.0]), 3),
            (np.zeros(10), 4),  # all tied
            (np.array([5.0, 1.0, 1.0, 1.0, 1.0, 5.0]), 4),
            (np.array([1.0, 1.0, 1.0]), 2),
        ]
        for scores, k in cases:
            np.testing.assert_array_equal(
                sel.select(scores, k), sel.select_scan(scores, k), err_msg=f"k={k}"
            )

    @pytest.mark.parametrize("chunk_size", [7, 64, 1 << 16])
    def test_matches_scan_fuzzed(self, chunk_size):
        sel = HeapSelector(chunk_size=chunk_size)
        rng = np.random.default_rng(4)
        for trial in range(40):
            n = int(rng.integers(1, 300))
            k = int(rng.integers(1, n + 1))
            if trial % 2:
                scores = rng.integers(0, 5, size=n).astype(float)  # heavy ties
            else:
                scores = rng.normal(size=n)
            np.testing.assert_array_equal(
                sel.select(scores, k),
                sel.select_scan(scores, k),
                err_msg=f"n={n} k={k} chunk={chunk_size}",
            )

    def test_chunked_threshold_exact(self):
        rng = np.random.default_rng(5)
        scores = rng.normal(size=1000)
        chunked = HeapSelector(chunk_size=100)
        np.testing.assert_array_equal(
            chunked.select(scores, 123), HeapSelector().select(scores, 123)
        )

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            HeapSelector(chunk_size=0)


class TestSelectInto:
    @pytest.mark.parametrize("selector_cls", [SortSelector, HeapSelector])
    def test_writes_into_buffer(self, selector_cls):
        sel = selector_cls()
        rng = np.random.default_rng(6)
        scores = rng.normal(size=64)
        out = np.ones(64, dtype=bool)  # stale contents must be cleared
        result = sel.select_into(scores, 10, out)
        assert result is out
        np.testing.assert_array_equal(out, sel.select(scores, 10))

    def test_top_k_mask_out(self):
        scores = np.array([0.1, 5.0, 0.3, 4.0, 0.2])
        out = np.ones(5, dtype=bool)
        result = top_k_mask(scores, 2, out=out)
        assert result is out
        np.testing.assert_array_equal(out, [False, True, False, True, False])

    def test_top_k_mask_out_edge_k(self):
        out = np.zeros(5, dtype=bool)
        assert top_k_mask(np.arange(5.0), 7, out=out).all()
        assert not top_k_mask(np.arange(5.0), 0, out=out).any()
