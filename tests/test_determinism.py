"""Golden-value determinism tests.

These pin exact digests of seeded initializations.  If any of them change,
initialization numerics changed — which silently invalidates every
regenerated untracked weight in every existing sparse checkpoint, so this
must be a conscious, versioned decision.
"""

import numpy as np

from repro.core import DropBack
from repro.data import DataLoader
from repro.models import lenet_300_100, mnist_100_100, wrn_10_1
from repro.optim import ConstantLR
from repro.train import Trainer
from repro.utils.determinism import array_digest, weights_digest

GOLDEN = {
    "lenet_300_100/seed42": "59d9e4cec15572088681f58a0565a4b3fcb0b16b20d6b583297b01ea57e189a3",
    "mnist_100_100/seed7": "f3540ecef44f5f15707eee76731709f53fb46ced41ec3dda92548878c472b9c2",
    "wrn_10_1/seed3": "7c081a7feb59d1b65d02fc67cb89e3273849892e51ab4100d6aade8735f275dc",
}


class TestArrayDigest:
    def test_stable(self):
        a = np.arange(10, dtype=np.float32)
        assert array_digest(a) == array_digest(a.copy())

    def test_sensitive_to_values(self):
        a = np.zeros(4, np.float32)
        b = a.copy()
        b[0] = 1e-20
        assert array_digest(a) != array_digest(b)

    def test_sensitive_to_shape(self):
        a = np.zeros(4, np.float32)
        assert array_digest(a) != array_digest(a.reshape(2, 2))

    def test_sensitive_to_dtype(self):
        a = np.zeros(4, np.float32)
        assert array_digest(a) != array_digest(a.astype(np.float64))

    def test_noncontiguous_handled(self):
        a = np.arange(16, dtype=np.float32).reshape(4, 4)
        assert array_digest(a[:, ::2]) == array_digest(np.ascontiguousarray(a[:, ::2]))


class TestGoldenInitializations:
    def test_lenet_300_100_seed42(self):
        assert weights_digest(lenet_300_100().finalize(42)) == GOLDEN["lenet_300_100/seed42"]

    def test_mnist_100_100_seed7(self):
        assert weights_digest(mnist_100_100().finalize(7)) == GOLDEN["mnist_100_100/seed7"]

    def test_wrn_10_1_seed3(self):
        assert weights_digest(wrn_10_1().finalize(3)) == GOLDEN["wrn_10_1/seed3"]

    def test_different_seed_different_digest(self):
        assert (
            weights_digest(mnist_100_100().finalize(8))
            != GOLDEN["mnist_100_100/seed7"]
        )


class TestGoldenDatasets:
    """Dataset generation is part of the reproducibility surface too."""

    def test_synth_mnist_digest(self):
        from repro.data import synth_mnist

        train, _ = synth_mnist(n_train=20, n_test=10, seed=0)
        assert (
            array_digest(train.images)
            == "ba5718f753d7e8fe156e8993789a0d7c24e24d332aa7c1ba287c0ecf98b8dc0a"
        )

    def test_synth_cifar_digest(self):
        from repro.data import synth_cifar

        train, _ = synth_cifar(n_train=20, n_test=10, seed=0, size=16)
        assert (
            array_digest(train.images)
            == "aa3c805b0d2b856770661047d5c357ea3ff94d739882a7b14e71a18e2c42b465"
        )


class TestTrainingDeterminism:
    def test_dropback_training_digest_reproducible(self, tiny_mnist):
        """Whole-pipeline determinism: same seeds -> bit-identical weights."""
        train, test = tiny_mnist

        def run():
            m = mnist_100_100().finalize(11)
            opt = DropBack(m, k=4_000, lr=0.4)
            Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
                DataLoader(train, 64, seed=5), test, epochs=2
            )
            return weights_digest(m)

        assert run() == run()

    def test_loader_seed_changes_digest(self, tiny_mnist):
        train, test = tiny_mnist

        def run(loader_seed):
            m = mnist_100_100().finalize(11)
            opt = DropBack(m, k=4_000, lr=0.4)
            Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
                DataLoader(train, 64, seed=loader_seed), test, epochs=1
            )
            return weights_digest(m)

        assert run(1) != run(2)
