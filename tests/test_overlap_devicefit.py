"""Tests for tracked-set overlap analysis and the device-fit report."""

import numpy as np
import pytest

from repro.analysis import (
    expected_random_overlap,
    jaccard,
    nested_budget_overlap,
    overlap_coefficient,
)
from repro.core import DropBack
from repro.data import DataLoader
from repro.hw import AcceleratorModel
from repro.models import lenet5, mnist_100_100
from repro.optim import ConstantLR
from repro.train import Trainer


class TestMaskMetrics:
    def test_jaccard_identical(self):
        m = np.array([True, False, True])
        assert jaccard(m, m) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard(np.array([True, False]), np.array([False, True])) == 0.0

    def test_jaccard_partial(self):
        a = np.array([True, True, False, False])
        b = np.array([True, False, True, False])
        assert jaccard(a, b) == pytest.approx(1 / 3)

    def test_jaccard_empty_masks(self):
        z = np.zeros(4, bool)
        assert jaccard(z, z) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            jaccard(np.zeros(3, bool), np.zeros(4, bool))

    def test_overlap_coefficient_subset(self):
        small = np.array([True, False, False, False])
        large = np.array([True, True, True, False])
        assert overlap_coefficient(small, large) == 1.0

    def test_expected_random_overlap_formula(self):
        # k_a = k_b = k: E = k/n.
        assert expected_random_overlap(100, 10, 10) == pytest.approx(0.1)

    def test_expected_random_overlap_validation(self):
        with pytest.raises(ValueError):
            expected_random_overlap(0, 1, 1)
        with pytest.raises(ValueError):
            expected_random_overlap(10, 11, 1)

    def test_nested_budget_overlap_full_containment(self):
        small = np.array([True, False, False])
        large = np.array([True, True, False])
        assert nested_budget_overlap(small, large) == 1.0


class TestTrackedSetOverlapIntegration:
    def _mask(self, seed, k, tiny_mnist, epochs=2):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(seed)
        opt = DropBack(m, k=k, lr=0.4)
        Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
            DataLoader(train, 64, seed=0), test, epochs=epochs
        )
        return opt.tracked_mask

    def test_cross_seed_overlap_near_random(self, tiny_mnist):
        """Different inits pick mostly different weights: the budget, not
        the identity, carries the capacity (scaffolding story)."""
        a = self._mask(1, 5_000, tiny_mnist)
        b = self._mask(2, 5_000, tiny_mnist)
        chance = expected_random_overlap(a.size, 5_000, 5_000)
        measured = overlap_coefficient(a, b)
        assert measured < 6 * chance  # far below identity, same order as chance

    def test_nested_budgets_strongly_overlap(self, tiny_mnist):
        """Same run, two budgets: the 2k set is largely inside the 10k set."""
        small = self._mask(3, 2_000, tiny_mnist)
        large = self._mask(3, 10_000, tiny_mnist)
        containment = nested_budget_overlap(small, large)
        chance = expected_random_overlap(small.size, 2_000, 10_000)
        assert containment > 0.5
        assert containment > 3 * chance


class TestDeviceFitReport:
    def test_activation_bytes_positive(self):
        am = AcceleratorModel()
        m = lenet5()
        act = am.activation_bytes(m, (1, 28, 28))
        assert act > 0
        assert am.activation_bytes(m, (1, 28, 28), batch_size=4) == 4 * act

    def test_dropback_fits_where_dense_does_not(self):
        am = AcceleratorModel()
        m = mnist_100_100()  # 89,610 * 4B = 350 KB dense weights
        # A 60x budget shrinks the weight side to ~12 KB.
        rep = am.device_fit_report(m, (1, 28, 28), k=1_500)
        assert rep["dropback_bytes"] < rep["dense_bytes"]
        assert rep["dropback_fits"]

    def test_report_keys(self):
        am = AcceleratorModel()
        rep = am.device_fit_report(mnist_100_100(), (1, 28, 28), k=1_000)
        for key in ("on_chip_budget_bytes", "activation_bytes", "dense_fits", "dropback_fits"):
            assert key in rep
