"""Tests for dense and sparse checkpoint serialization."""

import os

import numpy as np
import pytest

from repro.core import DropBack
from repro.data import DataLoader
from repro.io import (
    compression_report,
    dense_size_bytes,
    load_dense,
    load_sparse,
    save_dense,
    save_sparse,
    sparse_size_bytes,
)
from repro.models import mnist_100_100, wrn_10_1
from repro.optim import ConstantLR
from repro.tensor import Tensor, cross_entropy
from repro.train import Trainer, evaluate


def _trained(tiny_mnist, k=4000, epochs=1, seed=3):
    train, test = tiny_mnist
    m = mnist_100_100().finalize(seed)
    opt = DropBack(m, k=k, lr=0.4)
    tr = Trainer(m, opt, schedule=ConstantLR(0.4))
    tr.fit(DataLoader(train, 64, seed=0), test, epochs=epochs)
    return m, opt, test


class TestDense:
    def test_roundtrip(self, tmp_path, tiny_mnist):
        m, _, test = _trained(tiny_mnist)
        path = str(tmp_path / "dense.npz")
        save_dense(m, path)
        m2 = mnist_100_100().finalize(99)
        load_dense(m2, path)
        for pa, pb in zip(m.parameters(), m2.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_buffers_roundtrip(self, tmp_path):
        m = wrn_10_1().finalize(1)
        # run one forward in train mode to move running stats
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3, 16, 16)).astype(np.float32))
        m(x)
        path = str(tmp_path / "dense.npz")
        save_dense(m, path)
        m2 = wrn_10_1().finalize(2)
        load_dense(m2, path)
        for (_, _, b1), (_, _, b2) in zip(m._named_buffers(), m2._named_buffers()):
            np.testing.assert_array_equal(b1, b2)


class TestSparse:
    def test_roundtrip_bit_exact(self, tmp_path, tiny_mnist):
        m, opt, test = _trained(tiny_mnist)
        path = str(tmp_path / "sparse.npz")
        save_sparse(m, opt, path)
        m2 = load_sparse(mnist_100_100(), path)
        for pa, pb in zip(m.parameters(), m2.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_accuracy_preserved(self, tmp_path, tiny_mnist):
        m, opt, test = _trained(tiny_mnist)
        path = str(tmp_path / "sparse.npz")
        save_sparse(m, opt, path)
        m2 = load_sparse(mnist_100_100(), path)
        assert evaluate(m2, test) == pytest.approx(evaluate(m, test))

    def test_requires_trained_optimizer(self, tmp_path):
        m = mnist_100_100().finalize(1)
        opt = DropBack(m, k=100, lr=0.4)
        with pytest.raises(RuntimeError):
            save_sparse(m, opt, str(tmp_path / "x.npz"))

    def test_file_smaller_than_dense(self, tmp_path, tiny_mnist):
        m, opt, _ = _trained(tiny_mnist, k=2000)
        sp = str(tmp_path / "sparse.npz")
        dn = str(tmp_path / "dense.npz")
        save_sparse(m, opt, sp)
        save_dense(m, dn)
        assert os.path.getsize(sp) < os.path.getsize(dn) / 10

    def test_zero_untracked_flag_roundtrip(self, tmp_path, tiny_mnist):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(3)
        opt = DropBack(m, k=4000, lr=0.4, zero_untracked=True)
        tr = Trainer(m, opt, schedule=ConstantLR(0.4))
        tr.fit(DataLoader(train, 64, seed=0), test, epochs=1)
        path = str(tmp_path / "z.npz")
        save_sparse(m, opt, path)
        m2 = load_sparse(mnist_100_100(), path)
        for pa, pb in zip(m.parameters(), m2.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_sparse_with_batchnorm_buffers(self, tmp_path, tiny_cifar):
        train, test = tiny_cifar
        m = wrn_10_1().finalize(2)
        opt = DropBack(m, k=20_000, lr=0.1)
        tr = Trainer(m, opt, schedule=ConstantLR(0.1))
        tr.fit(DataLoader(train, 32, seed=0), test, epochs=1)
        path = str(tmp_path / "wrn.npz")
        save_sparse(m, opt, path)
        m2 = load_sparse(wrn_10_1(), path)
        assert evaluate(m2, test) == pytest.approx(evaluate(m, test))

    def test_nonprunable_rejected(self, tmp_path):
        m = mnist_100_100()
        m.parameters()[0].prunable = False
        m.finalize(1)
        opt = DropBack(m, k=100, lr=0.4, include_nonprunable=False)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 784)).astype(np.float32))
        y = rng.integers(0, 10, size=4)
        loss = cross_entropy(m(x), y)
        loss.backward()
        opt.step()
        with pytest.raises(ValueError):
            save_sparse(m, opt, str(tmp_path / "x.npz"))


class TestSizeAccounting:
    def test_dense_bytes(self):
        m = mnist_100_100()
        assert dense_size_bytes(m) == 89_610 * 4

    def test_sparse_bytes_scale_with_k(self, tiny_mnist):
        m = mnist_100_100().finalize(1)
        small = DropBack(m, k=1000, lr=0.4)
        big = DropBack(m, k=10_000, lr=0.4)
        assert sparse_size_bytes(small) < sparse_size_bytes(big)

    def test_compression_report(self, tiny_mnist):
        m, opt, _ = _trained(tiny_mnist, k=4481)  # ~20x
        rep = compression_report(m, opt)
        assert rep["weight_compression"] == pytest.approx(89_610 / 4481)
        assert rep["byte_ratio"] > 1.0
