"""Engine-level tests: suppressions, baseline workflow, CLI exit codes."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analyze import (
    Baseline,
    LintEngine,
    diff_baseline,
    explain_drift,
    findings_to_dict,
    format_github,
    load_baseline,
    write_baseline,
)
from repro.analyze.engine import SourceFile, Violation
from repro.cli import main as cli_main


def make_source(text: str, relpath: str = "src/repro/x.py") -> SourceFile:
    return SourceFile(Path(relpath), relpath, textwrap.dedent(text))


def make_violation(
    code="RPA001", path="src/repro/x.py", line=1, scope="f", snippet="p.data = 1"
) -> Violation:
    return Violation(
        code=code, path=path, line=line, col=0, message="m", scope=scope,
        snippet=snippet,
    )


class TestNoqaParsing:
    def test_inline_coded_noqa(self):
        src = make_source("x = 1  # repro: noqa[RPA002] output buffer\n")
        assert src.is_suppressed("RPA002", 1)
        assert not src.is_suppressed("RPA001", 1)

    def test_bare_noqa_suppresses_all_codes(self):
        src = make_source("x = 1  # repro: noqa\n")
        assert src.is_suppressed("RPA001", 1)
        assert src.is_suppressed("RPA005", 1)

    def test_multiple_codes_comma_separated(self):
        src = make_source("x = 1  # repro: noqa[RPA001, RPA004]\n")
        assert src.is_suppressed("RPA001", 1)
        assert src.is_suppressed("RPA004", 1)
        assert not src.is_suppressed("RPA002", 1)

    def test_comment_line_noqa_forwards_to_next_code_line(self):
        src = make_source(
            """
            # Long justification that would not fit inline.
            # repro: noqa[RPA002] reused as the op output
            x = np.empty(4)
            """
        )
        # dedented text: line 1 blank, 2-3 comments, 4 the assignment
        assert src.is_suppressed("RPA002", 4)
        assert not src.is_suppressed("RPA002", 3)

    def test_unsuppressed_lines_report(self):
        src = make_source("x = 1\n")
        assert not src.is_suppressed("RPA001", 1)

    def test_case_insensitive_marker(self):
        src = make_source("x = 1  # REPRO: NOQA[rpa002]\n")
        # codes are upper-cased during parsing
        assert src.is_suppressed("RPA002", 1)

    def test_noqa_covers_continuation_lines_of_statement(self):
        src = make_source(
            """
            xg = np.empty(  # repro: noqa[RPA002] output buffer
                (n, c, h, w),
                dtype=np.float32,
            )
            """
        )
        # statement spans lines 2-5; a rule reporting on any of them is
        # suppressed even though the marker sits on line 2
        for line in (2, 3, 4, 5):
            assert src.is_suppressed("RPA002", line), line
        assert not src.is_suppressed("RPA001", 3)

    def test_noqa_on_closing_line_covers_opening_line(self):
        src = make_source(
            """
            xg = np.empty(
                (4, 4),
            )  # repro: noqa[RPA002]
            """
        )
        assert src.is_suppressed("RPA002", 2)
        assert src.is_suppressed("RPA002", 3)

    def test_compound_statement_noqa_stops_at_body(self):
        src = make_source(
            """
            with registry.lock(  # repro: noqa[RPA006]
            ) as h:
                x = np.empty(4)
            """
        )
        assert src.is_suppressed("RPA006", 2)
        assert src.is_suppressed("RPA006", 3)  # still the `with` header
        assert not src.is_suppressed("RPA006", 4)  # body is not covered


class TestEngine:
    def test_unknown_rule_code_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            LintEngine(select=["RPA999"])

    def test_select_limits_rules(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("p.data = np.zeros(3)\nq = np.array([0.5])\n")
        only_rebind = LintEngine(select=["RPA001"], root=tmp_path).lint_paths([f])
        assert [v.code for v in only_rebind] == ["RPA001"]
        both = LintEngine(select=["RPA001", "RPA004"], root=tmp_path).lint_paths([f])
        assert sorted(v.code for v in both) == ["RPA001", "RPA004"]

    def test_directory_walk_and_relative_paths(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("p.data = 1\n")
        (pkg / "b.py").write_text("ok = 1\n")
        (pkg / "notes.txt").write_text("p.data = 1\n")
        engine = LintEngine(select=["RPA001"], root=tmp_path)
        violations = engine.lint_paths([pkg])
        assert [v.path for v in violations] == ["pkg/a.py"]

    def test_syntax_error_collected_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        engine = LintEngine(root=tmp_path)
        assert engine.lint_paths([bad]) == []
        assert engine.errors and "syntax error" in engine.errors[0]


class TestBaselineWorkflow:
    def test_write_then_load_roundtrip(self, tmp_path):
        vs = [make_violation(), make_violation(), make_violation(scope="g")]
        path = write_baseline(vs, tmp_path / "b.json")
        baseline = load_baseline(path)
        assert baseline.total == 3
        assert baseline.entries["RPA001:f:p.data = 1"] == 2
        assert baseline.entries["RPA001:g:p.data = 1"] == 1

    def test_schema_version_checked(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema_version": 99, "entries": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_diff_accepts_baselined_occurrences(self):
        vs = [make_violation(), make_violation()]
        baseline = Baseline(entries={"RPA001:f:p.data = 1": 2})
        new, fixed = diff_baseline(vs, baseline)
        assert new == [] and not fixed

    def test_diff_flags_excess_occurrences(self):
        vs = [make_violation(line=i) for i in (1, 2, 3)]
        baseline = Baseline(entries={"RPA001:f:p.data = 1": 2})
        new, _ = diff_baseline(vs, baseline)
        assert len(new) == 1  # one beyond budget

    def test_diff_reports_fixed_entries(self):
        baseline = Baseline(
            entries={"RPA001:f:p.data = 1": 2, "RPA004:g:q = 0.5": 1}
        )
        new, fixed = diff_baseline([make_violation()], baseline)
        assert new == []
        assert fixed == {"RPA001:f:p.data = 1": 1, "RPA004:g:q = 0.5": 1}

    def test_fingerprint_is_line_free(self):
        a = make_violation(line=10)
        b = make_violation(line=99)
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_is_path_free(self):
        """Renaming a file does not churn the baseline (move resilience)."""
        a = make_violation(path="src/repro/x.py")
        b = make_violation(path="src/repro/renamed.py")
        assert a.fingerprint == b.fingerprint

    def test_file_rename_keeps_baseline_clean(self, tmp_path):
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "old.py").write_text("def f():\n    p.data = np.zeros(3)\n")
        engine = LintEngine(select=["RPA001"], root=tmp_path)
        baseline_path = write_baseline(engine.lint_paths([pkg]), tmp_path / "b.json")
        (pkg / "old.py").rename(pkg / "new.py")
        after = LintEngine(select=["RPA001"], root=tmp_path).lint_paths([pkg])
        new, fixed = diff_baseline(after, load_baseline(baseline_path))
        assert new == [] and not fixed


class TestExplainDrift:
    def test_edited_line_pairs_by_scope(self):
        baseline = Baseline(entries={"RPA001:f:p.data = 1": 1})
        moved = make_violation(snippet="p.data = 2")
        report = explain_drift([moved], baseline)
        assert len(report) == 1
        assert report[0]["vanished"] == "RPA001:f:p.data = 1"
        assert "edited line" in report[0]["reason"]
        assert report[0]["paired_with"]["snippet"] == "p.data = 2"

    def test_scope_move_pairs_by_snippet(self):
        baseline = Baseline(entries={"RPA001:f:p.data = 1": 1})
        moved = make_violation(scope="Klass.f")
        report = explain_drift([moved], baseline)
        assert "scope moved" in report[0]["reason"]

    def test_fixed_entry_with_no_match(self):
        baseline = Baseline(entries={"RPA001:f:p.data = 1": 1})
        report = explain_drift([], baseline)
        assert report[0]["reason"].startswith("fixed")
        assert "paired_with" not in report[0]

    def test_genuinely_new_finding_reported(self):
        report = explain_drift([make_violation()], Baseline())
        assert report == [
            {
                "vanished": None,
                "reason": "genuinely new",
                "paired_with": make_violation().to_dict(),
            }
        ]


class TestGithubFormat:
    def test_annotation_shape(self):
        v = make_violation(line=7)
        out = format_github(v)
        assert out == "::error file=src/repro/x.py,line=7,col=1,title=RPA001::m"

    def test_message_escaping(self):
        v = make_violation()
        v = Violation(
            code=v.code, path=v.path, line=v.line, col=v.col,
            message="bad\nthing: 100%", scope=v.scope, snippet=v.snippet,
        )
        out = format_github(v)
        assert "\n" not in out
        assert "%0A" in out and "%25" in out


class TestFindingsDocument:
    def test_structure(self):
        vs = [make_violation()]
        doc = findings_to_dict(vs, vs, None, ["src"], errors=["e"])
        assert doc["tool"] == "repro.analyze"
        assert doc["summary"] == {
            "total": 1,
            "new": 1,
            "baselined": 0,
            "baseline_path": None,
            "errors": 1,
        }
        assert doc["violations"][0]["fingerprint"] == "RPA001:f:p.data = 1"
        assert set(doc["rules"]) == {
            "RPA001", "RPA002", "RPA003", "RPA004", "RPA005", "RPA006",
            "RPA007", "RPA008", "RPA009", "RPA010", "RPA011", "RPA012",
            "RPA013",
        }


class TestAnalyzeCLI:
    def _tree(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "m.py").write_text("p.data = np.zeros(3)\n")
        return pkg

    def test_new_violations_exit_1(self, tmp_path, monkeypatch, capsys):
        self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["analyze", "src"]) == 1
        out = capsys.readouterr().out
        assert "RPA001" in out and "1 new" in out

    def test_update_baseline_then_clean(self, tmp_path, monkeypatch, capsys):
        self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["analyze", "src", "--update-baseline"]) == 0
        assert (tmp_path / "analyze_baseline.json").is_file()
        assert cli_main(["analyze", "src"]) == 0
        assert "OK: no new violations" in capsys.readouterr().out

    def test_new_code_beyond_baseline_fails_again(self, tmp_path, monkeypatch):
        pkg = self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["analyze", "src", "--update-baseline"]) == 0
        (pkg / "fresh.py").write_text("q.data = 1\n")
        assert cli_main(["analyze", "src"]) == 1

    def test_json_artifact_written(self, tmp_path, monkeypatch):
        self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        cli_main(["analyze", "src", "--json", "findings.json"])
        doc = json.loads((tmp_path / "findings.json").read_text())
        assert doc["summary"]["total"] == 1
        assert doc["new"][0]["code"] == "RPA001"

    def test_select_filters_rules(self, tmp_path, monkeypatch):
        self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["analyze", "src", "--select", "RPA003"]) == 0

    def test_list_rules(self, capsys):
        assert cli_main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPA001", "RPA005", "RPA010", "RPA011", "RPA012", "RPA013"):
            assert code in out

    def test_github_format_emits_annotations(self, tmp_path, monkeypatch, capsys):
        self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["analyze", "src", "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=src/m.py,line=1," in out
        assert "title=RPA001" in out

    def test_no_baseline_ignores_baseline_file(self, tmp_path, monkeypatch):
        self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["analyze", "src", "--update-baseline"]) == 0
        assert cli_main(["analyze", "src"]) == 0
        assert cli_main(["analyze", "src", "--no-baseline"]) == 1

    def test_concurrency_flag_runs_clean_on_plain_tree(self, tmp_path, monkeypatch):
        self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["analyze", "src", "--concurrency", "--no-baseline"]) == 0

    def test_concurrency_conflicts_with_select(self, tmp_path, monkeypatch):
        self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert cli_main(
            ["analyze", "src", "--concurrency", "--select", "RPA001"]
        ) == 2

    def test_explain_drift_prints_pairs(self, tmp_path, monkeypatch, capsys):
        pkg = self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert cli_main(["analyze", "src", "--update-baseline"]) == 0
        (pkg / "m.py").write_text("p.data = np.zeros(4)\n")  # edited line
        assert cli_main(["analyze", "src", "--explain-drift"]) == 1
        out = capsys.readouterr().out
        assert "baseline drift:" in out
        assert "edited line" in out

    def test_graph_dump_written(self, tmp_path, monkeypatch):
        self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        cli_main(["analyze", "src", "--graph", "graph.json"])
        doc = json.loads((tmp_path / "graph.json").read_text())
        assert "functions" in doc

    def test_index_cache_roundtrip(self, tmp_path, monkeypatch):
        self._tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        args = ["analyze", "src", "--no-baseline", "--index-cache", "idx.json"]
        assert cli_main(args) == 1
        cache = json.loads((tmp_path / "idx.json").read_text())
        assert cache["files"]
        # second run reuses the cache and reports identically
        assert cli_main(args) == 1


class TestRepoIsClean:
    """The acceptance criterion: `repro analyze src/` vs the committed
    baseline finds nothing new in this repo."""

    def test_src_has_no_new_violations(self):
        repo = Path(__file__).resolve().parent.parent
        engine = LintEngine(root=repo)
        violations = engine.lint_paths([repo / "src"])
        assert not engine.errors
        baseline = load_baseline(repo / "analyze_baseline.json")
        new, _ = diff_baseline(violations, baseline)
        assert new == [], "\n".join(v.format() for v in new)
