"""Tests for report formatting utilities."""

from repro.utils import ascii_series, format_percent, format_ratio, format_table


class TestFormatters:
    def test_percent(self):
        assert format_percent(0.0142) == "1.42%"
        assert format_percent(1.0, digits=0) == "100%"

    def test_ratio(self):
        assert format_ratio(13.33) == "13.3x"
        assert format_ratio(5.0, digits=0) == "5x"

    def test_ratio_inf(self):
        assert format_ratio(float("inf")) == "inf"


class TestTable:
    def test_basic_layout(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "bb" in lines[3]

    def test_column_alignment(self):
        out = format_table(["x"], [["looooong"], ["s"]])
        lines = out.splitlines()
        assert len(lines[1]) == len("looooong")


class TestAsciiSeries:
    def test_empty(self):
        assert "empty" in ascii_series([])

    def test_contains_extremes(self):
        out = ascii_series([0.0, 1.0, 0.5], width=10, height=5)
        assert "1" in out and "0" in out

    def test_label_included(self):
        assert ascii_series([1, 2], label="acc").startswith("acc")

    def test_constant_series_no_crash(self):
        out = ascii_series([3.0, 3.0, 3.0])
        assert "*" in out
