"""Tests for the analysis subsystems (diffusion, PCA, gradients, retention)."""

import numpy as np
import pytest

from repro.analysis import (
    PCA,
    DiffusionTracker,
    LayerRetention,
    TopKChurnTracker,
    accumulated_gradients,
    gradient_density,
    l2_distance,
    layer_retention_table,
    log_diffusion_fit,
    project_trajectories,
    trajectory_divergence,
)
from repro.core import DropBack
from repro.data import DataLoader, Dataset
from repro.models import mlp, mnist_100_100
from repro.optim import SGD, ConstantLR
from repro.train import Trainer


def _blobs(n=128, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4)).astype(np.float32)
    y = (x[:, 0] > 0).astype(np.int64)
    return Dataset(x, y)


class TestL2Distance:
    def test_zero_for_identical(self):
        w = np.ones(5)
        assert l2_distance(w, w) == 0.0

    def test_known_value(self):
        assert l2_distance(np.array([3.0, 4.0]), np.zeros(2)) == pytest.approx(5.0)


class TestDiffusionTracker:
    def _run(self, tracker, epochs=2):
        ds = _blobs()
        m = mlp(4, (8,), 2).finalize(1)
        tr = Trainer(m, SGD(m, lr=0.3), schedule=ConstantLR(0.3), callbacks=[tracker])
        tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=epochs)
        return tracker

    def test_starts_at_zero(self):
        t = self._run(DiffusionTracker())
        steps, dist = t.series()
        assert steps[0] == 0 and dist[0] == 0.0

    def test_distance_grows(self):
        t = self._run(DiffusionTracker())
        _, dist = t.series()
        assert dist[-1] > 0.0
        assert dist[-1] >= dist[1] * 0.5  # roughly monotone envelope

    def test_log_spacing_grows_gaps(self):
        t = self._run(DiffusionTracker(log_spaced=True), epochs=5)
        steps, _ = t.series()
        gaps = np.diff(steps)
        assert gaps[-1] >= gaps[0]

    def test_linear_spacing(self):
        t = self._run(DiffusionTracker(log_spaced=False, every=2))
        steps, _ = t.series()
        assert all(s % 2 == 0 for s in steps)


class TestLogDiffusionFit:
    def test_recovers_log_relationship(self):
        t = np.arange(1, 200)
        d = 2.5 * np.log(t) + 1.0
        a, b = log_diffusion_fit(t, d)
        assert a == pytest.approx(2.5, rel=1e-6)
        assert b == pytest.approx(1.0, abs=1e-6)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            log_diffusion_fit(np.array([0]), np.array([0.0]))


class TestAccumulatedGradients:
    def test_zero_right_after_finalize(self):
        m = mnist_100_100().finalize(3)
        np.testing.assert_allclose(accumulated_gradients(m), 0.0)

    def test_equals_weight_displacement(self):
        m = mlp(4, (8,), 2).finalize(1)
        w0 = np.concatenate([p.data.reshape(-1) for p in m.parameters()])
        ds = _blobs()
        tr = Trainer(m, SGD(m, lr=0.3))
        tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=1)
        w1 = np.concatenate([p.data.reshape(-1) for p in m.parameters()])
        np.testing.assert_allclose(accumulated_gradients(m), w1 - w0, atol=1e-6)

    def test_explicit_w0(self):
        m = mlp(4, (8,), 2).finalize(1)
        w0 = np.zeros(m.num_parameters())
        acc = accumulated_gradients(m, w0)
        w = np.concatenate([p.data.reshape(-1) for p in m.parameters()])
        np.testing.assert_allclose(acc, w)

    def test_shape_mismatch_raises(self):
        m = mlp(4, (8,), 2).finalize(1)
        with pytest.raises(ValueError):
            accumulated_gradients(m, np.zeros(3))

    def test_distribution_peaked_at_zero_after_training(self, tiny_mnist):
        """Paper Fig. 1: most accumulated gradients stay near zero."""
        train, test = tiny_mnist
        m = mnist_100_100().finalize(9)
        tr = Trainer(m, SGD(m, lr=0.4), schedule=ConstantLR(0.4))
        tr.fit(DataLoader(train, 64, seed=1), test, epochs=4)
        acc = accumulated_gradients(m)
        frac_tiny = np.mean(np.abs(acc) < 0.01)
        assert frac_tiny > 0.5  # bulk of weights barely move


class TestGradientDensity:
    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(0)
        grid, dens = gradient_density(rng.normal(size=5000))
        area = np.trapezoid(dens, grid)
        assert area == pytest.approx(1.0, abs=0.02)

    def test_peak_at_mode(self):
        rng = np.random.default_rng(1)
        vals = rng.normal(loc=2.0, scale=0.1, size=3000)
        grid, dens = gradient_density(vals)
        assert abs(grid[np.argmax(dens)] - 2.0) < 0.05

    def test_large_input_subsampled(self):
        rng = np.random.default_rng(2)
        grid, dens = gradient_density(rng.normal(size=100_000))
        assert np.all(np.isfinite(dens))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            gradient_density(np.array([]))

    def test_custom_grid(self):
        grid = np.linspace(-1, 1, 50)
        g, _ = gradient_density(np.zeros(100) + 0.1, grid=grid)
        np.testing.assert_array_equal(g, grid)


class TestTopKChurnTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            TopKChurnTracker(0)

    def test_first_entry_is_k(self):
        ds = _blobs()
        m = mlp(4, (8,), 2).finalize(1)
        cb = TopKChurnTracker(k=10)
        tr = Trainer(m, SGD(m, lr=0.3), callbacks=[cb])
        tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=1)
        assert cb.series()[0] == 10

    def test_churn_declines_under_sgd(self, tiny_mnist):
        """Fig. 2 for baseline SGD: top-k membership stabilizes."""
        train, test = tiny_mnist
        m = mnist_100_100().finalize(5)
        cb = TopKChurnTracker(k=2000)
        tr = Trainer(m, SGD(m, lr=0.4), schedule=ConstantLR(0.4), callbacks=[cb])
        tr.fit(DataLoader(train, 50, seed=0), test, epochs=3)
        swaps = cb.series()
        assert np.mean(swaps[-6:]) < np.mean(swaps[1:4])


class TestPCA:
    def test_reconstructs_low_rank_structure(self):
        rng = np.random.default_rng(0)
        basis = rng.normal(size=(2, 50))
        coords = rng.normal(size=(100, 2))
        X = coords @ basis
        pca = PCA(2).fit(X)
        Z = pca.transform(X)
        # Projection preserves pairwise distances of a rank-2 dataset.
        d_orig = np.linalg.norm(X[0] - X[1])
        d_proj = np.linalg.norm(Z[0] - Z[1])
        assert d_proj == pytest.approx(d_orig, rel=1e-6)

    def test_components_orthonormal(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 10))
        pca = PCA(3).fit(X)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-8)

    def test_gram_trick_matches_covariance_path(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(20, 8))
        # n > d uses covariance path; transposed-ish shape uses Gram path.
        pca_cov = PCA(2).fit(X)  # 20 > 8 -> covariance
        Xc = X[:6]  # 6 < 8 -> gram
        pca_gram = PCA(2).fit(Xc)
        # both must satisfy the PCA variance-maximization property on their data
        for pca, data in ((pca_cov, X), (pca_gram, Xc)):
            Z = pca.transform(data)
            assert Z.var(axis=0)[0] >= Z.var(axis=0)[1] - 1e-12

    def test_explained_variance_sorted(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 12)) * np.linspace(5, 0.1, 12)
        pca = PCA(4).fit(X)
        ev = pca.explained_variance_
        assert np.all(np.diff(ev) <= 1e-9)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.ones((3, 4)))

    def test_invalid_components(self):
        with pytest.raises(ValueError):
            PCA(0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            PCA(1).fit(np.ones(5))


class TestProjectTrajectories:
    def test_joint_projection_shapes(self):
        rng = np.random.default_rng(0)
        trajs = {
            "a": rng.normal(size=(10, 100)),
            "b": rng.normal(size=(15, 100)),
        }
        out = project_trajectories(trajs, n_components=3)
        assert out["a"].shape == (10, 3)
        assert out["b"].shape == (15, 3)

    def test_mismatched_dims_raise(self):
        with pytest.raises(ValueError):
            project_trajectories({"a": np.ones((3, 5)), "b": np.ones((3, 6))})

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            project_trajectories({})

    def test_identical_trajectories_have_zero_divergence(self):
        rng = np.random.default_rng(1)
        t = rng.normal(size=(8, 3))
        assert trajectory_divergence(t, t) == pytest.approx(0.0)

    def test_divergence_orders_similarity(self):
        base = np.cumsum(np.ones((10, 3)) * 0.1, axis=0)
        near = base + 0.01
        far = base + 5.0
        assert trajectory_divergence(base, near) < trajectory_divergence(base, far)

    def test_divergence_needs_points(self):
        with pytest.raises(ValueError):
            trajectory_divergence(np.ones((1, 2)), np.ones((1, 2)))


class TestLayerRetention:
    def test_table_matches_optimizer_counts(self, tiny_mnist):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(6)
        opt = DropBack(m, k=3000, lr=0.4)
        tr = Trainer(m, opt, schedule=ConstantLR(0.4))
        tr.fit(DataLoader(train, 64, seed=0), test, epochs=1)
        rows = layer_retention_table(m, opt)
        total_row = rows[-1]
        assert total_row.layer == "Total"
        assert total_row.retained == 3000
        assert total_row.baseline_params == 89_610
        assert total_row.compression == pytest.approx(89_610 / 3000)

    def test_compression_infinite_when_empty(self):
        r = LayerRetention("x", 100, 0)
        assert r.compression == float("inf")

    def test_later_layers_keep_proportionally_more_at_tiny_k(self, tiny_mnist):
        """Paper Table 2: fc1 compressed ~107x while fc3 only ~4x at k=1.5k."""
        train, test = tiny_mnist
        m = mnist_100_100().finalize(6)
        opt = DropBack(m, k=1500, lr=0.4)
        tr = Trainer(m, opt, schedule=ConstantLR(0.4))
        tr.fit(DataLoader(train, 64, seed=0), test, epochs=2)
        rows = {r.layer: r for r in layer_retention_table(m, opt)}
        fc1 = rows["layers.1"]
        fc3 = rows["layers.5"]
        assert fc1.compression > fc3.compression
