"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import HeapSelector, SortSelector, top_k_mask
from repro.init import ConstantInit, ScaledNormalInit
from repro.init.xorshift import normal_at, uniform_at, xorshift_at
from repro.tensor import Tensor, log_softmax, unbroadcast


finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64)


class TestTopKProperties:
    @given(
        scores=arrays(np.float64, st.integers(1, 200), elements=finite_floats),
        k=st.integers(0, 250),
    )
    @settings(max_examples=60, deadline=None)
    def test_mask_cardinality(self, scores, k):
        mask = top_k_mask(scores, k)
        assert mask.sum() == min(k, scores.size)

    @given(
        scores=arrays(np.float64, st.integers(2, 100), elements=finite_floats),
        k=st.integers(1, 99),
    )
    @settings(max_examples=60, deadline=None)
    def test_selected_dominate_unselected(self, scores, k):
        k = min(k, scores.size)
        mask = top_k_mask(scores, k)
        if mask.all():
            return
        assert scores[mask].min() >= scores[~mask].max()

    @given(seed=st.integers(0, 2**31), n=st.integers(1, 150), k=st.integers(1, 150))
    @settings(max_examples=40, deadline=None)
    def test_heap_equals_sort_for_distinct_scores(self, seed, n, k):
        rng = np.random.default_rng(seed)
        scores = rng.permutation(np.arange(n, dtype=np.float64))
        np.testing.assert_array_equal(
            HeapSelector().select(scores, k), SortSelector().select(scores, k)
        )


class TestXorshiftProperties:
    @given(seed=st.integers(0, 2**62), idx=st.integers(0, 2**40))
    @settings(max_examples=80, deadline=None)
    def test_stateless_purity(self, seed, idx):
        a = xorshift_at(seed, np.array([idx]))
        b = xorshift_at(seed, np.array([idx]))
        assert a[0] == b[0]

    @given(seed=st.integers(0, 2**32), start=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_block_decomposition(self, seed, start):
        """Regenerating [start, start+20) equals regenerating the two halves."""
        whole = normal_at(seed, np.arange(start, start + 20))
        left = normal_at(seed, np.arange(start, start + 10))
        right = normal_at(seed, np.arange(start + 10, start + 20))
        np.testing.assert_array_equal(whole, np.concatenate([left, right]))

    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=20, deadline=None)
    def test_uniform_bounds(self, seed):
        u = uniform_at(seed, np.arange(500))
        assert u.min() >= 0.0 and u.max() < 1.0


class TestInitializerProperties:
    @given(
        seed=st.integers(0, 2**32),
        base=st.integers(0, 10**6),
        std=st.floats(min_value=1e-3, max_value=10, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_regenerate_is_idempotent(self, seed, base, std):
        init = ScaledNormalInit(std)
        a = init.regenerate(seed, base, (7, 3))
        b = init.regenerate(seed, base, (7, 3))
        np.testing.assert_array_equal(a, b)

    @given(value=st.floats(min_value=-100, max_value=100, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_constant_everywhere(self, value):
        out = ConstantInit(value).regenerate(0, 0, (11,))
        assert np.all(out == np.float32(value))


class TestUnbroadcastProperties:
    @given(
        rows=st.integers(1, 5),
        cols=st.integers(1, 5),
        batch=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_gradient_sum_preserved(self, rows, cols, batch):
        """Unbroadcasting preserves the total gradient mass."""
        g = np.ones((batch, rows, cols))
        out = unbroadcast(g, (rows, cols))
        assert out.sum() == g.sum()

    @given(shape=st.sampled_from([(3,), (2, 3), (1, 3), (2, 1), (1, 1), ()]))
    @settings(max_examples=20, deadline=None)
    def test_output_shape_contract(self, shape):
        g = np.ones((4, 2, 3)) if shape != () else np.ones((2, 2))
        try:
            out = unbroadcast(g, shape)
        except Exception:
            # only shapes broadcastable to g are valid inputs
            np.broadcast_shapes(shape, g.shape)
            raise
        assert out.shape == shape


class TestAutogradProperties:
    @given(
        data=arrays(
            np.float64,
            st.tuples(st.integers(1, 4), st.integers(2, 5)),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_rows_normalize(self, data):
        out = log_softmax(Tensor(data)).numpy()
        np.testing.assert_allclose(np.exp(out).sum(axis=-1), 1.0, rtol=1e-8)

    @given(
        data=arrays(
            np.float64,
            st.tuples(st.integers(1, 4), st.integers(1, 5)),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_relu_grad_is_indicator(self, data):
        t = Tensor(data, requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_array_equal(t.grad, (data > 0).astype(np.float64))

    @given(
        a=arrays(np.float64, (3, 4), elements=finite_floats),
        b=arrays(np.float64, (3, 4), elements=finite_floats),
    )
    @settings(max_examples=40, deadline=None)
    def test_addition_gradient_distributes(self, a, b):
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta + tb).sum().backward()
        np.testing.assert_array_equal(ta.grad, np.ones_like(a))
        np.testing.assert_array_equal(tb.grad, np.ones_like(b))


class TestDropBackProperties:
    @given(k=st.integers(1, 120), seed=st.integers(0, 1000), lr=st.floats(0.01, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_budget_never_exceeded(self, k, seed, lr):
        from repro.core import DropBack
        from repro.models import mlp
        from repro.tensor import cross_entropy

        m = mlp(5, (6,), 3).finalize(seed)
        opt = DropBack(m, k=k, lr=lr)
        rng = np.random.default_rng(seed)
        for _ in range(3):
            x = Tensor(rng.normal(size=(8, 5)).astype(np.float32))
            y = rng.integers(0, 3, size=8)
            m.zero_grad()
            cross_entropy(m(x), y).backward()
            opt.step()
            diff = 0
            for p in m.parameters():
                diff += int(np.count_nonzero(p.data != p.initial_values(seed)))
            assert diff <= k
