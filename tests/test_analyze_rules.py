"""Unit tests for the RPA lint rules.

Every rule gets a minimal positive fixture (source that must be flagged)
and a negative fixture (source that must pass), run through the real
:class:`~repro.analyze.engine.SourceFile` parsing so suppression handling
and scope tracking are exercised too.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analyze import RULE_REGISTRY
from repro.analyze.engine import SourceFile, Violation
from repro.analyze.rules import (
    ALLOC_CALLS,
    HOT_MODULES,
    DataRebindRule,
    DirectMatmulRule,
    HotPathAllocationRule,
    ImplicitFloat64Rule,
    LockDisciplineRule,
    MissingProfiledRule,
    MultiprocessingBoundaryRule,
    SparseFormatBoundaryRule,
    UnseededRandomRule,
)


def lint(rule_cls, source: str, relpath: str = "src/repro/example.py") -> list[Violation]:
    """Run one rule over a source string at a pretend repo path."""
    text = textwrap.dedent(source)
    src = SourceFile(Path(relpath), relpath, text)
    return rule_cls(src).run()


class TestRegistry:
    def test_all_thirteen_rules_registered(self):
        import repro.analyze.concurrency  # noqa: F401 — registers RPA010-013

        assert set(RULE_REGISTRY) == {
            "RPA001", "RPA002", "RPA003", "RPA004", "RPA005", "RPA006",
            "RPA007", "RPA008", "RPA009",
            "RPA010", "RPA011", "RPA012", "RPA013",
        }

    def test_rules_carry_summary_and_rationale(self):
        for code, cls in RULE_REGISTRY.items():
            assert cls.code == code
            assert cls.summary and cls.rationale


class TestDataRebindRule:
    def test_flags_attribute_rebind(self):
        hits = lint(DataRebindRule, "p.data = np.zeros(3)\n")
        assert len(hits) == 1
        assert hits[0].code == "RPA001"
        assert "p.data" in hits[0].message

    def test_flags_tuple_target(self):
        hits = lint(DataRebindRule, "a.data, b.data = x, y\n")
        assert len(hits) == 2

    def test_scope_is_recorded(self):
        src = """
        class Pruner:
            def step(self):
                self.p.data = 0
        """
        (hit,) = lint(DataRebindRule, src)
        assert hit.scope == "Pruner.step"
        # v2 fingerprints are path-free: code:scope:normalized snippet.
        assert hit.fingerprint == "RPA001:Pruner.step:self.p.data = 0"

    def test_in_place_write_passes(self):
        assert lint(DataRebindRule, "p.data[...] = arr\np.data[mask] = 0.0\n") == []

    def test_augassign_is_exempt(self):
        # ndarray.__iadd__ mutates the plane view in place — never detaches.
        assert lint(DataRebindRule, "p.data += v\np.data -= lr * g\n") == []

    def test_allowed_paths_exempt(self):
        for allowed in ("src/repro/nn/module.py", "src/repro/tensor/tensor.py"):
            assert lint(DataRebindRule, "self._data = x\np.data = x\n", relpath=allowed) == []

    def test_unrelated_attribute_passes(self):
        assert lint(DataRebindRule, "p.grad = None\np.database = 1\n") == []


class TestHotPathAllocationRule:
    def test_flags_np_alloc_in_profiled_function(self):
        src = """
        @profiled("op.forward")
        def op(x):
            return np.zeros(x.shape)
        """
        (hit,) = lint(HotPathAllocationRule, src)
        assert hit.code == "RPA002"
        assert "np.zeros" in hit.message

    def test_flags_astype_and_bare_copy(self):
        src = """
        @profiled("op")
        def op(x):
            y = x.astype(np.float32)
            z = x.copy()
            return y, z
        """
        hits = lint(HotPathAllocationRule, src)
        assert len(hits) == 2

    def test_alloc_outside_profiled_function_passes(self):
        src = """
        def cold(x):
            return np.zeros(x.shape)
        """
        assert lint(HotPathAllocationRule, src) == []

    def test_nested_unprofiled_inherits_hot_context(self):
        src = """
        @profiled("op")
        def op(x):
            def inner():
                return np.empty(4)
            return inner()
        """
        assert len(lint(HotPathAllocationRule, src)) == 1

    def test_noqa_with_justification_suppresses(self):
        src = """
        @profiled("op")
        def op(x):
            out = np.empty(x.shape)  # repro: noqa[RPA002] forward output buffer
            return out
        """
        assert lint(HotPathAllocationRule, src) == []

    def test_all_alloc_calls_covered(self):
        for fn in ALLOC_CALLS:
            src = f"@profiled('op')\ndef op(x):\n    return np.{fn}(x)\n"
            assert len(lint(HotPathAllocationRule, src)) == 1, fn


class TestUnseededRandomRule:
    def test_flags_global_rng(self):
        (hit,) = lint(UnseededRandomRule, "x = np.random.rand(3)\n")
        assert hit.code == "RPA003"
        assert "global RNG" in hit.message

    def test_flags_unseeded_default_rng(self):
        hits = lint(
            UnseededRandomRule,
            "a = np.random.default_rng()\nb = np.random.default_rng(None)\n",
        )
        assert len(hits) == 2

    def test_seeded_default_rng_passes(self):
        src = "rng = np.random.default_rng(0)\nrng2 = np.random.default_rng(seed)\n"
        assert lint(UnseededRandomRule, src) == []

    def test_data_modules_exempt(self):
        src = "x = np.random.rand(3)\n"
        assert lint(UnseededRandomRule, src, relpath="src/repro/data/synth_mnist.py") == []

    def test_injected_generator_method_passes(self):
        # rng.normal(...) is a bound Generator method, not np.random.*
        assert lint(UnseededRandomRule, "x = rng.normal(0, 1, size=3)\n") == []


class TestImplicitFloat64Rule:
    def test_flags_dtypeless_float_literal_array(self):
        hits = lint(
            ImplicitFloat64Rule,
            "a = np.array([0.5, 0.5])\nb = np.asarray([1.0, 2.0])\n",
        )
        assert [h.code for h in hits] == ["RPA004", "RPA004"]

    def test_flags_astype_builtin_float(self):
        (hit,) = lint(ImplicitFloat64Rule, "y = x.astype(float)\n")
        assert "float64 in disguise" in hit.message

    def test_explicit_dtype_passes(self):
        src = """
        a = np.array([0.5], dtype=np.float32)
        b = np.array([0.5], dtype=np.float64)  # explicit is fine
        c = np.asarray(x, dtype=np.float32)
        d = x.astype(np.float32)
        """
        assert lint(ImplicitFloat64Rule, src) == []

    def test_integer_literals_pass(self):
        assert lint(ImplicitFloat64Rule, "a = np.array([1, 2, 3])\n") == []


class TestMissingProfiledRule:
    HOT = "src/repro/tensor/conv.py"

    def test_flags_bare_public_function_in_hot_module(self):
        (hit,) = lint(MissingProfiledRule, "def conv_thing(x):\n    return x\n", self.HOT)
        assert hit.code == "RPA005"
        assert "conv_thing" in hit.message

    def test_profiled_decorator_passes(self):
        src = """
        @profiled("conv2d.forward")
        def conv_thing(x):
            return x
        """
        assert lint(MissingProfiledRule, src, self.HOT) == []

    def test_profiled_region_passes(self):
        src = """
        def conv_thing(x):
            with profiled("conv2d.forward"):
                return x
        """
        assert lint(MissingProfiledRule, src, self.HOT) == []

    def test_private_and_methods_exempt(self):
        src = """
        def _helper(x):
            return x

        class Layer:
            def forward(self, x):
                return x
        """
        assert lint(MissingProfiledRule, src, self.HOT) == []

    def test_cold_modules_exempt(self):
        src = "def anything(x):\n    return x\n"
        assert lint(MissingProfiledRule, src, "src/repro/train/trainer.py") == []

    @pytest.mark.parametrize("relpath", HOT_MODULES)
    def test_applies_to_every_hot_module(self, relpath):
        src = "def new_op(x):\n    return x\n"
        assert len(lint(MissingProfiledRule, src, f"src/repro/{relpath}")) == 1


class TestLockDisciplineRule:
    SERVE = "src/repro/serve/example.py"

    def test_flags_bare_acquire_in_serve(self):
        hits = lint(LockDisciplineRule, "self._lock.acquire()\n", self.SERVE)
        assert len(hits) == 1
        assert hits[0].code == "RPA006"
        assert "with" in hits[0].message

    def test_flags_assigned_acquire(self):
        src = "ok = cond.acquire(timeout=1.0)\nprint(ok)\n"
        assert len(lint(LockDisciplineRule, src, self.SERVE)) == 1

    def test_with_statement_is_clean(self):
        src = """
        with self._lock:
            shared += 1
        """
        assert lint(LockDisciplineRule, src, self.SERVE) == []

    def test_try_finally_release_is_clean(self):
        src = """
        lock.acquire()
        try:
            shared += 1
        finally:
            lock.release()
        """
        assert lint(LockDisciplineRule, src, self.SERVE) == []

    def test_finally_releasing_other_lock_still_flagged(self):
        src = """
        lock.acquire()
        try:
            shared += 1
        finally:
            other_lock.release()
        """
        assert len(lint(LockDisciplineRule, src, self.SERVE)) == 1

    def test_acquire_without_adjacent_release_flagged(self):
        src = """
        def handler(self):
            self._cond.acquire()
            do_work()
            self._cond.release()
        """
        assert len(lint(LockDisciplineRule, src, self.SERVE)) == 1

    def test_nested_blocks_scanned(self):
        src = """
        def f(self):
            if ready:
                while True:
                    self._lock.acquire()
        """
        assert len(lint(LockDisciplineRule, src, self.SERVE)) == 1

    def test_domain_acquire_apis_not_confused_with_locks(self):
        # ModelRegistry.acquire checks out a model; not a lock.
        src = "handle = registry.acquire(digest)\n"
        assert lint(LockDisciplineRule, src, self.SERVE) == []

    def test_outside_serve_is_exempt(self):
        src = "self._lock.acquire()\n"
        assert lint(LockDisciplineRule, src, "src/repro/train/trainer.py") == []

    def test_noqa_suppression(self):
        src = "startup_lock.acquire()  # repro: noqa[RPA006] held for process lifetime\n"
        assert lint(LockDisciplineRule, src, self.SERVE) == []


class TestDirectMatmulRule:
    NN = "src/repro/nn/example.py"
    ANALYSIS = "src/repro/analysis/example.py"

    def test_flags_np_matmul_call_in_nn(self):
        (hit,) = lint(DirectMatmulRule, "y = np.matmul(a, b)\n", self.NN)
        assert hit.code == "RPA007"
        assert "kernel registry" in hit.message

    @pytest.mark.parametrize("fn", ["dot", "einsum", "tensordot", "inner", "vdot"])
    def test_flags_every_gemm_free_function(self, fn):
        assert len(lint(DirectMatmulRule, f"y = np.{fn}(a, b)\n", self.NN)) == 1

    def test_flags_matmult_on_ndarray_evidence(self):
        # `.data` operands are raw ndarrays: the product bypasses dispatch.
        assert len(lint(DirectMatmulRule, "y = x.data @ w\n", self.NN)) == 1
        assert len(lint(DirectMatmulRule, "y = np.ones(3) @ w\n", self.NN)) == 1

    def test_bare_tensor_matmult_not_flagged_in_nn(self):
        # Tensor.__matmul__ already dispatches; a bare `x @ y` in nn/ is fine.
        assert lint(DirectMatmulRule, "y = x @ w\n", self.NN) == []

    def test_every_matmult_flagged_in_analysis(self):
        # analysis/ never holds Tensors, so every `@` there is an ndarray
        # product (the PCA helpers are the baselined exceptions).
        assert len(lint(DirectMatmulRule, "y = x @ w\n", self.ANALYSIS)) == 1

    def test_core_dir_guarded(self):
        assert len(lint(DirectMatmulRule, "y = np.dot(a, b)\n", "src/repro/core/x.py")) == 1

    def test_kernels_package_exempt(self):
        # The kernels themselves are the only legitimate raw-GEMM call sites.
        src = "y = np.matmul(a, b)\n"
        assert lint(DirectMatmulRule, src, "src/repro/tensor/kernels/fast.py") == []

    def test_noqa_suppression(self):
        src = "y = np.matmul(a, b)  # repro: noqa[RPA007] offline helper\n"
        assert lint(DirectMatmulRule, src, self.NN) == []

    def test_non_numpy_dot_not_flagged(self):
        assert lint(DirectMatmulRule, "s = text.dot(thing)\n", self.NN) == []


class TestMultiprocessingBoundaryRule:
    TRAIN = "src/repro/train/example.py"
    PARALLEL = "src/repro/parallel/example.py"

    def test_flags_plain_import(self):
        (hit,) = lint(MultiprocessingBoundaryRule, "import multiprocessing\n", self.TRAIN)
        assert hit.code == "RPA008"
        assert "repro.parallel" in hit.message

    def test_flags_submodule_import(self):
        src = "import multiprocessing.shared_memory\n"
        assert len(lint(MultiprocessingBoundaryRule, src, self.TRAIN)) == 1

    def test_flags_from_import(self):
        src = "from multiprocessing import shared_memory, Barrier\n"
        (hit,) = lint(MultiprocessingBoundaryRule, src, self.TRAIN)
        assert "shared_memory" in hit.message

    def test_flags_os_fork_call(self):
        (hit,) = lint(MultiprocessingBoundaryRule, "pid = os.fork()\n", self.TRAIN)
        assert "os.fork" in hit.message

    def test_parallel_package_exempt(self):
        src = "from multiprocessing import shared_memory\npid = os.fork()\n"
        assert lint(MultiprocessingBoundaryRule, src, self.PARALLEL) == []

    def test_unrelated_imports_not_flagged(self):
        src = "import threading\nfrom queue import Queue\nos.getpid()\n"
        assert lint(MultiprocessingBoundaryRule, src, self.TRAIN) == []

    def test_noqa_suppression(self):
        src = "import multiprocessing  # repro: noqa[RPA008] doc example\n"
        assert lint(MultiprocessingBoundaryRule, src, self.TRAIN) == []


class TestSparseFormatBoundaryRule:
    SERVE = "src/repro/serve/example.py"
    CORE = "src/repro/core/example.py"
    SPARSE = "src/repro/tensor/kernels/sparse.py"
    SPARSE_SIBLING = "src/repro/tensor/kernels/sparse_block.py"

    def test_flags_scipy_sparse_import(self):
        (hit,) = lint(SparseFormatBoundaryRule, "import scipy.sparse\n", self.SERVE)
        assert hit.code == "RPA009"
        assert "tensor/kernels/sparse" in hit.message

    def test_flags_from_scipy_import_sparse(self):
        src = "from scipy import sparse\n"
        assert len(lint(SparseFormatBoundaryRule, src, self.CORE)) == 1

    def test_flags_from_scipy_sparse_import(self):
        src = "from scipy.sparse import csr_matrix\n"
        (hit,) = lint(SparseFormatBoundaryRule, src, self.SERVE)
        assert "csr_matrix" in hit.message

    def test_flags_constructor_call(self):
        (hit,) = lint(SparseFormatBoundaryRule, "m = sp.csr_matrix(w)\n", self.CORE)
        assert "pack_from_indices" in hit.message

    def test_flags_all_format_constructors(self):
        for ctor in ("csc_matrix", "coo_matrix", "bsr_matrix", "csr_array"):
            src = f"m = sp.{ctor}(w)\n"
            assert len(lint(SparseFormatBoundaryRule, src, self.SERVE)) == 1, ctor

    def test_sparse_module_exempt(self):
        src = "import scipy.sparse as _sp\nm = _sp.csr_matrix((d, i, p))\n"
        assert lint(SparseFormatBoundaryRule, src, self.SPARSE) == []
        # future block-CSR siblings stay in scope of the exemption
        assert lint(SparseFormatBoundaryRule, src, self.SPARSE_SIBLING) == []

    def test_packing_api_calls_not_flagged(self):
        src = "pack = sparse.pack_from_indices(shape, idx, vals)\n"
        assert lint(SparseFormatBoundaryRule, src, self.SERVE) == []

    def test_unrelated_scipy_not_flagged(self):
        src = "from scipy import linalg\nimport scipy.stats\n"
        assert lint(SparseFormatBoundaryRule, src, self.CORE) == []

    def test_noqa_suppression(self):
        src = "import scipy.sparse  # repro: noqa[RPA009] doc example\n"
        assert lint(SparseFormatBoundaryRule, src, self.SERVE) == []
