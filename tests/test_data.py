"""Tests for dataset machinery and the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    Dataset,
    digit_strokes,
    render_digits,
    synth_cifar,
    synth_mnist,
    train_val_split,
)


class TestDataset:
    def _ds(self, n=10):
        return Dataset(np.zeros((n, 1, 4, 4)), np.arange(n) % 3)

    def test_len_and_shapes(self):
        ds = self._ds(10)
        assert len(ds) == 10
        assert ds.sample_shape == (1, 4, 4)
        assert ds.num_classes == 3

    def test_getitem_batch(self):
        ds = self._ds()
        x, y = ds[np.array([0, 2])]
        assert x.shape == (2, 1, 4, 4)
        assert y.shape == (2,)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_labels_must_be_1d(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros((3, 1), dtype=int))

    def test_subset(self):
        ds = self._ds(10)
        sub = ds.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, [1, 0, 2])

    def test_dtype_coercion(self):
        ds = Dataset(np.zeros((2, 3), np.float64), np.array([0, 1], np.int32))
        assert ds.images.dtype == np.float32
        assert ds.labels.dtype == np.int64


class TestTrainValSplit:
    def test_sizes(self):
        ds = Dataset(np.zeros((100, 2)), np.zeros(100, dtype=int))
        tr, va = train_val_split(ds, 0.2, seed=1)
        assert len(tr) == 80 and len(va) == 20

    def test_disjoint_and_complete(self):
        ds = Dataset(np.arange(50).reshape(50, 1).astype(float), np.zeros(50, int))
        tr, va = train_val_split(ds, 0.3, seed=2)
        all_vals = np.concatenate([tr.images.ravel(), va.images.ravel()])
        assert sorted(all_vals.tolist()) == list(range(50))

    def test_deterministic(self):
        ds = Dataset(np.arange(20).reshape(20, 1).astype(float), np.zeros(20, int))
        a = train_val_split(ds, 0.25, seed=5)[0].images
        b = train_val_split(ds, 0.25, seed=5)[0].images
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5])
    def test_invalid_fraction(self, bad):
        ds = Dataset(np.zeros((10, 1)), np.zeros(10, int))
        with pytest.raises(ValueError):
            train_val_split(ds, bad)


class TestDataLoader:
    def _ds(self, n=25):
        return Dataset(np.arange(n).reshape(n, 1).astype(float), np.arange(n) % 2)

    def test_batch_count(self):
        assert len(DataLoader(self._ds(25), 10)) == 3
        assert len(DataLoader(self._ds(25), 10, drop_last=True)) == 2

    def test_covers_all_samples(self):
        dl = DataLoader(self._ds(25), 10, shuffle=True, seed=0)
        seen = np.concatenate([x.ravel() for x, _ in dl])
        assert sorted(seen.tolist()) == list(range(25))

    def test_drop_last(self):
        dl = DataLoader(self._ds(25), 10, shuffle=False, drop_last=True)
        batches = list(dl)
        assert len(batches) == 2
        assert all(len(y) == 10 for _, y in batches)

    def test_no_shuffle_is_sequential(self):
        dl = DataLoader(self._ds(6), 3, shuffle=False)
        x, _ = next(iter(dl))
        np.testing.assert_array_equal(x.ravel(), [0, 1, 2])

    def test_shuffle_changes_across_epochs_but_reproducible(self):
        dl1 = DataLoader(self._ds(20), 20, shuffle=True, seed=7)
        e1 = next(iter(dl1))[0].ravel().copy()
        e2 = next(iter(dl1))[0].ravel().copy()
        assert not np.array_equal(e1, e2)
        dl2 = DataLoader(self._ds(20), 20, shuffle=True, seed=7)
        np.testing.assert_array_equal(e1, next(iter(dl2))[0].ravel())

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self._ds(), 0)

    def test_epoch_order_is_pure(self):
        # (seed, epoch) fully determines the permutation: calling in any
        # order, repeatedly, or from a fresh loader gives the same answer.
        # This is what lets parallel ranks derive the batch sequence
        # independently and prefetched iteration match synchronous.
        dl = DataLoader(self._ds(20), 4, shuffle=True, seed=7)
        o1 = dl.epoch_order(1)
        o0 = dl.epoch_order(0)
        np.testing.assert_array_equal(o1, dl.epoch_order(1))
        assert not np.array_equal(o0, o1)
        fresh = DataLoader(self._ds(20), 4, shuffle=True, seed=7)
        np.testing.assert_array_equal(o0, fresh.epoch_order(0))
        assert sorted(o0.tolist()) == list(range(20))

    def test_epoch_order_unshuffled_is_identity(self):
        dl = DataLoader(self._ds(6), 3, shuffle=False)
        np.testing.assert_array_equal(dl.epoch_order(3), np.arange(6))

    def test_iteration_consumes_epoch_order(self):
        # __iter__ must yield exactly epoch_order(k) on its k-th epoch.
        dl = DataLoader(self._ds(8), 8, shuffle=True, seed=11)
        for epoch in range(2):
            expect = dl.epoch_order(epoch)
            x, _ = next(iter(dl))
            np.testing.assert_array_equal(x.ravel(), expect)

    def test_set_epoch_rewinds(self):
        dl = DataLoader(self._ds(8), 8, shuffle=True, seed=11)
        first = next(iter(dl))[0].copy()
        next(iter(dl))  # epoch 1
        dl.set_epoch(0)
        np.testing.assert_array_equal(first, next(iter(dl))[0])


class TestSynthMnist:
    def test_shapes_and_ranges(self, tiny_mnist):
        train, test = tiny_mnist
        assert train.images.shape[1:] == (1, 28, 28)
        assert train.images.min() >= 0.0 and train.images.max() <= 1.0
        assert set(np.unique(train.labels)) == set(range(10))

    def test_deterministic(self):
        a, _ = synth_mnist(n_train=50, n_test=10, seed=4)
        b, _ = synth_mnist(n_train=50, n_test=10, seed=4)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a, _ = synth_mnist(n_train=50, n_test=10, seed=4)
        b, _ = synth_mnist(n_train=50, n_test=10, seed=5)
        assert not np.array_equal(a.images, b.images)

    def test_class_balance(self):
        train, _ = synth_mnist(n_train=200, n_test=10, seed=0)
        counts = np.bincount(train.labels, minlength=10)
        assert np.all(counts == 20)

    def test_within_class_variation(self):
        rng = np.random.default_rng(0)
        imgs = render_digits(np.array([3, 3, 3]), rng)
        assert not np.array_equal(imgs[0], imgs[1])

    def test_strokes_cover_all_digits(self):
        assert set(digit_strokes().keys()) == set(range(10))

    def test_images_nontrivial(self, tiny_mnist):
        train, _ = tiny_mnist
        # Strokes should light up a reasonable fraction of pixels.
        ink = (train.images > 0.5).mean()
        assert 0.02 < ink < 0.5

    def test_classes_distinguishable_by_mean_image(self):
        train, _ = synth_mnist(n_train=500, n_test=10, seed=1)
        means = np.stack([train.images[train.labels == c].mean(axis=0) for c in range(10)])
        # No two class-mean images should be near-identical.
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(means[i] - means[j]).mean() > 0.01

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synth_mnist(n_train=0, n_test=5)

    def test_custom_size(self):
        train, _ = synth_mnist(n_train=20, n_test=10, seed=0, size=14)
        assert train.images.shape[1:] == (1, 14, 14)


class TestSynthCifar:
    def test_shapes_and_ranges(self, tiny_cifar):
        train, test = tiny_cifar
        assert train.images.shape[1:] == (3, 16, 16)
        assert train.images.min() >= 0.0 and train.images.max() <= 1.0

    def test_default_size_is_32(self):
        train, _ = synth_cifar(n_train=20, n_test=10, seed=0)
        assert train.images.shape[1:] == (3, 32, 32)

    def test_deterministic(self):
        a, _ = synth_cifar(n_train=30, n_test=10, seed=4, size=16)
        b, _ = synth_cifar(n_train=30, n_test=10, seed=4, size=16)
        np.testing.assert_array_equal(a.images, b.images)

    def test_class_balance(self):
        train, _ = synth_cifar(n_train=100, n_test=10, seed=0, size=16)
        counts = np.bincount(train.labels, minlength=10)
        assert np.all(counts == 10)

    def test_classes_have_color_structure(self):
        train, _ = synth_cifar(n_train=300, n_test=10, seed=1, size=16)
        # Mean channel intensity should differ across classes (colored motifs).
        means = np.stack(
            [train.images[train.labels == c].mean(axis=(0, 2, 3)) for c in range(10)]
        )
        spread = means.std(axis=0).sum()
        assert spread > 0.01

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synth_cifar(n_train=10, n_test=0)
