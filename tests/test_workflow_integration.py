"""End-to-end workflow integration: the full train-to-deploy path.

Chains every subsystem the way a user would: train with DropBack +
freezing, save the sparse checkpoint, reload on a fresh architecture, serve
through the regenerating engine, and account the energy — asserting
consistency at each hand-off.
"""

import os

import numpy as np
import pytest

from repro.core import DropBack
from repro.data import DataLoader
from repro.energy import EnergyModel
from repro.infer import RegeneratingInferenceEngine
from repro.io import load_sparse, save_sparse
from repro.models import lenet5_bn, mnist_100_100
from repro.optim import BoundedStepDecay
from repro.tensor import Tensor, no_grad
from repro.train import FreezeCallback, Trainer, evaluate
from repro.utils.determinism import weights_digest


class TestTrainToDeployWorkflow:
    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory, tiny_mnist):
        train, test = tiny_mnist
        model = mnist_100_100().finalize(77)
        opt = DropBack(model, k=6_000, lr=0.4)
        trainer = Trainer(
            model,
            opt,
            schedule=BoundedStepDecay(0.4, period=2),
            callbacks=[FreezeCallback(2)],
            patience=5,
        )
        hist = trainer.fit(DataLoader(train, 64, seed=1), test, epochs=4)
        path = str(tmp_path_factory.mktemp("wf") / "model.npz")
        save_sparse(model, opt, path)
        return model, opt, hist, path, test

    def test_training_learned_and_froze(self, pipeline):
        model, opt, hist, path, test = pipeline
        assert hist.best_val_accuracy > 0.7
        assert opt.frozen
        assert opt.untracked_values_match_init()

    def test_checkpoint_reload_digest_identical(self, pipeline):
        model, opt, hist, path, test = pipeline
        restored = load_sparse(mnist_100_100(), path)
        assert weights_digest(restored, include_buffers=False) == weights_digest(
            model, include_buffers=False
        )

    def test_engine_serves_identical_predictions(self, pipeline):
        model, opt, hist, path, test = pipeline
        restored = load_sparse(mnist_100_100(), path)
        mask = opt.tracked_mask
        flat = np.concatenate([p.data.reshape(-1) for p in restored.parameters()])
        idx = np.flatnonzero(mask)
        engine = RegeneratingInferenceEngine(restored, idx, flat[idx])

        model.eval()
        with no_grad():
            dense = model(Tensor(test.images[:64])).numpy().argmax(axis=-1)
        model.train()
        np.testing.assert_array_equal(engine.predict(test.images[:64]), dense)

    def test_energy_accounting_consistent(self, pipeline):
        model, opt, hist, path, test = pipeline
        em = EnergyModel()
        rep = em.report(opt.counter)
        # Steps recorded match what training actually ran.
        assert opt.counter.steps == hist.epochs_run * 10  # 600/64 -> 10 batches
        # Per-step traffic is exactly the budget.
        assert opt.counter.weight_reads == opt.counter.steps * 6_000
        assert rep.total_pj > 0

    def test_checkpoint_compact(self, pipeline):
        model, opt, hist, path, test = pipeline
        dense_bytes = model.num_parameters() * 4
        assert os.path.getsize(path) < dense_bytes / 3


class TestBatchNormModelWorkflow:
    def test_bn_model_full_cycle(self, tmp_path, tiny_mnist):
        """BatchNorm running stats survive the sparse round-trip, so eval
        behaviour is preserved exactly."""
        train, test = tiny_mnist
        model = lenet5_bn().finalize(5)
        opt = DropBack(model, k=model.num_parameters() // 5, lr=0.1)
        Trainer(model, opt, schedule=BoundedStepDecay(0.1, period=2)).fit(
            DataLoader(train, 64, seed=0), test, epochs=2
        )
        acc_before = evaluate(model, test)
        path = str(tmp_path / "bn.npz")
        save_sparse(model, opt, path)
        restored = load_sparse(lenet5_bn(), path)
        assert evaluate(restored, test) == pytest.approx(acc_before)
        assert weights_digest(restored) == weights_digest(model)
