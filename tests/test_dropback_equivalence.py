"""Bit-for-bit equivalence of the flat-plane step vs. the reference step.

The vectorized flat-plane implementation (``DropBack.step``) must be
indistinguishable — exact float equality, identical tracked sets, identical
churn history — from the retained per-parameter dense implementation
(``DropBack.reference_step``) on every ablation combination the paper
exercises: selection criterion × ``zero_untracked`` ×
``strict_regeneration``, through freeze and unfreeze transitions.
"""

import numpy as np
import pytest

from repro.core import DropBack, HeapSelector
from repro.models import mlp
from repro.nn import Linear, Sequential
from repro.tensor import Tensor, cross_entropy

CRITERIA = ("accumulated", "magnitude", "current")


def _backward(model, step_seed, in_dim=6, classes=3):
    rng = np.random.default_rng(step_seed)
    x = Tensor(rng.normal(size=(16, in_dim)).astype(np.float32))
    y = rng.integers(0, classes, size=16)
    model.zero_grad()
    cross_entropy(model(x), y).backward()


def _run(
    use_reference,
    n_steps=6,
    freeze_at=3,
    unfreeze_at=5,
    k=9,
    model_fn=None,
    **kwargs,
):
    model = (model_fn or (lambda: mlp(6, (8,), 3)))().finalize(11)
    opt = DropBack(model, k=k, lr=0.3, **kwargs)
    for s in range(n_steps):
        _backward(model, s)
        if freeze_at is not None and s == freeze_at:
            opt.freeze()
        if unfreeze_at is not None and s == unfreeze_at:
            opt.unfreeze()
        (opt.reference_step if use_reference else opt.step)()
    return model, opt


def _assert_identical(pair_a, pair_b):
    (m1, o1), (m2, o2) = pair_a, pair_b
    for (name, p1), (_, p2) in zip(m1.named_parameters(), m2.named_parameters()):
        np.testing.assert_array_equal(p1.data, p2.data, err_msg=name)
    assert o1.swap_history == o2.swap_history
    assert o1.total_swaps == o2.total_swaps
    if o1.tracked_mask is not None or o2.tracked_mask is not None:
        np.testing.assert_array_equal(o1.tracked_mask, o2.tracked_mask)


class TestAblationGrid:
    @pytest.mark.parametrize("criterion", CRITERIA)
    @pytest.mark.parametrize("zero_untracked", [False, True])
    @pytest.mark.parametrize("strict", [False, True])
    def test_bit_identical_across_freeze_unfreeze(self, criterion, zero_untracked, strict):
        kwargs = dict(
            criterion=criterion,
            zero_untracked=zero_untracked,
            strict_regeneration=strict,
        )
        _assert_identical(_run(False, **kwargs), _run(True, **kwargs))

    @pytest.mark.parametrize("criterion", CRITERIA)
    def test_bit_identical_never_frozen(self, criterion):
        kwargs = dict(criterion=criterion, freeze_at=None, unfreeze_at=None)
        _assert_identical(_run(False, **kwargs), _run(True, **kwargs))


class TestStateInterchangeability:
    def test_alternating_paths_matches_pure_step(self):
        """Both paths share mask/churn state, so they can be interleaved
        within one run without changing the trajectory."""
        m1 = mlp(6, (8,), 3).finalize(11)
        m2 = mlp(6, (8,), 3).finalize(11)
        o1 = DropBack(m1, k=9, lr=0.3)
        o2 = DropBack(m2, k=9, lr=0.3)
        for s in range(6):
            _backward(m1, s)
            _backward(m2, s)
            if s == 3:
                o1.freeze()
                o2.freeze()
            o1.step()
            (o2.step if s % 2 == 0 else o2.reference_step)()
        _assert_identical((m1, o1), (m2, o2))


class TestEdgeConfigurations:
    def test_k_at_least_total(self):
        total = mlp(6, (8,), 3).finalize(0).num_parameters()
        _assert_identical(_run(False, k=total), _run(True, k=total))
        _assert_identical(_run(False, k=total * 2), _run(True, k=total * 2))

    def test_heap_selector(self):
        _assert_identical(
            _run(False, selector=HeapSelector()),
            _run(True, selector=HeapSelector()),
        )

    def test_exclude_nonprunable(self):
        def model_fn():
            m = Sequential(Linear(6, 8), Linear(8, 3))
            m[1].weight.prunable = False
            m[1].bias.prunable = False
            return m

        kwargs = dict(model_fn=model_fn, k=5, include_nonprunable=False)
        _assert_identical(_run(False, **kwargs), _run(True, **kwargs))

    def test_history_limit_applies_to_both_paths(self):
        kwargs = dict(history_limit=2, freeze_at=None, unfreeze_at=None)
        (m1, o1), (m2, o2) = _run(False, **kwargs), _run(True, **kwargs)
        assert len(o1.swap_history) == 2
        _assert_identical((m1, o1), (m2, o2))
