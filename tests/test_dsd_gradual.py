"""Tests for the DSD and gradual-magnitude-pruning extension baselines."""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.models import mlp, mnist_100_100
from repro.optim import ConstantLR
from repro.prune import DSD, GradualMagnitudePruning, cubic_sparsity_schedule
from repro.tensor import Tensor, cross_entropy
from repro.train import Trainer


def _step(model, opt, seed=0, in_dim=6, classes=3):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(16, in_dim)).astype(np.float32))
    y = rng.integers(0, classes, size=16)
    model.zero_grad()
    loss = cross_entropy(model(x), y)
    loss.backward()
    opt.step()


class TestDSD:
    def _model(self):
        return mlp(6, (8,), 3).finalize(1)

    def test_phase_schedule(self):
        opt = DSD(self._model(), lr=0.1, dense_steps=3, sparse_steps=2, cycles=2)
        phases = []
        for s in range(12):
            phases.append(opt.phase)
            _step(opt.model, opt, seed=s)
        assert phases[:5] == ["dense"] * 3 + ["sparse"] * 2
        assert phases[5:10] == ["dense"] * 3 + ["sparse"] * 2
        assert phases[10:] == ["dense"] * 2  # final refinement stays dense

    def test_sparse_phase_enforces_sparsity(self):
        m = self._model()
        opt = DSD(m, lr=0.1, sparsity=0.5, dense_steps=2, sparse_steps=3)
        for s in range(4):  # 2 dense + 2 sparse steps
            _step(m, opt, seed=s)
        assert opt.sparsity_now() == pytest.approx(0.5, abs=0.02)

    def test_dense_refinement_revives_weights(self):
        m = self._model()
        opt = DSD(m, lr=0.5, sparsity=0.5, dense_steps=2, sparse_steps=2, cycles=1)
        for s in range(4):
            _step(m, opt, seed=s)
        assert opt.sparsity_now() > 0.4
        for s in range(4, 8):  # final dense phase
            _step(m, opt, seed=s)
        assert opt.sparsity_now() < 0.4  # weights trained away from zero

    def test_mask_frozen_within_sparse_phase(self):
        m = self._model()
        opt = DSD(m, lr=0.1, sparsity=0.5, dense_steps=1, sparse_steps=3)
        _step(m, opt, seed=0)  # dense
        _step(m, opt, seed=1)  # first sparse step builds mask
        mask1 = [d.copy() for d in opt._mask]
        _step(m, opt, seed=2)
        for a, b in zip(mask1, opt._mask):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize(
        "kw",
        [
            {"sparsity": 0.0},
            {"sparsity": 1.0},
            {"dense_steps": 0},
            {"sparse_steps": 0},
            {"cycles": 0},
        ],
    )
    def test_validation(self, kw):
        defaults = dict(sparsity=0.5, dense_steps=1, sparse_steps=1, cycles=1)
        defaults.update(kw)
        with pytest.raises(ValueError):
            DSD(self._model(), lr=0.1, **defaults)

    def test_trains_mnist(self, tiny_mnist):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(7)
        opt = DSD(m, lr=0.4, sparsity=0.3, dense_steps=20, sparse_steps=20)
        h = Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
            DataLoader(train, 64, seed=0), test, epochs=4
        )
        assert h.best_val_accuracy > 0.8


class TestCubicSchedule:
    def test_endpoints(self):
        assert cubic_sparsity_schedule(0, 0.75, 100) == 0.0
        assert cubic_sparsity_schedule(100, 0.75, 100) == pytest.approx(0.75)
        assert cubic_sparsity_schedule(1000, 0.75, 100) == pytest.approx(0.75)

    def test_monotone_increasing(self):
        vals = [cubic_sparsity_schedule(t, 0.9, 50) for t in range(0, 60, 5)]
        assert vals == sorted(vals)

    def test_cubic_shape_front_loaded(self):
        # The cubic ramp prunes faster early than a linear ramp would.
        half = cubic_sparsity_schedule(50, 0.8, 100)
        assert half > 0.8 * 0.5

    def test_begin_step_offset(self):
        assert cubic_sparsity_schedule(5, 0.5, 10, begin_step=10) == 0.0
        assert cubic_sparsity_schedule(20, 0.5, 10, begin_step=10) == pytest.approx(0.5)


class TestGradualMagnitudePruning:
    def _model(self):
        return mlp(6, (8,), 3).finalize(1)

    def test_sparsity_ramps_up(self):
        m = self._model()
        opt = GradualMagnitudePruning(m, lr=0.1, final_sparsity=0.8, ramp_steps=20, prune_every=2)
        sparsities = []
        for s in range(24):
            _step(m, opt, seed=s)
            sparsities.append(opt.sparsity_now())
        assert sparsities[-1] == pytest.approx(0.8, abs=0.05)
        assert sparsities[2] < sparsities[-1]

    def test_mask_is_monotone(self):
        m = self._model()
        opt = GradualMagnitudePruning(m, lr=0.1, final_sparsity=0.6, ramp_steps=10, prune_every=1)
        dead_counts = []
        for s in range(14):
            _step(m, opt, seed=s)
            dead_counts.append(sum(int(d.sum()) for d in opt._dead))
        assert dead_counts == sorted(dead_counts)

    def test_pruned_weights_stay_zero(self):
        m = self._model()
        opt = GradualMagnitudePruning(m, lr=0.5, final_sparsity=0.6, ramp_steps=6, prune_every=1)
        for s in range(10):
            _step(m, opt, seed=s)
        dead = opt._dead[0]
        assert np.all(m[1].weight.data[dead] == 0.0)

    def test_compression_ratio(self):
        m = self._model()
        opt = GradualMagnitudePruning(m, lr=0.1, final_sparsity=0.75, ramp_steps=4, prune_every=1)
        for s in range(8):
            _step(m, opt, seed=s)
        assert opt.compression_ratio > 2.0

    @pytest.mark.parametrize(
        "kw",
        [{"final_sparsity": 0.0}, {"final_sparsity": 1.0}, {"ramp_steps": 0}, {"prune_every": 0}],
    )
    def test_validation(self, kw):
        defaults = dict(final_sparsity=0.5, ramp_steps=10, prune_every=1)
        defaults.update(kw)
        with pytest.raises(ValueError):
            GradualMagnitudePruning(self._model(), lr=0.1, **defaults)

    def test_trains_mnist(self, tiny_mnist):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(7)
        # 4 epochs x 10 steps: the ramp must complete within the run.
        opt = GradualMagnitudePruning(m, lr=0.4, final_sparsity=0.75, ramp_steps=30, prune_every=5)
        h = Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
            DataLoader(train, 64, seed=0), test, epochs=4
        )
        assert h.best_val_accuracy > 0.75
        assert opt.sparsity_now() > 0.7
