"""Extended property-based tests: quantization, overlap metrics, energy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis import (
    expected_random_overlap,
    jaccard,
    nested_budget_overlap,
    overlap_coefficient,
)
from repro.energy import EnergyModel
from repro.optim.base import AccessCounter
from repro.quant import UniformQuantizer


bounded_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=64)


class TestQuantizerProperties:
    @given(
        values=arrays(np.float64, st.integers(1, 200), elements=bounded_floats),
        bits=st.integers(2, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bounded_by_half_step(self, values, bits):
        q = UniformQuantizer(bits=bits)
        back = q.roundtrip(values)
        scale = q.scale_for(values)
        assert np.abs(back - values).max() <= 0.5 * scale + 1e-12

    @given(
        values=arrays(np.float64, st.integers(1, 100), elements=bounded_floats),
        bits=st.integers(2, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantize_range_respected(self, values, bits):
        q = UniformQuantizer(bits=bits)
        ints, _ = q.quantize(values)
        assert ints.max() <= q.qmax and ints.min() >= -q.qmax

    @given(values=arrays(np.float64, st.integers(1, 50), elements=bounded_floats))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_idempotent(self, values):
        """Once on the grid, further roundtrips (same scale) are exact."""
        q = UniformQuantizer(bits=8)
        once = q.roundtrip(values)
        scale = q.scale_for(values)
        twice_q, _ = q.quantize(once, scale=scale)
        np.testing.assert_allclose(q.dequantize(twice_q, scale), once, atol=1e-12)


class TestOverlapProperties:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 300),
    )
    @settings(max_examples=60, deadline=None)
    def test_jaccard_bounds_and_symmetry(self, seed, n):
        rng = np.random.default_rng(seed)
        a = rng.random(n) < 0.4
        b = rng.random(n) < 0.4
        j = jaccard(a, b)
        assert 0.0 <= j <= 1.0
        assert j == jaccard(b, a)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 300))
    @settings(max_examples=40, deadline=None)
    def test_overlap_at_least_jaccard(self, seed, n):
        rng = np.random.default_rng(seed)
        a = rng.random(n) < 0.5
        b = rng.random(n) < 0.5
        assert overlap_coefficient(a, b) >= jaccard(a, b) - 1e-12

    @given(seed=st.integers(0, 10_000), n=st.integers(4, 200))
    @settings(max_examples=40, deadline=None)
    def test_nested_overlap_of_subset_is_one(self, seed, n):
        rng = np.random.default_rng(seed)
        large = rng.random(n) < 0.6
        small = large & (rng.random(n) < 0.5)
        assert nested_budget_overlap(small, large) == 1.0

    @given(n=st.integers(1, 10_000), k=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_expected_random_overlap_in_unit_interval(self, n, k):
        k = min(k, n)
        v = expected_random_overlap(n, k, k)
        assert 0.0 <= v <= 1.0


class TestEnergyProperties:
    @given(
        reads=st.integers(0, 10**9),
        writes=st.integers(0, 10**9),
        regens=st.integers(0, 10**9),
    )
    @settings(max_examples=60, deadline=None)
    def test_energy_nonnegative_and_additive(self, reads, writes, regens):
        em = EnergyModel()
        c = AccessCounter(weight_reads=reads, weight_writes=writes, regenerations=regens)
        rep = em.report(c)
        assert rep.total_pj >= 0
        assert rep.total_pj == rep.dram_pj + rep.regen_pj

    @given(k=st.integers(1, 89_000))
    @settings(max_examples=40, deadline=None)
    def test_dropback_energy_below_dense_for_any_budget(self, k):
        """Regeneration is always cheaper than fetching: for every budget
        below the model size, DropBack's per-step energy is below dense."""
        em = EnergyModel()
        n = 89_610
        dense = AccessCounter(weight_reads=n, weight_writes=n, steps=1)
        db = AccessCounter(weight_reads=k, weight_writes=k, regenerations=n - k, steps=1)
        assert em.report(db).total_pj < em.report(dense).total_pj
