"""Smoke tests for the example scripts (run with tiny arguments)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        r = _run("quickstart.py", "--epochs", "2", "--train-size", "400",
                 "--budget", "20000")
        assert r.returncode == 0, r.stderr
        assert "dropback error" in r.stdout
        assert "restored model accuracy" in r.stdout

    def test_embedded_training(self):
        r = _run("embedded_training.py", "--epochs", "2", "--memory-kb", "16")
        assert r.returncode == 0, r.stderr
        assert "weight-memory energy vs dense SGD" in r.stdout
        assert "flashable checkpoint" in r.stdout

    def test_streaming_inference(self):
        r = _run("streaming_inference.py", "--epochs", "2", "--compression", "10")
        assert r.returncode == 0, r.stderr
        assert "matches dense model: True" in r.stdout

    def test_energy_estimation(self):
        r = _run("energy_estimation.py", "--steps", "10")
        assert r.returncode == 0, r.stderr
        assert "427x cheaper" in r.stdout
        assert "WRN-28-10" in r.stdout

    def test_compression_sweep(self):
        r = _run("compression_sweep.py", "--epochs", "2", "--train-size", "400",
                 "--ratios", "2", "50")
        assert r.returncode == 0, r.stderr
        assert "knee" in r.stdout

    @pytest.mark.slow
    def test_cifar_pruning_comparison(self):
        r = _run("cifar_pruning_comparison.py", "--epochs", "1", "--train-size", "300")
        assert r.returncode == 0, r.stderr
        assert "technique" in r.stdout
