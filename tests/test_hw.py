"""Tests for the accelerator hardware model."""

import pytest

from repro.hw import (
    DRAM,
    SRAM_1MB,
    SRAM_64KB,
    AcceleratorModel,
    MemoryHierarchy,
    MemoryLevel,
    RegenerationUnit,
)
from repro.models import mnist_100_100


class TestMemoryLevel:
    def test_holds_within_capacity(self):
        assert SRAM_64KB.holds(64 * 1024)
        assert not SRAM_64KB.holds(64 * 1024 + 1)

    def test_dram_unbounded(self):
        assert DRAM.holds(10**12)

    def test_energy_ordering(self):
        assert SRAM_64KB.pj_per_access < SRAM_1MB.pj_per_access < DRAM.pj_per_access


class TestMemoryHierarchy:
    def test_placement_picks_smallest_fitting(self):
        h = MemoryHierarchy()
        assert h.placement(10 * 1024).name == "sram-64KB"
        assert h.placement(500 * 1024).name == "sram-1MB"
        assert h.placement(10 * 1024 * 1024).name == "dram"

    def test_last_level_must_be_unbounded(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([SRAM_64KB])

    def test_levels_must_be_ordered(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([SRAM_1MB, SRAM_64KB, DRAM])

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy().placement(-1)

    def test_access_energy(self):
        h = MemoryHierarchy()
        # 10 accesses of a DRAM-resident set cost 10 * 640 pJ.
        assert h.access_energy_pj(10**9, 10) == pytest.approx(6400.0)

    def test_largest_on_chip(self):
        assert MemoryHierarchy().largest_fitting_on_chip() == 1024 * 1024


class TestRegenerationUnit:
    def test_paper_energy(self):
        assert RegenerationUnit().pj_per_value == pytest.approx(1.5)

    def test_energy_scales(self):
        u = RegenerationUnit()
        assert u.energy_pj(1000) == pytest.approx(1500.0)

    def test_latency_scales_with_lanes(self):
        slow = RegenerationUnit(lanes=1)
        fast = RegenerationUnit(lanes=8)
        assert fast.latency_us(8000) == pytest.approx(slow.latency_us(8000) / 8)

    def test_throughput(self):
        assert RegenerationUnit(lanes=2, clock_ghz=1.5).values_per_second() == 3e9

    @pytest.mark.parametrize("kw", [{"lanes": 0}, {"clock_ghz": 0.0}])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            RegenerationUnit(**kw)

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            RegenerationUnit().energy_pj(-1)


class TestAcceleratorModel:
    def test_dense_large_model_spills_to_dram(self):
        am = AcceleratorModel()
        step = am.dense_step_energy(10**7)
        assert step.resident_level == "dram"
        assert step.regen_pj == 0.0

    def test_dropback_tracked_set_fits_on_chip(self):
        am = AcceleratorModel()
        step = am.dropback_step_energy(10**7, k=100_000)  # 800 KB
        assert step.resident_level == "sram-1MB"
        assert step.regen_pj > 0.0

    def test_energy_saving_substantial(self):
        am = AcceleratorModel()
        # 10M params dense in DRAM vs 100k tracked in SRAM: two effects
        # multiply (fewer accesses AND cheaper accesses).
        assert am.energy_saving(10**7, 100_000) > 100

    def test_saving_monotone_in_budget(self):
        am = AcceleratorModel()
        savings = [am.energy_saving(10**7, k) for k in (10_000, 100_000, 1_000_000)]
        assert savings == sorted(savings, reverse=True)

    def test_training_step_energy_uses_model(self):
        am = AcceleratorModel()
        m = mnist_100_100()
        dense = am.training_step_energy(m)
        db = am.training_step_energy(m, k=5_000)
        assert db.total_pj < dense.total_pj

    def test_max_trainable_dense(self):
        am = AcceleratorModel()
        assert am.max_trainable_params() == 1024 * 1024 // 4

    def test_capacity_multiplier_matches_paper_claim(self):
        """Paper Section 6: 'train networks 5x-10x larger than currently
        possible'. At 10x-20x weight compression (Table 1/3 territory) the
        on-chip capacity multiplier lands in exactly that range."""
        am = AcceleratorModel()
        assert 4.5 <= am.capacity_multiplier(10.0) <= 10.5
        assert am.capacity_multiplier(20.0) == pytest.approx(10.0)

    def test_validation(self):
        am = AcceleratorModel()
        with pytest.raises(ValueError):
            am.dense_step_energy(0)
        with pytest.raises(ValueError):
            am.dropback_step_energy(100, 0)
        with pytest.raises(ValueError):
            am.max_trainable_params(0.5)
