"""Tests for SGD and learning-rate schedules."""

import numpy as np
import pytest

from repro.models import mnist_100_100
from repro.nn import Linear, Sequential
from repro.optim import (
    SGD,
    BoundedStepDecay,
    ConstantLR,
    ExponentialDecay,
    StepDecay,
)
from repro.optim.base import AccessCounter
from repro.tensor import Tensor, cross_entropy


def _model():
    return Sequential(Linear(4, 3)).finalize(1)


def _step(model, opt, seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(8, 4)).astype(np.float32))
    y = rng.integers(0, 3, size=8)
    model.zero_grad()
    loss = cross_entropy(model(x), y)
    loss.backward()
    opt.step()
    return loss.item()


class TestSGD:
    def test_moves_against_gradient(self):
        m = _model()
        opt = SGD(m, lr=0.5)
        w_before = m[0].weight.data.copy()
        _step(m, opt)
        assert not np.array_equal(w_before, m[0].weight.data)

    def test_update_rule_exact(self):
        m = _model()
        opt = SGD(m, lr=0.1)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 4)).astype(np.float32))
        y = rng.integers(0, 3, size=4)
        loss = cross_entropy(m(x), y)
        loss.backward()
        w = m[0].weight.data.copy()
        g = m[0].weight.grad.copy()
        opt.step()
        np.testing.assert_allclose(m[0].weight.data, w - 0.1 * g, rtol=1e-6)

    def test_loss_decreases_over_steps(self):
        m = _model()
        opt = SGD(m, lr=0.5)
        first = _step(m, opt, seed=3)
        for _ in range(30):
            last = _step(m, opt, seed=3)
        assert last < first

    def test_momentum_accelerates(self):
        m1, m2 = _model(), _model()
        plain = SGD(m1, lr=0.05)
        mom = SGD(m2, lr=0.05, momentum=0.9)
        for _ in range(20):
            lp = _step(m1, plain, seed=3)
            lm = _step(m2, mom, seed=3)
        assert lm < lp  # momentum converges faster on this convex-ish problem

    def test_weight_decay_shrinks_weights(self):
        m1, m2 = _model(), _model()
        SGD(m1, lr=0.1)
        wd = SGD(m2, lr=0.1, weight_decay=0.5)
        for _ in range(10):
            _step(m2, wd, seed=3)
        assert np.abs(m2[0].weight.data).mean() < np.abs(m1[0].weight.data).mean()

    def test_skips_missing_grads(self):
        m = _model()
        opt = SGD(m, lr=0.1)
        opt.step()  # no grads at all: must be a no-op, not a crash

    def test_invalid_hyperparams(self):
        m = _model()
        with pytest.raises(ValueError):
            SGD(m, lr=0.0)
        with pytest.raises(ValueError):
            SGD(m, lr=0.1, momentum=1.0)

    def test_access_counter_dense_traffic(self):
        m = _model()
        opt = SGD(m, lr=0.1)
        n = m.num_parameters()
        _step(m, opt)
        assert opt.counter.weight_reads == n
        assert opt.counter.weight_writes == n
        assert opt.counter.regenerations == 0
        assert opt.counter.steps == 1

    def test_storage_is_dense(self):
        m = mnist_100_100().finalize(1)
        assert SGD(m, lr=0.1).storage_floats() == 89_610


class TestAccessCounter:
    def test_total(self):
        c = AccessCounter(weight_reads=10, weight_writes=5, regenerations=100)
        assert c.total_accesses == 15

    def test_merge(self):
        a = AccessCounter(1, 2, 3, 1)
        b = AccessCounter(10, 20, 30, 2)
        m = a.merge(b)
        assert (m.weight_reads, m.weight_writes, m.regenerations, m.steps) == (11, 22, 33, 3)


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.4)
        assert s(0) == s(99) == 0.4

    def test_step_decay_cifar_recipe(self):
        # Paper: "starting learning rate of 0.4 decayed 0.5x every 25 epochs".
        s = StepDecay(0.4, factor=0.5, period=25)
        assert s(0) == 0.4
        assert s(24) == 0.4
        assert s(25) == 0.2
        assert s(50) == 0.1
        assert s(75) == pytest.approx(0.05)

    def test_bounded_step_decay_mnist_recipe(self):
        # Paper: lr 0.4 "exponentially reduced four times by a factor of 0.5".
        s = BoundedStepDecay(0.4, factor=0.5, period=20, max_drops=4)
        assert s(0) == 0.4
        assert s(20) == 0.2
        assert s(80) == pytest.approx(0.025)
        assert s(100) == pytest.approx(0.025)  # capped at 4 drops
        assert s(1000) == pytest.approx(0.025)

    def test_exponential(self):
        s = ExponentialDecay(1.0, gamma=0.9)
        assert s(0) == 1.0
        assert s(2) == pytest.approx(0.81)

    @pytest.mark.parametrize(
        "ctor",
        [
            lambda: ConstantLR(0.0),
            lambda: StepDecay(0.1, factor=0.0),
            lambda: StepDecay(0.1, period=0),
            lambda: BoundedStepDecay(0.1, max_drops=-1),
            lambda: ExponentialDecay(0.1, gamma=1.5),
        ],
    )
    def test_invalid_params(self, ctor):
        with pytest.raises(ValueError):
            ctor()
