"""Tests for the training loop, metrics, and callbacks."""

import numpy as np
import pytest

from repro.data import DataLoader, Dataset
from repro.models import mlp, mnist_100_100
from repro.optim import SGD, ConstantLR, StepDecay
from repro.train import (
    LambdaCallback,
    Trainer,
    WeightSnapshotCallback,
    accuracy,
    error_rate,
    evaluate,
)


def _toy_data(n=200, seed=0):
    """Linearly separable 2-class blobs — trivially learnable."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4)).astype(np.float32)
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return Dataset(x, y, name="blobs")


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 1.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_error_rate_complements(self):
        logits = np.array([[1.0, 0.0]])
        assert error_rate(logits, np.array([0])) == 0.0
        assert error_rate(logits, np.array([1])) == 1.0

    def test_evaluate_runs_in_eval_mode(self):
        m = mlp(4, (8,), 2).finalize(1)
        ds = _toy_data()
        m.train()
        evaluate(m, ds)
        assert m.training  # mode restored

    def test_evaluate_accepts_loader(self):
        m = mlp(4, (8,), 2).finalize(1)
        ds = _toy_data()
        acc_ds = evaluate(m, ds)
        acc_dl = evaluate(m, DataLoader(ds, 32, shuffle=False))
        assert acc_ds == pytest.approx(acc_dl)


class TestTrainerBasics:
    def _trainer(self, patience=None, schedule=None, callbacks=None, seed=1):
        m = mlp(4, (16,), 2).finalize(seed)
        opt = SGD(m, lr=0.3)
        return m, Trainer(
            m, opt, schedule=schedule or ConstantLR(0.3), callbacks=callbacks, patience=patience
        )

    def test_learns_separable_data(self):
        ds = _toy_data()
        m, tr = self._trainer()
        h = tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=15)
        assert h.best_val_accuracy > 0.9

    def test_history_lengths(self):
        ds = _toy_data()
        _, tr = self._trainer()
        h = tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=4)
        assert len(h.train_loss) == len(h.val_accuracy) == len(h.lr) == 4
        assert len(h.epoch_seconds) == 4
        assert all(s > 0 for s in h.epoch_seconds)

    def test_best_epoch_tracked(self):
        ds = _toy_data()
        _, tr = self._trainer()
        h = tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=6)
        assert 0 <= h.best_epoch < 6
        assert h.best_val_accuracy == max(h.val_accuracy)
        assert h.best_val_error == pytest.approx(1 - max(h.val_accuracy))

    def test_invalid_epochs(self):
        ds = _toy_data()
        _, tr = self._trainer()
        with pytest.raises(ValueError):
            tr.fit(DataLoader(ds, 32), ds, epochs=0)

    def test_early_stopping(self):
        ds = _toy_data(n=60)
        _, tr = self._trainer(patience=2)
        h = tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=100)
        assert h.stopped_early
        assert h.epochs_run < 100

    def test_schedule_applied(self):
        ds = _toy_data(n=60)
        _, tr = self._trainer(schedule=StepDecay(0.4, 0.5, period=2))
        h = tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=4)
        assert h.lr == [0.4, 0.4, 0.2, 0.2]

    def test_global_step_advances(self):
        ds = _toy_data(n=64)
        _, tr = self._trainer()
        tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=3)
        assert tr.global_step == 3 * 2  # 2 batches per epoch


class TestCallbacks:
    def test_lambda_callback_hooks(self):
        ds = _toy_data(n=64)
        events = []
        cb = LambdaCallback(
            on_train_begin=lambda t: events.append("begin"),
            on_step_end=lambda t, s, l: events.append(f"step{s}"),
            on_epoch_end=lambda t, e, logs: events.append(f"epoch{e}"),
        )
        m = mlp(4, (8,), 2).finalize(1)
        tr = Trainer(m, SGD(m, lr=0.1), callbacks=[cb])
        tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=2)
        assert events[0] == "begin"
        assert "epoch0" in events and "epoch1" in events
        assert "step0" in events

    def test_weight_snapshots_linear(self):
        ds = _toy_data(n=96)
        cb = WeightSnapshotCallback(every=1)
        m = mlp(4, (8,), 2).finalize(1)
        tr = Trainer(m, SGD(m, lr=0.1), callbacks=[cb])
        tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=2)
        steps, snaps = cb.stacked()
        assert snaps.shape == (7, m.num_parameters())  # init + 6 steps
        assert steps[0] == 0

    def test_weight_snapshots_log_spaced(self):
        ds = _toy_data(n=640)
        cb = WeightSnapshotCallback(log_spaced=True)
        m = mlp(4, (8,), 2).finalize(1)
        tr = Trainer(m, SGD(m, lr=0.1), callbacks=[cb])
        tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=2)
        steps, _ = cb.stacked()
        gaps = np.diff(steps)
        assert (gaps[-1] > gaps[1]) or len(steps) < 5  # spacing grows

    def test_max_snapshots_respected(self):
        ds = _toy_data(n=640)
        cb = WeightSnapshotCallback(every=1, max_snapshots=3)
        m = mlp(4, (8,), 2).finalize(1)
        tr = Trainer(m, SGD(m, lr=0.1), callbacks=[cb])
        tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=1)
        assert len(cb.snapshots) == 3

    def test_snapshot_validation(self):
        with pytest.raises(ValueError):
            WeightSnapshotCallback(every=0)


class TestEndToEndMnist:
    def test_baseline_mlp_learns_synth_mnist(self, tiny_mnist):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(7)
        tr = Trainer(m, SGD(m, lr=0.4), schedule=ConstantLR(0.4))
        h = tr.fit(DataLoader(train, 64, seed=1), test, epochs=6)
        assert h.best_val_accuracy > 0.85
