"""Tests for nn layers."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    MSELoss,
    PReLU,
    ReLU,
    Sequential,
)
from repro.tensor import Tensor


def _finalize(m, seed=1):
    m.finalize(seed)
    return m


class TestLinearLayer:
    def test_shapes(self):
        layer = _finalize(Sequential(Linear(10, 5)))
        out = layer(Tensor(np.ones((3, 10), np.float32)))
        assert out.shape == (3, 5)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert sum(p.size for p in layer.parameters()) == 8

    def test_lecun_init_std(self):
        layer = _finalize(Sequential(Linear(400, 100)))
        w = layer[0].weight.data
        assert abs(w.std() - 0.05) < 0.005

    def test_he_init_std(self):
        layer = _finalize(Sequential(Linear(200, 50, init="he")))
        w = layer[0].weight.data
        assert abs(w.std() - np.sqrt(2 / 200)) < 0.005

    def test_repr(self):
        assert "Linear(4, 2" in repr(Linear(4, 2))


class TestConvLayer:
    def test_output_shape(self):
        layer = _finalize(Sequential(Conv2d(3, 8, 3, stride=1, padding=1)))
        out = layer(Tensor(np.ones((2, 3, 8, 8), np.float32)))
        assert out.shape == (2, 8, 8, 8)

    def test_param_count(self):
        layer = Conv2d(3, 8, 3)
        assert sum(p.size for p in layer.parameters()) == 3 * 8 * 9 + 8

    def test_no_bias_param_count(self):
        layer = Conv2d(3, 8, 3, bias=False)
        assert sum(p.size for p in layer.parameters()) == 216

    def test_fan_in_init(self):
        layer = _finalize(Sequential(Conv2d(16, 32, 3)))
        w = layer[0].weight.data
        assert abs(w.std() - 1.0 / np.sqrt(16 * 9)) < 0.005


class TestBatchNormLayers:
    def test_bn1d_forward_normalizes(self):
        bn = _finalize(Sequential(BatchNorm1d(4)))
        x = Tensor(np.random.default_rng(0).normal(3, 2, size=(64, 4)).astype(np.float32))
        out = bn(x).numpy()
        assert np.allclose(out.mean(axis=0), 0, atol=1e-4)

    def test_bn2d_shape_check(self):
        bn = _finalize(Sequential(BatchNorm2d(4)))
        with pytest.raises(ValueError):
            bn(Tensor(np.ones((2, 4), np.float32)))

    def test_bn1d_shape_check(self):
        bn = _finalize(Sequential(BatchNorm1d(4)))
        with pytest.raises(ValueError):
            bn(Tensor(np.ones((2, 4, 3, 3), np.float32)))

    def test_gamma_init_one_beta_zero(self):
        bn = BatchNorm2d(3)
        bn.gamma.initialize(0, 0)
        bn.beta.initialize(0, 3)
        np.testing.assert_array_equal(bn.gamma.data, 1.0)
        np.testing.assert_array_equal(bn.beta.data, 0.0)

    def test_eval_uses_running_stats(self):
        seq = _finalize(Sequential(BatchNorm1d(2)))
        bn = seq[0]
        x = Tensor(np.random.default_rng(0).normal(5, 2, size=(256, 2)).astype(np.float32))
        for _ in range(30):
            seq(x)  # accumulate running stats in train mode
        seq.eval()
        out = seq(x).numpy()
        assert np.allclose(out.mean(axis=0), 0, atol=0.2)

    def test_buffers_registered(self):
        assert BatchNorm2d._buffers == ("running_mean", "running_var")


class TestActivationsAndUtility:
    def test_relu(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.numpy(), [0.0, 2.0])

    def test_prelu_constant_init(self):
        seq = _finalize(Sequential(PReLU(3)))
        np.testing.assert_allclose(seq[0].slope.data, 0.25)

    def test_prelu_forward(self):
        seq = _finalize(Sequential(PReLU(1)))
        out = seq(Tensor(np.array([[-4.0, 4.0]], np.float32)))
        np.testing.assert_allclose(out.numpy(), [[-1.0, 4.0]])

    def test_dropout_train_vs_eval(self):
        seq = _finalize(Sequential(Dropout(0.5)))
        x = Tensor(np.ones((10, 100), np.float32))
        train_out = seq(x).numpy()
        assert (train_out == 0).any()
        seq.eval()
        np.testing.assert_array_equal(seq(x).numpy(), 1.0)

    def test_flatten(self):
        out = Flatten()(Tensor(np.ones((2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x

    def test_pools(self):
        x = Tensor(np.ones((1, 1, 4, 4), np.float32))
        assert MaxPool2d(2)(x).shape == (1, 1, 2, 2)
        assert AvgPool2d(2)(x).shape == (1, 1, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (1, 1)


class TestSequential:
    def test_forward_chains(self):
        m = _finalize(Sequential(Flatten(), Linear(4, 3), ReLU(), Linear(3, 2)))
        out = m(Tensor(np.ones((5, 2, 2), np.float32)))
        assert out.shape == (5, 2)

    def test_len_getitem_iter(self):
        m = Sequential(ReLU(), Flatten())
        assert len(m) == 2
        assert isinstance(m[0], ReLU)
        assert [type(x).__name__ for x in m] == ["ReLU", "Flatten"]

    def test_append(self):
        m = Sequential(ReLU())
        m.append(Flatten())
        assert len(m) == 2

    def test_repr_lists_layers(self):
        assert "ReLU()" in repr(Sequential(ReLU()))


class TestLossModules:
    def test_cross_entropy_module(self):
        loss = CrossEntropyLoss()(Tensor(np.zeros((2, 3))), np.array([0, 1]))
        assert loss.item() == pytest.approx(np.log(3))

    def test_mse_module(self):
        loss = MSELoss()(Tensor(np.array([2.0])), np.array([0.0]))
        assert loss.item() == pytest.approx(4.0)
