"""Tests for the activation layer classes (LeakyReLU, ELU, GELU, Softplus)."""

import numpy as np
import pytest

from repro.nn import ELU, GELU, LeakyReLU, Linear, ReLU, Sequential, Softplus
from repro.tensor import Tensor


def _x(vals):
    return Tensor(np.asarray(vals, dtype=np.float64))


class TestActivationLayers:
    def test_leaky_relu_layer(self):
        layer = LeakyReLU(0.1)
        out = layer(_x([-1.0, 2.0])).numpy()
        np.testing.assert_allclose(out, [-0.1, 2.0])

    def test_elu_layer(self):
        layer = ELU(alpha=2.0)
        out = layer(_x([-100.0, 3.0])).numpy()
        assert out[0] == pytest.approx(-2.0, abs=1e-6)
        assert out[1] == 3.0

    def test_gelu_layer(self):
        layer = GELU()
        assert layer(_x([0.0])).numpy()[0] == 0.0

    def test_softplus_layer(self):
        layer = Softplus()
        assert layer(_x([0.0])).numpy()[0] == pytest.approx(np.log(2))

    def test_layers_have_no_parameters(self):
        for layer in (LeakyReLU(), ELU(), GELU(), Softplus()):
            assert list(layer.named_parameters()) == []

    def test_reprs(self):
        assert "0.01" in repr(LeakyReLU())
        assert "ELU" in repr(ELU())
        assert repr(GELU()) == "GELU()"
        assert repr(Softplus()) == "Softplus()"

    @pytest.mark.parametrize("act", [LeakyReLU(), ELU(), GELU(), Softplus()])
    def test_usable_in_sequential_training(self, act):
        rng = np.random.default_rng(0)
        m = Sequential(Linear(4, 8), act, Linear(8, 2)).finalize(1)
        from repro.optim import SGD
        from repro.tensor import cross_entropy

        opt = SGD(m, lr=0.2)
        x = Tensor(rng.normal(size=(32, 4)).astype(np.float32))
        y = (rng.normal(size=32) > 0).astype(np.int64)
        first = last = None
        for _ in range(20):
            m.zero_grad()
            loss = cross_entropy(m(x), y)
            loss.backward()
            opt.step()
            last = loss.item()
            first = first if first is not None else last
        assert last < first  # every activation supports learning
