"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, synth_cifar, synth_mnist
from repro.tensor import Tensor


def finite_difference_check(f, tensors, eps: float = 1e-5, tol: float = 1e-4) -> None:
    """Assert analytic gradients of scalar ``f()`` match central differences.

    ``f`` must rebuild the graph on each call (tensors are perturbed in
    place between calls).
    """
    out = f()
    for t in tensors:
        t.grad = None
    out = f()
    out.backward()
    for t in tensors:
        assert t.grad is not None, "no gradient reached a checked tensor"
        num = np.zeros_like(t.data)
        it = np.nditer(t.data, flags=["multi_index"])
        for _ in it:
            i = it.multi_index
            old = t.data[i]
            t.data[i] = old + eps
            up = f().item()
            t.data[i] = old - eps
            dn = f().item()
            t.data[i] = old
            num[i] = (up - dn) / (2 * eps)
        scale = np.abs(num).max() + 1e-8
        err = np.abs(num - t.grad).max() / scale
        assert err < tol, f"gradient mismatch: rel err {err:.2e}"
        t.grad = None


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_mnist() -> tuple[Dataset, Dataset]:
    """Small synthetic-MNIST pair reused across tests (session-cached)."""
    return synth_mnist(n_train=600, n_test=200, seed=3)


@pytest.fixture(scope="session")
def tiny_cifar() -> tuple[Dataset, Dataset]:
    """Small synthetic-CIFAR pair at reduced resolution."""
    return synth_cifar(n_train=300, n_test=100, seed=3, size=16)


def rand_tensor(rng, shape, requires_grad=True, dtype=np.float64) -> Tensor:
    return Tensor(rng.normal(size=shape).astype(dtype), requires_grad=requires_grad)
