"""Integration tests: the paper's qualitative claims on scaled-down workloads.

Each test corresponds to a claim in the paper and checks the *shape* of the
result (who wins, what degrades) rather than absolute numbers.
"""

import numpy as np
import pytest

from repro.analysis import DiffusionTracker
from repro.core import DropBack
from repro.data import DataLoader
from repro.models import densenet_tiny, mnist_100_100, vgg_s, wrn_10_1
from repro.optim import SGD, ConstantLR
from repro.prune import MagnitudePruning
from repro.train import FreezeCallback, Trainer


EPOCHS = 5


def _fit(model, opt, data, epochs=EPOCHS, callbacks=None, lr=0.4, bs=64):
    train, test = data
    tr = Trainer(model, opt, schedule=ConstantLR(lr), callbacks=callbacks)
    return tr.fit(DataLoader(train, bs, seed=0), test, epochs=epochs)


class TestTable1Shape:
    """DropBack at moderate compression matches baseline; extreme k degrades."""

    def test_moderate_compression_matches_baseline(self, tiny_mnist):
        # DropBack "initially learns slightly more slowly" (paper Fig. 3),
        # so the comparison needs enough epochs for it to catch up.
        base = mnist_100_100().finalize(11)
        h_base = _fit(base, SGD(base, lr=0.4), tiny_mnist, epochs=10)

        db = mnist_100_100().finalize(11)
        h_db = _fit(db, DropBack(db, k=20_000, lr=0.4), tiny_mnist, epochs=10)
        # Paper: DropBack 20k reaches "nearly the same accuracy as baseline".
        assert h_db.best_val_accuracy > h_base.best_val_accuracy - 0.05

    def test_extreme_compression_degrades(self, tiny_mnist):
        db_mid = mnist_100_100().finalize(11)
        h_mid = _fit(db_mid, DropBack(db_mid, k=20_000, lr=0.4), tiny_mnist)

        db_tiny = mnist_100_100().finalize(11)
        h_tiny = _fit(db_tiny, DropBack(db_tiny, k=300, lr=0.4), tiny_mnist)
        # Paper: error roughly doubles going to the extreme configuration.
        assert h_tiny.best_val_accuracy < h_mid.best_val_accuracy

    def test_dropback_beats_zeroing_ablation(self, tiny_mnist):
        """Paper Section 2.1: regeneration buys 60x vs 2x when zeroing."""
        regen = mnist_100_100().finalize(11)
        h_regen = _fit(regen, DropBack(regen, k=3_000, lr=0.4), tiny_mnist)

        zeroed = mnist_100_100().finalize(11)
        h_zero = _fit(zeroed, DropBack(zeroed, k=3_000, lr=0.4, zero_untracked=True), tiny_mnist)
        assert h_regen.best_val_accuracy > h_zero.best_val_accuracy


class TestFreezingBehaviour:
    def test_freezing_late_preserves_accuracy_at_moderate_k(self, tiny_mnist):
        frozen = mnist_100_100().finalize(13)
        h_frozen = _fit(
            frozen,
            DropBack(frozen, k=20_000, lr=0.4),
            tiny_mnist,
            callbacks=[FreezeCallback(2)],
        )
        free = mnist_100_100().finalize(13)
        h_free = _fit(free, DropBack(free, k=20_000, lr=0.4), tiny_mnist)
        # Paper: "for smaller compression ratios freezing early has little
        # effect on the overall accuracy".
        assert abs(h_frozen.best_val_accuracy - h_free.best_val_accuracy) < 0.08


class TestDiffusionShape:
    """Paper Fig. 5: DropBack hugs baseline; magnitude pruning starts high."""

    def _diffusion(self, model, opt, data):
        tracker = DiffusionTracker(log_spaced=True)
        _fit(model, opt, data, epochs=2, callbacks=[tracker])
        return tracker.series()

    def test_dropback_tracks_baseline_magnitude_jumps(self, tiny_mnist):
        base = mnist_100_100().finalize(17)
        _, d_base = self._diffusion(base, SGD(base, lr=0.4), tiny_mnist)

        db = mnist_100_100().finalize(17)
        _, d_db = self._diffusion(db, DropBack(db, k=10_000, lr=0.4), tiny_mnist)

        mag = mnist_100_100().finalize(17)
        _, d_mag = self._diffusion(
            mag, MagnitudePruning(mag, lr=0.4, prune_fraction=0.75), tiny_mnist
        )

        # Magnitude pruning's first recorded distance is enormous (zeroing
        # most of the init), while DropBack's stays near the baseline's.
        assert d_mag[1] > 5 * d_base[1]
        assert d_db[1] < 2 * d_base[1] + 1.0

    def test_dropback_final_distance_close_to_baseline(self, tiny_mnist):
        base = mnist_100_100().finalize(17)
        _, d_base = self._diffusion(base, SGD(base, lr=0.4), tiny_mnist)
        db = mnist_100_100().finalize(17)
        _, d_db = self._diffusion(db, DropBack(db, k=10_000, lr=0.4), tiny_mnist)
        assert d_db[-1] <= d_base[-1] * 1.2


class TestConvNetsTrainUnderDropBack:
    """Table 3's setting at CPU scale: conv architectures train under
    DropBack with ~5x compression and reach useful accuracy."""

    @pytest.mark.parametrize(
        "factory,budget_frac",
        [
            (wrn_10_1, 0.2),
            (densenet_tiny, 0.2),
            # 16x16 inputs only survive 4 max-pools: drop VGG's last pool.
            (
                lambda: vgg_s(
                    fc_width=32,
                    config=(8, "M", 16, "M", 32, 32, "M", 64, 64, "M"),
                ),
                0.2,
            ),
        ],
    )
    def test_conv_model_learns_with_budget(self, tiny_cifar, factory, budget_frac):
        m = factory().finalize(23)
        k = max(1, int(m.num_parameters() * budget_frac))
        opt = DropBack(m, k=k, lr=0.1)
        h = _fit(m, opt, tiny_cifar, epochs=4, lr=0.1, bs=32)
        # 10-class task, 10% is chance: the budgeted net must clearly learn.
        assert h.best_val_accuracy > 0.3
        assert opt.untracked_values_match_init()

    def test_batchnorm_params_prunable(self, tiny_cifar):
        """Paper: DropBack uniquely prunes BN layers (constant regeneration)."""
        m = wrn_10_1().finalize(29)
        opt = DropBack(m, k=int(m.num_parameters() * 0.1), lr=0.1)
        _fit(m, opt, tiny_cifar, epochs=2, lr=0.1, bs=32)
        counts = opt.tracked_counts()
        gamma_names = [n for n in counts if "gamma" in n]
        assert gamma_names  # BN params participate in the budget
        # Some gammas are untracked, i.e. regenerated to exactly 1.0.
        bn_gamma_params = [
            p for n, p in m.named_parameters() if "gamma" in n
        ]
        untracked_at_one = sum(int(np.sum(p.data == 1.0)) for p in bn_gamma_params)
        assert untracked_at_one > 0


class TestDeterminism:
    def test_identical_runs_bitwise_equal(self, tiny_mnist):
        def run():
            m = mnist_100_100().finalize(31)
            opt = DropBack(m, k=5_000, lr=0.4)
            _fit(m, opt, tiny_mnist, epochs=2)
            return np.concatenate([p.data.reshape(-1) for p in m.parameters()])

        np.testing.assert_array_equal(run(), run())
