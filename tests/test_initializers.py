"""Tests for regenerating initializers."""

import math

import numpy as np
import pytest

from repro.init import ConstantInit, HeNormalInit, ScaledNormalInit, he_std, lecun_std


class TestStdHelpers:
    def test_lecun_std(self):
        assert lecun_std(4) == 0.5
        assert lecun_std(100) == pytest.approx(0.1)

    def test_he_std(self):
        assert he_std(2) == pytest.approx(1.0)
        assert he_std(50) == pytest.approx(math.sqrt(2 / 50))

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_nonpositive_fanin(self, bad):
        with pytest.raises(ValueError):
            lecun_std(bad)
        with pytest.raises(ValueError):
            he_std(bad)


class TestScaledNormalInit:
    def test_regenerate_deterministic(self):
        init = ScaledNormalInit(0.1)
        a = init.regenerate(7, 100, (20, 30))
        b = init.regenerate(7, 100, (20, 30))
        np.testing.assert_array_equal(a, b)

    def test_std_respected(self):
        init = ScaledNormalInit(0.05)
        vals = init.regenerate(3, 0, (100_000,)).astype(np.float64)
        assert abs(vals.std() - 0.05) < 0.002
        assert abs(vals.mean()) < 0.002

    def test_base_index_shifts_stream(self):
        init = ScaledNormalInit(1.0)
        a = init.regenerate(7, 0, (100,))
        b = init.regenerate(7, 100, (100,))
        assert not np.array_equal(a, b)

    def test_overlapping_index_ranges_share_values(self):
        # Element i of a block at base b equals element (i+1) at base b-1:
        # regeneration is addressed by *global* index, not by position.
        init = ScaledNormalInit(1.0)
        a = init.regenerate(7, 10, (50,))
        b = init.regenerate(7, 11, (50,))
        np.testing.assert_array_equal(a[1:], b[:-1])

    def test_regenerate_flat_matches_block(self):
        init = ScaledNormalInit(0.2)
        block = init.regenerate(5, 1000, (10, 10)).reshape(-1)
        picks = np.array([1000, 1042, 1099])
        flat = init.regenerate_flat(5, picks)
        np.testing.assert_array_equal(flat, block[picks - 1000])

    def test_shape_and_dtype(self):
        init = ScaledNormalInit(1.0)
        out = init.regenerate(1, 0, (3, 4, 5))
        assert out.shape == (3, 4, 5)
        assert out.dtype == np.float32

    def test_scalar_shape(self):
        init = ScaledNormalInit(1.0)
        assert init.regenerate(1, 0, ()).shape == ()

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.1])
    def test_rejects_bad_std(self, bad):
        with pytest.raises(ValueError):
            ScaledNormalInit(bad)

    def test_repr(self):
        assert "0.1" in repr(ScaledNormalInit(0.1))


class TestHeNormalInit:
    def test_std_is_sqrt_2_over_fanin(self):
        init = HeNormalInit(fan_in=8)
        assert init.std == pytest.approx(0.5)

    def test_samples_match_std(self):
        init = HeNormalInit(fan_in=200)
        vals = init.regenerate(9, 0, (50_000,)).astype(np.float64)
        assert abs(vals.std() - math.sqrt(2 / 200)) < 0.005


class TestConstantInit:
    def test_regenerates_constant(self):
        init = ConstantInit(0.25)
        out = init.regenerate(99, 12345, (7, 3))
        np.testing.assert_array_equal(out, np.full((7, 3), 0.25, np.float32))

    def test_seed_and_index_irrelevant(self):
        init = ConstantInit(1.0)
        np.testing.assert_array_equal(
            init.regenerate(1, 0, (5,)), init.regenerate(999, 777, (5,))
        )

    def test_regenerate_flat(self):
        init = ConstantInit(-2.5)
        out = init.regenerate_flat(0, np.array([5, 9, 100]))
        np.testing.assert_array_equal(out, np.full(3, -2.5, np.float32))

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            ConstantInit(float("nan"))

    def test_repr(self):
        assert "0.25" in repr(ConstantInit(0.25))
