"""Tests for convolution and pooling ops."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    concat,
    conv2d,
    conv_out_size,
    global_avg_pool2d,
    max_pool2d,
    pad2d,
)
from tests.conftest import finite_difference_check, rand_tensor


class TestConvOutSize:
    @pytest.mark.parametrize(
        "inp,k,s,p,expected",
        [(32, 3, 1, 1, 32), (32, 3, 2, 1, 16), (28, 5, 1, 0, 24), (8, 2, 2, 0, 4)],
    )
    def test_sizes(self, inp, k, s, p, expected):
        assert conv_out_size(inp, k, s, p) == expected

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            conv_out_size(2, 5, 1, 0)


class TestConv2dForward:
    def test_identity_kernel(self):
        # 1x1 kernel with identity channel mixing reproduces the input.
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 4, 4)).astype(np.float32))
        w = Tensor(np.eye(2, dtype=np.float32).reshape(2, 2, 1, 1))
        out = conv2d(x, w, None)
        np.testing.assert_allclose(out.numpy(), x.numpy(), rtol=1e-6)

    def test_known_sum_kernel(self):
        # All-ones 2x2 kernel computes local window sums.
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        w = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32))
        out = conv2d(x, w, None).numpy()[0, 0]
        assert out[0, 0] == 0 + 1 + 4 + 5
        assert out[2, 2] == 10 + 11 + 14 + 15

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        w = Tensor(np.zeros((2, 1, 1, 1), dtype=np.float32))
        b = Tensor(np.array([1.5, -2.0], dtype=np.float32))
        out = conv2d(x, w, b).numpy()
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_stride_downsamples(self):
        x = Tensor(np.zeros((1, 1, 8, 8), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        assert conv2d(x, w, None, stride=2, pad=1).shape == (1, 1, 4, 4)

    def test_padding_preserves_size(self):
        x = Tensor(np.zeros((1, 1, 7, 7), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        assert conv2d(x, w, None, stride=1, pad=1).shape == (1, 1, 7, 7)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((1, 2, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            conv2d(x, w, None)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 5, 5)).astype(np.float64)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float64)
        out = conv2d(Tensor(x), Tensor(w), None, stride=1, pad=0).numpy()
        # naive quadruple loop
        ref = np.zeros((2, 4, 3, 3))
        for n in range(2):
            for f in range(4):
                for i in range(3):
                    for j in range(3):
                        ref[n, f, i, j] = (x[n, :, i : i + 3, j : j + 3] * w[f]).sum()
        np.testing.assert_allclose(out, ref, rtol=1e-10)


class TestConv2dGradients:
    def test_grad_all_inputs(self, rng):
        x = rand_tensor(rng, (2, 2, 5, 5))
        w = rand_tensor(rng, (3, 2, 3, 3))
        b = rand_tensor(rng, (3,))
        finite_difference_check(lambda: (conv2d(x, w, b, stride=1, pad=1) ** 2).sum(), [x, w, b])

    def test_grad_strided(self, rng):
        x = rand_tensor(rng, (1, 2, 6, 6))
        w = rand_tensor(rng, (2, 2, 3, 3))
        finite_difference_check(lambda: (conv2d(x, w, None, stride=2, pad=1) ** 2).sum(), [x, w])

    def test_grad_1x1(self, rng):
        x = rand_tensor(rng, (2, 3, 4, 4))
        w = rand_tensor(rng, (5, 3, 1, 1))
        finite_difference_check(lambda: (conv2d(x, w, None) ** 2).sum(), [x, w])


class TestMaxPool:
    def test_forward_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2).numpy()[0, 0]
        np.testing.assert_allclose(out, [[5, 7], [13, 15]])

    def test_gradient_routes_to_max(self, rng):
        x = rand_tensor(rng, (2, 2, 4, 4))
        finite_difference_check(lambda: (max_pool2d(x, 2) ** 2).sum(), [x])

    def test_overlapping_stride(self, rng):
        x = rand_tensor(rng, (1, 1, 5, 5))
        out = max_pool2d(x, 3, stride=1)
        assert out.shape == (1, 1, 3, 3)
        finite_difference_check(lambda: (max_pool2d(x, 3, stride=1) ** 2).sum(), [x])


class TestAvgPool:
    def test_forward_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2).numpy()[0, 0]
        np.testing.assert_allclose(out, [[2.5, 4.5], [10.5, 12.5]])

    def test_gradient(self, rng):
        x = rand_tensor(rng, (2, 2, 4, 4))
        finite_difference_check(lambda: (avg_pool2d(x, 2) ** 2).sum(), [x])


class TestGlobalAvgPool:
    def test_forward(self):
        x = Tensor(np.ones((2, 3, 4, 4), dtype=np.float32) * 2.0)
        out = global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.numpy(), 2.0)

    def test_gradient(self, rng):
        x = rand_tensor(rng, (2, 3, 3, 3))
        finite_difference_check(lambda: (global_avg_pool2d(x) ** 2).sum(), [x])


class TestPadConcat:
    def test_pad2d_shape(self):
        x = Tensor(np.ones((1, 2, 3, 3), dtype=np.float32))
        assert pad2d(x, 2).shape == (1, 2, 7, 7)

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert pad2d(x, 0) is x

    def test_pad2d_gradient(self, rng):
        x = rand_tensor(rng, (1, 1, 3, 3))
        finite_difference_check(lambda: (pad2d(x, 1) ** 2).sum(), [x])

    def test_concat_forward(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.numpy()[:, :2], 1.0)
        np.testing.assert_allclose(out.numpy()[:, 2:], 0.0)

    def test_concat_gradient(self, rng):
        a = rand_tensor(rng, (2, 2))
        b = rand_tensor(rng, (2, 3))
        finite_difference_check(lambda: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_concat_axis0_gradient(self, rng):
        a = rand_tensor(rng, (2, 3))
        b = rand_tensor(rng, (1, 3))
        finite_difference_check(lambda: (concat([a, b], axis=0) ** 2).sum(), [a, b])


class TestWorkspaceCache:
    def test_col2im_reuses_cached_workspace(self, rng):
        """Repeated backward passes hit the shape-keyed workspace pool."""
        from repro import profile
        from repro.tensor.conv import clear_workspace_cache

        clear_workspace_cache()
        was_enabled = profile.is_enabled()
        profile.enable()
        try:
            before = profile.snapshot()["counters"]
            w = rand_tensor(rng, (2, 1, 3, 3))
            for _ in range(4):
                x = rand_tensor(rng, (2, 1, 6, 6))
                conv2d(x, w, None, stride=1, pad=1).sum().backward()
                x.grad = None
                w.grad = None
            after = profile.snapshot()["counters"]
            hits = after.get("conv.workspace_hits", 0) - before.get("conv.workspace_hits", 0)
            misses = after.get("conv.workspace_misses", 0) - before.get("conv.workspace_misses", 0)
        finally:
            if not was_enabled:
                profile.disable()
            clear_workspace_cache()
        assert misses >= 1  # first backward allocates
        assert hits >= 2  # later backwards reuse the freed buffer

    def test_workspace_reuse_does_not_corrupt_gradients(self, rng):
        """A gradient that outlives its backward pass must not be clobbered
        by a later conv backward reusing the same-shape workspace."""
        from repro import profile
        from repro.tensor.conv import clear_workspace_cache

        clear_workspace_cache()
        was_enabled = profile.is_enabled()
        profile.enable()
        try:
            w = rand_tensor(rng, (1, 1, 3, 3))
            x1 = rand_tensor(rng, (1, 1, 5, 5))
            conv2d(x1, w, None, stride=1, pad=1).sum().backward()
            held = x1.grad.copy()
            # same-shape backward while x1.grad is still alive
            x2 = rand_tensor(rng, (1, 1, 5, 5))
            w.grad = None
            conv2d(x2, w, None, stride=1, pad=1).sum().backward()
            np.testing.assert_array_equal(x1.grad, held)
        finally:
            if not was_enabled:
                profile.disable()
            clear_workspace_cache()


class TestPoolWorkspace:
    """max/avg pooling backward buffers come from the conv workspace pool."""

    @pytest.mark.parametrize("pool_fn", [max_pool2d, avg_pool2d])
    def test_pool_forward_reuses_cached_workspace(self, rng, pool_fn):
        """The fast backend's pooling *forward* scratch (window candidates /
        accumulation target) also comes from the pool: repeated steps over
        the same shape must climb ``conv.workspace_hits``."""
        from repro import profile
        from repro.tensor import kernels, no_grad
        from repro.tensor.conv import clear_workspace_cache

        clear_workspace_cache()
        was_enabled = profile.is_enabled()
        profile.enable()
        try:
            with kernels.use_backend("fast"), no_grad():
                before = profile.snapshot()["counters"]
                for _ in range(4):
                    out = pool_fn(rand_tensor(rng, (2, 3, 8, 8)), 2)
                    del out  # release any pooled output back to the pool
                after = profile.snapshot()["counters"]
            hits = after.get("conv.workspace_hits", 0) - before.get("conv.workspace_hits", 0)
            misses = after.get("conv.workspace_misses", 0) - before.get(
                "conv.workspace_misses", 0
            )
        finally:
            if not was_enabled:
                profile.disable()
            clear_workspace_cache()
        assert misses >= 1  # first forward allocates
        assert hits >= 2  # later forwards reuse the freed buffer

    @pytest.mark.parametrize("pool_fn", [max_pool2d, avg_pool2d])
    def test_pool_backward_reuses_cached_workspace(self, rng, pool_fn):
        from repro import profile
        from repro.tensor.conv import clear_workspace_cache

        clear_workspace_cache()
        was_enabled = profile.is_enabled()
        profile.enable()
        try:
            before = profile.snapshot()["counters"]
            for _ in range(4):
                x = rand_tensor(rng, (2, 3, 8, 8))
                pool_fn(x, 2).sum().backward()
                x.grad = None  # release the buffer back to the pool
            after = profile.snapshot()["counters"]
            hits = after.get("conv.workspace_hits", 0) - before.get("conv.workspace_hits", 0)
            misses = after.get("conv.workspace_misses", 0) - before.get(
                "conv.workspace_misses", 0
            )
        finally:
            if not was_enabled:
                profile.disable()
            clear_workspace_cache()
        assert misses >= 1  # first backward allocates
        assert hits >= 2  # later backwards reuse the freed buffer

    @pytest.mark.parametrize("pool_fn", [max_pool2d, avg_pool2d])
    def test_pool_workspace_aliasing_safety(self, rng, pool_fn):
        """A pooling gradient that outlives its backward pass must not be
        clobbered by a later same-shape backward (refcount guard)."""
        from repro.tensor.conv import clear_workspace_cache

        clear_workspace_cache()
        try:
            x1 = rand_tensor(rng, (1, 2, 6, 6))
            pool_fn(x1, 2).sum().backward()
            held = x1.grad.copy()
            x2 = rand_tensor(rng, (1, 2, 6, 6))
            pool_fn(x2, 2).sum().backward()
            np.testing.assert_array_equal(x1.grad, held)
        finally:
            clear_workspace_cache()

    @pytest.mark.parametrize("pool_fn", [max_pool2d, avg_pool2d])
    def test_pool_gradients_unchanged_by_pooling_buffers(self, rng, pool_fn):
        """Workspace reuse must be value-transparent vs a cold cache."""
        from repro.tensor.conv import clear_workspace_cache

        grads = []
        for _ in range(2):
            clear_workspace_cache()
            x = Tensor(
                np.random.default_rng(7).normal(size=(2, 2, 6, 6)), requires_grad=True
            )
            pool_fn(x, 2).sum().backward()
            grads.append(x.grad.copy())
        np.testing.assert_array_equal(grads[0], grads[1])
