"""Tests for the data-parallel training subsystem (``repro.parallel``).

The determinism contract is the headline: with the same microbatch size
``m``, training is bit-identical across repeats AND across worker counts
(1, 2, 4), because gradient summation always follows the same canonical
mid-split reduction tree regardless of how its leaves are distributed
over ranks.  All trainer-level identity tests run with ``sanitize=True``
so the plane/pool/determinism tripwires are armed throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analyze.sanitize import check_plane_integrity
from repro.core import DropBack
from repro.data import DataLoader, Dataset
from repro.models import mlp
from repro.optim import SGD
from repro.parallel import (
    ParallelTrainer,
    PrefetchLoader,
    SharedArena,
    adopt_plane,
    parallel_supported,
    tree_sum,
    tree_sum_range,
    tree_sum_scalars,
)
from repro.train import FreezeCallback, ProfilerCallback

pytestmark = pytest.mark.skipif(
    not parallel_supported(), reason="requires the POSIX fork start method"
)


@pytest.fixture(autouse=True)
def _reset_detach_guard():
    # sanitize=True trainers install the process-global plane-detach hook;
    # drop it so later tests see the default silent-rebind behavior.
    from repro.analyze.sanitize import uninstall_detach_guard

    yield
    uninstall_detach_guard()


def _toy_data(n=64, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4)).astype(np.float32)
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return Dataset(x, y, name="blobs")


def _leaves(rng, count, size=17):
    return [rng.standard_normal(size).astype(np.float32) for _ in range(count)]


class TestTreeSum:
    def test_matches_numpy_sum_values(self):
        leaves = _leaves(np.random.default_rng(0), 9)
        out = tree_sum(leaves)
        np.testing.assert_allclose(out, np.sum(leaves, axis=0), rtol=1e-5)

    def test_does_not_mutate_inputs(self):
        leaves = _leaves(np.random.default_rng(1), 5)
        copies = [a.copy() for a in leaves]
        tree_sum(leaves)
        for a, c in zip(leaves, copies):
            assert np.array_equal(a, c)

    def test_single_leaf_is_a_copy(self):
        a = np.ones(4, dtype=np.float32)
        out = tree_sum([a])
        assert out is not a
        assert np.array_equal(out, a)

    def test_out_parameter(self):
        leaves = _leaves(np.random.default_rng(2), 4)
        out = np.empty(17, dtype=np.float32)
        ret = tree_sum(leaves, out=out)
        assert ret is out
        assert np.array_equal(out, tree_sum(leaves))

    @pytest.mark.parametrize("m, n", [(8, 2), (8, 4), (6, 2), (16, 4)])
    def test_rank_partials_compose_bitwise(self, m, n):
        # Alignment theorem: when N divides M, the top levels of the
        # mid-split tree cut exactly on rank boundaries, so rank-local
        # trees combined in rank order reproduce the single-sequence
        # tree bit-for-bit — the property the trainer's reduce relies on.
        leaves = _leaves(np.random.default_rng(3), m)
        whole = tree_sum(leaves)
        q = m // n
        partials = [tree_sum(leaves[r * q : (r + 1) * q]) for r in range(n)]
        assert np.array_equal(tree_sum(partials), whole)

    def test_tree_sum_range_streams_in_index_order(self):
        leaves = _leaves(np.random.default_rng(4), 7)
        seen = []

        def leaf(i):
            seen.append(i)
            return leaves[i].copy()  # leaf-owned buffer, may be reduced in place

        out = np.empty(17, dtype=np.float32)
        tree_sum_range(7, leaf, out=out)
        assert seen == list(range(7))
        assert np.array_equal(out, tree_sum(leaves))

    def test_tree_sum_scalars_matches_array_tree(self):
        vals = [0.1, 0.7, -0.3, 2.5, 0.9, -1.1]
        arrs = [np.array([v], dtype=np.float64) for v in vals]
        assert tree_sum_scalars(vals) == tree_sum(arrs)[0]


class TestSharedArena:
    def test_regions_shapes_and_dtypes(self):
        arena = SharedArena(plane_size=33, workers=4)
        try:
            assert arena.plane.shape == (33,) and arena.plane.dtype == np.float32
            assert arena.grads.shape == (4, 33) and arena.grads.dtype == np.float32
            assert arena.losses.shape == (4,) and arena.losses.dtype == np.float64
            assert arena.timers.shape == (4, 2) and arena.timers.dtype == np.float64
        finally:
            arena.destroy()

    def test_regions_do_not_alias(self):
        arena = SharedArena(plane_size=8, workers=2)
        try:
            arena.plane[:] = 1.0
            arena.grads[:] = 2.0
            arena.losses[:] = 3.0
            assert np.all(arena.plane == 1.0)
            assert np.all(arena.grads == 2.0)
            assert np.all(arena.losses == 3.0)
        finally:
            arena.destroy()

    def test_control_flags(self):
        arena = SharedArena(plane_size=4, workers=2)
        try:
            assert not arena.flag(SharedArena.CTRL_STOP)
            arena.set_flag(SharedArena.CTRL_STOP)
            assert arena.flag(SharedArena.CTRL_STOP)
            assert not arena.flag(SharedArena.CTRL_ABORT)
        finally:
            arena.destroy()


class TestAdoptPlane:
    def test_round_trip_preserves_values_and_views(self):
        model = mlp(4, (8,), 2).finalize(0)
        before = model.weight_plane.copy()
        shared = np.zeros(model.num_parameters(), dtype=np.float32)

        adopt_plane(model, shared)
        assert model.weight_plane is shared
        np.testing.assert_array_equal(shared, before)  # values carried over
        for p in model.parameters():
            assert p.data.base is shared or p.data is shared
        assert check_plane_integrity(model) == []

        # Re-home back to a fresh heap buffer (what teardown does).
        heap = np.empty_like(shared)
        adopt_plane(model, heap)
        np.testing.assert_array_equal(heap, before)
        assert check_plane_integrity(model) == []

    def test_rejects_wrong_size_or_dtype(self):
        model = mlp(4, (8,), 2).finalize(0)
        with pytest.raises(ValueError):
            adopt_plane(model, np.zeros(3, dtype=np.float32))
        with pytest.raises(ValueError):
            adopt_plane(model, np.zeros(model.num_parameters(), dtype=np.float64))


class TestPrefetchLoader:
    def test_yields_identical_batches(self):
        ds = _toy_data(48)
        sync = list(DataLoader(ds, 16, seed=5))
        pre = list(PrefetchLoader(DataLoader(ds, 16, seed=5), depth=2))
        assert len(sync) == len(pre)
        for (xs, ys), (xp, yp) in zip(sync, pre):
            assert np.array_equal(xs, xp) and np.array_equal(ys, yp)

    def test_len_passthrough(self):
        loader = DataLoader(_toy_data(48), 16)
        assert len(PrefetchLoader(loader)) == len(loader)

    def test_propagates_producer_exception(self):
        def boom():
            yield 1
            raise RuntimeError("producer failed")

        it = iter(PrefetchLoader(boom()))
        assert next(it) == 1
        with pytest.raises(RuntimeError, match="producer failed"):
            for _ in it:
                pass

    def test_early_abandon_does_not_hang(self):
        # Break mid-iteration with a full queue; generator close must
        # stop the producer thread promptly.
        loader = DataLoader(_toy_data(64), 4, seed=2)
        for i, _ in enumerate(PrefetchLoader(loader, depth=2)):
            if i == 1:
                break


def _fit(
    workers, opt="dropback", seed=3, freeze=None, prefetch=2, epochs=2,
    sanitize=True,
):
    """Train a tiny MLP; return (plane copy, history, trainer)."""
    ds = _toy_data(64, seed=0)
    model = mlp(4, (16,), 2).finalize(seed)
    if opt == "dropback":
        optimizer = DropBack(model, k=max(1, model.num_parameters() // 5), lr=0.2)
    else:
        optimizer = SGD(model, lr=0.2)
    callbacks = [FreezeCallback(freeze)] if freeze else None
    trainer = ParallelTrainer(
        model,
        optimizer,
        workers=workers,
        microbatch=4,
        prefetch=prefetch,
        callbacks=callbacks,
        sanitize=sanitize,
    )
    history = trainer.fit(
        DataLoader(ds, 16, seed=1, drop_last=True), ds, epochs=epochs
    )
    return model.weight_plane.copy(), history, trainer


class TestParallelTrainerDeterminism:
    def test_two_worker_repeat_is_bit_identical(self):
        plane_a, hist_a, _ = _fit(2)
        plane_b, hist_b, _ = _fit(2)
        assert plane_a.tobytes() == plane_b.tobytes()
        assert hist_a.train_loss == hist_b.train_loss

    def test_identical_across_worker_counts(self):
        # Same microbatch m=4 in every run: 1, 2, and 4 ranks must all
        # produce byte-identical planes and loss histories.
        plane_1, hist_1, _ = _fit(1)
        plane_2, hist_2, _ = _fit(2)
        plane_4, hist_4, _ = _fit(4)
        assert plane_1.tobytes() == plane_2.tobytes() == plane_4.tobytes()
        assert hist_1.train_loss == hist_2.train_loss == hist_4.train_loss
        assert hist_1.val_accuracy == hist_2.val_accuracy == hist_4.val_accuracy

    def test_sgd_path_identical_across_worker_counts(self):
        plane_1, hist_1, _ = _fit(1, opt="sgd")
        plane_2, hist_2, _ = _fit(2, opt="sgd")
        assert plane_1.tobytes() == plane_2.tobytes()
        assert hist_1.train_loss == hist_2.train_loss

    def test_frozen_dropback_identical_across_worker_counts(self):
        plane_1, _, _ = _fit(1, freeze=1, epochs=3)
        plane_2, _, _ = _fit(2, freeze=1, epochs=3)
        assert plane_1.tobytes() == plane_2.tobytes()

    def test_sanitized_run_is_byte_identical_to_unsanitized(self):
        # The watchdog and arena fence must be pure observers: arming them
        # (REPRO_SANITIZE semantics) cannot perturb a single bit of the
        # trained plane or the loss history.
        plane_s, hist_s, _ = _fit(2, sanitize=True)
        plane_u, hist_u, _ = _fit(2, sanitize=False)
        assert plane_s.tobytes() == plane_u.tobytes()
        assert hist_s.train_loss == hist_u.train_loss
        assert hist_s.val_accuracy == hist_u.val_accuracy

    def test_prefetch_depth_does_not_change_results(self):
        plane_on, _, _ = _fit(2, prefetch=2)
        plane_off, _, _ = _fit(2, prefetch=0)
        assert plane_on.tobytes() == plane_off.tobytes()


class TestParallelTrainerMechanics:
    def test_plane_restored_to_heap_after_fit(self):
        _, _, trainer = _fit(2)
        assert check_plane_integrity(trainer.model) == []
        # Shared segment is gone; the live plane must be a plain heap array.
        assert trainer.model.weight_plane.flags.owndata

    def test_rank_timers_populated(self):
        _, _, trainer = _fit(2)
        assert len(trainer.rank_compute_seconds) == 2
        assert len(trainer.rank_wait_seconds) == 2
        assert all(t >= 0.0 for t in trainer.rank_compute_seconds)

    def test_profiler_callback_records_worker_count(self):
        ds = _toy_data(64, seed=0)
        model = mlp(4, (16,), 2).finalize(7)
        prof = ProfilerCallback(report_name="par")
        trainer = ParallelTrainer(
            model, SGD(model, lr=0.2), workers=2, microbatch=4, callbacks=[prof]
        )
        trainer.fit(DataLoader(ds, 16, seed=1, drop_last=True), ds, epochs=1)
        assert prof.report is not None
        assert prof.report.meta["workers"] == 2
        # Rank compute/wait gauges flow through the profile registry.
        assert any(n.startswith("parallel.rank") for n in prof.report.ops)

    def test_training_learns(self):
        _, hist, _ = _fit(2, epochs=6)
        assert hist.best_val_accuracy > 0.8


class TestParallelTrainerValidation:
    def test_rejects_non_power_of_two_workers(self):
        model = mlp(4, (8,), 2).finalize(0)
        with pytest.raises(ValueError, match="power of two"):
            ParallelTrainer(model, SGD(model, lr=0.1), workers=3)

    def test_rejects_indivisible_microbatch(self):
        ds = _toy_data(64)
        model = mlp(4, (8,), 2).finalize(0)
        trainer = ParallelTrainer(model, SGD(model, lr=0.1), workers=2, microbatch=5)
        with pytest.raises(ValueError):
            trainer.fit(DataLoader(ds, 16, seed=1, drop_last=True), ds, epochs=1)

    def test_rejects_bad_epochs(self):
        ds = _toy_data(64)
        model = mlp(4, (8,), 2).finalize(0)
        trainer = ParallelTrainer(model, SGD(model, lr=0.1), workers=2)
        with pytest.raises(ValueError):
            trainer.fit(DataLoader(ds, 16, seed=1, drop_last=True), ds, epochs=0)
