"""Tests for the experiment registry and runner."""

import pytest

from repro.experiments import (
    RunConfig,
    get_experiment,
    list_experiments,
    run_config,
    run_experiment,
)
from repro.utils.explog import read_log


class TestRegistry:
    def test_experiments_registered(self):
        names = list_experiments()
        assert "table1" in names
        assert "table3" in names
        assert "ablation-zero" in names
        assert "ablation-freeze" in names

    def test_ablation_freeze_rows(self):
        rows = get_experiment("ablation-freeze")
        assert len(rows) == 6
        assert {r.freeze_epoch for r in rows} == {1, 3, None}

    def test_unknown_experiment_raises_with_hint(self):
        with pytest.raises(KeyError, match="available"):
            get_experiment("table99")

    def test_table1_has_eight_rows(self):
        rows = get_experiment("table1")
        assert len(rows) == 8
        baselines = [r for r in rows if r.technique == "sgd"]
        assert len(baselines) == 2

    def test_table1_paper_errors_recorded(self):
        rows = get_experiment("table1")
        by_name = {r.name: r for r in rows}
        assert by_name["lenet-300-100/baseline"].paper_error == pytest.approx(0.0141)
        assert by_name["mnist-100-100/dropback-60x"].paper_error == pytest.approx(0.0378)

    def test_table3_covers_all_nets_and_techniques(self):
        rows = get_experiment("table3")
        models = {r.model for r in rows}
        assert models == {"vgg-s-small", "densenet-tiny", "wrn-10-2"}
        techniques = {r.technique for r in rows}
        assert {"sgd", "dropback", "variational", "magnitude", "slimming"} <= techniques

    def test_get_experiment_returns_copy(self):
        a = get_experiment("table1")
        a.pop()
        assert len(get_experiment("table1")) == 8

    def test_config_serializes(self):
        cfg = get_experiment("table1")[0]
        d = cfg.to_dict()
        assert d["model"] == "lenet-300-100"
        assert isinstance(d["compression"], float)


class TestRunConfig:
    def _cfg(self, **kw):
        base = dict(
            name="t", model="mnist-100-100", dataset="mnist",
            technique="dropback", compression=10.0, epochs=1, lr=0.4,
        )
        base.update(kw)
        return RunConfig(**base)

    def test_dropback_run(self):
        res = run_config(self._cfg(), scale=0.05)
        assert 0.0 <= res.val_error <= 1.0
        assert res.achieved_compression == pytest.approx(10.0, rel=0.01)
        assert not res.diverged

    def test_sgd_run(self):
        res = run_config(self._cfg(technique="sgd"), scale=0.05)
        assert res.achieved_compression == 1.0

    def test_quantized_run(self):
        res = run_config(self._cfg(technique="dropback-q8"), scale=0.05)
        assert res.achieved_compression == pytest.approx(10.0, rel=0.01)

    def test_magnitude_run(self):
        res = run_config(self._cfg(technique="magnitude", compression=4.0), scale=0.05)
        assert res.achieved_compression > 2.0

    def test_zero_untracked_forwarded(self):
        normal = run_config(self._cfg(compression=30.0, epochs=3), scale=0.1)
        zeroed = run_config(
            self._cfg(compression=30.0, epochs=3), scale=0.1, zero_untracked=True
        )
        assert zeroed.val_error > normal.val_error  # regeneration matters

    def test_freeze_epoch_honoured(self):
        res = run_config(self._cfg(epochs=2, freeze_epoch=1), scale=0.05)
        assert not res.diverged

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            run_config(self._cfg(model="alexnet"), scale=0.05)

    def test_logging(self, tmp_path):
        from repro.utils.explog import ExperimentLogger

        path = str(tmp_path / "runs.jsonl")
        logger = ExperimentLogger(path, "unit")
        run_config(self._cfg(), scale=0.05, logger=logger)
        records = read_log(path)
        assert len(records) == 1
        assert records[0]["config"]["technique"] == "dropback"
        assert "val_error" in records[0]["metrics"]


class TestRunExperiment:
    def test_ablation_zero_end_to_end(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        results = run_experiment("ablation-zero", scale=0.04, log_path=path)
        assert len(results) == 6
        records = read_log(path, "ablation-zero")
        assert len(records) == 6
        # Regenerated runs beat zeroed runs at the extreme ratio.
        by_name = {r.config.name: r.val_error for r in results}
        assert by_name["mnist-100-100/regen-60x"] <= by_name["mnist-100-100/zeroed-60x"]
