"""Tests for the quantization extension (paper Section 5: orthogonal,
combinable with DropBack)."""

import numpy as np
import pytest

from repro.core import DropBack
from repro.data import DataLoader
from repro.models import mnist_100_100
from repro.optim import ConstantLR
from repro.quant import (
    QuantizedDropBack,
    QuantizedSGD,
    UniformQuantizer,
    quantization_error,
    quantize_model,
)
from repro.train import Trainer, evaluate


class TestUniformQuantizer:
    def test_roundtrip_bounded_error(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(size=1000)
        q = UniformQuantizer(bits=8)
        back = q.roundtrip(vals)
        scale = q.scale_for(vals)
        assert np.abs(back - vals).max() <= scale * 0.5 + 1e-9

    def test_int_range_respected(self):
        rng = np.random.default_rng(1)
        vals = rng.normal(size=500) * 10
        q = UniformQuantizer(bits=4)
        ints, _ = q.quantize(vals)
        assert ints.max() <= 7 and ints.min() >= -7

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        vals = rng.normal(size=2000)
        errs = [quantization_error(vals, b) for b in (2, 4, 8, 12)]
        assert errs == sorted(errs, reverse=True)

    def test_zero_tensor(self):
        q = UniformQuantizer(bits=8)
        back = q.roundtrip(np.zeros(10))
        np.testing.assert_array_equal(back, 0.0)

    def test_stochastic_rounding_unbiased(self):
        q = UniformQuantizer(bits=4, stochastic=True, seed=0)
        # A value exactly between grid points should round up half the time.
        vals = np.full(20_000, 0.35)
        scale = 1.0 / q.qmax
        ints, _ = q.quantize(vals, scale=scale)
        mean = ints.mean() * scale
        assert abs(mean - 0.35) < 0.01

    def test_deterministic_rounding_is_stable(self):
        q = UniformQuantizer(bits=8)
        vals = np.linspace(-1, 1, 100)
        np.testing.assert_array_equal(q.roundtrip(vals), q.roundtrip(vals))

    @pytest.mark.parametrize("bad", [1, 17, 0])
    def test_bits_validation(self, bad):
        with pytest.raises(ValueError):
            UniformQuantizer(bits=bad)

    def test_repr(self):
        assert "8" in repr(UniformQuantizer(bits=8))


class TestQuantizeModel:
    def test_weights_snap_to_grid(self):
        m = mnist_100_100().finalize(1)
        scales = quantize_model(m, bits=8)
        for name, p in m.named_parameters():
            if p.data.std() == 0:
                continue
            grid = p.data / scales[name]
            np.testing.assert_allclose(grid, np.round(grid), atol=1e-4)

    def test_accuracy_survives_8bit(self, tiny_mnist):
        train, test = tiny_mnist
        from repro.optim import SGD

        m = mnist_100_100().finalize(1)
        Trainer(m, SGD(m, lr=0.4), schedule=ConstantLR(0.4)).fit(
            DataLoader(train, 64, seed=0), test, epochs=4
        )
        acc_fp = evaluate(m, test)
        quantize_model(m, bits=8)
        acc_q = evaluate(m, test)
        assert acc_q > acc_fp - 0.03


class TestQuantizedDropBack:
    def _train(self, opt_cls, tiny_mnist, epochs=4, **kw):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(5)
        opt = opt_cls(m, lr=0.4, **kw)
        Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
            DataLoader(train, 64, seed=0), test, epochs=epochs
        )
        return m, opt, evaluate(m, test)

    def test_untracked_still_exact_after_quantization(self, tiny_mnist):
        m, opt, _ = self._train(QuantizedDropBack, tiny_mnist, k=5_000, bits=8)
        assert opt.untracked_values_match_init()

    def test_learns_at_8bit(self, tiny_mnist):
        # DropBack learns more slowly early (paper Fig. 3): give it the
        # epochs it needs on the tiny fixture.
        _, _, acc = self._train(QuantizedDropBack, tiny_mnist, epochs=7, k=10_000, bits=8)
        assert acc > 0.7  # clearly learning; 8-bit rounding noise costs a bit

    def test_total_compression_multiplies(self):
        m = mnist_100_100().finalize(1)
        opt = QuantizedDropBack(m, k=8_961, lr=0.4, bits=8)
        assert opt.total_compression == pytest.approx(10.0 * 4.0)

    def test_storage_bits(self):
        m = mnist_100_100().finalize(1)
        opt = QuantizedDropBack(m, k=1_000, lr=0.4, bits=4)
        assert opt.storage_bits() == 4_000

    def test_budget_invariant_still_holds(self, tiny_mnist):
        m, opt, _ = self._train(QuantizedDropBack, tiny_mnist, k=2_000, bits=8)
        seed = m.seed
        diffs = sum(
            int(np.count_nonzero(p.data != p.initial_values(seed))) for p in m.parameters()
        )
        assert diffs <= 2_000


class TestQuantizedSGD:
    def test_learns_at_8bit(self, tiny_mnist):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(5)
        opt = QuantizedSGD(m, lr=0.4, bits=8)
        Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
            DataLoader(train, 64, seed=0), test, epochs=4
        )
        assert evaluate(m, test) > 0.8

    def test_storage_bits_dense(self):
        m = mnist_100_100().finalize(1)
        assert QuantizedSGD(m, lr=0.4, bits=8).storage_bits() == 89_610 * 8

    def test_low_bits_degrade(self, tiny_mnist):
        train, test = tiny_mnist
        accs = {}
        for bits in (2, 8):
            m = mnist_100_100().finalize(5)
            opt = QuantizedSGD(m, lr=0.4, bits=bits)
            Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
                DataLoader(train, 64, seed=0), test, epochs=3
            )
            accs[bits] = evaluate(m, test)
        assert accs[8] > accs[2]
