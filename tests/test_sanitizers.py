"""Runtime sanitizer tests: seeded faults must be caught loudly.

Each sanitizer exists because a real failure mode is silent without it:
a parameter detaching from the flat weight plane, a workspace buffer
written after release, a NaN reaching the tracked-set selection.  These
tests *inject* those faults and assert the sanitizers trip.
"""

from __future__ import annotations

import gc
import threading
import time

import numpy as np
import pytest

from repro.analyze.sanitize import (
    ArenaFenceError,
    ArenaWriteFence,
    GradientTripwireError,
    GradTripwireCallback,
    LockOrderError,
    LockOrderWatchdog,
    PlaneIntegrityError,
    TrackedLock,
    check_finite_gradients,
    check_plane_integrity,
    install_detach_guard,
    sanitize_enabled,
    sanitizer_callbacks,
    tracked_lock,
    uninstall_detach_guard,
    verify_model,
)
from repro.data import DataLoader, Dataset
from repro.models import mlp
from repro.nn import BatchNorm1d, Linear, ReLU, Sequential
from repro.core.dropback import DropBack
from repro.optim import SGD
from repro.prune.slimming import bn_gammas, prune_channels
from repro.tensor import conv
from repro.train import Trainer


@pytest.fixture(autouse=True)
def _clean_hooks_and_pool():
    """Every test starts and ends without guard hooks or poisoned buffers."""
    uninstall_detach_guard()
    conv.clear_workspace_cache()
    yield
    uninstall_detach_guard()
    conv.clear_workspace_cache()


def _toy_data(n=128, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4)).astype(np.float32)
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return Dataset(x, y, name="blobs")


class TestSanitizeEnabled:
    @pytest.mark.parametrize("value", ["1", "true", "ON", " yes "])
    def test_truthy_values(self, value):
        assert sanitize_enabled({"REPRO_SANITIZE": value})

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "nope"])
    def test_falsy_values(self, value):
        assert not sanitize_enabled({"REPRO_SANITIZE": value})


class TestPlaneIntegrity:
    def test_finalized_model_passes(self):
        m = mlp(6, (8,), 3).finalize(1)
        assert check_plane_integrity(m) == []

    def test_unfinalized_model_fails(self):
        m = mlp(6, (8,), 3)
        with pytest.raises(PlaneIntegrityError, match="not finalized"):
            check_plane_integrity(m)

    def test_round_trip_restores_weights(self):
        m = mlp(6, (8,), 3).finalize(1)
        before = m.weight_plane.copy()
        check_plane_integrity(m)
        np.testing.assert_array_equal(m.weight_plane, before)

    def test_detached_copy_fault_is_caught(self):
        # Seeded fault: a parameter's storage is silently replaced by a
        # copy while the plane_backed flag still claims aliasing — exactly
        # what a stray `p.data = p.data.copy()` through __dict__ poking
        # would produce.  The base-address check must see through it.
        m = mlp(6, (8,), 3).finalize(1)
        p = m.parameters()[0]
        p._data = p._data.copy()
        with pytest.raises(PlaneIntegrityError, match="alias"):
            check_plane_integrity(m)
        problems = check_plane_integrity(m, strict=False)
        assert len(problems) == 1

    def test_plane_backed_flag_fault_is_caught(self):
        m = mlp(6, (8,), 3).finalize(1)
        p = m.parameters()[0]
        p.data = np.zeros((99,), dtype=np.float32)  # silent detach (legacy)
        assert not p.plane_backed
        with pytest.raises(PlaneIntegrityError, match="detached"):
            check_plane_integrity(m)

    def test_float64_fault_is_caught(self):
        m = mlp(6, (8,), 3).finalize(1)
        p = m.parameters()[0]
        p._data = p._data.astype(np.float64)  # keeps plane_backed claim
        with pytest.raises(PlaneIntegrityError, match="float64"):
            check_plane_integrity(m)


class TestDetachGuard:
    def test_guard_turns_silent_detach_into_error(self):
        m = mlp(6, (8,), 3).finalize(1)
        p = m.parameters()[0]
        install_detach_guard()
        with pytest.raises(PlaneIntegrityError, match="detached"):
            p.data = np.zeros((p.size + 1,), dtype=np.float32)

    def test_broadcastable_assignment_still_fine_under_guard(self):
        m = mlp(6, (8,), 3).finalize(1)
        p = m.parameters()[0]
        install_detach_guard()
        p.data = np.ones(p.shape, dtype=np.float32)
        assert p.plane_backed
        check_plane_integrity(m)

    def test_uninstall_restores_legacy_fallback(self):
        m = mlp(6, (8,), 3).finalize(1)
        p = m.parameters()[0]
        install_detach_guard()
        uninstall_detach_guard()
        p.data = np.zeros((p.size + 1,), dtype=np.float32)  # no raise
        assert not p.plane_backed


class TestWorkspacePoisoning:
    SHAPE = (4, 4)

    def _free_buffer(self) -> tuple:
        """Put one released float32 buffer in the pool, return its key."""
        buf = conv._acquire_workspace(self.SHAPE, np.float32)
        key = (self.SHAPE, np.dtype(np.float32).str)
        assert any(b is buf for b in conv._WORKSPACE[key])
        del buf  # release: pool holds the only reference now
        return key

    def test_poison_fills_free_buffers_with_nan(self):
        key = self._free_buffer()
        assert conv.poison_free_workspaces() >= 1
        assert np.isnan(conv._WORKSPACE[key][0]).all()

    def test_clean_reacquire_after_poison_passes(self):
        self._free_buffer()
        conv.poison_free_workspaces()
        buf = conv._acquire_workspace(self.SHAPE, np.float32)
        assert not np.isnan(buf).any()  # zeroed on hand-out

    def test_use_after_release_write_is_caught(self):
        key = self._free_buffer()
        conv.poison_free_workspaces()
        # Seeded fault: a stale reference writes into the released buffer.
        conv._WORKSPACE[key][0][0, 0] = 1.0
        with pytest.raises(conv.WorkspaceUseAfterReleaseError, match="after release"):
            conv._acquire_workspace(self.SHAPE, np.float32)

    def test_held_buffers_are_not_poisoned(self):
        held = conv._acquire_workspace(self.SHAPE, np.float32)
        conv.poison_free_workspaces()
        assert not np.isnan(held).any()

    def test_clear_cache_discards_poison_state(self):
        self._free_buffer()
        conv.poison_free_workspaces()
        conv.clear_workspace_cache()
        buf = conv._acquire_workspace(self.SHAPE, np.float32)
        assert not np.isnan(buf).any()

    def test_use_after_release_caught_through_pooled_conv_path(self):
        """The fault travels the public kernel path: a conv forward pools
        its workspaces, a stale holder scribbles on one after release, and
        the *next* conv forward trips on acquire."""
        from repro.tensor.kernels import fast

        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        out, ctx = fast.conv2d_forward(x, w, None, 1, 1, 6, 6)
        del out, ctx
        gc.collect()
        assert conv.poison_free_workspaces() >= 1
        # Seeded fault: overwrite one element of every free poisoned buffer.
        for pool in conv._WORKSPACE.values():
            for buf in pool:
                if np.isnan(buf).all():
                    buf.reshape(-1)[0] = 1.0
        with pytest.raises(conv.WorkspaceUseAfterReleaseError, match="after release"):
            fast.conv2d_forward(x, w, None, 1, 1, 6, 6)


class TestDetachGuardIdempotency:
    def test_double_install_is_safe(self):
        m = mlp(6, (8,), 3).finalize(1)
        p = m.parameters()[0]
        install_detach_guard()
        install_detach_guard()
        with pytest.raises(PlaneIntegrityError, match="detached"):
            p.data = np.zeros((p.size + 1,), dtype=np.float32)

    def test_double_uninstall_is_safe(self):
        m = mlp(6, (8,), 3).finalize(1)
        p = m.parameters()[0]
        install_detach_guard()
        uninstall_detach_guard()
        uninstall_detach_guard()
        p.data = np.zeros((p.size + 1,), dtype=np.float32)  # no raise
        assert not p.plane_backed

    def test_single_uninstall_after_double_install(self):
        m = mlp(6, (8,), 3).finalize(1)
        p = m.parameters()[0]
        install_detach_guard()
        install_detach_guard()
        uninstall_detach_guard()
        p.data = np.zeros((p.size + 1,), dtype=np.float32)  # no raise
        assert not p.plane_backed


class TestAdoptPlaneIntegrity:
    """Re-homing the weight plane (the parallel trainer's pre-fork move)
    must keep every sanitizer invariant on the *new* buffer."""

    def test_integrity_holds_on_adopted_plane(self):
        from repro.parallel.shm import adopt_plane

        m = mlp(6, (8,), 3).finalize(1)
        before = m.weight_plane.copy()
        fresh = np.empty(m.num_parameters(), dtype=np.float32)
        adopt_plane(m, fresh)
        assert m.weight_plane is fresh
        np.testing.assert_array_equal(fresh, before)  # values carried over
        check_plane_integrity(m)

    def test_round_trip_back_to_private_buffer(self):
        from repro.parallel.shm import adopt_plane

        m = mlp(6, (8,), 3).finalize(1)
        original = m.weight_plane
        shared = np.empty(m.num_parameters(), dtype=np.float32)
        adopt_plane(m, shared)
        adopt_plane(m, original)
        assert m.weight_plane is original
        check_plane_integrity(m)

    def test_wrong_geometry_rejected_without_detaching(self):
        from repro.parallel.shm import adopt_plane

        m = mlp(6, (8,), 3).finalize(1)
        with pytest.raises(ValueError, match="float32"):
            adopt_plane(m, np.empty(m.num_parameters() + 1, dtype=np.float32))
        check_plane_integrity(m)  # still on the old plane, still coherent


class TestLockOrderWatchdog:
    def _pair(self):
        wd = LockOrderWatchdog()
        a = TrackedLock(threading.Lock(), "A", watchdog=wd)
        b = TrackedLock(threading.Lock(), "B", watchdog=wd)
        return wd, a, b

    def test_consistent_order_passes(self):
        _, a, b = self._pair()
        for _ in range(3):
            with a:
                with b:
                    pass

    def test_inverted_order_raises(self):
        _, a, b = self._pair()
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError, match="lock-order cycle"):
                a.acquire()

    def test_failed_acquire_releases_inner_lock(self):
        _, a, b = self._pair()
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError):
                a.acquire()
        # the inversion attempt must not leave A held
        assert a.acquire(blocking=False)
        a.release()

    def test_reentrant_acquire_records_no_self_edge(self):
        wd = LockOrderWatchdog()
        r = TrackedLock(threading.RLock(), "R", watchdog=wd)
        with r:
            with r:
                pass
        assert wd.edges() == {}

    def test_three_lock_cycle_detected(self):
        wd = LockOrderWatchdog()
        a, b, c = (
            TrackedLock(threading.Lock(), n, watchdog=wd) for n in "ABC"
        )
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(LockOrderError):
                a.acquire()

    def test_reset_forgets_history(self):
        wd, a, b = self._pair()
        with a:
            with b:
                pass
        wd.reset()
        with b:
            with a:  # would raise without the reset
                pass

    def test_condition_wait_notify_through_tracked_rlock(self):
        wd = LockOrderWatchdog()
        cond = threading.Condition(
            TrackedLock(threading.RLock(), "C", watchdog=wd)
        )
        hits = []

        def waiter():
            with cond:
                while not hits:
                    cond.wait(timeout=5.0)
                hits.append("woke")

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        with cond:
            hits.append("set")
            cond.notify()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert hits == ["set", "woke"]


class TestTrackedLockFactory:
    def test_disabled_returns_same_object(self):
        raw = threading.Lock()
        assert tracked_lock(raw, "X", enabled=False) is raw

    def test_enabled_wraps(self):
        raw = threading.Lock()
        wrapped = tracked_lock(raw, "X", enabled=True)
        assert isinstance(wrapped, TrackedLock)
        assert wrapped._lock is raw

    def test_no_double_wrap(self):
        wrapped = tracked_lock(threading.Lock(), "X", enabled=True)
        assert tracked_lock(wrapped, "X", enabled=True) is wrapped

    def test_env_default_is_identity_when_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        raw = threading.Lock()
        assert tracked_lock(raw, "X") is raw


class _FakeArena:
    """plane/grads/losses shaped like SharedArena, on private memory."""

    def __init__(self, plane_size=8, workers=2):
        self.plane = np.zeros(plane_size, dtype=np.float32)
        self.grads = np.zeros((workers, plane_size), dtype=np.float32)
        self.losses = np.zeros(workers, dtype=np.float64)


class TestArenaWriteFence:
    def test_correct_phase_sequence_passes(self):
        arena = _FakeArena()
        fence = ArenaWriteFence(arena, rank=1)
        for step in range(3):
            arena.grads[1] = step  # compute phase: own partials
            arena.losses[1] = step
            fence.seal_compute()
            arena.plane += 1.0  # update phase: plane
            fence.open_compute()

    def test_plane_write_during_compute_raises(self):
        arena = _FakeArena()
        fence = ArenaWriteFence(arena, rank=1)
        fence.open_compute()  # stamp the plane entering compute
        arena.plane[0] = 7.0  # seeded bug: out-of-phase plane write
        with pytest.raises(ArenaFenceError, match="plane"):
            fence.seal_compute()

    def test_partial_write_during_update_raises(self):
        arena = _FakeArena()
        fence = ArenaWriteFence(arena, rank=1)
        arena.grads[1] = 1.0
        fence.seal_compute()
        arena.grads[1, 0] = 9.0  # seeded bug: partial mutated mid-update
        with pytest.raises(ArenaFenceError, match=r"grads\[1\]"):
            fence.open_compute()

    def test_other_ranks_partials_are_not_this_fences_business(self):
        arena = _FakeArena()
        fence = ArenaWriteFence(arena, rank=0)
        arena.grads[0] = 1.0
        fence.seal_compute()
        arena.grads[1] = 5.0  # rank 1's row; rank 0's fence must not care
        fence.open_compute()

    def test_first_seal_has_no_plane_stamp(self):
        arena = _FakeArena()
        fence = ArenaWriteFence(arena, rank=0)
        arena.plane[0] = 3.0  # pre-step init writes are fine
        fence.seal_compute()


class TestGradientTripwire:
    def test_finite_grads_pass(self):
        m = mlp(6, (8,), 3).finalize(1)
        for p in m.parameters():
            p.grad = np.zeros(p.shape, dtype=np.float32)
        check_finite_gradients(m.named_parameters())

    def test_none_grads_are_skipped(self):
        m = mlp(6, (8,), 3).finalize(1)
        check_finite_gradients(m.named_parameters())

    def test_nan_grad_raises_with_parameter_name(self):
        m = mlp(6, (8,), 3).finalize(1)
        name, p = next(iter(m.named_parameters()))
        p.grad = np.full(p.shape, np.nan, dtype=np.float32)
        with pytest.raises(GradientTripwireError, match=name):
            check_finite_gradients(m.named_parameters())

    def test_inf_grad_raises(self):
        m = mlp(6, (8,), 3).finalize(1)
        p = m.parameters()[-1]
        p.grad = np.zeros(p.shape, dtype=np.float32)
        p.grad.reshape(-1)[0] = np.inf
        with pytest.raises(GradientTripwireError):
            check_finite_gradients(m.named_parameters())

    def test_callback_trips_mid_training(self):
        m = mlp(4, (8,), 2).finalize(1)
        ds = _toy_data()
        class PoisonGrad(GradTripwireCallback):
            """Corrupt one gradient right before the tripwire scan."""

            def on_backward_end(self, tr, step):
                tr.model.parameters()[0].grad[..., 0] = np.nan
                super().on_backward_end(tr, step)

        tr = Trainer(m, SGD(m, lr=0.1), callbacks=[PoisonGrad()])
        with pytest.raises(GradientTripwireError, match="at step"):
            tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=1)


class TestVerifyModel:
    def test_pass_with_sample(self):
        m = mlp(4, (8,), 2).finalize(1)
        ds = _toy_data(32)
        summary = verify_model(m, sample=(ds.images, ds.labels))
        assert summary["plane_ok"] and summary["grads_ok"]
        assert summary["parameters"] == len(m.parameters())


class TestSanitizedTraining:
    def test_trainer_installs_sanitizer_callbacks(self):
        m = mlp(4, (8,), 2).finalize(1)
        tr = Trainer(m, SGD(m, lr=0.1), sanitize=True)
        names = {type(cb).__name__ for cb in tr.callbacks}
        assert {
            "PlaneCheckCallback",
            "GradTripwireCallback",
            "WorkspacePoisonCallback",
        } <= names

    def test_env_var_enables_sanitize(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        m = mlp(4, (8,), 2).finalize(1)
        assert Trainer(m, SGD(m, lr=0.1)).sanitize

    def test_sanitized_smoke_train_passes(self):
        # The acceptance criterion: a short DropBack run under all three
        # sanitizers completes and still learns.
        m = mlp(4, (16,), 2).finalize(3)
        ds = _toy_data(192, seed=3)
        opt = DropBack(m, lr=0.3, k=m.num_parameters() // 2)
        tr = Trainer(m, opt, sanitize=True)
        h = tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=3)
        assert h.epochs_run == 3
        assert h.best_val_accuracy > 0.6
        check_plane_integrity(m)

    def test_sanitizer_callbacks_factory(self):
        assert len(sanitizer_callbacks()) == 3


class TestSlimmingPreservesPlane:
    """Satellite regression: prune_channels used to rebind γ/β ``.data``,
    detaching them from the plane; it must mask in place."""

    def _bn_model(self, seed=0):
        return Sequential(
            Linear(6, 8), BatchNorm1d(8), ReLU(), Linear(8, 3)
        ).finalize(seed)

    def test_all_params_stay_plane_backed_after_slimming(self):
        m = self._bn_model()
        for i, bn in enumerate(bn_gammas(m)):
            bn.gamma.data[...] = np.linspace(0.01, 1.0, bn.num_features) + i
        prune_channels(m, 0.5)
        assert all(p.plane_backed for p in m.parameters())
        check_plane_integrity(m)

    def test_slimming_under_detach_guard_does_not_trip(self):
        m = self._bn_model()
        install_detach_guard()
        prune_channels(m, 0.3)  # would raise if it still rebound .data
        check_plane_integrity(m)

    def test_pruned_channels_are_dead(self):
        m = self._bn_model()
        (bn,) = bn_gammas(m)
        bn.gamma.data[...] = np.linspace(0.01, 1.0, bn.num_features)
        masks = prune_channels(m, 0.5)
        dead = ~masks["bn0"]
        assert dead.any()
        np.testing.assert_array_equal(bn.gamma.data[dead], 0.0)
        np.testing.assert_array_equal(bn.beta.data[dead], 0.0)
