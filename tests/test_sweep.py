"""Tests for compression-sweep analysis."""

import pytest

from repro.analysis import SweepPoint, compression_sweep, find_knee
from repro.models import mnist_100_100


class TestCompressionSweep:
    def test_sweep_runs_all_ratios(self, tiny_mnist):
        points = compression_sweep(
            mnist_100_100, tiny_mnist, ratios=(2.0, 20.0), epochs=2
        )
        assert len(points) == 2
        assert points[0].compression == pytest.approx(2.0, rel=0.01)
        assert points[1].compression == pytest.approx(20.0, rel=0.01)

    def test_errors_are_valid(self, tiny_mnist):
        points = compression_sweep(mnist_100_100, tiny_mnist, ratios=(5.0,), epochs=2)
        assert 0.0 <= points[0].val_error <= 1.0
        assert points[0].k == round(89_610 / 5)

    def test_extreme_ratio_worse_than_mild(self, tiny_mnist):
        points = compression_sweep(
            mnist_100_100, tiny_mnist, ratios=(2.0, 300.0), epochs=4
        )
        assert points[1].val_error > points[0].val_error

    def test_empty_ratios_rejected(self, tiny_mnist):
        with pytest.raises(ValueError):
            compression_sweep(mnist_100_100, tiny_mnist, ratios=(), epochs=1)

    def test_sub_unity_ratio_rejected(self, tiny_mnist):
        with pytest.raises(ValueError):
            compression_sweep(mnist_100_100, tiny_mnist, ratios=(0.5,), epochs=1)


class TestFindKnee:
    def _points(self, errors_by_comp):
        return [
            SweepPoint(compression=c, k=int(1000 / c), val_error=e, best_epoch=0)
            for c, e in errors_by_comp
        ]

    def test_picks_largest_within_tolerance(self):
        pts = self._points([(2, 0.02), (5, 0.021), (20, 0.025), (60, 0.08)])
        knee = find_knee(pts, tolerance=0.01)
        assert knee.compression == 20

    def test_tight_tolerance_picks_best(self):
        pts = self._points([(2, 0.02), (60, 0.08)])
        knee = find_knee(pts, tolerance=0.0)
        assert knee.compression == 2

    def test_all_equal_picks_max_compression(self):
        pts = self._points([(2, 0.05), (10, 0.05), (50, 0.05)])
        assert find_knee(pts).compression == 50

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            find_knee([])
