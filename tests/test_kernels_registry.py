"""Dispatch-registry semantics: selection precedence, env handling, errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import kernels
from repro.tensor.kernels import registry


@pytest.fixture(autouse=True)
def _restore_selection():
    prev = kernels.get_backend()
    yield
    kernels.set_backend(prev)
    for op in kernels.list_ops():
        kernels.set_op_backend(op, None)


class TestSelection:
    def test_default_backend_is_fast(self):
        assert kernels.DEFAULT_BACKEND == "fast"

    def test_set_backend_changes_resolution(self):
        kernels.set_backend("reference")
        name, _ = kernels.resolve("matmul")
        assert name == "reference"
        kernels.set_backend("fast")
        name, _ = kernels.resolve("matmul")
        assert name == "fast"

    def test_set_backend_normalizes_case_and_whitespace(self):
        kernels.set_backend("  Reference ")
        assert kernels.get_backend() == "reference"

    def test_use_backend_restores_on_exit(self):
        before = kernels.get_backend()
        with kernels.use_backend("reference"):
            assert kernels.get_backend() == "reference"
        assert kernels.get_backend() == before

    def test_use_backend_restores_on_exception(self):
        before = kernels.get_backend()
        with pytest.raises(RuntimeError):
            with kernels.use_backend("reference"):
                raise RuntimeError("boom")
        assert kernels.get_backend() == before

    def test_per_op_override_beats_active_backend(self):
        kernels.set_backend("fast")
        kernels.set_op_backend("matmul", "reference")
        name, _ = kernels.resolve("matmul")
        assert name == "reference"
        # Other ops keep the active selection.
        other, _ = kernels.resolve("conv2d_forward")
        assert other == "fast"

    def test_override_cleared_with_none(self):
        kernels.set_op_backend("matmul", "reference")
        kernels.set_op_backend("matmul", None)
        name, _ = kernels.resolve("matmul")
        assert name == kernels.get_backend()

    def test_explicit_backend_argument_wins(self):
        kernels.set_backend("fast")
        name, _ = kernels.resolve("matmul", "reference")
        assert name == "reference"

    def test_missing_registration_falls_back_to_reference(self):
        # col2im is only registered on reference; resolving it under fast
        # must return the reference kernel, with the name reflecting that.
        kernels.set_backend("fast")
        name, fn = kernels.resolve("col2im")
        assert name == "reference"
        assert fn is registry._KERNELS["col2im"]["reference"]


class TestErrors:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            kernels.set_backend("cuda")

    def test_unknown_op_rejected_on_resolve(self):
        with pytest.raises(KeyError, match="unknown op"):
            kernels.resolve("flash_attention")

    def test_unknown_op_rejected_on_override(self):
        with pytest.raises(ValueError, match="unknown op"):
            kernels.set_op_backend("flash_attention", "fast")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):

            @registry.register_kernel("matmul", "reference")
            def clash(a, b):  # pragma: no cover - never called
                return a @ b


class TestEnvironment:
    def test_repro_backend_env_initializes_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        registry._ACTIVE[0] = None  # force a re-read of the environment
        try:
            assert kernels.get_backend() == "reference"
        finally:
            registry._ACTIVE[0] = None

    def test_invalid_env_backend_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        registry._ACTIVE[0] = None
        try:
            with pytest.raises(ValueError, match="unknown backend"):
                kernels.get_backend()
        finally:
            registry._ACTIVE[0] = None

    def test_thread_count_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "3")
        assert kernels.thread_count() == 3

    def test_thread_count_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "0")
        assert kernels.thread_count() == 1

    def test_thread_count_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "many")
        with pytest.raises(ValueError, match="REPRO_THREADS"):
            kernels.thread_count()


class TestIntrospection:
    def test_every_op_has_a_reference_kernel(self):
        for op in kernels.list_ops():
            assert "reference" in kernels.list_backends(op), op

    def test_op_table_is_a_copy(self):
        table = kernels.op_table()
        table["matmul"]["reference"] = None
        name, fn = kernels.resolve("matmul", "reference")
        assert fn is not None

    def test_expected_op_catalog(self):
        ops = set(kernels.list_ops())
        assert {
            "matmul", "im2col", "col2im",
            "conv2d_forward", "conv2d_backward",
            "relu_forward", "relu_backward",
            "batch_norm_forward", "batch_norm_backward",
            "bn_relu_forward", "bn_relu_backward",
            "max_pool2d_forward", "max_pool2d_backward",
            "avg_pool2d_forward", "avg_pool2d_backward",
        } <= ops


class TestTensorIntegration:
    def test_matmul_routes_through_selected_backend(self):
        from repro.tensor import Tensor

        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        with kernels.use_backend("reference"):
            ref = (a @ b).data
        with kernels.use_backend("fast"):
            fast = (a @ b).data
        np.testing.assert_array_equal(ref, fast)

    def test_backward_pinned_to_forward_backend(self):
        # Resolving the forward under one backend then switching before
        # backward must not mix kernel pairs: the ctx produced by a fast
        # forward is consumed by the fast backward.
        from repro.tensor import Tensor

        x = Tensor(np.array([[-1.0, 2.0]], dtype=np.float32), requires_grad=True)
        with kernels.use_backend("fast"):
            y = x.relu()
        with kernels.use_backend("reference"):
            y.sum().backward()
        np.testing.assert_array_equal(x.grad, np.array([[0.0, 1.0]], dtype=np.float32))
