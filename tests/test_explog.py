"""Tests for the JSONL experiment logger."""

import json

import numpy as np
import pytest

from repro.utils.explog import ExperimentLogger, iter_metrics, read_log


class TestExperimentLogger:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        log = ExperimentLogger(path, "table1")
        log.log({"k": 20000}, {"error": 0.017})
        log.log({"k": 1500}, {"error": 0.038})
        records = read_log(path)
        assert len(records) == 2
        assert records[0]["config"]["k"] == 20000
        assert records[1]["metrics"]["error"] == 0.038

    def test_sequence_numbers(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        log = ExperimentLogger(path, "x")
        for _ in range(3):
            log.log({}, {})
        assert [r["seq"] for r in read_log(path)] == [0, 1, 2]

    def test_numpy_values_serialized(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        log = ExperimentLogger(path, "x")
        rec = log.log(
            {"arr": np.arange(3), "f": np.float32(1.5)},
            {"i": np.int64(7), "nested": {"v": np.float64(0.25)}},
        )
        assert rec["config"]["arr"] == [0, 1, 2]
        loaded = read_log(path)[0]
        assert loaded["metrics"]["i"] == 7
        assert loaded["metrics"]["nested"]["v"] == 0.25

    def test_filter_by_experiment(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        ExperimentLogger(path, "a").log({}, {"v": 1})
        ExperimentLogger(path, "b").log({}, {"v": 2})
        assert len(read_log(path, "a")) == 1
        assert read_log(path, "b")[0]["metrics"]["v"] == 2

    def test_append_across_instances(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        ExperimentLogger(path, "a").log({}, {})
        ExperimentLogger(path, "a").log({}, {})
        assert len(read_log(path)) == 2

    def test_creates_parent_dirs(self, tmp_path):
        path = str(tmp_path / "deep" / "dir" / "runs.jsonl")
        ExperimentLogger(path, "a").log({}, {})
        assert len(read_log(path)) == 1

    def test_empty_experiment_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentLogger(str(tmp_path / "x.jsonl"), "")

    def test_corrupt_line_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="corrupt log line 1"):
            read_log(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"experiment": "a", "metrics": {}, "config": {}, "seq": 0}\n\n')
        assert len(read_log(str(path))) == 1

    def test_iter_metrics(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        log = ExperimentLogger(path, "sweep")
        for v in (0.1, 0.2, 0.3):
            log.log({}, {"error": v})
        assert list(iter_metrics(path, "sweep", "error")) == [0.1, 0.2, 0.3]
