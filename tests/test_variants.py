"""Tests for DropBack variants and trainer divergence handling."""

import numpy as np
import pytest

from repro.core import DropBack, UniformBudgetDropBack
from repro.data import DataLoader, Dataset
from repro.models import mlp, mnist_100_100
from repro.optim import SGD, ConstantLR
from repro.tensor import Tensor, cross_entropy
from repro.train import Trainer


def _step(model, opt, seed=0, in_dim=6, classes=3):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(16, in_dim)).astype(np.float32))
    y = rng.integers(0, classes, size=16)
    model.zero_grad()
    cross_entropy(model(x), y).backward()
    opt.step()


class TestUniformBudgetDropBack:
    def test_total_budget_honoured(self):
        m = mnist_100_100().finalize(1)
        opt = UniformBudgetDropBack(m, k=9_000, lr=0.4)
        assert sum(opt._layer_budgets) == 9_000

    def test_per_layer_budget_enforced(self):
        m = mlp(6, (8,), 3).finalize(1)
        opt = UniformBudgetDropBack(m, k=20, lr=0.3)
        _step(m, opt)
        counts = opt.tracked_counts()
        budgets = dict(zip([n for n, _ in opt._prunable], opt._layer_budgets))
        for name, count in counts.items():
            assert count == min(budgets[name], dict(m.named_parameters())[name].size)

    def test_every_layer_gets_at_least_one(self):
        m = mnist_100_100().finalize(1)
        opt = UniformBudgetDropBack(m, k=10, lr=0.4)
        assert all(b >= 1 for b in opt._layer_budgets)

    def test_untracked_regenerate(self):
        m = mlp(6, (8,), 3).finalize(1)
        opt = UniformBudgetDropBack(m, k=15, lr=0.3)
        for s in range(3):
            _step(m, opt, seed=s)
        assert opt.untracked_values_match_init()

    def test_allocation_differs_from_global(self, tiny_mnist):
        """Global selection concentrates budget; uniform spreads it — so
        the tracked sets differ by construction."""
        train, test = tiny_mnist
        results = {}
        for cls in (DropBack, UniformBudgetDropBack):
            m = mnist_100_100().finalize(9)
            opt = cls(m, k=2_000, lr=0.4)
            Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
                DataLoader(train, 64, seed=0), test, epochs=2
            )
            results[cls.__name__] = opt.tracked_counts()
        global_fc1 = results["DropBack"]["layers.1.weight"]
        uniform_fc1 = results["UniformBudgetDropBack"]["layers.1.weight"]
        assert global_fc1 != uniform_fc1

    def test_freeze_works(self):
        m = mlp(6, (8,), 3).finalize(1)
        opt = UniformBudgetDropBack(m, k=15, lr=0.3)
        _step(m, opt, seed=0)
        opt.freeze()
        mask = opt.tracked_mask
        _step(m, opt, seed=1)
        np.testing.assert_array_equal(opt.tracked_mask, mask)


@pytest.mark.filterwarnings("ignore:overflow:RuntimeWarning")
@pytest.mark.filterwarnings("ignore:invalid value:RuntimeWarning")
class TestDivergenceGuard:
    def _diverging_setup(self):
        """A learning rate large enough to blow up float32 quickly."""
        rng = np.random.default_rng(0)
        x = (rng.normal(size=(64, 8)) * 50).astype(np.float32)
        y = rng.integers(0, 3, size=64)
        ds = Dataset(x, y)
        m = mlp(8, (16,), 3).finalize(1)
        opt = SGD(m, lr=1e6)
        return m, opt, ds

    def test_divergence_detected_and_stopped(self):
        m, opt, ds = self._diverging_setup()
        tr = Trainer(m, opt, schedule=ConstantLR(1e6))
        h = tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=50)
        assert h.diverged
        assert h.epochs_run < 50

    def test_guard_can_be_disabled(self):
        m, opt, ds = self._diverging_setup()
        tr = Trainer(m, opt, schedule=ConstantLR(1e6), stop_on_divergence=False)
        h = tr.fit(DataLoader(ds, 32, seed=0), ds, epochs=2)
        assert not h.diverged
        assert h.epochs_run == 2

    def test_healthy_run_not_flagged(self, tiny_mnist):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(1)
        tr = Trainer(m, SGD(m, lr=0.4), schedule=ConstantLR(0.4))
        h = tr.fit(DataLoader(train, 64, seed=0), test, epochs=2)
        assert not h.diverged
