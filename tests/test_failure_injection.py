"""Failure-injection tests: corrupt inputs, wrong architectures, bad state.

A production library must fail loudly and precisely, not silently produce
wrong models.
"""

import numpy as np
import pytest

from repro.core import DropBack
from repro.data import DataLoader, Dataset
from repro.io import load_sparse, load_sparse_quantized, save_sparse
from repro.models import mlp, mnist_100_100
from repro.optim import SGD, ConstantLR
from repro.train import Trainer, evaluate


@pytest.fixture()
def trained_sparse_ckpt(tmp_path, tiny_mnist):
    train, test = tiny_mnist
    m = mnist_100_100().finalize(3)
    opt = DropBack(m, k=4_000, lr=0.4)
    Trainer(m, opt, schedule=ConstantLR(0.4)).fit(
        DataLoader(train, 64, seed=0), test, epochs=1
    )
    path = str(tmp_path / "ck.npz")
    save_sparse(m, opt, path)
    return m, opt, path


class TestCheckpointCorruption:
    def test_wrong_architecture_rejected(self, trained_sparse_ckpt):
        _, _, path = trained_sparse_ckpt
        # LeNet-300-100 has MORE params, so indices stay in range — but the
        # checkpoint came from a different architecture.  The load succeeds
        # mechanically (format is architecture-agnostic), so the guard is
        # the caller's; a *smaller* model must hard-fail on indices:
        with pytest.raises(ValueError, match="indices exceed"):
            load_sparse(mlp(10, (5,), 3), path)

    def test_truncated_file_rejected(self, trained_sparse_ckpt, tmp_path):
        _, _, path = trained_sparse_ckpt
        raw = open(path, "rb").read()
        bad = str(tmp_path / "trunc.npz")
        with open(bad, "wb") as fh:
            fh.write(raw[: len(raw) // 2])
        with pytest.raises(Exception):  # zipfile/numpy error surface
            load_sparse(mnist_100_100(), bad)

    def test_version_mismatch_rejected(self, trained_sparse_ckpt, tmp_path):
        _, _, path = trained_sparse_ckpt
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["__format__"] = np.int64(99)
        bad = str(tmp_path / "ver.npz")
        np.savez(bad, **payload)
        with pytest.raises(ValueError, match="version"):
            load_sparse(mnist_100_100(), bad)

    def test_quantized_loader_rejects_plain_sparse(self, trained_sparse_ckpt):
        _, _, path = trained_sparse_ckpt
        with pytest.raises(ValueError, match="use load_sparse"):
            load_sparse_quantized(mnist_100_100(), path)

    def test_wrong_seed_changes_untracked_weights(self, trained_sparse_ckpt, tmp_path):
        """Tampering with the stored seed silently regenerates different
        untracked weights — the accuracy collapse demonstrates why the
        seed is part of the model identity."""
        m, opt, path = trained_sparse_ckpt
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["seed"] = np.int64(int(payload["seed"]) + 1)
        tampered = str(tmp_path / "tampered.npz")
        np.savez(tampered, **payload)
        m2 = load_sparse(mnist_100_100(), tampered)
        # Untracked weights differ from the original model's.
        mask = opt.tracked_mask
        flat_orig = np.concatenate([p.data.reshape(-1) for p in m.parameters()])
        flat_tamp = np.concatenate([p.data.reshape(-1) for p in m2.parameters()])
        assert not np.array_equal(flat_orig[~mask], flat_tamp[~mask])
        np.testing.assert_array_equal(flat_orig[mask], flat_tamp[mask])


class TestOptimizerMisuse:
    def test_dropback_on_unfinalized_model(self):
        with pytest.raises(RuntimeError):
            DropBack(mnist_100_100(), k=100, lr=0.4)

    def test_step_without_backward_is_safe(self):
        m = mlp(4, (4,), 2).finalize(1)
        opt = DropBack(m, k=5, lr=0.1)
        opt.step()  # no grads: candidates = current weights; must not crash
        assert opt.tracked_mask.sum() == 5

    def test_refinalize_resets_weights(self):
        m = mlp(4, (4,), 2).finalize(1)
        w1 = m[1].weight.data.copy()  # m[0] is Flatten
        m[1].weight.data = m[1].weight.data + 1.0
        m.finalize(1)
        np.testing.assert_array_equal(m[1].weight.data, w1)


class TestDataEdgeCases:
    def test_single_sample_batch(self):
        ds = Dataset(np.ones((1, 4), np.float32), np.array([0]))
        batches = list(DataLoader(ds, 8, shuffle=False))
        assert len(batches) == 1
        assert batches[0][0].shape == (1, 4)

    def test_evaluate_empty_loader_raises(self):
        m = mlp(4, (4,), 2).finalize(1)
        ds = Dataset(np.ones((3, 4), np.float32), np.array([0, 1, 0]))
        loader = DataLoader(ds, 8, drop_last=True)  # 3 < 8 -> zero batches
        with pytest.raises(ValueError):
            evaluate(m, loader)

    def test_training_with_constant_inputs_does_not_crash(self):
        ds = Dataset(np.zeros((32, 4), np.float32), np.arange(32) % 2)
        m = mlp(4, (4,), 2).finalize(1)
        tr = Trainer(m, SGD(m, lr=0.1), schedule=ConstantLR(0.1))
        h = tr.fit(DataLoader(ds, 16, seed=0), ds, epochs=2)
        assert not h.diverged
