"""Tests for the baseline pruning techniques (magnitude, VD, slimming)."""

import numpy as np
import pytest

from repro.models import mlp, mnist_100_100, wrn_10_1
from repro.nn import BatchNorm2d, Conv2d, Flatten, Linear, ReLU, Sequential
from repro.optim import SGD
from repro.prune import (
    LOG_ALPHA_THRESHOLD,
    MagnitudePruning,
    SlimmingSGD,
    VDConv2d,
    VDLinear,
    bn_gammas,
    make_variational,
    prune_channels,
    slimming_compression,
    total_kl,
    vd_loss_fn,
    vd_sparsity,
)
from repro.tensor import Tensor, cross_entropy


def _step(model, opt, in_dim=6, classes=3, seed=0, loss_fn=cross_entropy):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(16, in_dim)).astype(np.float32))
    y = rng.integers(0, classes, size=16)
    model.zero_grad()
    loss = loss_fn(model(x), y)
    loss.backward()
    opt.step()
    return loss.item()


class TestMagnitudePruning:
    def test_sparsity_enforced_each_step(self):
        m = mlp(6, (8,), 3).finalize(1)
        opt = MagnitudePruning(m, lr=0.2, prune_fraction=0.75)
        for s in range(3):
            _step(m, opt, seed=s)
            assert opt.sparsity() == pytest.approx(0.75, abs=0.01)

    def test_keeps_largest_weights(self):
        m = mlp(6, (8,), 3).finalize(1)
        opt = MagnitudePruning(m, lr=1e-12, prune_fraction=0.5)
        w_before = np.concatenate(
            [p.data.reshape(-1) for name, p in m.named_parameters() if name.endswith("weight")]
        )
        _step(m, opt)
        w_after = np.concatenate(
            [p.data.reshape(-1) for name, p in m.named_parameters() if name.endswith("weight")]
        )
        surviving = np.abs(w_before[w_after != 0])
        pruned = np.abs(w_before[w_after == 0])
        assert surviving.min() >= pruned.max() - 1e-9

    def test_biases_untouched_by_default(self):
        m = mlp(6, (8,), 3).finalize(1)
        opt = MagnitudePruning(m, lr=0.2, prune_fraction=0.9)
        for s in range(3):
            _step(m, opt, seed=s)
        biases = [p for name, p in m.named_parameters() if name.endswith("bias")]
        # biases get SGD updates but never forced to zero en masse
        assert all(np.count_nonzero(b.data) > 0 for b in biases if b.size > 2)

    def test_compression_ratio(self):
        m = mnist_100_100().finalize(1)
        opt = MagnitudePruning(m, lr=0.1, prune_fraction=0.8)
        assert 4.0 < opt.compression_ratio < 5.1

    @pytest.mark.parametrize("bad", [0.0, 1.0, 1.5])
    def test_invalid_fraction(self, bad):
        with pytest.raises(ValueError):
            MagnitudePruning(mlp(4, (4,), 2).finalize(1), lr=0.1, prune_fraction=bad)

    def test_zeroed_weights_differ_from_dropback_regeneration(self):
        """Magnitude pruning zeroes; DropBack regenerates — the paper's key
        structural difference (its Fig. 5 explanation)."""
        m = mlp(6, (8,), 3).finalize(1)
        opt = MagnitudePruning(m, lr=0.2, prune_fraction=0.75)
        _step(m, opt)
        w = np.concatenate(
            [p.data.reshape(-1) for name, p in m.named_parameters() if name.endswith("weight")]
        )
        w0 = np.concatenate(
            [
                p.initial_values(1).reshape(-1)
                for name, p in m.named_parameters()
                if name.endswith("weight")
            ]
        )
        dropped = w == 0
        # dropped weights were NOT zero at init: information destroyed.
        assert np.abs(w0[dropped]).mean() > 0


class TestVariationalDropout:
    def _vd_model(self, seed=1):
        m = make_variational(mlp(6, (8,), 3))
        return m.finalize(seed)

    def test_conversion_swaps_layers(self):
        m = make_variational(mlp(6, (8,), 3))
        kinds = [type(x).__name__ for x in m.modules()]
        assert "VDLinear" in kinds
        assert "Linear" not in kinds

    def test_conversion_on_conv_model(self):
        m = make_variational(wrn_10_1())
        kinds = [type(x).__name__ for x in m.modules()]
        assert "VDConv2d" in kinds
        assert "Conv2d" not in kinds
        assert "VDLinear" in kinds

    def test_param_count_doubles_weights(self):
        base = mlp(6, (8,), 3).num_parameters()
        vd = make_variational(mlp(6, (8,), 3)).num_parameters()
        weights = 6 * 8 + 8 * 3
        assert vd == base + weights

    def test_forward_is_stochastic_in_train(self):
        m = self._vd_model()
        x = Tensor(np.ones((4, 6), np.float32))
        a = m(x).numpy().copy()
        b = m(x).numpy().copy()
        assert not np.array_equal(a, b)

    def test_forward_deterministic_in_eval(self):
        m = self._vd_model()
        m.eval()
        x = Tensor(np.ones((4, 6), np.float32))
        np.testing.assert_array_equal(m(x).numpy(), m(x).numpy())

    def test_kl_finite_and_negative_at_init(self):
        # At init log_sigma2=-8 => alpha tiny => KL ~ 0 (slightly positive).
        m = self._vd_model()
        kl = total_kl(m).item()
        assert np.isfinite(kl)
        assert kl >= -1e-3

    def test_total_kl_requires_vd_layers(self):
        with pytest.raises(ValueError):
            total_kl(mlp(4, (4,), 2).finalize(1))

    def test_sparsity_zero_at_init(self):
        assert vd_sparsity(self._vd_model()) == 0.0

    def test_kl_pressure_creates_sparsity(self):
        m = self._vd_model()
        loss_fn = vd_loss_fn(m, n_train=16, kl_weight=50.0)
        opt = SGD(m, lr=0.1)
        for s in range(100):
            _step(m, opt, seed=s % 4, loss_fn=loss_fn)
        assert vd_sparsity(m) > 0.3

    def test_pruned_weights_silent_at_inference(self):
        m = self._vd_model()
        layer = [x for x in m.modules() if isinstance(x, VDLinear)][0]
        # force all alphas huge
        layer.log_sigma2.data[...] = 20.0
        m.eval()
        assert layer.sparsity() == 1.0
        x = Tensor(np.ones((2, 6), np.float32))
        out = m(x).numpy()
        assert np.all(np.isfinite(out))

    def test_vd_loss_fn_validation(self):
        with pytest.raises(ValueError):
            vd_loss_fn(self._vd_model(), n_train=0)

    def test_threshold_constant(self):
        assert LOG_ALPHA_THRESHOLD == 3.0


class TestNetworkSlimming:
    def _conv_model(self, seed=1):
        return wrn_10_1(in_channels=3).finalize(seed)

    def test_requires_batchnorm(self):
        m = mlp(6, (8,), 3).finalize(1)
        with pytest.raises(ValueError):
            SlimmingSGD(m, lr=0.1)

    def test_l1_shrinks_gammas(self):
        m = self._conv_model()
        opt = SlimmingSGD(m, lr=0.1, l1=0.05)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 3, 16, 16)).astype(np.float32))
        y = rng.integers(0, 10, size=4)
        g0 = np.concatenate([bn.gamma.data for bn in bn_gammas(m)])
        for _ in range(10):
            m.zero_grad()
            loss = cross_entropy(m(x), y)
            loss.backward()
            opt.step()
        g1 = np.concatenate([bn.gamma.data for bn in bn_gammas(m)])
        assert np.abs(g1).mean() < np.abs(g0).mean()

    def test_prune_channels_zeroes_smallest(self):
        m = self._conv_model()
        # make gammas distinct
        for i, bn in enumerate(bn_gammas(m)):
            bn.gamma.data = np.linspace(0.01, 1.0, bn.num_features).astype(np.float32) + i
        masks = prune_channels(m, 0.3)
        total = sum(len(v) for v in masks.values())
        dead = sum(int((~v).sum()) for v in masks.values())
        n_prune = round(0.3 * total)
        # The keep-strongest-channel fallback may rescue one channel per
        # fully-below-threshold layer.
        assert n_prune - len(masks) <= dead <= n_prune

    def test_prune_zero_fraction_is_noop(self):
        m = self._conv_model()
        before = [bn.gamma.data.copy() for bn in bn_gammas(m)]
        prune_channels(m, 0.0)
        for bn, prev in zip(bn_gammas(m), before):
            np.testing.assert_array_equal(bn.gamma.data, prev)

    def test_never_kills_whole_layer(self):
        m = self._conv_model()
        prune_channels(m, 0.95)
        for bn in bn_gammas(m):
            assert np.count_nonzero(bn.gamma.data) >= 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            prune_channels(self._conv_model(), 1.0)

    def test_compression_increases_with_pruning(self):
        m = self._conv_model()
        base = slimming_compression(m)
        prune_channels(m, 0.5)
        assert slimming_compression(m) > base
        assert base == pytest.approx(1.0, abs=0.01)

    def test_pruned_channels_are_dead_end_to_end(self):
        """A zeroed BN channel contributes nothing to the output."""
        m = Sequential(
            Conv2d(1, 4, 3, padding=1, bias=False),
            BatchNorm2d(4),
            ReLU(),
            Flatten(),
            Linear(4 * 4 * 4, 2),
        ).finalize(1)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(2, 1, 4, 4)).astype(np.float32))
        m.eval()
        bn = m[1]
        bn.gamma.data[...] = np.array([1, 1, 0, 0], np.float32)
        bn.beta.data[...] = 0.0
        out1 = m(x).numpy().copy()
        # Changing the dead channels' incoming conv filters must not matter.
        m[0].weight.data[2:] += 100.0
        out2 = m(x).numpy()
        np.testing.assert_allclose(out1, out2, atol=1e-4)

    def test_slimming_l1_validation(self):
        with pytest.raises(ValueError):
            SlimmingSGD(self._conv_model(), lr=0.1, l1=-1.0)
