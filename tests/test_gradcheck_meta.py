"""Meta-tests: the gradient checker itself must reject broken backwards.

``gradcheck`` is the oracle every op test leans on, so it gets its own
adversarial coverage: custom ops with seeded gradient bugs (wrong scale,
wrong sign, dropped term) that it must reject, and pass-cases over the
real conv/pool/batchnorm ops wired through the sanitizer's NaN tripwire
(:func:`repro.analyze.sanitize.check_finite_gradients`) so a finite but
wrong gradient and a non-finite one are both loud failures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analyze.sanitize import GradientTripwireError, check_finite_gradients
from repro.tensor import (
    Tensor,
    avg_pool2d,
    batch_norm,
    conv2d,
    global_avg_pool2d,
    gradcheck,
    max_pool2d,
)


def _custom_op(fn, grad_fn):
    """Build a unary custom op from forward/backward ndarray functions."""

    def op(x: Tensor) -> Tensor:
        def backward(g, out=None):
            if x.requires_grad:
                out._accumulate(x, grad_fn(g, x.data))

        out = Tensor.from_op(fn(x.data), (x,), lambda g: backward(g, out))
        return out

    return op


class TestGradcheckRejectsSeededBugs:
    """Each op's forward is x^3; only one backward is right."""

    cases = {
        "correct": lambda g, x: g * 3.0 * x**2,
        "wrong_scale": lambda g, x: g * 2.0 * x**2,
        "wrong_sign": lambda g, x: -g * 3.0 * x**2,
        "dropped_term": lambda g, x: g * np.ones_like(x),
    }

    def _tensor(self):
        return Tensor(np.array([1.2, -0.7, 0.4]), requires_grad=True)

    def test_correct_backward_passes(self):
        op = _custom_op(lambda x: x**3, self.cases["correct"])
        t = self._tensor()
        assert gradcheck(lambda: op(t).sum(), [t])

    @pytest.mark.parametrize("bug", ["wrong_scale", "wrong_sign", "dropped_term"])
    def test_broken_backward_rejected(self, bug):
        op = _custom_op(lambda x: x**3, self.cases[bug])
        t = self._tensor()
        with pytest.raises(AssertionError, match="mismatch"):
            gradcheck(lambda: op(t).sum(), [t])
        assert not gradcheck(lambda: op(t).sum(), [t], raise_on_fail=False)

    def test_nan_producing_backward_is_loud(self):
        # A backward emitting NaN: gradcheck reports a mismatch, and the
        # tripwire flags the surviving gradient as non-finite.
        op = _custom_op(lambda x: x**3, lambda g, x: g * np.full_like(x, np.nan))
        t = self._tensor()
        assert not gradcheck(lambda: op(t).sum(), [t], raise_on_fail=False)
        op(t).sum().backward()
        with pytest.raises(GradientTripwireError):
            check_finite_gradients([("t", t)])


class TestRealOpsPassUnderTripwire:
    """conv/pool/batchnorm gradients are correct *and* finite."""

    def _checked(self, f, tensors, named):
        assert gradcheck(f, tensors)
        # Re-run one backward so grads exist, then sweep the tripwire.
        for t in tensors:
            t.grad = None
        f().backward()
        check_finite_gradients(named)

    def test_conv2d(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.5, requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        self._checked(
            lambda: (conv2d(x, w, b, stride=1, pad=1) ** 2).sum(),
            [x, w, b],
            [("x", x), ("w", w), ("b", b)],
        )

    def test_max_pool2d(self):
        rng = np.random.default_rng(1)
        # Distinct values so the argmax is stable under the FD perturbation.
        vals = rng.permutation(2 * 1 * 4 * 4).astype(np.float64)
        x = Tensor(vals.reshape(2, 1, 4, 4) * 0.1, requires_grad=True)
        self._checked(
            lambda: (max_pool2d(x, kernel=2) ** 2).sum(), [x], [("x", x)]
        )

    def test_avg_pool2d(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)
        self._checked(
            lambda: (avg_pool2d(x, kernel=2) ** 2).sum(), [x], [("x", x)]
        )

    def test_global_avg_pool2d(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        self._checked(
            lambda: (global_avg_pool2d(x) ** 2).sum(), [x], [("x", x)]
        )

    def test_batch_norm(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        gamma = Tensor(rng.uniform(0.5, 1.5, size=3), requires_grad=True)
        beta = Tensor(rng.normal(size=3), requires_grad=True)

        def f():
            # Fresh running buffers per call: batch_norm mutates them in
            # place, which would skew the finite-difference evaluations.
            rm = np.zeros(3)
            rv = np.ones(3)
            return (batch_norm(x, gamma, beta, rm, rv, training=True) ** 2).sum()

        self._checked(f, [x, gamma, beta], [("x", x), ("gamma", gamma), ("beta", beta)])
