"""Validate the CI pipeline config and the perf-regression gate it calls.

The workflow file must stay loadable by a YAML parser and keep the five
jobs the pipeline is built around (tests, lint, bench-smoke, analyze,
serve-bench); the ``scripts/check_perf_report.py`` comparison logic is
tested directly by importing the script as a module.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.profile import OpStat, PerfReport

REPO_ROOT = Path(__file__).resolve().parent.parent

yaml = pytest.importorskip("yaml")


@pytest.fixture(scope="module")
def workflow() -> dict:
    path = REPO_ROOT / ".github" / "workflows" / "ci.yml"
    assert path.is_file(), "CI workflow file missing"
    return yaml.safe_load(path.read_text())


class TestWorkflowConfig:
    def test_parses_and_has_expected_jobs(self, workflow):
        assert set(workflow["jobs"]) == {
            "tests", "lint", "bench-smoke", "analyze", "serve-bench"
        }

    def test_concurrency_cancels_superseded_runs(self, workflow):
        conc = workflow["concurrency"]
        assert conc["cancel-in-progress"] is True
        assert "github.ref" in conc["group"]

    def test_every_job_caches_pip(self, workflow):
        for name, job in workflow["jobs"].items():
            caches = [s for s in job["steps"] if "actions/cache" in s.get("uses", "")]
            assert caches, f"job {name} has no pip cache step"
            with_ = caches[0]["with"]
            assert with_["path"] == "~/.cache/pip"
            # Keyed on the dependency manifest so edits invalidate the cache.
            assert "hashFiles('pyproject.toml')" in with_["key"]

    def test_triggers_on_push_and_pr(self, workflow):
        # YAML 1.1 parses the bare key `on` as boolean True
        triggers = workflow.get("on", workflow.get(True))
        assert "pull_request" in triggers
        assert triggers["push"]["branches"] == ["main"]

    def test_tests_job_covers_python_matrix(self, workflow):
        matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.10", "3.12"]
        steps = " ".join(s.get("run", "") for s in workflow["jobs"]["tests"]["steps"])
        assert "pytest" in steps

    def test_lint_job_runs_ruff_and_compileall(self, workflow):
        steps = " ".join(s.get("run", "") for s in workflow["jobs"]["lint"]["steps"])
        assert "ruff check src tests benchmarks" in steps
        assert "compileall" in steps

    def test_bench_smoke_uploads_perf_artifact(self, workflow):
        job = workflow["jobs"]["bench-smoke"]
        runs = " ".join(s.get("run", "") for s in job["steps"])
        assert "check_perf_report.py" in runs
        env = [s.get("env", {}) for s in job["steps"]]
        assert {"REPRO_BENCH_SCALE": "tiny"} in env
        uploads = [s for s in job["steps"] if "upload-artifact" in s.get("uses", "")]
        assert uploads and "perf_*.json" in uploads[0]["with"]["path"]


def _load_checker():
    path = REPO_ROOT / "scripts" / "check_perf_report.py"
    spec = importlib.util.spec_from_file_location("check_perf_report", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _report(name: str, seconds_by_op: dict[str, float]) -> PerfReport:
    return PerfReport(
        name=name,
        ops={
            op: OpStat(name=op, calls=1, total_seconds=s, bytes_allocated=0)
            for op, s in seconds_by_op.items()
        },
    )


class TestCheckPerfReport:
    def test_identical_reports_pass(self):
        mod = _load_checker()
        rep = _report("a", {"op": 1.0})
        regressions, rows = mod.compare(rep, rep, threshold=0.30, min_seconds=0.005)
        assert regressions == []
        assert len(rows) == 1

    def test_regression_detected_past_threshold(self):
        mod = _load_checker()
        base = _report("base", {"slow": 1.0, "ok": 1.0})
        cur = _report("cur", {"slow": 1.5, "ok": 1.1})
        regressions, _ = mod.compare(base, cur, threshold=0.30, min_seconds=0.005)
        assert [r[0] for r in regressions] == ["slow"]

    def test_noise_floor_skips_fast_ops(self):
        mod = _load_checker()
        base = _report("base", {"tiny": 0.001})
        cur = _report("cur", {"tiny": 0.004})  # 4x slower but under the floor
        regressions, _ = mod.compare(base, cur, threshold=0.30, min_seconds=0.005)
        assert regressions == []

    def test_new_and_removed_ops_never_fail(self):
        mod = _load_checker()
        base = _report("base", {"gone": 1.0})
        cur = _report("cur", {"fresh": 5.0})
        regressions, rows = mod.compare(base, cur, threshold=0.30, min_seconds=0.005)
        assert regressions == []
        statuses = {row[0]: row[3] for row in rows}
        assert statuses == {"fresh": "new", "gone": "removed"}

    def test_main_exit_codes(self, tmp_path, capsys):
        mod = _load_checker()
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        _report("base", {"op": 1.0}).write(base)
        _report("cur", {"op": 2.0}).write(cur)
        assert mod.main([str(base), str(base)]) == 0
        assert mod.main([str(base), str(cur)]) == 1
        assert "regressed" in capsys.readouterr().out


class TestAnalyzeJobWiring:
    """The analyze job must lint vs the committed baseline and smoke-train
    with the runtime sanitizers on."""

    def test_lints_against_committed_baseline(self, workflow):
        runs = " ".join(s.get("run", "") for s in workflow["jobs"]["analyze"]["steps"])
        assert "repro analyze src" in runs
        assert "--baseline analyze_baseline.json" in runs
        assert "--json analyze_findings.json" in runs

    def test_lint_emits_github_annotations(self, workflow):
        runs = " ".join(s.get("run", "") for s in workflow["jobs"]["analyze"]["steps"])
        assert "--format github" in runs

    def test_pass1_index_is_cached_on_source_hash(self, workflow):
        job = workflow["jobs"]["analyze"]
        caches = [s for s in job["steps"] if "actions/cache" in s.get("uses", "")]
        # caches[0] is the pip cache every job carries; the index cache is
        # the analyze job's own.
        index = next(
            c for c in caches
            if ".repro-analyze-index.json" in c["with"]["path"]
        )
        assert "hashFiles('src/**/*.py')" in index["with"]["key"]
        runs = " ".join(s.get("run", "") for s in job["steps"])
        assert "--index-cache .repro-analyze-index.json" in runs

    def test_concurrency_rules_gate_is_zero_debt(self, workflow):
        # RPA010-013 run with no baseline: any finding fails the job.
        runs = [s.get("run", "") for s in workflow["jobs"]["analyze"]["steps"]]
        gate = next(r for r in runs if "--concurrency" in r)
        assert "--no-baseline" in gate

    def test_committed_analyze_baseline_exists(self):
        import json

        path = REPO_ROOT / "analyze_baseline.json"
        assert path.is_file(), "committed analyze baseline missing"
        data = json.loads(path.read_text())
        assert "entries" in data and data["schema_version"] == 2
        # v2 fingerprints are path-free: code:scope:snippet.
        for fingerprint in data["entries"]:
            code, scope, snippet = fingerprint.split(":", 2)
            assert code.startswith("RPA") and scope and snippet

    def test_smoke_train_runs_under_sanitizers(self, workflow):
        job = workflow["jobs"]["analyze"]
        env = [s.get("env", {}) for s in job["steps"]]
        assert {"REPRO_SANITIZE": "1"} in env
        runs = " ".join(s.get("run", "") for s in job["steps"])
        assert "repro train" in runs
        assert "--perf-out" in runs

    def test_findings_uploaded_as_artifact(self, workflow):
        job = workflow["jobs"]["analyze"]
        uploads = [s for s in job["steps"] if "upload-artifact" in s.get("uses", "")]
        assert uploads and "analyze_findings.json" in uploads[0]["with"]["path"]


class TestSanitizedReportsSkipPerfGate:
    """Sanitizer overhead must not trip the perf gate (satellite of the
    repro.analyze PR): reports stamped ``meta.sanitize`` are excluded."""

    def _sanitized(self, name: str, seconds_by_op: dict[str, float]) -> PerfReport:
        rep = _report(name, seconds_by_op)
        rep.meta["sanitize"] = True
        return rep

    def test_sanitized_current_skips_gate(self, tmp_path, capsys):
        mod = _load_checker()
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        _report("base", {"op": 1.0}).write(base)
        self._sanitized("cur", {"op": 50.0}).write(cur)  # huge "regression"
        assert mod.main([str(base), str(cur)]) == 0
        assert "SKIP" in capsys.readouterr().out

    def test_sanitized_baseline_skips_gate(self, tmp_path, capsys):
        mod = _load_checker()
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        self._sanitized("base", {"op": 1.0}).write(base)
        _report("cur", {"op": 50.0}).write(cur)
        assert mod.main([str(base), str(cur)]) == 0
        assert "SKIP" in capsys.readouterr().out

    def test_allow_sanitized_restores_gating(self, tmp_path, capsys):
        mod = _load_checker()
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        self._sanitized("base", {"op": 1.0}).write(base)
        self._sanitized("cur", {"op": 50.0}).write(cur)
        assert mod.main([str(base), str(cur), "--allow-sanitized"]) == 1
        out = capsys.readouterr().out
        assert "SKIP" not in out
        assert "regressed" in out

    def test_unsanitized_reports_still_gate(self, tmp_path, capsys):
        mod = _load_checker()
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        _report("base", {"op": 1.0}).write(base)
        _report("cur", {"op": 50.0}).write(cur)
        assert mod.main([str(base), str(cur)]) == 1


class TestPerfGateWiring:
    """The bench-smoke job must gate on the committed perf baseline."""

    def test_baseline_stashed_before_bench_regenerates_it(self, workflow):
        steps = workflow["jobs"]["bench-smoke"]["steps"]
        runs = [s.get("run", "") for s in steps]
        stash = next(i for i, r in enumerate(runs) if "perf_dropback_step.baseline.json" in r)
        bench = next(i for i, r in enumerate(runs) if "test_perf_dropback_step_paths" in r)
        gate = next(
            i for i, r in enumerate(runs)
            if "check_perf_report.py" in r and "--normalize" in r
        )
        assert stash < bench < gate

    def test_gate_is_normalized_and_blocking(self, workflow):
        runs = " ".join(
            s.get("run", "") for s in workflow["jobs"]["bench-smoke"]["steps"]
        )
        # Ratios, not machine-dependent wall times, are what CI compares.
        assert "--normalize dropback.reference_step" in runs
        assert "/tmp/perf_dropback_step.baseline.json" in runs

    def test_committed_baseline_exists_and_has_gated_ops(self):
        path = REPO_ROOT / "benchmarks" / "results" / "perf_dropback_step.json"
        assert path.is_file(), "committed perf baseline missing"
        report = PerfReport.load(path)
        for op in ("dropback.step", "dropback.step.frozen", "dropback.reference_step"):
            assert op in report.ops, op
            assert report.ops[op].total_seconds > 0


class TestKernelGateWiring:
    """The bench-smoke job must also regenerate the kernel micro-bench and
    gate the fast backend's speedups against the committed baseline."""

    def test_baseline_stashed_before_bench_regenerates_it(self, workflow):
        steps = workflow["jobs"]["bench-smoke"]["steps"]
        runs = [s.get("run", "") for s in steps]
        stash = next(i for i, r in enumerate(runs) if "perf_kernels.baseline.json" in r)
        bench = next(i for i, r in enumerate(runs) if "repro kernels --bench" in r)
        gate = next(
            i for i, r in enumerate(runs)
            if "perf_kernels.baseline.json" in r and "check_perf_report.py" in r
        )
        assert stash < bench < gate

    def test_gate_normalizes_by_reference_and_gates_speedups(self, workflow):
        runs = " ".join(s.get("run", "") for s in workflow["jobs"]["bench-smoke"]["steps"])
        assert "--normalize kernels.conv2d_forward.reference" in runs
        # Kernel minima are sub-millisecond; the default noise floor would
        # silently skip every op, so the job must zero it.
        assert "--min-seconds 0.0" in runs
        assert "--gate-meta speedup_conv_gemm:1.1" in runs
        assert "--gate-meta speedup_bn_relu:1.2" in runs
        assert "--gate-meta speedup_conv_forward:1.0" in runs

    def test_tests_job_runs_parity_suite_on_reference_backend(self, workflow):
        job = workflow["jobs"]["tests"]
        env = [s.get("env", {}) for s in job["steps"]]
        assert {"REPRO_BACKEND": "reference"} in env
        runs = " ".join(s.get("run", "") for s in job["steps"])
        assert "test_kernels_parity.py" in runs

    def test_committed_kernel_baseline_exists_and_has_gated_ops(self):
        path = REPO_ROOT / "benchmarks" / "results" / "perf_kernels.json"
        assert path.is_file(), "committed kernel bench baseline missing"
        report = PerfReport.load(path)
        for op in (
            "kernels.matmul.reference",
            "kernels.matmul.fast",
            "kernels.conv2d_forward.reference",
            "kernels.conv2d_forward.fast",
            "kernels.bn_relu_forward.reference",
            "kernels.bn_relu_forward.fast",
        ):
            assert op in report.ops, op
            assert report.ops[op].total_seconds > 0
        assert report.meta["speedup_conv_gemm"] >= 1.1
        assert report.meta["speedup_bn_relu"] >= 1.2
        assert report.meta["speedup_conv_forward"] >= 1.0

    def test_threaded_gate_is_conditional_on_core_count(self, workflow):
        # The threaded-GEMM floor is only honest with >= 2 CPUs: on a
        # single core the thread split is pure overhead.  The gate step
        # must run the bench with REPRO_THREADS and skip below 2 cores.
        steps = workflow["jobs"]["bench-smoke"]["steps"]
        run = next(
            s["run"] for s in steps
            if "speedup_threaded_gemm" in s.get("run", "")
        )
        assert "nproc" in run
        assert "REPRO_THREADS" in run
        assert "--gate-meta speedup_threaded_gemm:1.05" in run
        assert "skip" in run  # the below-2-cores branch says so

    def test_committed_kernel_baseline_records_threaded_meta(self):
        report = PerfReport.load(
            REPO_ROOT / "benchmarks" / "results" / "perf_kernels.json"
        )
        # Recorded for observability on every host; only *gated* on
        # multi-core runners, so no floor assertion here.
        assert "speedup_threaded_gemm" in report.meta
        assert report.meta["cpu_count"] >= 1
        assert "kernels.matmul.threaded" in report.ops


class TestParallelGateWiring:
    """The bench-smoke job must regenerate the data-parallel scaling bench
    and gate it against the committed baseline, applying the
    scaling-efficiency floor only on multi-core runners."""

    def test_baseline_stashed_before_bench_regenerates_it(self, workflow):
        steps = workflow["jobs"]["bench-smoke"]["steps"]
        runs = [s.get("run", "") for s in steps]
        stash = next(i for i, r in enumerate(runs) if "perf_parallel.baseline.json" in r)
        bench = next(i for i, r in enumerate(runs) if "bench_parallel.py" in r)
        gate = next(
            i for i, r in enumerate(runs)
            if "perf_parallel.baseline.json" in r and "check_perf_report.py" in r
        )
        assert stash < bench < gate

    def test_gate_normalizes_and_floors_efficiency_conditionally(self, workflow):
        steps = workflow["jobs"]["bench-smoke"]["steps"]
        run = next(
            s["run"] for s in steps
            if "check_perf_report.py" in s.get("run", "")
            and "perf_parallel.baseline.json" in s.get("run", "")
        )
        # Ratios normalized by the 1-worker anchor: machine-independent.
        assert "--normalize parallel.step.1w" in run
        assert "--min-seconds 0.0" in run
        # The >= 1.5x-at-2-workers acceptance floor (0.75 efficiency),
        # applied only where two cores actually exist.
        assert "scaling_efficiency_2w:0.75" in run
        assert "nproc" in run and "skip" in run

    def test_committed_parallel_baseline_exists_and_is_self_describing(self):
        path = REPO_ROOT / "benchmarks" / "results" / "perf_parallel.json"
        assert path.is_file(), "committed parallel bench baseline missing"
        report = PerfReport.load(path)
        for op in ("parallel.step.1w", "parallel.step.2w",
                   "parallel.rank0.compute", "parallel.rank1.compute"):
            assert op in report.ops, op
            assert report.ops[op].total_seconds > 0
        # Self-describing: which regime produced it, and the efficiency it
        # measured there.  NO floor assertion — a 1-CPU host honestly
        # reports sub-0.75 efficiency; the floor lives in CI where nproc
        # is known.
        assert report.meta["workers"] == 2
        assert report.meta["cpu_count"] >= 1
        assert 0.0 < report.meta["scaling_efficiency_2w"] <= 1.0
        # Identical numerical work in both runs: same microbatch.
        assert report.meta["batch_size"] % report.meta["microbatch"] == 0


class TestCheckPerfReportNormalize:
    def test_normalize_cancels_machine_speed(self):
        mod = _load_checker()
        base = _report("base", {"anchor": 1.0, "op": 0.5})
        twice_as_slow = _report("cur", {"anchor": 2.0, "op": 1.0})
        with_norm, _ = mod.compare(
            base, twice_as_slow, threshold=0.30, min_seconds=0.005, normalize="anchor"
        )
        assert with_norm == []
        without_norm, _ = mod.compare(base, twice_as_slow, threshold=0.30, min_seconds=0.005)
        assert [r[0] for r in without_norm] == ["anchor", "op"]

    def test_normalize_detects_ratio_regression(self):
        mod = _load_checker()
        base = _report("base", {"anchor": 1.0, "op": 0.5})
        cur = _report("cur", {"anchor": 1.0, "op": 0.8})
        regressions, _ = mod.compare(
            base, cur, threshold=0.30, min_seconds=0.005, normalize="anchor"
        )
        assert [r[0] for r in regressions] == ["op"]

    def test_anchor_itself_never_regresses(self):
        mod = _load_checker()
        base = _report("base", {"anchor": 1.0})
        cur = _report("cur", {"anchor": 3.0})
        regressions, _ = mod.compare(
            base, cur, threshold=0.30, min_seconds=0.005, normalize="anchor"
        )
        assert regressions == []

    def test_missing_anchor_is_fatal(self):
        mod = _load_checker()
        base = _report("base", {"anchor": 1.0, "op": 1.0})
        cur = _report("cur", {"op": 1.0})
        with pytest.raises(SystemExit):
            mod.compare(base, cur, threshold=0.30, min_seconds=0.005, normalize="anchor")

    def test_main_accepts_normalize_flag(self, tmp_path, capsys):
        mod = _load_checker()
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        _report("base", {"anchor": 1.0, "op": 0.5}).write(base)
        _report("cur", {"anchor": 4.0, "op": 2.0}).write(cur)
        assert mod.main([str(base), str(cur), "--normalize", "anchor"]) == 0
        assert "normalized by: anchor" in capsys.readouterr().out
        assert mod.main([str(base), str(cur)]) == 1


class TestCheckerUnusableInput:
    """Missing or incomprehensible reports must fail loudly with exit 2 —
    a silent 0 would disable the gate, a traceback would bury the cause."""

    def _exit_code(self, mod, argv) -> int:
        with pytest.raises(SystemExit) as exc_info:
            mod.main(argv)
        return exc_info.value.code

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        mod = _load_checker()
        cur = tmp_path / "cur.json"
        _report("cur", {"op": 1.0}).write(cur)
        assert self._exit_code(mod, [str(tmp_path / "nope.json"), str(cur)]) == 2
        assert "not found" in capsys.readouterr().err

    def test_missing_current_exits_2(self, tmp_path, capsys):
        mod = _load_checker()
        base = tmp_path / "base.json"
        _report("base", {"op": 1.0}).write(base)
        assert self._exit_code(mod, [str(base), str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_newer_schema_exits_2(self, tmp_path, capsys):
        import json

        mod = _load_checker()
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        _report("base", {"op": 1.0}).write(base)
        doc = json.loads(base.read_text())
        doc["schema_version"] = 999
        cur.write_text(json.dumps(doc))
        assert self._exit_code(mod, [str(base), str(cur)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_malformed_json_exits_2(self, tmp_path):
        mod = _load_checker()
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        _report("base", {"op": 1.0}).write(base)
        cur.write_text("{not json")
        assert self._exit_code(mod, [str(base), str(cur)]) == 2


class TestMetaGate:
    """``--gate-meta NAME:MIN`` gates numeric meta fields of the current
    report (the serving job uses it for speedup_vs_batch1)."""

    def _pair(self, tmp_path, meta: dict):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        _report("base", {"op": 1.0}).write(base)
        rep = _report("cur", {"op": 1.0})
        rep.meta.update(meta)
        rep.write(cur)
        return str(base), str(cur)

    def test_meta_at_or_above_minimum_passes(self, tmp_path, capsys):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {"speedup": 2.5})
        assert mod.main([base, cur, "--gate-meta", "speedup:2.0"]) == 0
        assert "meta gate ok" in capsys.readouterr().out

    def test_meta_below_minimum_fails(self, tmp_path, capsys):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {"speedup": 1.4})
        assert mod.main([base, cur, "--gate-meta", "speedup:2.0"]) == 1
        assert "required minimum" in capsys.readouterr().out

    def test_missing_meta_key_fails(self, tmp_path, capsys):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {})
        assert mod.main([base, cur, "--gate-meta", "speedup:2.0"]) == 1
        assert "missing or non-numeric" in capsys.readouterr().out

    def test_non_numeric_meta_fails(self, tmp_path):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {"speedup": "fast"})
        assert mod.main([base, cur, "--gate-meta", "speedup:2.0"]) == 1

    def test_repeatable(self, tmp_path):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {"a": 3.0, "b": 1.0})
        argv = [base, cur, "--gate-meta", "a:2.0", "--gate-meta", "b:2.0"]
        assert mod.main(argv) == 1
        argv = [base, cur, "--gate-meta", "a:2.0", "--gate-meta", "b:0.5"]
        assert mod.main(argv) == 0

    def test_bad_spec_exits_2(self, tmp_path):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {"a": 3.0})
        with pytest.raises(SystemExit) as exc_info:
            mod.main([base, cur, "--gate-meta", "nocolon"])
        assert exc_info.value.code == 2


class TestMetaGateMax:
    """``--gate-meta-max NAME:MAX`` is the ceiling twin of ``--gate-meta``
    (the sparse job uses it for registry_bytes_ratio: packed serving must
    stay *below* half the dense footprint)."""

    def _pair(self, tmp_path, meta: dict):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        _report("base", {"op": 1.0}).write(base)
        rep = _report("cur", {"op": 1.0})
        rep.meta.update(meta)
        rep.write(cur)
        return str(base), str(cur)

    def test_meta_at_or_below_maximum_passes(self, tmp_path, capsys):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {"bytes_ratio": 0.1})
        assert mod.main([base, cur, "--gate-meta-max", "bytes_ratio:0.5"]) == 0
        assert "meta gate ok" in capsys.readouterr().out

    def test_meta_above_maximum_fails(self, tmp_path, capsys):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {"bytes_ratio": 0.9})
        assert mod.main([base, cur, "--gate-meta-max", "bytes_ratio:0.5"]) == 1
        assert "required maximum" in capsys.readouterr().out

    def test_missing_meta_key_fails(self, tmp_path, capsys):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {})
        assert mod.main([base, cur, "--gate-meta-max", "bytes_ratio:0.5"]) == 1
        assert "missing or non-numeric" in capsys.readouterr().out

    def test_floor_and_ceiling_compose(self, tmp_path):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {"speedup": 3.0, "bytes_ratio": 0.2})
        argv = [
            base, cur,
            "--gate-meta", "speedup:2.0",
            "--gate-meta-max", "bytes_ratio:0.5",
        ]
        assert mod.main(argv) == 0

    def test_bad_spec_exits_2(self, tmp_path):
        mod = _load_checker()
        base, cur = self._pair(tmp_path, {"a": 3.0})
        with pytest.raises(SystemExit) as exc_info:
            mod.main([base, cur, "--gate-meta-max", "nocolon"])
        assert exc_info.value.code == 2


class TestSparseGateWiring:
    """The bench-smoke job must regenerate the sparse execution bench and
    gate both directions: the sparse-matmul speedup floor and the packed
    registry bytes ceiling."""

    def test_baseline_stashed_before_bench_regenerates_it(self, workflow):
        steps = workflow["jobs"]["bench-smoke"]["steps"]
        runs = [s.get("run", "") for s in steps]
        stash = next(i for i, r in enumerate(runs) if "perf_sparse.baseline.json" in r)
        bench = next(i for i, r in enumerate(runs) if "bench_sparse.py" in r)
        gate = next(
            i for i, r in enumerate(runs)
            if "perf_sparse.baseline.json" in r and "check_perf_report.py" in r
        )
        assert stash < bench < gate

    def test_bench_pins_blas_threads(self, workflow):
        # The committed baseline was measured single-threaded; an
        # unpinned BLAS would make the dense anchor incomparable.
        steps = workflow["jobs"]["bench-smoke"]["steps"]
        bench = next(s for s in steps if "bench_sparse.py" in s.get("run", ""))
        assert bench["env"]["OPENBLAS_NUM_THREADS"] == "1"
        assert bench["env"]["OMP_NUM_THREADS"] == "1"

    def test_gate_has_speedup_floor_and_bytes_ceiling(self, workflow):
        steps = workflow["jobs"]["bench-smoke"]["steps"]
        run = next(
            s["run"] for s in steps
            if "perf_sparse.baseline.json" in s.get("run", "")
            and "check_perf_report.py" in s.get("run", "")
        )
        assert "--normalize kernels.matmul.fast" in run
        assert "--min-seconds 0.0" in run
        assert "--gate-meta speedup_sparse_matmul_d90:2.0" in run
        assert "--gate-meta-max registry_bytes_ratio:0.5" in run

    def test_committed_sparse_baseline_exists_and_meets_gates(self):
        path = REPO_ROOT / "benchmarks" / "results" / "perf_sparse.json"
        assert path.is_file(), "committed sparse bench baseline missing"
        report = PerfReport.load(path)
        for op in (
            "kernels.matmul.fast",
            "kernels.matmul.sparse",
            "serve.dense_forward",
            "serve.sparse_forward",
        ):
            assert op in report.ops, op
            assert report.ops[op].total_seconds > 0
        assert report.meta["speedup_sparse_matmul_d90"] >= 2.0
        assert report.meta["registry_bytes_ratio"] <= 0.5
        assert report.meta["sparse_density_cutoff"] == 0.25


class TestServeBenchJobWiring:
    """The serve-bench job must stash the committed serving baseline,
    regenerate it under load, and gate p50/p99 + the batching speedup."""

    def test_baseline_stashed_before_bench_regenerates_it(self, workflow):
        steps = workflow["jobs"]["serve-bench"]["steps"]
        runs = [s.get("run", "") for s in steps]
        stash = next(i for i, r in enumerate(runs) if "perf_serve.baseline.json" in r)
        bench = next(i for i, r in enumerate(runs) if "bench_serve.py" in r)
        gate = next(i for i, r in enumerate(runs) if "check_perf_report.py" in r)
        assert stash < bench < gate

    def test_drives_at_least_eight_concurrent_clients(self, workflow):
        runs = [s.get("run", "") for s in workflow["jobs"]["serve-bench"]["steps"]]
        bench = next(r for r in runs if "bench_serve.py" in r)
        clients = int(bench.split("--clients")[1].split()[0])
        assert clients >= 8

    def test_gate_normalizes_by_single_forward_and_gates_speedup(self, workflow):
        runs = " ".join(s.get("run", "") for s in workflow["jobs"]["serve-bench"]["steps"])
        assert "--normalize serve.single_forward" in runs
        # Percentiles are sub-millisecond: the default noise floor would
        # silently skip them, so the job must zero it.
        assert "--min-seconds 0.0" in runs
        assert "--gate-meta speedup_vs_batch1:2.0" in runs

    def test_report_uploaded_as_artifact(self, workflow):
        job = workflow["jobs"]["serve-bench"]
        uploads = [s for s in job["steps"] if "upload-artifact" in s.get("uses", "")]
        assert uploads and "perf_serve.json" in uploads[0]["with"]["path"]

    def test_committed_serving_baseline_exists_and_has_gated_ops(self):
        path = REPO_ROOT / "benchmarks" / "results" / "perf_serve.json"
        assert path.is_file(), "committed serving baseline missing"
        report = PerfReport.load(path)
        for op in ("serve.latency.p50", "serve.latency.p99", "serve.single_forward"):
            assert op in report.ops, op
            assert report.ops[op].total_seconds > 0
        assert report.meta["speedup_vs_batch1"] >= 2.0
        assert report.meta["clients"] >= 8
