"""Properties of the flat weight plane built by ``Module.finalize``.

Every parameter's ``data`` must be a zero-copy view into the model's
``weight_plane``; assignments write *through* the view (preserving the
aliasing invariant) instead of detaching; and the invariant must survive
optimizer steps and checkpoint save/load round trips without silent copies.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DropBack
from repro.io import load_dense, load_sparse, save_dense, save_sparse
from repro.models import mlp
from repro.optim import SGD
from repro.tensor import Tensor, cross_entropy


def _model(seed=3):
    return mlp(6, (8,), 3).finalize(seed)


def _assert_plane_aliased(model):
    plane = model.weight_plane
    assert plane is not None
    assert plane.size == model.num_parameters()
    for name, p in model.named_parameters():
        assert p.plane_backed, name
        assert np.shares_memory(p.data, plane), name
        np.testing.assert_array_equal(
            plane[p.base_index : p.base_index + p.size], p.data.reshape(-1), err_msg=name
        )


def _backward(model, step_seed=0):
    rng = np.random.default_rng(step_seed)
    x = Tensor(rng.normal(size=(16, 6)).astype(np.float32))
    y = rng.integers(0, 3, size=16)
    model.zero_grad()
    cross_entropy(model(x), y).backward()


class TestPlaneConstruction:
    def test_finalize_builds_aliased_plane(self):
        _assert_plane_aliased(_model())

    def test_plane_mutation_visible_in_views(self):
        m = _model()
        p = m.parameters()[0]
        m.weight_plane[p.base_index] = 42.0
        assert p.data.reshape(-1)[0] == 42.0

    def test_view_mutation_visible_in_plane(self):
        m = _model()
        p = m.parameters()[-1]
        p.data[...] = 7.0
        np.testing.assert_array_equal(
            m.weight_plane[p.base_index : p.base_index + p.size], 7.0
        )

    def test_refinalize_rebuilds_plane(self):
        m = _model(seed=3)
        old_plane = m.weight_plane
        m.finalize(4)
        assert m.weight_plane is not old_plane
        _assert_plane_aliased(m)


class TestWriteThrough:
    def test_assignment_writes_through(self):
        m = _model()
        p = m.parameters()[0]
        view = p.data
        p.data = np.full(p.shape, 1.5, dtype=np.float32)
        assert p.data is view  # still the same plane view
        np.testing.assert_array_equal(
            m.weight_plane[p.base_index : p.base_index + p.size], 1.5
        )

    def test_scalar_broadcast_writes_through(self):
        m = _model()
        p = m.parameters()[0]
        view = p.data
        p.data = 0.0
        assert p.data is view
        assert not p.data.any()

    def test_incompatible_shape_detaches(self):
        m = _model()
        p = m.parameters()[0]
        plane_before = m.weight_plane.copy()
        p.data = np.zeros(p.size + 1, dtype=np.float32)
        assert not p.plane_backed
        assert not np.shares_memory(p.data, m.weight_plane)
        # The failed broadcast must not have corrupted the plane.
        np.testing.assert_array_equal(m.weight_plane, plane_before)

    def test_state_dict_does_not_alias_plane(self):
        m = _model()
        for name, arr in m.state_dict().items():
            assert not np.shares_memory(arr, m.weight_plane), name

    def test_load_state_dict_keeps_views(self):
        m1, m2 = _model(seed=3), _model(seed=9)
        m2.load_state_dict(m1.state_dict())
        _assert_plane_aliased(m2)
        np.testing.assert_array_equal(m2.weight_plane, m1.weight_plane)


class TestOptimizersPreserveAliasing:
    def test_sgd_steps_keep_views(self):
        m = _model()
        opt = SGD(m, lr=0.1, momentum=0.5)
        views = [p.data for p in m.parameters()]
        for s in range(3):
            _backward(m, s)
            opt.step()
        assert all(p.data is v for p, v in zip(m.parameters(), views))
        _assert_plane_aliased(m)

    def test_dropback_steps_keep_views(self):
        m = _model()
        opt = DropBack(m, k=9, lr=0.3)
        views = [p.data for p in m.parameters()]
        for s in range(4):
            _backward(m, s)
            if s == 2:
                opt.freeze()
            opt.step()
        assert all(p.data is v for p, v in zip(m.parameters(), views))
        _assert_plane_aliased(m)

    def test_optimizer_exposes_plane(self):
        m = _model()
        assert SGD(m, lr=0.1).weight_plane is m.weight_plane

    def test_dropback_falls_back_when_view_detached(self):
        """Rebinding a parameter away from the plane must degrade to the
        gather/scatter path, not corrupt other parameters."""
        m1, m2 = _model(seed=5), _model(seed=5)
        o1, o2 = DropBack(m1, k=9, lr=0.3), DropBack(m2, k=9, lr=0.3)
        # Detach every m2 parameter from its plane (values unchanged).
        for p in m2.parameters():
            arr = p.data.copy()
            p._plane_backed = False
            p._data = arr
        for s in range(4):
            _backward(m1, s)
            _backward(m2, s)
            if s == 2:
                o1.freeze()
                o2.freeze()
            o1.step()
            o2.step()
        for pa, pb in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestCheckpointRoundTrips:
    def test_dense_round_trip_keeps_views(self, tmp_path):
        m = _model()
        _backward(m)
        SGD(m, lr=0.1).step()
        path = str(tmp_path / "dense.npz")
        save_dense(m, path)
        m2 = load_dense(mlp(6, (8,), 3).finalize(0), path)
        _assert_plane_aliased(m2)
        for pa, pb in zip(m.parameters(), m2.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    @given(seed=st.integers(0, 2**16), k=st.integers(1, 40), steps=st.integers(1, 3))
    @settings(max_examples=12, deadline=None)
    def test_sparse_round_trip_keeps_views(self, tmp_path_factory, seed, k, steps):
        m = mlp(6, (8,), 3).finalize(seed)
        opt = DropBack(m, k=k, lr=0.3)
        for s in range(steps):
            _backward(m, s)
            opt.step()
        path = str(tmp_path_factory.mktemp("ckpt") / "sparse.npz")
        save_sparse(m, opt, path)
        m2 = load_sparse(mlp(6, (8,), 3), path)
        _assert_plane_aliased(m2)
        for (name, pa), (_, pb) in zip(m.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=name)

    def test_sparse_load_falls_back_when_detached(self, tmp_path):
        m = _model()
        opt = DropBack(m, k=9, lr=0.3)
        _backward(m)
        opt.step()
        path = str(tmp_path / "sparse.npz")
        save_sparse(m, opt, path)

        m2 = mlp(6, (8,), 3)
        m2.finalize(0)
        # Detach one parameter post-finalize; load_sparse re-finalizes
        # (restoring the plane), so patch finalize to re-detach after.
        orig_finalize = m2.finalize

        def finalize_and_detach(seed):
            orig_finalize(seed)
            p = m2.parameters()[0]
            p._plane_backed = False
            p._data = p.data.copy()
            return m2

        m2.finalize = finalize_and_detach
        load_sparse(m2, path)
        for pa, pb in zip(m.parameters(), m2.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestHistoryBounding:
    def test_invalid_history_limit(self):
        with pytest.raises(ValueError):
            DropBack(_model(), k=5, lr=0.1, history_limit=0)

    def test_default_keeps_full_history(self):
        m = _model()
        opt = DropBack(m, k=9, lr=0.3)
        for s in range(5):
            _backward(m, s)
            opt.step()
        assert len(opt.swap_history) == 5

    def test_limit_keeps_most_recent_and_total(self):
        m1, m2 = _model(seed=5), _model(seed=5)
        full = DropBack(m1, k=9, lr=0.3)
        bounded = DropBack(m2, k=9, lr=0.3, history_limit=3)
        for s in range(6):
            _backward(m1, s)
            _backward(m2, s)
            full.step()
            bounded.step()
        assert bounded.swap_history == full.swap_history[-3:]
        assert bounded.total_swaps == sum(full.swap_history) == full.total_swaps
