"""Tests for the serving layer: registry, LRU eviction, dynamic batching."""

import math
import threading

import numpy as np
import pytest

from repro.core import DropBack
from repro.data import DataLoader
from repro.io import (
    apply_sparse_payload,
    read_sparse_payload,
    save_sparse,
    save_sparse_quantized,
)
from repro.io.checkpoint import SparsePayload
from repro.models import mnist_100_100
from repro.optim import ConstantLR
from repro.serve import (
    BatchPolicy,
    DynamicBatcher,
    InferenceServer,
    ModelRegistry,
    build_report,
    checkpoint_digest,
    run_load,
)
from repro.serve.loadgen import LoadResult
from repro.tensor import Tensor, no_grad
from repro.train import Trainer


def _payload(
    seed: int, k: int = 500, rng_seed: int = 0, zero_untracked: bool = False
) -> SparsePayload:
    """A synthetic sparse payload for mnist-100-100 (no training needed)."""
    n = mnist_100_100().num_parameters()
    rng = np.random.default_rng(rng_seed + seed)
    indices = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
    values = rng.normal(scale=0.1, size=k).astype(np.float32)
    return SparsePayload(
        seed=seed, indices=indices, values=values, zero_untracked=zero_untracked
    )


def _dense_forward(payload: SparsePayload, x: np.ndarray) -> np.ndarray:
    """Reference output: apply the payload to a fresh model, forward densely."""
    model = apply_sparse_payload(mnist_100_100(), payload)
    model.eval()
    with no_grad():
        return model(Tensor(x.astype(np.float32))).numpy().copy()


@pytest.fixture(scope="module")
def trained_ckpt(tiny_mnist, tmp_path_factory):
    """A genuinely trained sparse checkpoint (and its quantized twin)."""
    train, test = tiny_mnist
    model = mnist_100_100().finalize(11)
    opt = DropBack(model, k=5_000, lr=0.4)
    Trainer(model, opt, schedule=ConstantLR(0.4)).fit(
        DataLoader(train, 64, seed=0), test, epochs=1
    )
    tmp = tmp_path_factory.mktemp("serve_ckpt")
    sparse = str(tmp / "model.npz")
    quantized = str(tmp / "model_q8.npz")
    save_sparse(model, opt, sparse)
    save_sparse_quantized(model, opt, quantized, bits=8)
    return sparse, quantized, test


class TestRegistry:
    def test_register_is_digest_keyed_and_idempotent(self, trained_ckpt):
        sparse, _, _ = trained_ckpt
        registry = ModelRegistry()
        d1 = registry.register("a", mnist_100_100, sparse)
        d2 = registry.register("b", mnist_100_100, sparse)
        assert d1 == d2 == checkpoint_digest(sparse)
        assert len(registry) == 1

    def test_forward_matches_dense_application(self, trained_ckpt):
        sparse, _, test = trained_ckpt
        registry = ModelRegistry()
        digest = registry.register("m", mnist_100_100, sparse)
        x = test.images[:16]
        served = registry.acquire(digest).forward(x)
        expected = _dense_forward(read_sparse_payload(sparse), x)
        np.testing.assert_array_equal(served, expected)

    def test_quantized_checkpoint_serves(self, trained_ckpt):
        sparse, quantized, test = trained_ckpt
        registry = ModelRegistry()
        digest = registry.register("q8", mnist_100_100, quantized)
        assert registry.describe(digest)["kind"] == "quantized"
        x = test.images[:8]
        served = registry.acquire(digest).forward(x)
        expected = _dense_forward(read_sparse_payload(quantized), x)
        np.testing.assert_array_equal(served, expected)

    def test_unknown_digest_raises(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.acquire("deadbeef")

    def test_materialization_is_lazy(self):
        registry = ModelRegistry()
        digest = registry.register_payload("lazy", mnist_100_100, _payload(1))
        assert registry.resident_bytes == 0
        assert not registry.describe(digest)["resident"]
        registry.acquire(digest)
        assert registry.resident_bytes > 0
        assert registry.stats.materializations == 1


class TestLRUEviction:
    def _plane_bytes(self) -> int:
        return mnist_100_100().finalize(0).weight_plane.nbytes

    def test_evicts_coldest_over_budget(self):
        plane = self._plane_bytes()
        payloads = [_payload(s) for s in (1, 2, 3)]
        # Pinned payload bytes count against the budget too; leave room for
        # them so the budget holds exactly two planes.
        registry = ModelRegistry(byte_budget=2 * plane + sum(p.nbytes for p in payloads))
        digests = [
            registry.register_payload(f"m{p.seed}", mnist_100_100, p) for p in payloads
        ]
        for d in digests:
            registry.acquire(d)
        # Budget holds two planes: the coldest (first acquired) was evicted.
        assert registry.resident_bytes == 2 * plane
        assert registry.resident_digests() == [digests[1], digests[2]]
        assert registry.stats.evictions == 1

    def test_recency_updates_on_acquire(self):
        plane = self._plane_bytes()
        payloads = [_payload(s) for s in (1, 2, 3)]
        registry = ModelRegistry(byte_budget=2 * plane + sum(p.nbytes for p in payloads))
        d1, d2, d3 = (
            registry.register_payload(f"m{p.seed}", mnist_100_100, p) for p in payloads
        )
        registry.acquire(d1)
        registry.acquire(d2)
        registry.acquire(d1)  # d1 is now hottest; d2 is the eviction victim
        registry.acquire(d3)
        assert set(registry.resident_digests()) == {d1, d3}

    def test_active_model_never_evicted(self):
        plane = self._plane_bytes()
        registry = ModelRegistry(byte_budget=plane // 2)  # smaller than one plane
        digest = registry.register_payload("big", mnist_100_100, _payload(4))
        handle = registry.acquire(digest)  # must still serve
        assert registry.resident_digests() == [digest]
        out = handle.forward(np.zeros((1, 28, 28), dtype=np.float32))
        assert out.shape == (1, 10)

    def test_evict_rematerialize_bit_exact(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")  # plane integrity checked on materialize
        plane = self._plane_bytes()
        registry = ModelRegistry(byte_budget=plane)
        d1 = registry.register_payload("m1", mnist_100_100, _payload(21))
        d2 = registry.register_payload("m2", mnist_100_100, _payload(22))
        first = registry.acquire(d1).model.weight_plane.copy()
        registry.acquire(d2)  # evicts d1 (budget = one plane)
        assert not registry.describe(d1)["resident"]
        again = registry.acquire(d1).model.weight_plane
        np.testing.assert_array_equal(first, again)
        assert registry.describe(d1)["materializations"] == 2

    def test_explicit_evict(self):
        registry = ModelRegistry()
        digest = registry.register_payload("m", mnist_100_100, _payload(5))
        assert registry.evict(digest) is False  # not resident yet
        registry.acquire(digest)
        assert registry.evict(digest) is True
        assert registry.resident_bytes == 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            ModelRegistry(byte_budget=0)


class TestPackedServing:
    """packed=True entries: CSR serving, byte accounting, dense fallback."""

    def _plane_bytes(self) -> int:
        return mnist_100_100().finalize(0).weight_plane.nbytes

    def test_packed_forward_matches_dense(self):
        pytest.importorskip("scipy")
        payload = _payload(7, k=2_000, zero_untracked=True)
        dense = ModelRegistry()
        packed = ModelRegistry()
        dd = dense.register_payload("m", mnist_100_100, payload)
        pd = packed.register_payload("m", mnist_100_100, payload, packed=True)
        x = np.random.default_rng(0).normal(size=(16, 28, 28)).astype(np.float32)
        out_dense = dense.acquire(dd).forward(x)
        out_packed = packed.acquire(pd).forward(x)
        np.testing.assert_allclose(out_packed, out_dense, rtol=1e-5, atol=1e-6)

    def test_packed_entry_resident_cost_is_packed_bytes(self):
        pytest.importorskip("scipy")
        payload = _payload(8, k=2_000, zero_untracked=True)
        registry = ModelRegistry()
        digest = registry.register_payload("m", mnist_100_100, payload, packed=True)
        handle = registry.acquire(digest)
        # Packed servables carry no dense plane at all.
        assert getattr(handle.model, "weight_plane", None) is None
        assert registry.resident_bytes == handle.model.nbytes
        assert registry.resident_bytes < self._plane_bytes() // 2
        info = registry.describe(digest)
        assert info["packed"] is True
        assert info["plane_bytes"] == registry.resident_bytes
        assert info["sparse_bytes"] == payload.nbytes

    def test_regeneration_payload_falls_back_to_dense(self):
        # zero_untracked=False means untracked weights are W(0): packing is
        # invalid, so packed=True silently serves the dense path instead.
        payload = _payload(9, k=500)
        registry = ModelRegistry()
        digest = registry.register_payload("m", mnist_100_100, payload, packed=True)
        handle = registry.acquire(digest)
        assert getattr(handle.model, "weight_plane", None) is not None
        x = np.random.default_rng(1).normal(size=(4, 28, 28)).astype(np.float32)
        np.testing.assert_array_equal(handle.forward(x), _dense_forward(payload, x))

    def test_pinned_payload_bytes_counted_before_materialization(self):
        payloads = [_payload(s) for s in (1, 2)]
        registry = ModelRegistry()
        for p in payloads:
            registry.register_payload(f"m{p.seed}", mnist_100_100, p)
        assert registry.pinned_bytes == sum(p.nbytes for p in payloads)
        assert registry.resident_bytes == 0

    def test_mixed_packed_dense_eviction_order(self):
        """LRU recency — not entry size — picks the victim: a hot, cheap
        packed entry survives while the cold dense plane is evicted."""
        pytest.importorskip("scipy")
        plane = self._plane_bytes()
        dense_payloads = [_payload(s) for s in (1, 2)]
        packed_payload = _payload(3, k=2_000, zero_untracked=True)
        pinned = sum(p.nbytes for p in dense_payloads) + packed_payload.nbytes
        registry = ModelRegistry(byte_budget=plane + plane // 2 + pinned)
        d1 = registry.register_payload("dense1", mnist_100_100, dense_payloads[0])
        d2 = registry.register_payload("dense2", mnist_100_100, dense_payloads[1])
        p3 = registry.register_payload("packed3", mnist_100_100, packed_payload, packed=True)
        registry.acquire(d1)
        registry.acquire(p3)  # cheap packed servable, now hotter than d1
        registry.acquire(d2)  # second dense plane pushes over budget
        assert registry.resident_digests() == [p3, d2]
        assert registry.stats.evictions == 1


class TestDynamicBatcher:
    def test_coalesces_within_batch_bound(self):
        calls = []

        def forward(digest, xs):
            calls.append(xs.shape[0])
            return xs * 2.0

        batcher = DynamicBatcher(forward, max_batch_size=8, max_wait_ms=50.0)
        n = 40
        # Submit everything before starting the workers: coalescing is then
        # deterministic — full queues flush at max_batch_size.
        futures = [batcher.submit("m", np.array([float(i)])) for i in range(n)]
        batcher.start()
        results = [f.result(timeout=30.0) for f in futures]
        batcher.stop()
        assert len(calls) <= math.ceil(n / 8)
        assert sum(calls) == n
        for i, out in enumerate(results):
            np.testing.assert_array_equal(out, np.array([2.0 * i], dtype=np.float32))

    def test_routes_by_digest(self):
        offsets = {"a": 10.0, "b": 20.0}

        def forward(digest, xs):
            return xs + offsets[digest]

        batcher = DynamicBatcher(forward, max_batch_size=4, max_wait_ms=5.0)
        futures = [
            (d, i, batcher.submit(d, np.array([float(i)])))
            for i, d in enumerate(["a", "b"] * 8)
        ]
        batcher.start()
        for d, i, f in futures:
            np.testing.assert_array_equal(
                f.result(timeout=30.0), np.array([i + offsets[d]], dtype=np.float32)
            )
        batcher.stop()

    def test_exception_fans_out_to_batch(self):
        def forward(digest, xs):
            raise RuntimeError("model exploded")

        batcher = DynamicBatcher(forward, max_batch_size=4, max_wait_ms=5.0)
        futures = [batcher.submit("m", np.zeros(3)) for _ in range(4)]
        batcher.start()
        for f in futures:
            with pytest.raises(RuntimeError, match="model exploded"):
                f.result(timeout=30.0)
        batcher.stop()

    def test_wrong_row_count_is_an_error(self):
        def forward(digest, xs):
            return xs[:1]

        batcher = DynamicBatcher(forward, max_batch_size=4, max_wait_ms=5.0)
        futures = [batcher.submit("m", np.zeros(3)) for _ in range(4)]
        batcher.start()
        for f in futures:
            with pytest.raises(RuntimeError, match="rows"):
                f.result(timeout=30.0)
        batcher.stop()

    def test_stop_fails_pending_requests(self):
        batcher = DynamicBatcher(lambda d, xs: xs, max_batch_size=8, max_wait_ms=1000.0)
        future = batcher.submit("m", np.zeros(3))  # never started
        batcher.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            future.result(timeout=5.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            DynamicBatcher(lambda d, xs: xs, workers=0)


class TestInferenceServer:
    def test_concurrent_serving_matches_dense(self, trained_ckpt):
        sparse, _, test = trained_ckpt
        registry = ModelRegistry()
        digest = registry.register("m", mnist_100_100, sparse)
        x = test.images[:32]
        expected = _dense_forward(read_sparse_payload(sparse), x)

        with InferenceServer(registry, max_batch_size=8, max_wait_ms=2.0) as server:
            futures = [server.submit(digest, x[i]) for i in range(32)]
            outs = np.stack([f.result(timeout=30.0) for f in futures])
            stats = server.stats
        # Logits agree up to BLAS blocking (batch shape differs from the
        # dense reference pass); bit-exactness at fixed batch shape is
        # covered by TestRegistry.test_forward_matches_dense_application.
        np.testing.assert_allclose(outs, expected, rtol=1e-5, atol=1e-6)
        np.testing.assert_array_equal(outs.argmax(axis=-1), expected.argmax(axis=-1))
        assert stats.requests == 32
        assert stats.samples == 32
        assert stats.batches <= math.ceil(32 / 8) + 4  # racing workers may split batches
        assert stats.by_digest[digest] == stats.batches

    def test_batching_uses_fewer_forwards_than_requests(self, trained_ckpt):
        sparse, _, test = trained_ckpt
        registry = ModelRegistry()
        digest = registry.register("m", mnist_100_100, sparse)
        n_clients, per_client = 8, 4

        with InferenceServer(registry, max_batch_size=8, max_wait_ms=20.0) as server:
            barrier = threading.Barrier(n_clients)
            outs = {}

            def client(ci):
                barrier.wait(timeout=10.0)
                for j in range(per_client):
                    outs[(ci, j)] = server.serve(digest, test.images[ci])

            threads = [threading.Thread(target=client, args=(ci,)) for ci in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            stats = server.stats
        assert stats.samples == n_clients * per_client
        assert stats.batches < stats.samples  # coalescing actually happened
        assert stats.batch_size_max > 1


class TestLoadgen:
    def test_run_load_and_report(self, trained_ckpt):
        sparse, _, test = trained_ckpt
        registry = ModelRegistry()
        digest = registry.register("m", mnist_100_100, sparse)
        with InferenceServer(registry, max_batch_size=4, max_wait_ms=2.0) as server:
            result = run_load(server, digest, test.images, clients=4,
                              requests_per_client=3, seed=0)
        assert result.requests == 12
        assert result.latencies.shape == (12,)
        assert 0 < result.p50 <= result.p99
        assert result.throughput_rps > 0

    def test_report_shape_and_meta(self):
        rng = np.random.default_rng(0)
        batched = LoadResult(100, 8, 1.0, rng.uniform(1e-4, 1e-3, 100))
        batch1 = LoadResult(100, 8, 2.0, rng.uniform(1e-3, 1e-2, 100))
        report = build_report("serve", batched, batch1, 5e-5, meta={"model": "x"})
        assert set(report.ops) == {
            "serve.latency.p50", "serve.latency.p99", "serve.latency.mean",
            "serve.single_forward",
        }
        assert report.ops["serve.latency.p50"].calls == 100
        assert report.meta["speedup_vs_batch1"] == pytest.approx(2.0)
        assert report.meta["model"] == "x"
        assert report.counters["serve.requests"] == 100
        # round-trips through the versioned wire format
        from repro.profile import PerfReport

        clone = PerfReport.from_json(report.to_json())
        assert clone.ops["serve.latency.p99"].total_seconds == pytest.approx(
            report.ops["serve.latency.p99"].total_seconds
        )

    def test_load_validation(self, trained_ckpt):
        sparse, _, test = trained_ckpt
        registry = ModelRegistry()
        digest = registry.register("m", mnist_100_100, sparse)
        with InferenceServer(registry) as server:
            with pytest.raises(ValueError):
                run_load(server, digest, test.images, clients=0)
