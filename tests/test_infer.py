"""Tests for the regenerating inference engine."""

import numpy as np
import pytest

from repro.core import DropBack
from repro.data import DataLoader
from repro.energy import EnergyModel
from repro.infer import RegeneratingInferenceEngine
from repro.models import mnist_100_100, wrn_10_1
from repro.optim import ConstantLR
from repro.tensor import Tensor, no_grad
from repro.train import Trainer


@pytest.fixture(scope="module")
def trained(tiny_mnist):
    train, test = tiny_mnist
    model = mnist_100_100().finalize(3)
    opt = DropBack(model, k=5_000, lr=0.4)
    Trainer(model, opt, schedule=ConstantLR(0.4)).fit(
        DataLoader(train, 64, seed=0), test, epochs=2
    )
    return model, opt, test


class TestConstruction:
    def test_requires_finalized(self):
        with pytest.raises(RuntimeError):
            RegeneratingInferenceEngine(mnist_100_100(), np.array([0]), np.array([1.0]))

    def test_shape_mismatch(self):
        m = mnist_100_100().finalize(1)
        with pytest.raises(ValueError):
            RegeneratingInferenceEngine(m, np.array([0, 1]), np.array([1.0]))

    def test_index_out_of_range(self):
        m = mnist_100_100().finalize(1)
        with pytest.raises(ValueError):
            RegeneratingInferenceEngine(m, np.array([10**9]), np.array([1.0], np.float32))

    def test_from_optimizer_requires_step(self):
        m = mnist_100_100().finalize(1)
        opt = DropBack(m, k=10, lr=0.4)
        with pytest.raises(RuntimeError):
            RegeneratingInferenceEngine.from_optimizer(m, opt)


class TestExactness:
    def test_outputs_bit_identical_to_dense_model(self, trained):
        model, opt, test = trained
        engine = RegeneratingInferenceEngine.from_optimizer(model, opt)
        x = test.images[:32]
        model.eval()
        with no_grad():
            dense_out = model(Tensor(x)).numpy().copy()
        model.train()
        engine_out = engine.forward(x)
        np.testing.assert_array_equal(engine_out, dense_out)

    def test_engine_on_fresh_architecture(self, trained):
        """The engine needs only the architecture + sparse data, not the
        trained weights: a freshly built model gives identical outputs."""
        model, opt, test = trained
        mask = opt.tracked_mask
        flat = np.concatenate([p.data.reshape(-1) for p in model.parameters()])
        idx = np.flatnonzero(mask)

        fresh = mnist_100_100().finalize(model.seed)
        engine = RegeneratingInferenceEngine(fresh, idx, flat[idx])
        out_fresh = engine.forward(test.images[:16])

        engine2 = RegeneratingInferenceEngine.from_optimizer(model, opt)
        out_trained = engine2.forward(test.images[:16])
        np.testing.assert_array_equal(out_fresh, out_trained)

    def test_predictions_match_evaluate(self, trained):
        model, opt, test = trained
        engine = RegeneratingInferenceEngine.from_optimizer(model, opt)
        preds = engine.predict(test.images)
        model.eval()
        with no_grad():
            dense_preds = model(Tensor(test.images)).numpy().argmax(axis=-1)
        np.testing.assert_array_equal(preds, dense_preds)


class TestTraffic:
    def test_traffic_recorded(self, trained):
        model, opt, test = trained
        engine = RegeneratingInferenceEngine.from_optimizer(model, opt)
        engine.forward(test.images[:8])
        t = engine.last_traffic
        assert t is not None
        assert t.tracked_fetches == 5_000
        assert t.regenerations == model.num_parameters() - 5_000

    def test_peak_resident_below_total_for_sequential(self, trained):
        model, opt, test = trained
        engine = RegeneratingInferenceEngine.from_optimizer(model, opt)
        engine.forward(test.images[:8])
        # Streaming layer-by-layer keeps peak below the full model size.
        assert engine.last_traffic.peak_resident_weights < model.num_parameters()

    def test_storage_is_tracked_only(self, trained):
        model, opt, _ = trained
        engine = RegeneratingInferenceEngine.from_optimizer(model, opt)
        assert engine.storage_floats() == 5_000

    def test_energy_model_integration(self, trained):
        model, opt, test = trained
        engine = RegeneratingInferenceEngine.from_optimizer(model, opt)
        engine.forward(test.images[:8])
        rep = EnergyModel().report(engine.last_traffic.as_counter())
        dense_pj = model.num_parameters() * 640.0
        assert rep.total_pj < dense_pj / 5  # big inference energy saving


class TestNonSequentialModels:
    def test_wrn_engine_matches_dense(self, tiny_cifar):
        train, test = tiny_cifar
        model = wrn_10_1().finalize(5)
        opt = DropBack(model, k=30_000, lr=0.1)
        Trainer(model, opt, schedule=ConstantLR(0.1)).fit(
            DataLoader(train, 32, seed=0), test, epochs=1
        )
        engine = RegeneratingInferenceEngine.from_optimizer(model, opt)
        x = test.images[:8]
        model.eval()
        with no_grad():
            dense_out = model(Tensor(x)).numpy().copy()
        model.train()
        np.testing.assert_array_equal(engine.forward(x), dense_out)
