"""Tests for the model zoo: paper-exact parameter counts, forward shapes,
and trainability of scaled variants."""

import numpy as np
import pytest

from repro.models import (
    densenet,
    densenet_2_7m,
    densenet_bc_100_12,
    densenet_tiny,
    lenet_300_100,
    mlp,
    mnist_100_100,
    vgg_s,
    wide_resnet,
    wrn_10_1,
    wrn_10_2,
    wrn_28_10,
)
from repro.tensor import Tensor


def _x(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape).astype(np.float32))


class TestMLPs:
    def test_lenet_300_100_param_count_matches_paper(self):
        # Paper: "approximately 266,600 weights" / "Baseline 267k".
        assert lenet_300_100().num_parameters() == 266_610

    def test_mnist_100_100_param_count_matches_paper(self):
        # Paper Table 2: fc1 78,500 + fc2 10,100 + fc3 1,010 = 89,610.
        assert mnist_100_100().num_parameters() == 89_610

    def test_mnist_100_100_layer_sizes_match_table2(self):
        m = mnist_100_100()
        sizes = {}
        for name, p in m.named_parameters():
            layer = name.rsplit(".", 1)[0]
            sizes[layer] = sizes.get(layer, 0) + p.size
        assert sizes == {"layers.1": 78_500, "layers.3": 10_100, "layers.5": 1_010}

    def test_forward_shape(self):
        m = mnist_100_100().finalize(1)
        assert m(_x((4, 1, 28, 28))).shape == (4, 10)

    def test_accepts_flat_input(self):
        m = mnist_100_100().finalize(1)
        assert m(_x((4, 784))).shape == (4, 10)

    def test_custom_mlp(self):
        m = mlp(20, (8, 8), 3).finalize(1)
        assert m(_x((2, 20))).shape == (2, 3)


class TestVGGS:
    def test_param_count_near_15m(self):
        # Paper: "a total of 15M parameters vs. the 138M of VGG-16".
        n = vgg_s().num_parameters()
        assert 14.5e6 < n < 15.5e6

    def test_scaled_forward(self):
        m = vgg_s(width_mult=0.125).finalize(1)
        assert m(_x((2, 3, 32, 32))).shape == (2, 10)

    def test_width_mult_scales_params(self):
        full = vgg_s().num_parameters()
        half = vgg_s(width_mult=0.5).num_parameters()
        assert 0.2 < half / full < 0.3  # ~quadratic in width

    def test_has_dropout_and_bn(self):
        from repro.nn import BatchNorm1d, BatchNorm2d, Dropout

        mods = list(vgg_s(width_mult=0.125).modules())
        assert any(isinstance(m, Dropout) for m in mods)
        assert any(isinstance(m, BatchNorm2d) for m in mods)
        assert any(isinstance(m, BatchNorm1d) for m in mods)

    def test_conv_depth_is_13(self):
        from repro.nn import Conv2d

        convs = [m for m in vgg_s(width_mult=0.125).modules() if isinstance(m, Conv2d)]
        assert len(convs) == 13


class TestWRN:
    def test_wrn_28_10_param_count_matches_paper(self):
        # Paper Table 3: "WRN-28-10 Baseline 36M" (canonical 36.5M).
        n = wrn_28_10().num_parameters()
        assert 36.0e6 < n < 37.0e6

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            wide_resnet(27, 2)

    def test_forward_small(self):
        m = wrn_10_2().finalize(1)
        assert m(_x((2, 3, 16, 16))).shape == (2, 10)

    def test_downsampling_structure(self):
        m = wrn_10_1().finalize(1)
        # 16x16 input -> strides 1,2,2 -> final feature map 4x4 before GAP.
        out = m(_x((1, 3, 16, 16)))
        assert out.shape == (1, 10)

    def test_widen_scales_params(self):
        w1 = wide_resnet(10, 1).num_parameters()
        w2 = wide_resnet(10, 2).num_parameters()
        assert 3.0 < w2 / w1 < 4.5  # roughly quadratic in widen factor

    def test_trains_one_step(self):
        from repro.optim import SGD
        from repro.tensor import cross_entropy

        m = wrn_10_1().finalize(2)
        opt = SGD(m, lr=0.01)
        x = _x((4, 3, 16, 16))
        y = np.array([0, 1, 2, 3])
        loss0 = cross_entropy(m(x), y)
        loss0.backward()
        opt.step()
        m.zero_grad()
        loss1 = cross_entropy(m(x), y)
        assert loss1.item() < loss0.item() + 1.0  # moved, did not explode


class TestDenseNet:
    def test_param_count_matches_paper(self):
        # Paper Table 3: "Densenet Baseline 2.7M".
        n = densenet_2_7m().num_parameters()
        assert 2.5e6 < n < 2.9e6

    def test_bc_variant_smaller(self):
        assert densenet_bc_100_12().num_parameters() < 1.2e6

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            densenet(41, 12)

    def test_bc_depth_validation(self):
        with pytest.raises(ValueError):
            densenet(43, 12, bottleneck=True)  # (43-4)/3 = 13 odd

    def test_forward_tiny(self):
        m = densenet_tiny().finalize(1)
        assert m(_x((2, 3, 16, 16))).shape == (2, 10)

    def test_feature_concat_growth(self):
        # Channels after a dense block = in + per_block * growth.
        m = densenet(16, 8)  # per_block = 4
        # stem=16ch, block1 ends at 16+4*8=48 before transition
        from repro.models.densenet import _DenseLayer

        layers = [b for b in m.blocks if isinstance(b, _DenseLayer)]
        assert len(layers) == 12

    def test_reduction_compresses_transitions(self):
        full = densenet(16, 8, reduction=1.0).num_parameters()
        red = densenet(16, 8, reduction=0.5).num_parameters()
        assert red < full

    def test_trains_one_step(self):
        from repro.optim import SGD
        from repro.tensor import cross_entropy

        m = densenet_tiny().finalize(2)
        opt = SGD(m, lr=0.01)
        x = _x((2, 3, 16, 16))
        y = np.array([0, 1])
        loss = cross_entropy(m(x), y)
        loss.backward()
        opt.step()  # must not raise
