"""Tests for the DropBack optimizer — the paper's core contribution."""

import numpy as np
import pytest

from repro.core import DropBack, HeapSelector
from repro.data import DataLoader
from repro.models import mlp, mnist_100_100
from repro.nn import Linear, Sequential
from repro.optim import SGD, ConstantLR
from repro.tensor import Tensor, cross_entropy
from repro.train import FreezeCallback, Trainer


def _small_model(seed=1):
    return mlp(6, (8,), 3).finalize(seed)


def _step(model, opt, seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(16, 6)).astype(np.float32))
    y = rng.integers(0, 3, size=16)
    model.zero_grad()
    loss = cross_entropy(model(x), y)
    loss.backward()
    opt.step()
    return loss.item()


class TestConstruction:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            DropBack(_small_model(), k=0, lr=0.1)

    def test_invalid_criterion(self):
        with pytest.raises(ValueError):
            DropBack(_small_model(), k=5, lr=0.1, criterion="nope")

    def test_compression_ratio(self):
        m = mnist_100_100().finalize(1)
        opt = DropBack(m, k=20_000, lr=0.4)
        assert opt.compression_ratio == pytest.approx(89_610 / 20_000)

    def test_storage_is_budget(self):
        m = mnist_100_100().finalize(1)
        assert DropBack(m, k=5_000, lr=0.4).storage_floats() == 5_000

    def test_requires_finalized_model(self):
        with pytest.raises(RuntimeError):
            DropBack(mlp(4, (4,), 2), k=5, lr=0.1)


class TestBudgetInvariant:
    def test_at_most_k_weights_differ_from_init(self):
        m = _small_model()
        opt = DropBack(m, k=10, lr=0.2)
        seed = m.seed
        for step in range(5):
            _step(m, opt, seed=step)
            diffs = 0
            for p in m.parameters():
                diffs += int(np.count_nonzero(p.data != p.initial_values(seed)))
            assert diffs <= 10

    def test_exactly_k_tracked_in_mask(self):
        m = _small_model()
        opt = DropBack(m, k=13, lr=0.2)
        _step(m, opt)
        assert opt.tracked_mask.sum() == 13

    def test_k_larger_than_model_tracks_all(self):
        m = _small_model()
        total = m.num_parameters()
        opt = DropBack(m, k=total * 2, lr=0.2)
        _step(m, opt)
        assert opt.tracked_mask.sum() == total

    def test_untracked_regenerate_exactly(self):
        m = _small_model()
        opt = DropBack(m, k=7, lr=0.3)
        for s in range(4):
            _step(m, opt, seed=s)
        assert opt.untracked_values_match_init()


class TestEquivalenceToSGDWhenUnconstrained:
    def test_k_total_matches_sgd(self):
        """With k >= total params DropBack degenerates to plain SGD."""
        m1 = _small_model(seed=3)
        m2 = _small_model(seed=3)
        total = m1.num_parameters()
        sgd = SGD(m1, lr=0.1)
        db = DropBack(m2, k=total, lr=0.1)
        for s in range(5):
            _step(m1, sgd, seed=s)
            _step(m2, db, seed=s)
        for pa, pb in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-5, atol=1e-7)


class TestRegenerationPaths:
    def test_strict_regeneration_matches_cached(self):
        """Regenerating W(0) from xorshift every step gives bit-identical
        training to the cached-array fast path (paper: values are
        recomputable at every access)."""
        m1 = _small_model(seed=5)
        m2 = _small_model(seed=5)
        fast = DropBack(m1, k=9, lr=0.2, strict_regeneration=False)
        strict = DropBack(m2, k=9, lr=0.2, strict_regeneration=True)
        for s in range(6):
            _step(m1, fast, seed=s)
            _step(m2, strict, seed=s)
        for pa, pb in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_zero_untracked_ablation(self):
        m = _small_model()
        opt = DropBack(m, k=5, lr=0.2, zero_untracked=True)
        _step(m, opt)
        mask = opt.tracked_mask
        flat = np.concatenate([p.data.reshape(-1) for p in m.parameters()])
        np.testing.assert_array_equal(flat[~mask], 0.0)


class TestCriteria:
    def test_accumulated_is_default(self):
        assert DropBack(_small_model(), k=5, lr=0.1).criterion == "accumulated"

    @pytest.mark.parametrize("crit", ["accumulated", "magnitude", "current"])
    def test_all_criteria_run(self, crit):
        m = _small_model()
        opt = DropBack(m, k=8, lr=0.2, criterion=crit)
        for s in range(3):
            _step(m, opt, seed=s)
        assert opt.tracked_mask.sum() == 8

    def test_magnitude_selects_by_weight_value(self):
        # With lr ~ 0 the candidate equals the current weight, so the
        # magnitude criterion must select the largest |w0| entries.
        m = _small_model()
        opt = DropBack(m, k=6, lr=1e-12, criterion="magnitude")
        _step(m, opt)
        w0 = np.concatenate([p.initial_values(m.seed).reshape(-1) for p in m.parameters()])
        expect = np.zeros(w0.size, bool)
        expect[np.argsort(np.abs(w0))[-6:]] = True
        np.testing.assert_array_equal(opt.tracked_mask, expect)

    def test_accumulated_differs_from_magnitude_selection(self):
        m1, m2 = _small_model(seed=7), _small_model(seed=7)
        acc = DropBack(m1, k=10, lr=0.3, criterion="accumulated")
        mag = DropBack(m2, k=10, lr=0.3, criterion="magnitude")
        for s in range(5):
            _step(m1, acc, seed=s)
            _step(m2, mag, seed=s)
        assert not np.array_equal(acc.tracked_mask, mag.tracked_mask)


class TestFreezing:
    def test_freeze_before_step_raises(self):
        opt = DropBack(_small_model(), k=5, lr=0.1)
        with pytest.raises(RuntimeError):
            opt.freeze()

    def test_frozen_mask_is_stable(self):
        m = _small_model()
        opt = DropBack(m, k=8, lr=0.3)
        _step(m, opt, seed=0)
        opt.freeze()
        mask = opt.tracked_mask
        for s in range(1, 6):
            _step(m, opt, seed=s)
        np.testing.assert_array_equal(opt.tracked_mask, mask)

    def test_frozen_untracked_never_move(self):
        m = _small_model()
        opt = DropBack(m, k=8, lr=0.3)
        _step(m, opt, seed=0)
        opt.freeze()
        mask = opt.tracked_mask
        for s in range(1, 6):
            _step(m, opt, seed=s)
        assert opt.untracked_values_match_init()

    def test_unfreeze_resumes_selection(self):
        m = _small_model()
        opt = DropBack(m, k=8, lr=0.5)
        _step(m, opt, seed=0)
        opt.freeze()
        opt.unfreeze()
        swaps_before = len(opt.swap_history)
        _step(m, opt, seed=1)
        assert len(opt.swap_history) == swaps_before + 1

    def test_freeze_callback_fires_at_epoch(self, tiny_mnist):
        train, test = tiny_mnist
        m = mnist_100_100().finalize(2)
        opt = DropBack(m, k=5_000, lr=0.4)
        tr = Trainer(m, opt, schedule=ConstantLR(0.4), callbacks=[FreezeCallback(2)])
        tr.fit(DataLoader(train, 64, seed=0), test, epochs=3)
        assert opt.frozen

    def test_freeze_callback_validation(self):
        with pytest.raises(ValueError):
            FreezeCallback(0)


class TestChurnTracking:
    def test_first_step_swaps_equals_k(self):
        m = _small_model()
        opt = DropBack(m, k=9, lr=0.2)
        _step(m, opt)
        assert opt.swap_history[0] == 9

    def test_churn_decreases_over_training(self, tiny_mnist):
        """Paper Fig. 2: the top-k set stabilizes after a few iterations."""
        train, test = tiny_mnist
        m = mnist_100_100().finalize(4)
        opt = DropBack(m, k=2_000, lr=0.4)
        tr = Trainer(m, opt, schedule=ConstantLR(0.4))
        tr.fit(DataLoader(train, 50, seed=0), test, epochs=3)
        early = np.mean(opt.swap_history[1:4])
        late = np.mean(opt.swap_history[-10:])
        assert late < early / 3

    def test_no_swaps_recorded_when_frozen(self):
        m = _small_model()
        opt = DropBack(m, k=8, lr=0.2)
        _step(m, opt, seed=0)
        opt.freeze()
        n = len(opt.swap_history)
        _step(m, opt, seed=1)
        assert len(opt.swap_history) == n


class TestInstrumentation:
    def test_tracked_counts_sum_to_k(self):
        m = mnist_100_100().finalize(1)
        opt = DropBack(m, k=3_000, lr=0.4)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(32, 784)).astype(np.float32))
        y = rng.integers(0, 10, size=32)
        loss = cross_entropy(m(x), y)
        loss.backward()
        opt.step()
        assert sum(opt.tracked_counts().values()) == 3_000

    def test_tracked_counts_before_step_raises(self):
        opt = DropBack(_small_model(), k=5, lr=0.1)
        with pytest.raises(RuntimeError):
            opt.tracked_counts()

    def test_layer_aggregation(self):
        m = _small_model()
        opt = DropBack(m, k=10, lr=0.2)
        _step(m, opt)
        by_layer = opt.tracked_counts_by_layer()
        assert sum(by_layer.values()) == 10
        # layer keys strip the weight/bias leaf
        assert all(not k.endswith(("weight", "bias")) for k in by_layer)

    def test_access_counters(self):
        m = mnist_100_100().finalize(1)
        opt = DropBack(m, k=1_000, lr=0.4)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(8, 784)).astype(np.float32))
        y = rng.integers(0, 10, size=8)
        loss = cross_entropy(m(x), y)
        loss.backward()
        opt.step()
        assert opt.counter.weight_reads == 1_000
        assert opt.counter.weight_writes == 1_000
        assert opt.counter.regenerations == 89_610 - 1_000


class TestSelectorIntegration:
    def test_heap_selector_trains_equivalently(self):
        m1, m2 = _small_model(seed=9), _small_model(seed=9)
        a = DropBack(m1, k=11, lr=0.2)
        b = DropBack(m2, k=11, lr=0.2, selector=HeapSelector())
        for s in range(4):
            _step(m1, a, seed=s)
            _step(m2, b, seed=s)
        # Scores are continuous floats: ties are measure-zero, so the two
        # selectors pick identical sets and training is identical.
        for pa, pb in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestNonPrunable:
    def test_exclude_nonprunable_params(self):
        m = Sequential(Linear(4, 3), Linear(3, 2))
        m[1].weight.prunable = False
        m[1].bias.prunable = False
        m.finalize(1)
        opt = DropBack(m, k=3, lr=0.2, include_nonprunable=False)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(8, 4)).astype(np.float32))
        y = rng.integers(0, 2, size=8)
        loss = cross_entropy(m(x), y)
        loss.backward()
        opt.step()
        # The non-prunable layer's weights all moved (plain SGD, no budget).
        assert np.count_nonzero(m[1].weight.data != m[1].weight.initial_values(1)) > 3
        # The prunable pool respects the budget.
        assert opt.tracked_mask.sum() == 3
        assert opt.total_prunable == m[0].weight.size + m[0].bias.size
