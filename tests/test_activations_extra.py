"""Tests for the extra activation functions (leaky ReLU, ELU, softplus, GELU)."""

import numpy as np
import pytest

from repro.tensor import Tensor, elu, gelu, leaky_relu, softplus
from tests.conftest import finite_difference_check, rand_tensor


class TestLeakyReLU:
    def test_values(self):
        x = Tensor(np.array([-2.0, 3.0]))
        np.testing.assert_allclose(leaky_relu(x, 0.1).numpy(), [-0.2, 3.0])

    def test_gradient(self, rng):
        x = rand_tensor(rng, (5,))
        finite_difference_check(lambda: (leaky_relu(x, 0.2) ** 2).sum(), [x])

    def test_zero_slope_is_relu(self, rng):
        x = Tensor(rng.normal(size=8))
        np.testing.assert_allclose(leaky_relu(x, 0.0).numpy(), x.relu().numpy())


class TestELU:
    def test_positive_identity(self):
        x = Tensor(np.array([1.0, 5.0]))
        np.testing.assert_allclose(elu(x).numpy(), [1.0, 5.0])

    def test_negative_saturates_at_minus_alpha(self):
        x = Tensor(np.array([-100.0]))
        assert elu(x, alpha=1.5).numpy()[0] == pytest.approx(-1.5, abs=1e-6)

    def test_continuous_at_zero(self):
        x = Tensor(np.array([-1e-7, 1e-7]))
        out = elu(x).numpy()
        assert abs(out[0] - out[1]) < 1e-6

    def test_gradient(self, rng):
        x = rand_tensor(rng, (6,))
        finite_difference_check(lambda: (elu(x, 1.2) ** 2).sum(), [x])


class TestSoftplus:
    def test_positive_everywhere(self, rng):
        x = Tensor(rng.normal(size=100))
        assert np.all(softplus(x).numpy() > 0)

    def test_large_input_linear(self):
        x = Tensor(np.array([50.0]))
        assert softplus(x).numpy()[0] == pytest.approx(50.0, abs=1e-6)

    def test_stable_for_extreme_inputs(self):
        x = Tensor(np.array([-1000.0, 1000.0]))
        out = softplus(x).numpy()
        assert np.all(np.isfinite(out))

    def test_gradient_is_sigmoid(self):
        x = Tensor(np.array([0.0]), requires_grad=True)
        softplus(x).sum().backward()
        assert x.grad[0] == pytest.approx(0.5)

    def test_gradient_fd(self, rng):
        x = rand_tensor(rng, (5,))
        finite_difference_check(lambda: (softplus(x) ** 2).sum(), [x])


class TestGELU:
    def test_zero_at_zero(self):
        assert gelu(Tensor(np.array([0.0]))).numpy()[0] == 0.0

    def test_positive_large_identity(self):
        assert gelu(Tensor(np.array([10.0]))).numpy()[0] == pytest.approx(10.0, rel=1e-4)

    def test_negative_large_vanishes(self):
        assert gelu(Tensor(np.array([-10.0]))).numpy()[0] == pytest.approx(0.0, abs=1e-4)

    def test_gradient_fd(self, rng):
        x = rand_tensor(rng, (6,))
        finite_difference_check(lambda: (gelu(x) ** 2).sum(), [x])
