"""Tests for the op-level profiler (:mod:`repro.profile`).

Covers the tentpole contracts: counters aggregate across nested scopes,
the decorator preserves metadata and propagates exceptions, disabled mode
records nothing, ProfilerCallback round-trips through JSON, and profiling
never changes training numerics.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import profile
from repro.data import DataLoader
from repro.models import mlp
from repro.optim import SGD, ConstantLR
from repro.profile import OpStat, PerfReport, profiled
from repro.train import ProfilerCallback, Trainer
from repro.utils.determinism import weights_digest


@pytest.fixture(autouse=True)
def _clean_profile_state():
    """Isolate each test from the process-global registry and flag."""
    was_enabled = profile.is_enabled()
    profile.disable()
    profile.reset()
    yield
    profile.reset()
    if was_enabled:
        profile.enable()
    else:
        profile.disable()


class TestRegistry:
    def test_counters_aggregate_across_nested_scopes(self):
        profile.enable()
        with profiled("outer"):
            for _ in range(3):
                with profiled("inner"):
                    profile.add_counter("widgets")
            profile.add_counter("widgets", 10)
        snap = profile.snapshot()
        assert snap["ops"]["outer"]["calls"] == 1
        assert snap["ops"]["inner"]["calls"] == 3
        assert snap["counters"]["widgets"] == 13
        # nested inner time is part of outer's wall time
        assert snap["ops"]["outer"]["total_seconds"] >= snap["ops"]["inner"]["total_seconds"]

    def test_record_accumulates_in_place(self):
        reg = profile.Registry()
        reg.record("op", 0.5, 100)
        reg.record("op", 0.25, 50)
        stat = reg.ops["op"]
        assert stat.calls == 2
        assert stat.total_seconds == pytest.approx(0.75)
        assert stat.bytes_allocated == 150

    def test_reset_clears_everything(self):
        profile.enable()
        with profiled("op"):
            profile.add_counter("c")
        profile.reset()
        snap = profile.snapshot()
        assert snap == {"ops": {}, "counters": {}}


class TestProfiledDecorator:
    def test_preserves_metadata(self):
        @profiled("math.double")
        def double(x):
            """Double the input."""
            return 2 * x

        assert double.__name__ == "double"
        assert double.__doc__ == "Double the input."
        assert double(21) == 42  # disabled path still works

    def test_exceptions_propagate_and_are_counted(self):
        @profiled("math.fail")
        def boom():
            raise ValueError("expected")

        profile.enable()
        with pytest.raises(ValueError, match="expected"):
            boom()
        assert profile.snapshot()["ops"]["math.fail"]["calls"] == 1

    def test_records_result_bytes_for_arrays(self):
        @profiled("alloc.zeros")
        def make():
            return np.zeros(16, dtype=np.float64)

        profile.enable()
        make()
        assert profile.snapshot()["ops"]["alloc.zeros"]["bytes_allocated"] == 16 * 8

    def test_disabled_mode_adds_no_entries(self):
        @profiled("op.fn")
        def fn():
            return 1

        fn()
        with profiled("op.region"):
            pass
        profile.add_counter("op.counter")
        assert profile.snapshot() == {"ops": {}, "counters": {}}

    def test_enable_midway_through_scope_records_nothing(self):
        # the context manager latches the flag at __enter__; flipping it on
        # mid-scope must not record a bogus duration at __exit__
        cm = profiled("op.race")
        with cm:
            profile.enable()
        assert "op.race" not in profile.snapshot()["ops"]


class TestPerfReport:
    def test_opstat_roundtrip(self):
        stat = OpStat(name="op", calls=3, total_seconds=1.5, bytes_allocated=64)
        assert OpStat.from_dict(stat.to_dict()) == stat

    def test_write_and_load(self, tmp_path):
        report = PerfReport(
            name="unit",
            ops={"op": OpStat(name="op", calls=2, total_seconds=0.5, bytes_allocated=8)},
            counters={"hits": 4},
            meta={"scale": 0.1},
        )
        path = report.write(tmp_path / "perf_unit.json")
        raw = json.loads(path.read_text())
        assert raw["schema_version"] == profile.SCHEMA_VERSION
        loaded = PerfReport.load(path)
        assert loaded.name == "unit"
        assert loaded.ops["op"] == report.ops["op"]
        assert loaded.counters == {"hits": 4}
        assert loaded.meta["scale"] == 0.1

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            PerfReport.from_dict({"schema_version": 999, "name": "x", "ops": {}})

    def test_hotspot_table_renders(self):
        report = PerfReport(
            name="unit",
            ops={"op": OpStat(name="op", calls=1, total_seconds=0.25, bytes_allocated=0)},
        )
        table = report.hotspot_table()
        assert "op" in table and "calls" in table


class TestProfilerCallback:
    def _fit(self, callback, seed=11):
        model = mlp(784, (16,), 10).finalize(seed)
        from repro.data import synth_mnist

        train, test = synth_mnist(n_train=128, n_test=64, seed=seed)
        trainer = Trainer(
            model,
            SGD(model, lr=0.1),
            schedule=ConstantLR(0.1),
            callbacks=[callback] if callback else [],
        )
        trainer.fit(DataLoader(train, 32, seed=0), test, epochs=1)
        return model

    def test_roundtrips_through_json(self, tmp_path):
        path = tmp_path / "perf_train.json"
        cb = ProfilerCallback(report_name="unit_train", emit_path=path)
        self._fit(cb)

        assert not profile.is_enabled()  # restored after training
        assert cb.report is not None
        loaded = PerfReport.load(path)
        assert loaded.name == "unit_train"
        for op in ("trainer.forward", "trainer.backward", "trainer.optimizer_step"):
            assert loaded.ops[op].calls == cb.report.ops[op].calls > 0
        assert loaded.meta["epochs"] == 1
        assert loaded.meta["steps"] == cb.report.meta["steps"] == 4
        assert len(loaded.meta["epoch_trace"]) == 1

    def test_report_is_backend_tagged(self):
        from repro.tensor import kernels

        cb = ProfilerCallback(report_name="tagged")
        with kernels.use_backend("reference"):
            self._fit(cb)
        assert cb.report.meta["backend"] == "reference"
        assert cb.report.meta["threads"] == kernels.thread_count()

    def test_profiling_does_not_change_numerics(self):
        digest_plain = weights_digest(self._fit(None))
        digest_profiled = weights_digest(self._fit(ProfilerCallback(report_name="d")))
        assert digest_plain == digest_profiled
