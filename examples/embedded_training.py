#!/usr/bin/env python
"""On-device training under a hard weight-memory budget.

The paper's motivating scenario (Section 1): an edge accelerator whose
weight memory holds only a fraction of the model.  This example plays it
out end to end:

1. pick a device weight-memory budget in kilobytes;
2. derive the tracked-weight budget k that fits it;
3. train with DropBack, freezing the tracked set after a few epochs to
   save the selection traffic;
4. compare the training-time weight-memory energy against dense SGD using
   the paper's 45 nm energy model;
5. emit the sparse checkpoint a device would flash.

Run:
    python examples/embedded_training.py [--memory-kb 16] [--epochs 8]
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro import DataLoader, DropBack, SGD, Trainer
from repro.data import synth_mnist
from repro.energy import EnergyModel
from repro.io import save_sparse, sparse_size_bytes
from repro.models import mnist_100_100
from repro.optim import BoundedStepDecay
from repro.train import FreezeCallback
from repro.utils import format_percent, format_ratio

BYTES_PER_TRACKED_WEIGHT = 8  # float32 value + int32 index


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--memory-kb", type=float, default=16.0,
                        help="device weight-memory budget in KiB")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--freeze-epoch", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    budget_bytes = int(args.memory_kb * 1024)
    k = max(1, budget_bytes // BYTES_PER_TRACKED_WEIGHT)

    model = mnist_100_100().finalize(args.seed)
    total = model.num_parameters()
    dense_kb = total * 4 / 1024
    print(f"model: MNIST-100-100, {total:,} parameters "
          f"({dense_kb:.0f} KiB dense)")
    print(f"device budget: {args.memory_kb:.0f} KiB -> k = {k:,} tracked weights "
          f"({format_ratio(total / k)} compression)")

    train, test = synth_mnist(n_train=2_000, n_test=500, seed=0)

    # Dense baseline for the energy comparison.
    baseline = mnist_100_100().finalize(args.seed)
    base_opt = SGD(baseline, lr=0.4)
    Trainer(baseline, base_opt,
            schedule=BoundedStepDecay(0.4, period=max(2, args.epochs // 4))).fit(
        DataLoader(train, 64, seed=1), test, epochs=args.epochs
    )

    opt = DropBack(model, k=k, lr=0.4)
    trainer = Trainer(
        model,
        opt,
        schedule=BoundedStepDecay(0.4, period=max(2, args.epochs // 4)),
        callbacks=[FreezeCallback(args.freeze_epoch)],
        patience=5,
    )
    hist = trainer.fit(DataLoader(train, 64, seed=1), test, epochs=args.epochs, verbose=True)

    print("\n--- on-device training summary ---")
    print(f"best validation error: {format_percent(hist.best_val_error)} "
          f"(epoch {hist.best_epoch}, tracked set frozen after epoch {args.freeze_epoch})")
    print(f"weights stored during training: {opt.storage_floats():,} of {total:,}")

    em = EnergyModel()
    ratio = em.training_energy_ratio(base_opt.counter, opt.counter)
    db_report = em.report(opt.counter)
    print(f"weight-memory energy vs dense SGD: {format_ratio(ratio)} lower")
    print(f"  dropback: {db_report.total_uj:.1f} uJ "
          f"({db_report.regen_pj / db_report.total_pj:.2%} spent on regeneration)")
    print(f"  baseline: {em.report(base_opt.counter).total_uj:.1f} uJ")
    print(f"  (one regenerated weight costs {em.regen_pj_per_value:.1f} pJ — "
          f"{em.regen_vs_dram_ratio:.0f}x less than a DRAM fetch)")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "device.npz")
        save_sparse(model, opt, path)
        print(f"\nflashable checkpoint: {os.path.getsize(path):,} bytes "
              f"(ideal payload {sparse_size_bytes(opt):,} bytes, "
              f"budget {budget_bytes:,} bytes)")


if __name__ == "__main__":
    main()
