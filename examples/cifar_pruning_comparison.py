#!/usr/bin/env python
"""Compare pruning techniques on a CIFAR-style convolutional network.

Reruns a slice of the paper's Table 3 on a wide residual network: dense
baseline, DropBack, iterative magnitude pruning, variational dropout, and
network slimming (train -> channel-prune -> retrain), printing error and
achieved compression for each.

Run:
    python examples/cifar_pruning_comparison.py [--epochs 4] [--compression 5]
"""

from __future__ import annotations

import argparse

from repro import DataLoader, DropBack, SGD, Trainer
from repro.data import synth_cifar
from repro.models import wrn_10_2
from repro.optim import ConstantLR
from repro.prune import (
    MagnitudePruning,
    SlimmingSGD,
    make_variational,
    prune_channels,
    slimming_compression,
    vd_loss_fn,
    vd_sparsity,
)
from repro.utils import format_percent, format_ratio, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--compression", type=float, default=5.0)
    parser.add_argument("--train-size", type=int, default=800)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    lr = 0.1
    train, test = synth_cifar(n_train=args.train_size, n_test=args.train_size // 4,
                              seed=0, size=16)
    loader_seed = 1
    rows = []

    def fit(model, opt, loss_fn=None, epochs=None):
        t = Trainer(model, opt, loss_fn=loss_fn, schedule=ConstantLR(opt.lr))
        return t.fit(DataLoader(train, 32, seed=loader_seed), test,
                     epochs=epochs or args.epochs)

    print("baseline ...")
    m = wrn_10_2().finalize(args.seed)
    h = fit(m, SGD(m, lr=lr))
    rows.append(["Baseline", format_percent(h.best_val_error), "1.0x"])

    print("dropback ...")
    m = wrn_10_2().finalize(args.seed)
    k = max(1, int(m.num_parameters() / args.compression))
    opt = DropBack(m, k=k, lr=lr)
    h = fit(m, opt)
    rows.append(["DropBack", format_percent(h.best_val_error),
                 format_ratio(opt.compression_ratio)])

    print("magnitude pruning ...")
    m = wrn_10_2().finalize(args.seed)
    opt = MagnitudePruning(m, lr=lr, prune_fraction=1.0 - 1.0 / args.compression)
    h = fit(m, opt)
    rows.append(["Magnitude", format_percent(h.best_val_error),
                 format_ratio(opt.compression_ratio)])

    print("variational dropout ...")
    m = make_variational(wrn_10_2()).finalize(args.seed)
    loss_fn = vd_loss_fn(m, n_train=len(train), kl_weight=0.5,
                         warmup_steps=2 * (len(train) // 32))
    h = fit(m, SGD(m, lr=lr / 2), loss_fn=loss_fn)
    comp = 1.0 / max(1e-6, 1.0 - vd_sparsity(m))
    rows.append(["Var. Dropout", format_percent(h.best_val_error), format_ratio(comp)])

    print("network slimming (train -> prune -> retrain) ...")
    m = wrn_10_2().finalize(args.seed)
    fit(m, SlimmingSGD(m, lr=lr, l1=1e-3))
    prune_channels(m, 0.5)
    h = fit(m, SGD(m, lr=lr / 2), epochs=max(2, args.epochs // 2))
    rows.append(["Slimming", format_percent(h.best_val_error),
                 format_ratio(slimming_compression(m))])

    print("\n" + format_table(["technique", "val error", "weight compression"], rows))
    print("\nExpected shape (paper Table 3): DropBack holds accuracy at ~5x on "
          "residual nets; magnitude and slimming degrade them more; variational "
          "dropout is the least stable.")


if __name__ == "__main__":
    main()
