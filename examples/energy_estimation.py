#!/usr/bin/env python
"""Analytic energy exploration for the paper's five evaluation networks.

No training — this walks the paper's energy argument (Sections 1-2) across
model sizes: per-step weight traffic for dense SGD vs DropBack at several
budgets, the regeneration overhead, and the 427x regen-vs-DRAM headline.

Run:
    python examples/energy_estimation.py [--steps 1000]
"""

from __future__ import annotations

import argparse

from repro.energy import EnergyModel
from repro.models import (
    densenet_2_7m,
    lenet_300_100,
    mnist_100_100,
    vgg_s,
    wrn_28_10,
)
from repro.optim.base import AccessCounter
from repro.utils import format_ratio, format_table

#: (name, factory, the paper's DropBack budgets for it)
MODELS = [
    ("MNIST-100-100", mnist_100_100, (50_000, 20_000, 1_500)),
    ("LeNet-300-100", lenet_300_100, (50_000, 20_000, 1_500)),
    ("VGG-S", vgg_s, (5_000_000, 3_000_000, 750_000)),
    ("DenseNet", densenet_2_7m, (600_000, 100_000)),
    ("WRN-28-10", wrn_28_10, (8_000_000, 5_000_000)),
]


def dense_counter(n_params: int, steps: int) -> AccessCounter:
    """Dense SGD weight traffic: read + write every weight each step."""
    return AccessCounter(
        weight_reads=n_params * steps, weight_writes=n_params * steps, steps=steps
    )


def dropback_counter(n_params: int, k: int, steps: int) -> AccessCounter:
    """DropBack traffic: k reads/writes, the rest regenerated on-chip."""
    k = min(k, n_params)
    return AccessCounter(
        weight_reads=k * steps,
        weight_writes=k * steps,
        regenerations=(n_params - k) * steps,
        steps=steps,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=1_000,
                        help="training steps to model")
    args = parser.parse_args()

    em = EnergyModel()
    print("45 nm energy constants (Han et al. 2016, via the paper):")
    print(f"  DRAM access: {em.pj_dram} pJ | float op: {em.pj_float} pJ "
          f"({em.dram_vs_flop_ratio:.0f}x)")
    print(f"  xorshift regeneration: {em.regen_pj_per_value:.2f} pJ/value "
          f"({em.regen_vs_dram_ratio:.0f}x cheaper than DRAM)\n")

    rows = []
    for name, factory, budgets in MODELS:
        model = factory()
        n = model.num_parameters()
        dense = em.report(dense_counter(n, args.steps))
        for k in budgets:
            db = em.report(dropback_counter(n, k, args.steps))
            rows.append(
                [
                    name,
                    f"{n / 1e6:.2f}M",
                    f"{k:,}",
                    format_ratio(n / k),
                    f"{dense.total_uj:.0f} uJ",
                    f"{db.total_uj:.0f} uJ",
                    format_ratio(dense.total_pj / db.total_pj),
                    f"{db.regen_pj / db.total_pj:.1%}",
                ]
            )

    print(format_table(
        ["model", "params", "budget k", "compression", "dense energy",
         "dropback energy", "saving", "regen share"],
        rows,
    ))
    print(f"\n(energies are weight-memory traffic for {args.steps:,} training steps; "
          "activations and compute are common to both and excluded)")


if __name__ == "__main__":
    main()
