#!/usr/bin/env python
"""Deploying a DropBack model: streaming inference with weight regeneration.

Shows the full deployment path the paper's accelerator implies:

1. train with DropBack (only k weights ever stored);
2. export the sparse checkpoint (seed + tracked indices/values);
3. on the "device", rebuild ONLY the architecture, load the sparse data,
   and serve predictions through the regenerating inference engine —
   weights are materialized layer by layer from the xorshift PRNG plus the
   tracked values, and never held all at once;
4. verify bit-exactness against the dense model and report the weight
   traffic and energy per forward pass;
5. stand the same checkpoint up behind the serving layer: the
   ModelRegistry materializes the weight plane from the sparse payload on
   demand (digest-keyed, LRU-evicted under a byte budget) and the
   InferenceServer coalesces concurrent single-sample requests into
   batched forwards — same bits, now with p50/p99 under load.

Run:
    python examples/streaming_inference.py [--compression 10] [--epochs 6]
"""

from __future__ import annotations

import argparse
import os
import tempfile

import numpy as np

from repro import DataLoader, DropBack, Tensor, Trainer, no_grad
from repro.data import synth_mnist
from repro.energy import EnergyModel
from repro.infer import RegeneratingInferenceEngine
from repro.io import load_sparse, save_sparse
from repro.models import lenet_300_100
from repro.optim import BoundedStepDecay
from repro.optim.base import AccessCounter
from repro.serve import InferenceServer, ModelRegistry
from repro.utils import format_ratio


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compression", type=float, default=10.0)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    train, test = synth_mnist(n_train=2_000, n_test=500, seed=0)

    model = lenet_300_100().finalize(args.seed)
    k = max(1, int(model.num_parameters() / args.compression))
    opt = DropBack(model, k=k, lr=0.4)
    print(f"training LeNet-300-100 with k={k:,} "
          f"({format_ratio(model.num_parameters() / k)} compression) ...")
    Trainer(model, opt, schedule=BoundedStepDecay(0.4, period=2), patience=5).fit(
        DataLoader(train, 64, seed=1), test, epochs=args.epochs, verbose=True
    )

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "model.npz")
        save_sparse(model, opt, ckpt)
        print(f"\nexported sparse checkpoint: {os.path.getsize(ckpt):,} bytes")

        # --- "device side": architecture + checkpoint only -------------
        device_model = load_sparse(lenet_300_100(), ckpt)
        mask = opt.tracked_mask
        flat = np.concatenate([p.data.reshape(-1) for p in device_model.parameters()])
        idx = np.flatnonzero(mask)
        engine = RegeneratingInferenceEngine(device_model, idx, flat[idx])

        # --- "server side": registry + dynamic batching ----------------
        registry = ModelRegistry(byte_budget=4 << 20)
        digest = registry.register("lenet-300-100", lenet_300_100, ckpt)

    x = test.images[:256]
    preds = engine.predict(x)
    acc = float((preds == test.labels[:256]).mean())
    traffic = engine.last_traffic

    model.eval()
    with no_grad():
        dense_logits = model(Tensor(x[: traffic and 256])).numpy()
    dense_preds = dense_logits.argmax(axis=-1)
    print(f"\ndevice accuracy on 256 samples: {acc:.4f} "
          f"(matches dense model: {bool(np.array_equal(preds, dense_preds))})")

    em = EnergyModel()
    engine_pj = em.report(traffic.as_counter()).total_pj
    dense_pj = em.report(
        AccessCounter(weight_reads=model.num_parameters(), steps=1)
    ).total_pj
    print(f"stored weights on device: {engine.storage_floats():,} of "
          f"{model.num_parameters():,}")
    print(f"per-pass weight traffic: {traffic.tracked_fetches:,} fetches + "
          f"{traffic.regenerations:,} regenerations")
    print(f"peak resident weights (streaming): {traffic.peak_resident_weights:,}")
    print(f"weight energy per pass: {engine_pj / 1e6:.1f} uJ vs dense "
          f"{dense_pj / 1e6:.1f} uJ ({format_ratio(dense_pj / engine_pj)} less)")

    # --- serving: concurrent clients, batched forwards -----------------
    print(f"\nserving checkpoint {digest[:12]} through the dynamic batcher ...")
    with InferenceServer(registry, max_batch_size=8, max_wait_ms=2.0) as server:
        futures = [server.submit(digest, x[i]) for i in range(64)]
        served = np.stack([f.result(timeout=30.0) for f in futures])
        stats = server.stats
    served_preds = served.argmax(axis=-1)
    info = registry.describe(digest)
    print(f"64 concurrent requests -> {stats.batches} batched forward(s), "
          f"mean batch size {stats.mean_batch_size:.1f}")
    print(f"served predictions match dense model: "
          f"{bool(np.array_equal(served_preds, dense_preds[:64]))}")
    print(f"registry: sparse payload {info['sparse_bytes']:,} B pinned, "
          f"plane {info['plane_bytes']:,} B resident (LRU-evictable)")


if __name__ == "__main__":
    main()
