#!/usr/bin/env python
"""Map the full compression/accuracy tradeoff curve for a model.

Sweeps DropBack across a grid of weight-budget ratios on synthetic MNIST,
prints the curve, and reports the "knee" — the largest compression whose
error stays within a tolerance of the best run.  The paper samples this
curve at 3 budgets per model (Table 1); the sweep shows where the free
compression actually ends.

Run:
    python examples/compression_sweep.py [--epochs 6] [--tolerance 0.02]
"""

from __future__ import annotations

import argparse

from repro.analysis import compression_sweep, find_knee
from repro.data import synth_mnist
from repro.models import mnist_100_100
from repro.utils import ascii_series, format_percent, format_ratio, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--train-size", type=int, default=1500)
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed error increase over the best run")
    parser.add_argument(
        "--ratios", type=float, nargs="+",
        default=[1.5, 3, 6, 12, 25, 50, 100, 200],
    )
    args = parser.parse_args()

    data = synth_mnist(n_train=args.train_size, n_test=args.train_size // 4, seed=0)
    print(f"sweeping {len(args.ratios)} budgets x {args.epochs} epochs "
          f"on MNIST-100-100 ...")
    points = compression_sweep(
        mnist_100_100, data, ratios=args.ratios, epochs=args.epochs
    )

    print(format_table(
        ["compression", "budget k", "val error", "best epoch"],
        [
            [format_ratio(p.compression), f"{p.k:,}", format_percent(p.val_error), p.best_epoch]
            for p in points
        ],
    ))
    print()
    print(ascii_series([p.val_error for p in points], width=len(points) * 6,
                       height=10, label="error vs compression (left=1.5x)"))

    knee = find_knee(points, tolerance=args.tolerance)
    print(f"\nknee (within {format_percent(args.tolerance)} of best): "
          f"{format_ratio(knee.compression)} — {knee.k:,} weights, "
          f"{format_percent(knee.val_error)} error")


if __name__ == "__main__":
    main()
