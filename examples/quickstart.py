#!/usr/bin/env python
"""Quickstart: train an MLP on synthetic MNIST with DropBack.

Trains LeNet-300-100 twice — once with plain SGD (the dense baseline) and
once with DropBack tracking only a fraction of the weights — then compares
validation error, weight compression, and checkpoint sizes, and round-trips
the sparse checkpoint to show that untracked weights really are regenerated
rather than stored.

Run:
    python examples/quickstart.py [--budget 20000] [--epochs 8]
"""

from __future__ import annotations

import argparse
import os
import tempfile

from repro import DataLoader, DropBack, SGD, Trainer, evaluate
from repro.data import synth_mnist
from repro.io import compression_report, load_sparse, save_sparse
from repro.models import lenet_300_100
from repro.optim import BoundedStepDecay
from repro.utils import format_percent, format_ratio


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=20_000, help="tracked-weight budget k")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--train-size", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print("Generating synthetic MNIST ...")
    train, test = synth_mnist(n_train=args.train_size, n_test=args.train_size // 4, seed=0)
    schedule = BoundedStepDecay(0.4, factor=0.5, period=max(2, args.epochs // 4))

    print("\n[1/2] Dense baseline (plain SGD)")
    baseline = lenet_300_100().finalize(args.seed)
    base_opt = SGD(baseline, lr=0.4)
    base_hist = Trainer(baseline, base_opt, schedule=schedule, patience=5).fit(
        DataLoader(train, 64, seed=1), test, epochs=args.epochs, verbose=True
    )

    print(f"\n[2/2] DropBack with k={args.budget} tracked weights")
    model = lenet_300_100().finalize(args.seed)
    opt = DropBack(model, k=args.budget, lr=0.4)
    hist = Trainer(model, opt, schedule=schedule, patience=5).fit(
        DataLoader(train, 64, seed=1), test, epochs=args.epochs, verbose=True
    )

    print("\n--- results ---")
    print(f"baseline error:  {format_percent(base_hist.best_val_error)} (dense, "
          f"{baseline.num_parameters():,} weights stored)")
    print(f"dropback error:  {format_percent(hist.best_val_error)} "
          f"({format_ratio(opt.compression_ratio)} weight compression, "
          f"{opt.storage_floats():,} weights stored)")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "dropback.npz")
        save_sparse(model, opt, path)
        print(f"\nsparse checkpoint: {os.path.getsize(path):,} bytes on disk")
        print(f"storage report: {compression_report(model, opt)}")

        restored = load_sparse(lenet_300_100(), path)
        acc = evaluate(restored, test)
        print(f"restored model accuracy: {acc:.4f} "
              f"(identical to trained: {abs(acc - hist.best_val_accuracy) < 0.05})")


if __name__ == "__main__":
    main()
