"""Extension — run-to-run variance of the headline result.

The paper reports single-run numbers; this bench repeats the MNIST-100-100
baseline and DropBack 4.5x cells across seeds and reports mean ± std, so
the Table 1 comparison comes with error bars.
"""

from __future__ import annotations

import pytest

from repro.analysis import seed_sweep
from repro.core import DropBack
from repro.models import mnist_100_100
from repro.optim import SGD
from repro.utils import format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run

SEEDS = (11, 22, 33)
COMPRESSION = 4.5


@pytest.fixture(scope="module")
def variance_results():
    data = mnist_data()

    def run_baseline(seed: int) -> float:
        model = mnist_100_100().finalize(seed)
        hist = train_run(model, SGD(model, lr=SCALE.lr), data,
                         epochs=SCALE.mnist_epochs, lr=SCALE.lr)
        return hist.best_val_error

    def run_dropback(seed: int) -> float:
        model = mnist_100_100().finalize(seed)
        opt = DropBack(model, k=budget_for_ratio(model, COMPRESSION), lr=SCALE.lr)
        hist = train_run(model, opt, data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)
        return hist.best_val_error

    return {
        "Baseline": seed_sweep(run_baseline, SEEDS),
        f"DropBack {COMPRESSION}x": seed_sweep(run_dropback, SEEDS),
    }


def test_ext_seed_variance_report(variance_results, benchmark):
    rows = []
    for name, stats in variance_results.items():
        lo, hi = stats.confidence_interval()
        rows.append(
            [
                name,
                f"{stats.mean:.4f}",
                f"{stats.std:.4f}",
                f"[{lo:.4f}, {hi:.4f}]",
                stats.n,
            ]
        )
    emit_report(
        "ext_seed_variance",
        f"Validation error across {len(SEEDS)} seeds (MNIST-100-100)\n"
        + format_table(["config", "mean err", "std", "95% CI", "n"], rows),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ext_seed_variance_claims(variance_results, benchmark):
    base = variance_results["Baseline"]
    db = variance_results[f"DropBack {COMPRESSION}x"]
    # Moderate-compression DropBack overlaps the baseline within the seed
    # noise (Table 1's "nearly the same accuracy" with error bars).
    assert abs(db.mean - base.mean) < base.std + db.std + 0.03
    # And the variance itself is small: the result is not a seed artifact.
    assert db.std < 0.05 and base.std < 0.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
