"""Extension — inference with on-the-fly regeneration.

The accelerator story behind the paper's Section 1 claims, measured: run
the trained DropBack model through the streaming inference engine and
compare weight traffic and energy per forward pass against dense inference,
verifying bit-exactness along the way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DropBack
from repro.energy import EnergyModel
from repro.infer import RegeneratingInferenceEngine
from repro.models import mnist_100_100
from repro.optim.base import AccessCounter
from repro.tensor import Tensor, no_grad
from repro.utils import format_ratio, format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run


@pytest.fixture(scope="module")
def engine_setup():
    data = mnist_data()
    model = mnist_100_100().finalize(42)
    opt = DropBack(model, k=budget_for_ratio(model, 10.0), lr=SCALE.lr)
    train_run(model, opt, data, epochs=max(2, SCALE.mnist_epochs // 2), lr=SCALE.lr)
    engine = RegeneratingInferenceEngine.from_optimizer(model, opt)
    return model, opt, engine, data[1]


def test_ext_inference_report(engine_setup, benchmark):
    model, opt, engine, test = engine_setup
    em = EnergyModel()
    x = test.images[:64]

    out = engine.forward(x)
    t = engine.last_traffic
    dense_counter = AccessCounter(weight_reads=model.num_parameters(), steps=1)
    dense_pj = em.report(dense_counter).total_pj
    engine_pj = em.report(t.as_counter()).total_pj

    model.eval()
    with no_grad():
        dense_out = model(Tensor(x)).numpy().copy()
    model.train()
    exact = bool(np.array_equal(out, dense_out))

    table = format_table(
        ["metric", "dense inference", "regenerating engine"],
        [
            ["stored weights", f"{model.num_parameters():,}", f"{engine.storage_floats():,}"],
            ["weight fetches / pass", f"{model.num_parameters():,}", f"{t.tracked_fetches:,}"],
            ["regenerations / pass", "0", f"{t.regenerations:,}"],
            [
                "peak resident weights",
                f"{model.num_parameters():,}",
                f"{t.peak_resident_weights:,}",
            ],
            ["weight energy / pass", f"{dense_pj / 1e6:.1f} uJ", f"{engine_pj / 1e6:.1f} uJ"],
            ["energy saving", "-", format_ratio(dense_pj / engine_pj)],
            ["outputs bit-exact", "-", str(exact)],
        ],
    )
    emit_report("ext_inference", "Regenerating inference engine\n" + table)

    benchmark.pedantic(lambda: engine.forward(x), rounds=3, iterations=1, warmup_rounds=1)

    assert exact
    assert engine_pj < dense_pj / 3
