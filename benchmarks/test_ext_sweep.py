"""Extension — the full compression/accuracy tradeoff curve.

Table 1 samples a few budgets; this bench sweeps MNIST-100-100 across a
compression grid and reports the knee — the largest "free" compression —
which the paper's narrative places around 4.5x-13x for the MNIST MLPs.
"""

from __future__ import annotations

import pytest

from repro.analysis import compression_sweep, find_knee
from repro.models import mnist_100_100
from repro.utils import format_percent, format_ratio, format_table

from common import SCALE, emit_report, mnist_data

RATIOS = (1.5, 3.0, 6.0, 12.0, 25.0, 50.0, 100.0)


@pytest.fixture(scope="module")
def sweep_points():
    return compression_sweep(
        mnist_100_100,
        mnist_data(),
        ratios=RATIOS,
        epochs=SCALE.mnist_epochs,
        lr=SCALE.lr,
    )


def test_ext_sweep_report(sweep_points, benchmark):
    knee = find_knee(sweep_points, tolerance=0.02)
    table = format_table(
        ["compression", "budget k", "val error", "best epoch"],
        [
            [format_ratio(p.compression), f"{p.k:,}", format_percent(p.val_error), p.best_epoch]
            for p in sweep_points
        ],
    )
    emit_report(
        "ext_compression_sweep",
        "DropBack compression/accuracy tradeoff on MNIST-100-100\n"
        + table
        + f"\n\nknee (within 2% of best error): {format_ratio(knee.compression)}",
    )
    benchmark.pedantic(lambda: find_knee(sweep_points), rounds=5, iterations=1)


def test_ext_sweep_claims(sweep_points, benchmark):
    # Error is (noisily) non-decreasing with compression: the extreme end
    # must be clearly worse than the mild end.
    assert sweep_points[-1].val_error > sweep_points[0].val_error
    # A multi-x free-compression region exists (paper: 4.5x with no loss).
    knee = find_knee(sweep_points, tolerance=0.02)
    assert knee.compression >= 3.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
