"""Table 2 — per-layer retained weights in the trained MNIST-100-100 net.

Paper rows (per-layer retained counts and compression):

    layer            Baseline  DropBack 10000     DropBack 1500
    fc1 (100x784)    78500     7223 (10.9x)       734 (107.0x)
    fc2 (100x100)    10100     2128 (4.8x)        512 (19.7x)
    fc3 (100x10)     1010      549 (1.8x)         254 (4.0x)

The qualitative claim: at tiny budgets the later layers keep
*proportionally* more of their weights (their per-layer compression is far
lower than fc1's).
"""

from __future__ import annotations

import pytest

from repro.analysis import layer_retention_table
from repro.core import DropBack
from repro.models import mnist_100_100
from repro.utils import format_ratio, format_table

from common import SCALE, emit_report, mnist_data, train_run

#: Paper budgets on the real 89,610-parameter model — usable directly, the
#: bench model is the exact same architecture.
BUDGETS = {"DropBack 10000": 10_000, "DropBack 1500": 1_500}

PAPER_COMPRESSION = {
    "DropBack 10000": {"layers.1": 10.9, "layers.3": 4.8, "layers.5": 1.8},
    "DropBack 1500": {"layers.1": 107.0, "layers.3": 19.7, "layers.5": 4.0},
}

LAYER_LABELS = {
    "layers.1": "fc1 (100x784)",
    "layers.3": "fc2 (100x100)",
    "layers.5": "fc3 (100x10)",
}


@pytest.fixture(scope="module")
def retention_results():
    data = mnist_data()
    out = {}
    for name, k in BUDGETS.items():
        model = mnist_100_100().finalize(42)
        opt = DropBack(model, k=k, lr=SCALE.lr)
        train_run(model, opt, data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)
        out[name] = {r.layer: r for r in layer_retention_table(model, opt)}
    return out


def test_table2_report(retention_results, benchmark):
    rows = []
    for layer, label in LAYER_LABELS.items():
        row = [label]
        for name in BUDGETS:
            r = retention_results[name][layer]
            paper_c = PAPER_COMPRESSION[name][layer]
            row.append(f"{r.retained} ({format_ratio(r.compression)}; paper {paper_c}x)")
        rows.append(row)
    totals = ["Total"]
    for name in BUDGETS:
        r = retention_results[name]["Total"]
        totals.append(f"{r.retained} ({format_ratio(r.compression)})")
    rows.append(totals)
    emit_report(
        "table2_layerwise",
        format_table(["layer", *BUDGETS.keys()], rows),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table2_shape_claims(retention_results, benchmark):
    for name in BUDGETS:
        rows = retention_results[name]
        assert rows["Total"].retained == BUDGETS[name]
        # Later layers are proportionally denser than fc1.
        assert rows["layers.1"].compression > rows["layers.3"].compression
        assert rows["layers.3"].compression > rows["layers.5"].compression
    # The tiny budget skews even harder toward the later layers (paper: the
    # 1.5k network "allocates a much higher amount of its weights to the
    # later layers").
    frac_fc3_small = (
        retention_results["DropBack 1500"]["layers.5"].retained / 1_500
    )
    frac_fc3_large = (
        retention_results["DropBack 10000"]["layers.5"].retained / 10_000
    )
    assert frac_fc3_small > frac_fc3_large
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
