#!/usr/bin/env python
"""Serving load bench: dynamic batching vs batch-size-1, p50/p99 + throughput.

Thin entry point over :mod:`repro.serve.loadgen` so CI (and humans) can run
the bench without installing the package::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --clients 16 --max-batch 16 --out benchmarks/results/perf_serve.json

The emitted report is gated in the ``serve-bench`` CI job via
``scripts/check_perf_report.py --normalize serve.single_forward`` plus
``--gate-meta speedup_vs_batch1:2.0``; see ``docs/serving.md``.
"""

import sys
from pathlib import Path

_src = Path(__file__).resolve().parent.parent / "src"
if _src.is_dir() and str(_src) not in sys.path:
    sys.path.insert(0, str(_src))

from repro.serve.loadgen import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
