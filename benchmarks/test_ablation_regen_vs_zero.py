"""Ablation — regenerate untracked weights vs zero them.

Paper Section 2.1: "In our experiments on MNIST, we were able to reduce the
tracked weights 60x if initialization values were preserved, but only 2x if
untracked weights were zeroed."  The initialization scaffolding is the load-
bearing component of DropBack.
"""

from __future__ import annotations

import pytest

from repro.core import DropBack
from repro.models import mnist_100_100
from repro.utils import format_percent, format_ratio, format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run

RATIOS = (2.0, 10.0, 30.0, 60.0)


@pytest.fixture(scope="module")
def ablation_results():
    data = mnist_data()
    rows = []
    for ratio in RATIOS:
        accs = {}
        for zero in (False, True):
            model = mnist_100_100().finalize(42)
            opt = DropBack(
                model, k=budget_for_ratio(model, ratio), lr=SCALE.lr, zero_untracked=zero
            )
            hist = train_run(model, opt, data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)
            accs["zeroed" if zero else "regenerated"] = hist.best_val_accuracy
        rows.append({"ratio": ratio, **accs})
    return rows


def test_ablation_regen_vs_zero_report(ablation_results, benchmark):
    table = format_table(
        ["compression", "acc (regenerated)", "acc (zeroed)", "regeneration gain"],
        [
            [
                format_ratio(r["ratio"]),
                format_percent(r["regenerated"]),
                format_percent(r["zeroed"]),
                format_percent(r["regenerated"] - r["zeroed"]),
            ]
            for r in ablation_results
        ],
    )
    emit_report(
        "ablation_regen_vs_zero",
        "Untracked weights: regenerate W(0) vs zero (paper Section 2.1)\n" + table,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_regen_vs_zero_claims(ablation_results, benchmark):
    # At high compression, regeneration must clearly beat zeroing.
    high = [r for r in ablation_results if r["ratio"] >= 30.0]
    assert all(r["regenerated"] > r["zeroed"] for r in high)
    # The gap should widen as compression grows.
    gaps = [r["regenerated"] - r["zeroed"] for r in ablation_results]
    assert gaps[-1] > gaps[0]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
