#!/usr/bin/env python
"""Sparse execution bench: packed CSR kernels and plane-free serving.

Two measurements, one report (``benchmarks/results/perf_sparse.json``):

* **kernel micro** — a large square weight at 90% sparsity (density
  0.10, the paper's 10x-compression regime) driven through ``matmul`` on
  the ``fast`` dense backend and on the ``sparse`` backend with a
  registered pack.  The serving-shaped operand (a single activation row
  against a big weight) is where CSR pays: dense matvec is memory-bound
  on the 90%-zero weight, the packed product touches only the tracked
  10%.  ``meta.speedup_sparse_matmul_d90`` is the same-process ratio CI
  gates with ``--gate-meta speedup_sparse_matmul_d90:2.0``.
* **registry bytes** — one 95%-sparse ``zero_untracked`` checkpoint
  registered twice: dense materialization (full weight plane) vs a
  ``packed=True`` entry (CSR structures only).
  ``meta.registry_bytes_ratio`` = packed resident bytes / dense resident
  bytes, gated with ``--gate-meta-max registry_bytes_ratio:0.5``; the
  packed forward is also timed as the ``serve.sparse_forward`` gauge op.

Both gated metas are within-process ratios, so the committed baseline
gates them machine-independently.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_sparse.py \
        --out benchmarks/results/perf_sparse.json

See ``docs/sparse.md`` for format and dispatch semantics.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

_here = Path(__file__).resolve().parent
_src = _here.parent / "src"
for p in (_src, _here):
    if p.is_dir() and str(p) not in sys.path:
        sys.path.insert(0, str(p))

import numpy as np  # noqa: E402

from common import RESULTS_DIR, synth_sparse_checkpoint  # noqa: E402
from repro.profile import OpStat, PerfReport  # noqa: E402
from repro.serve import ModelRegistry  # noqa: E402
from repro.serve.loadgen import BENCH_MODELS  # noqa: E402
from repro.tensor.kernels import fast, sparse  # noqa: E402

#: 90% sparse — the kernel regime named by the gated meta.
MATMUL_DENSITY = 0.10
#: 95% sparse — the serving regime named in the acceptance criteria.
SERVE_DENSITY = 0.05


def _best_of(fn, rounds: int, warmup: int = 2) -> float:
    """Best wall time over ``rounds`` (min is the noise-robust statistic
    for a fixed workload — anything slower is scheduler interference)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_matmul(size: int, batch: int, rounds: int, seed: int) -> dict:
    """Dense-vs-packed matmul at 90% sparsity on a registered pack."""
    rng = np.random.default_rng(seed)
    nnz = int(round(size * size * MATMUL_DENSITY))
    flat = np.sort(rng.choice(size * size, size=nnz, replace=False))
    w = np.zeros((size, size), dtype=np.float32)
    w.reshape(-1)[flat] = rng.standard_normal(nnz).astype(np.float32)
    x = rng.standard_normal((batch, size)).astype(np.float32)

    keys = sparse.register_weight(w, flat)
    try:
        dense_s = _best_of(lambda: fast.matmul(x, w.T), rounds)
        sparse_s = _best_of(lambda: sparse.matmul(x, w.T), rounds)
    finally:
        sparse.invalidate(keys)
    return {"dense_s": dense_s, "sparse_s": sparse_s, "nnz": nnz}


def bench_registry(model_name: str, batch: int, rounds: int, seed: int) -> dict:
    """Dense vs packed registry residency and forward latency."""
    factory = BENCH_MODELS[model_name]
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = synth_sparse_checkpoint(
            model_name,
            os.path.join(tmp, "bench_sparse.npz"),
            density=SERVE_DENSITY,
            zero_untracked=True,
            seed=seed,
        )
        dense_reg = ModelRegistry()
        packed_reg = ModelRegistry()
        dense_h = dense_reg.acquire(dense_reg.register(model_name, factory, ckpt))
        packed_h = packed_reg.acquire(
            packed_reg.register(model_name, factory, ckpt, packed=True)
        )

    rng = np.random.default_rng(seed)
    x = rng.standard_normal((batch, 784)).astype(np.float32)
    dense_s = _best_of(lambda: dense_h.forward(x), rounds)
    packed_s = _best_of(lambda: packed_h.forward(x), rounds)
    parity = float(np.abs(dense_h.forward(x) - packed_h.forward(x)).max())
    return {
        "dense_s": dense_s,
        "packed_s": packed_s,
        "dense_bytes": dense_reg.resident_bytes,
        "packed_bytes": packed_reg.resident_bytes,
        "parity_max_abs_diff": parity,
    }


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Sparse kernel + packed serving bench (perf_sparse.json)"
    )
    parser.add_argument("--size", type=int, default=4096,
                        help="square weight dimension for the matmul micro (default 4096)")
    parser.add_argument("--batch", type=int, default=1,
                        help="activation rows for the matmul micro (default 1)")
    parser.add_argument("--serve-batch", type=int, default=16,
                        help="batch size for the serving forward (default 16)")
    parser.add_argument("--model", choices=sorted(BENCH_MODELS), default="mnist-100-100")
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default=str(RESULTS_DIR / "perf_sparse.json"),
                        help="perf-report JSON path (default benchmarks/results/)")
    return parser


def run_bench(args: argparse.Namespace) -> PerfReport:
    mm = bench_matmul(args.size, args.batch, args.rounds, args.seed)
    reg = bench_registry(args.model, args.serve_batch, args.rounds, args.seed)

    report = PerfReport(name="sparse")

    def gauge(op: str, seconds: float, calls: int) -> None:
        report.ops[op] = OpStat(name=op, calls=calls, total_seconds=float(seconds))

    # Gauge ops store best-of seconds for ONE call; the dense timings are
    # the in-report anchors (--normalize kernels.matmul.fast), so the op
    # comparison is a machine-independent ratio like the serving gate.
    gauge("kernels.matmul.fast", mm["dense_s"], args.rounds)
    gauge("kernels.matmul.sparse", mm["sparse_s"], args.rounds)
    gauge("serve.dense_forward", reg["dense_s"], args.rounds)
    gauge("serve.sparse_forward", reg["packed_s"], args.rounds)
    report.meta.update(
        {
            "latency_unit": "best-of seconds per call (total_seconds of gauge ops)",
            "speedup_sparse_matmul_d90": round(mm["dense_s"] / mm["sparse_s"], 4),
            "registry_bytes_ratio": round(reg["packed_bytes"] / reg["dense_bytes"], 4),
            "serve_forward_speedup": round(reg["dense_s"] / reg["packed_s"], 4),
            "sparse_density_cutoff": sparse.density_cutoff(),
            "densities": {"matmul": MATMUL_DENSITY, "serving": SERVE_DENSITY},
            "matmul_shape": [args.size, args.size],
            "matmul_batch": args.batch,
            "matmul_nnz": mm["nnz"],
            "model": args.model,
            "serve_batch": args.serve_batch,
            "dense_registry_bytes": reg["dense_bytes"],
            "packed_registry_bytes": reg["packed_bytes"],
            "serve_parity_max_abs_diff": reg["parity_max_abs_diff"],
            "rounds": args.rounds,
            "seed": args.seed,
        }
    )
    return report


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    report = run_bench(args)
    meta = report.meta

    def ms(op: str) -> str:
        return f"{report.ops[op].total_seconds * 1e3:.3f} ms"

    print(f"matmul {meta['matmul_shape']} @ density {meta['densities']['matmul']}: "
          f"fast {ms('kernels.matmul.fast')} -> sparse {ms('kernels.matmul.sparse')} "
          f"({meta['speedup_sparse_matmul_d90']:.2f}x)")
    print(f"serving {meta['model']} @ density {meta['densities']['serving']}: "
          f"dense {ms('serve.dense_forward')} -> packed {ms('serve.sparse_forward')} "
          f"({meta['serve_forward_speedup']:.2f}x)")
    print(f"registry bytes: dense {meta['dense_registry_bytes']:,} -> "
          f"packed {meta['packed_registry_bytes']:,} "
          f"(ratio {meta['registry_bytes_ratio']:.3f})")
    if args.out:
        path = report.write(args.out)
        print(f"perf report written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
