"""Figure 2 — churn of the top-k accumulated-gradient set.

The paper tracks the top-2k gradient set of the 90k MLP under standard SGD
and shows the membership stabilizes after the first handful of mini-batches
(left panel: thousands of swaps in the first ~10 iterations; right panel:
<0.04% of weights swapping for the rest of training).  This justifies
freezing the tracked set early.
"""

from __future__ import annotations

import pytest

from repro.analysis import TopKChurnTracker
from repro.models import mnist_100_100
from repro.optim import SGD
from repro.utils import ascii_series

from common import SCALE, emit_report, mnist_data, train_run

K = 2_000  # the paper's top-2K set


@pytest.fixture(scope="module")
def churn_series():
    data = mnist_data()
    model = mnist_100_100().finalize(42)
    tracker = TopKChurnTracker(k=K)
    train_run(
        model,
        SGD(model, lr=SCALE.lr),
        data,
        epochs=SCALE.mnist_epochs,
        lr=SCALE.lr,
        callbacks=[tracker],
    )
    return tracker.series()


def test_fig2_report(churn_series, benchmark):
    swaps = churn_series
    head = swaps[1:11]  # paper left panel: first 10 mini-batches
    tail = swaps[11:]  # paper right panel: the rest
    lines = [
        f"Top-{K} set churn under baseline SGD (paper Fig. 2)",
        f"iterations: {len(swaps)}",
        f"swaps over first 10 iterations:  {head.tolist()}",
        f"mean swaps afterwards:           {tail.mean():.1f}"
        f"  ({tail.mean() / K:.2%} of the set per step)",
        f"max swaps afterwards:            {tail.max()}",
        "",
        ascii_series(swaps[1:60].tolist(), width=59, height=10, label="swaps per iteration"),
    ]
    emit_report("fig2_weight_swaps", "\n".join(lines))

    benchmark.pedantic(lambda: swaps.sum(), rounds=3, iterations=1)

    # Shape claims: early churn is large, steady-state churn is small.
    assert head.mean() > 5 * tail.mean()
    assert tail.mean() < 0.05 * K  # "noise" level, cf. paper's 0.04%
