#!/usr/bin/env python
"""Data-parallel scaling bench: N-worker vs single-worker throughput.

Thin entry point over :mod:`repro.parallel.bench` so CI (and humans) can run
the bench without installing the package::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        --workers 2 --out benchmarks/results/perf_parallel.json

The emitted report is gated in the ``bench-smoke`` CI job via
``scripts/check_perf_report.py --normalize parallel.step.1w`` plus — on
multi-core runners only — ``--gate-meta scaling_efficiency_2w:0.75``; see
``docs/parallel.md``.
"""

import sys
from pathlib import Path

_src = Path(__file__).resolve().parent.parent / "src"
if _src.is_dir() and str(_src) not in sys.path:
    sys.path.insert(0, str(_src))

from repro.parallel.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
