"""Extension — accelerator capacity analysis (paper Section 6).

"DropBack can be used to train networks 5x-10x larger than currently
possible with typical hardware, or to train/retrain standard-size networks
on small mobile and embedded devices."  This bench quantifies both halves
with the hardware model: per-step energy for each paper model, and the
largest on-chip-trainable model dense vs DropBack.
"""

from __future__ import annotations

import pytest

from repro.hw import AcceleratorModel
from repro.models import densenet_2_7m, lenet_300_100, mnist_100_100, vgg_s, wrn_28_10
from repro.utils import format_ratio, format_table

from common import emit_report

MODELS = [
    ("MNIST-100-100", mnist_100_100, 4.5),
    ("LeNet-300-100", lenet_300_100, 13.3),
    ("DenseNet", densenet_2_7m, 4.5),
    ("VGG-S", vgg_s, 5.0),
    ("WRN-28-10", wrn_28_10, 5.2),
]


@pytest.fixture(scope="module")
def accel_results():
    am = AcceleratorModel()
    rows = []
    for name, factory, compression in MODELS:
        n = factory().num_parameters()
        k = max(1, int(n / compression))
        dense = am.dense_step_energy(n)
        db = am.dropback_step_energy(n, k)
        rows.append(
            {
                "name": name,
                "params": n,
                "compression": compression,
                "dense_level": dense.resident_level,
                "db_level": db.resident_level,
                "saving": dense.total_pj / db.total_pj,
            }
        )
    return am, rows


def test_ext_accelerator_report(accel_results, benchmark):
    am, rows = accel_results
    table = format_table(
        ["model", "params", "k compression", "dense weights live in",
         "tracked set lives in", "step-energy saving"],
        [
            [
                r["name"],
                f"{r['params'] / 1e6:.2f}M",
                format_ratio(r["compression"]),
                r["dense_level"],
                r["db_level"],
                format_ratio(r["saving"]),
            ]
            for r in rows
        ],
    )
    cap_lines = [
        "",
        "Largest model trainable from on-chip memory alone:",
        f"  dense SGD:        {am.max_trainable_params():,} params",
    ]
    for comp in (5.0, 10.0, 20.0):
        cap_lines.append(
            f"  DropBack {comp:4.0f}x:   {am.max_trainable_params(comp):,} params "
            f"({am.capacity_multiplier(comp):.1f}x larger)"
        )
    cap_lines.append("  (paper Section 6: 'networks 5x-10x larger than currently possible')")
    emit_report(
        "ext_accelerator",
        "Accelerator capacity analysis (paper Section 6)\n" + table + "\n".join(cap_lines),
    )
    benchmark.pedantic(lambda: am.energy_saving(10**7, 10**5), rounds=5, iterations=1)


def test_ext_accelerator_claims(accel_results, benchmark):
    am, rows = accel_results
    # Paper claim: 5x-10x larger trainable networks at ~10x-20x compression.
    assert 4.5 <= am.capacity_multiplier(10.0) <= 10.5
    # When the compression carries the tracked set across the on-chip
    # boundary (LeNet-300-100 at 13.3x: dense is DRAM-resident, tracked fits
    # SRAM) the saving multiplies far beyond the access-count ratio.
    lenet = next(r for r in rows if r["name"] == "LeNet-300-100")
    assert lenet["dense_level"] == "dram"
    assert lenet["db_level"] != "dram"
    assert lenet["saving"] > 5 * lenet["compression"]
    # Very large models whose tracked set still spills get the access-count
    # ratio as the floor.
    wrn = next(r for r in rows if r["name"] == "WRN-28-10")
    assert wrn["saving"] == pytest.approx(wrn["compression"], rel=0.05)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
