"""Ablation — global top-k selection vs fixed per-layer budgets.

Algorithm 1 selects the top-k accumulated gradients *globally*; Table 2
shows the budget then concentrates where learning happens.  This ablation
compares against the obvious alternative — allocating each layer a
pro-rata share of k — at several compression ratios.
"""

from __future__ import annotations

import pytest

from repro.core import DropBack, UniformBudgetDropBack
from repro.models import mnist_100_100
from repro.utils import format_percent, format_ratio, format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run

RATIOS = (10.0, 60.0)


@pytest.fixture(scope="module")
def allocation_results():
    data = mnist_data()
    rows = []
    for ratio in RATIOS:
        accs = {}
        for name, cls in (("global", DropBack), ("per-layer", UniformBudgetDropBack)):
            model = mnist_100_100().finalize(42)
            opt = cls(model, k=budget_for_ratio(model, ratio), lr=SCALE.lr)
            hist = train_run(model, opt, data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)
            accs[name] = hist.best_val_accuracy
        rows.append({"ratio": ratio, **accs})
    return rows


def test_ablation_allocation_report(allocation_results, benchmark):
    table = format_table(
        ["compression", "acc (global top-k)", "acc (per-layer budgets)"],
        [
            [format_ratio(r["ratio"]), format_percent(r["global"]), format_percent(r["per-layer"])]
            for r in allocation_results
        ],
    )
    emit_report(
        "ablation_allocation",
        "Budget allocation: global top-k vs per-layer pro-rata\n" + table,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_allocation_claims(allocation_results, benchmark):
    # Global selection is never substantially worse, and at extreme
    # compression the freedom to reallocate is what keeps the late layers
    # dense enough to decide (Table 2's observation).
    for r in allocation_results:
        assert r["global"] >= r["per-layer"] - 0.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
