"""Figure 1 — distribution of accumulated gradients after SGD on MNIST.

The paper trains the 90k-parameter MLP with standard SGD and shows the
kernel density of accumulated gradients (= weight displacement from init)
is sharply peaked at zero: most weights learn almost nothing, which is the
empirical basis for tracking only the top movers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import accumulated_gradients, gradient_density
from repro.models import mnist_100_100
from repro.optim import SGD
from repro.utils import ascii_series

from common import SCALE, emit_report, mnist_data, train_run


@pytest.fixture(scope="module")
def trained_sgd_model():
    data = mnist_data()
    model = mnist_100_100().finalize(42)
    train_run(model, SGD(model, lr=SCALE.lr), data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)
    return model


def test_fig1_report(trained_sgd_model, benchmark):
    acc = accumulated_gradients(trained_sgd_model)
    grid, dens = gradient_density(acc)
    peak = grid[np.argmax(dens)]
    mass_near_zero = float(np.mean(np.abs(acc) < 0.05))
    lines = [
        "Accumulated gradient distribution after SGD (paper Fig. 1)",
        f"weights: {acc.size}",
        f"KDE peak location: {peak:+.4f}   (paper: sharply peaked at 0)",
        f"fraction with |acc grad| < 0.05: {mass_near_zero:.3f}",
        f"min / max accumulated gradient: {acc.min():+.3f} / {acc.max():+.3f}",
        "",
        ascii_series(dens.tolist(), width=64, height=10, label="kernel density over grid"),
    ]
    emit_report("fig1_gradient_distribution", "\n".join(lines))

    benchmark.pedantic(
        lambda: gradient_density(acc), rounds=3, iterations=1, warmup_rounds=1
    )

    # Shape claims.
    assert abs(peak) < 0.02  # density peaks essentially at zero
    assert mass_near_zero > 0.5  # the bulk of weights barely move
