"""Figure 6 — PCA projection of weight-space trajectories.

The paper projects the weight evolution of the five MNIST-100-100 training
regimes into 3-D with PCA: DropBack's trajectory stays close to the
baseline's path, while magnitude pruning and variational dropout diverge
significantly.  "If we imagine the training path of the baseline
uncompressed configuration to be optimal, DropBack results in a
near-optimal evolution."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import project_trajectories, trajectory_divergence
from repro.core import DropBack
from repro.models import mnist_100_100
from repro.optim import SGD
from repro.prune import MagnitudePruning, make_variational, vd_loss_fn
from repro.train import WeightSnapshotCallback
from repro.utils import format_table

from common import SCALE, emit_report, mnist_data, train_run


@pytest.fixture(scope="module")
def trajectories():
    data = mnist_data()
    n_train = len(data[0])
    trajs = {}

    def run(name, model, opt, loss_fn=None, lr=SCALE.lr, weights_of=None):
        snap = WeightSnapshotCallback(log_spaced=True, max_snapshots=40)
        if weights_of is not None:
            # For VD, snapshot only the mean weights (comparable dimension).
            snap._flat_weights = weights_of  # type: ignore[method-assign]
        train_run(
            model,
            opt,
            data,
            epochs=max(3, SCALE.mnist_epochs // 2),
            lr=lr,
            callbacks=[snap],
            loss_fn=loss_fn,
        )
        _, mat = snap.stacked()
        trajs[name] = mat

    m = mnist_100_100().finalize(42)
    run("Baseline", m, SGD(m, lr=SCALE.lr))

    m = mnist_100_100().finalize(42)
    run("DropBack 2k", m, DropBack(m, k=2_000, lr=SCALE.lr))

    m = mnist_100_100().finalize(42)
    run("DropBack 10k", m, DropBack(m, k=10_000, lr=SCALE.lr))

    m = mnist_100_100().finalize(42)
    run("Magnitude .75", m, MagnitudePruning(m, lr=SCALE.lr, prune_fraction=0.75))

    vd_model = make_variational(mnist_100_100()).finalize(42)
    base_names = {name for name, _ in mnist_100_100().named_parameters()}

    def vd_weights(trainer):
        return np.concatenate(
            [
                p.data.reshape(-1)
                for name, p in trainer.model.named_parameters()
                if "log_sigma2" not in name
            ]
        )

    run(
        "VD Sparse",
        vd_model,
        SGD(vd_model, lr=SCALE.lr / 4),
        loss_fn=vd_loss_fn(vd_model, n_train=n_train, kl_weight=1.0),
        lr=SCALE.lr / 4,
        weights_of=vd_weights,
    )
    return trajs


def test_fig6_report(trajectories, benchmark):
    projected = project_trajectories(trajectories, n_components=3)
    base = projected["Baseline"]
    rows = []
    for name, traj in projected.items():
        rows.append(
            [
                name,
                f"{trajectory_divergence(base, traj):.3f}",
                f"({traj[-1][0]:+.2f}, {traj[-1][1]:+.2f}, {traj[-1][2]:+.2f})",
            ]
        )
    table = format_table(["regime", "divergence from baseline path", "PCA endpoint"], rows)
    emit_report(
        "fig6_pca",
        "PCA-projected weight trajectories (paper Fig. 6)\n"
        + table
        + "\n\n(divergence = mean 3-D distance to the baseline trajectory)",
    )

    benchmark.pedantic(
        lambda: project_trajectories(trajectories, n_components=3),
        rounds=3,
        iterations=1,
    )


def test_fig6_shape_claims(trajectories, benchmark):
    projected = project_trajectories(trajectories, n_components=3)
    base = projected["Baseline"]
    div = {n: trajectory_divergence(base, t) for n, t in projected.items() if n != "Baseline"}
    # DropBack trajectories stay closer to the baseline path than both
    # magnitude pruning and variational dropout (paper Fig. 6).
    assert div["DropBack 10k"] < div["Magnitude .75"]
    assert div["DropBack 10k"] < div["VD Sparse"]
    assert div["DropBack 2k"] < div["VD Sparse"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
