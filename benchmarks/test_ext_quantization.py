"""Extension — DropBack x quantization (paper Section 5).

"Quantization is orthogonal to DropBack, and the two techniques can be
combined."  This bench trains MNIST-100-100 with DropBack at a fixed count
budget while sweeping the storage precision of the tracked weights, and
reports the combined compression (count x bits).
"""

from __future__ import annotations

import pytest

from repro.core import DropBack
from repro.models import mnist_100_100
from repro.quant import QuantizedDropBack
from repro.utils import format_percent, format_ratio, format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run

COUNT_RATIO = 4.5
BITS = (32, 16, 8, 4)


@pytest.fixture(scope="module")
def quant_results():
    data = mnist_data()
    rows = []
    for bits in BITS:
        model = mnist_100_100().finalize(42)
        k = budget_for_ratio(model, COUNT_RATIO)
        if bits == 32:
            opt = DropBack(model, k=k, lr=SCALE.lr)
            total_comp = opt.compression_ratio
        else:
            opt = QuantizedDropBack(model, k=k, lr=SCALE.lr, bits=bits)
            total_comp = opt.total_compression
        hist = train_run(model, opt, data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)
        rows.append(
            {
                "bits": bits,
                "error": hist.best_val_error,
                "count_comp": COUNT_RATIO,
                "total_comp": total_comp,
            }
        )
    return rows


def test_ext_quantization_report(quant_results, benchmark):
    table = format_table(
        ["tracked-weight bits", "val error", "count compression", "total compression"],
        [
            [
                r["bits"],
                format_percent(r["error"]),
                format_ratio(r["count_comp"]),
                format_ratio(r["total_comp"]),
            ]
            for r in quant_results
        ],
    )
    emit_report(
        "ext_quantization",
        "DropBack + quantized tracked-weight storage (paper Section 5)\n" + table,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ext_quantization_claims(quant_results, benchmark):
    by_bits = {r["bits"]: r for r in quant_results}
    # 8-bit storage holds accuracy within a few points of float32 while
    # quadrupling the total compression.
    assert by_bits[8]["error"] < by_bits[32]["error"] + 0.06
    assert by_bits[8]["total_comp"] == pytest.approx(COUNT_RATIO * 4.0, rel=1e-3)
    # 4-bit is where degradation is allowed to show.
    assert by_bits[4]["error"] >= by_bits[32]["error"] - 0.02
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
