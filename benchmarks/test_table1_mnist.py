"""Table 1 — MNIST: baseline vs DropBack at three weight budgets.

Paper rows (LeNet-300-100 / MNIST-100-100): DropBack at 50k/20k/1.5k
retained gradients reaches baseline-level validation error at moderate
compression and degrades (error roughly doubles) at the extreme budget.

At bench scale we keep the paper's *compression ratios* — for
MNIST-100-100: 1.8x, 4.5x, 60x; for LeNet-300-100: 5.3x, 13.3x, 178x — and
report measured error against the paper's numbers.
"""

from __future__ import annotations

import pytest

from repro.core import DropBack
from repro.models import lenet_300_100, mnist_100_100
from repro.optim import SGD
from repro.tensor import Tensor, cross_entropy
from repro.utils import format_percent, format_ratio, format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run

# (network, factory, [(config, paper_error, compression or None)])
PAPER = [
    (
        "LeNet-300-100",
        lenet_300_100,
        [
            ("Baseline", 0.0141, None),
            ("DropBack 5.3x", 0.0151, 5.33),
            ("DropBack 13.3x", 0.0178, 13.33),
            ("DropBack 178x", 0.0384, 177.74),
        ],
    ),
    (
        "MNIST-100-100",
        mnist_100_100,
        [
            ("Baseline", 0.0170, None),
            ("DropBack 1.8x", 0.0158, 1.8),
            ("DropBack 4.5x", 0.0170, 4.5),
            ("DropBack 60x", 0.0378, 60.0),
        ],
    ),
]


@pytest.fixture(scope="module")
def table1_results():
    """Run all Table 1 configurations once; return structured records."""
    data = mnist_data()
    results: dict[str, list[dict]] = {}
    for net_name, factory, configs in PAPER:
        records = []
        for cfg_name, paper_err, compression in configs:
            model = factory().finalize(42)
            if compression is None:
                opt = SGD(model, lr=SCALE.lr)
            else:
                opt = DropBack(model, k=budget_for_ratio(model, compression), lr=SCALE.lr)
            hist = train_run(model, opt, data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)
            records.append(
                {
                    "config": cfg_name,
                    "paper_error": paper_err,
                    "measured_error": hist.best_val_error,
                    "compression": compression or 1.0,
                    "best_epoch": hist.best_epoch,
                }
            )
        results[net_name] = records
    return results


def test_table1_report(table1_results, benchmark):
    sections = []
    for net_name, records in table1_results.items():
        rows = [
            [
                r["config"],
                format_percent(r["paper_error"]),
                format_percent(r["measured_error"]),
                format_ratio(r["compression"]),
                r["best_epoch"],
            ]
            for r in records
        ]
        table = format_table(
            ["config", "paper err", "measured err", "compression", "best epoch"], rows
        )
        sections.append(f"{net_name}\n{table}")
    emit_report("table1_mnist", "\n\n".join(sections))

    # Benchmark one DropBack training step on MNIST-100-100 at 4.5x.
    model = mnist_100_100().finalize(1)
    opt = DropBack(model, k=budget_for_ratio(model, 4.5), lr=SCALE.lr)
    train, _ = mnist_data()
    x = Tensor(train.images[:64].reshape(64, -1))
    y = train.labels[:64]

    def step():
        model.zero_grad()
        cross_entropy(model(x), y).backward()
        opt.step()

    benchmark.pedantic(step, rounds=5, iterations=1, warmup_rounds=1)


def test_table1_shape_claims(table1_results, benchmark):
    """Qualitative claims: moderate compression ~ baseline, extreme degrades."""
    for net_name, records in table1_results.items():
        by_cfg = {r["config"]: r["measured_error"] for r in records}
        baseline = by_cfg["Baseline"]
        moderate = min(v for k, v in by_cfg.items() if k != "Baseline")
        extreme = by_cfg[[k for k in by_cfg if k.endswith(("178x", "60x"))][0]]
        # Moderate-budget DropBack lands near the baseline...
        assert moderate <= baseline + 0.05, net_name
        # ...while the extreme budget is no better than the moderate one.
        assert extreme >= moderate - 0.01, net_name
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
