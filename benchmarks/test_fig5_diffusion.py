"""Figure 5 — weight-diffusion (l2) distance vs log training time.

The paper measures ``||w_t - w_0||`` on MNIST-100-100 for five regimes:
baseline SGD, DropBack 2k, DropBack 10k, magnitude pruning .75, and sparse
variational dropout.  The claims:

* DropBack's curve hugs the baseline's (its selection preserves the
  ultra-slow diffusion profile of Hoffer et al. 2017);
* magnitude pruning *starts* at a large distance (zeroing initialization
  weights is itself a huge jump) and trains poorly;
* variational dropout diffuses much faster than baseline.
"""

from __future__ import annotations

import pytest

from repro.analysis import DiffusionTracker, log_diffusion_fit
from repro.core import DropBack
from repro.models import mnist_100_100
from repro.optim import SGD
from repro.prune import MagnitudePruning, make_variational, vd_loss_fn
from repro.utils import format_table

from common import SCALE, emit_report, mnist_data, train_run


@pytest.fixture(scope="module")
def diffusion_runs():
    data = mnist_data()
    n_train = len(data[0])
    out = {}

    def run(name, model, opt, loss_fn=None, lr=SCALE.lr):
        tracker = DiffusionTracker(log_spaced=True)
        hist = train_run(
            model,
            opt,
            data,
            epochs=max(3, SCALE.mnist_epochs // 2),
            lr=lr,
            callbacks=[tracker],
            loss_fn=loss_fn,
        )
        steps, dist = tracker.series()
        out[name] = {"steps": steps, "dist": dist, "acc": hist.best_val_accuracy}

    m = mnist_100_100().finalize(42)
    run("Baseline", m, SGD(m, lr=SCALE.lr))

    m = mnist_100_100().finalize(42)
    run("DropBack 2k", m, DropBack(m, k=2_000, lr=SCALE.lr))

    m = mnist_100_100().finalize(42)
    run("DropBack 10k", m, DropBack(m, k=10_000, lr=SCALE.lr))

    m = mnist_100_100().finalize(42)
    run("Magnitude .75", m, MagnitudePruning(m, lr=SCALE.lr, prune_fraction=0.75))

    m = make_variational(mnist_100_100()).finalize(42)
    run(
        "VD Sparse",
        m,
        SGD(m, lr=SCALE.lr / 4),
        loss_fn=vd_loss_fn(m, n_train=n_train, kl_weight=1.0),
        lr=SCALE.lr / 4,
    )
    return out


def test_fig5_report(diffusion_runs, benchmark):
    rows = []
    for name, rec in diffusion_runs.items():
        d = rec["dist"]
        slope, _ = log_diffusion_fit(rec["steps"], d)
        rows.append(
            [
                name,
                f"{d[1]:.2f}",
                f"{d[len(d) // 2]:.2f}",
                f"{d[-1]:.2f}",
                f"{slope:.2f}",
                f"{rec['acc']:.3f}",
            ]
        )
    table = format_table(
        ["regime", "dist @ first step", "dist @ mid", "dist @ end", "log-t slope", "val acc"],
        rows,
    )
    emit_report("fig5_diffusion", "l2 diffusion distance vs log time (paper Fig. 5)\n" + table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig5_shape_claims(diffusion_runs, benchmark):
    base = diffusion_runs["Baseline"]["dist"]
    db10 = diffusion_runs["DropBack 10k"]["dist"]
    mag = diffusion_runs["Magnitude .75"]["dist"]
    vd = diffusion_runs["VD Sparse"]["dist"]

    # DropBack hugs the baseline curve (within ~35% at the end).
    assert abs(db10[-1] - base[-1]) < 0.35 * base[-1]
    # Magnitude pruning starts with a huge jump (zeroed init weights).
    assert mag[1] > 3 * base[1]
    # VD diffuses faster than baseline (extra noise degrees of freedom).
    assert vd[-1] > base[-1]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
