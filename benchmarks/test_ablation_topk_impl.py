"""Ablation — top-k implementation: argpartition sort vs priority queue.

Paper Section 2.2: the listing sorts for clarity, but "in a practical
implementation the tracked accumulated gradient set is stored [in] a
priority queue of size k".  Both are implemented; they select identical
sets on distinct scores, and this bench compares their software cost (the
vectorized argpartition wins on CPU; the heap models the streaming hardware
access pattern).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HeapSelector, SortSelector
from repro.utils import format_table

from common import emit_report, profiled_run

N = 89_610  # MNIST-100-100 size
K = 2_000


@pytest.fixture(scope="module")
def scores():
    return np.random.default_rng(0).normal(size=N)


def test_selectors_agree(scores, benchmark):
    sort_mask = SortSelector().select(scores, K)
    heap_mask = HeapSelector().select(scores, K)
    np.testing.assert_array_equal(sort_mask, heap_mask)

    emit_report(
        "ablation_topk_impl",
        "Top-k selector equivalence (paper Section 2.2)\n"
        + format_table(
            ["selector", "selected", "agrees"],
            [
                ["argpartition (sort)", int(sort_mask.sum()), "-"],
                ["size-k priority queue", int(heap_mask.sum()), "yes"],
            ],
        ),
    )
    benchmark.pedantic(lambda: SortSelector().select(scores, K), rounds=10, iterations=1)


def test_benchmark_sort_selector(scores, benchmark):
    benchmark.pedantic(lambda: SortSelector().select(scores, K), rounds=10, iterations=1)


def test_perf_report_emitted(scores):
    """Profile a selector sweep and emit the machine-readable perf JSON.

    This is the artifact the CI bench-smoke job uploads and that
    ``scripts/check_perf_report.py`` diffs against a baseline.
    """
    from repro import profile

    def sweep():
        with profile.profiled("selector.sort"):
            SortSelector().select(scores, K)
        with profile.profiled("selector.heap"):
            HeapSelector().select(scores, K)

    report = profiled_run(
        "ablation_topk_impl", sweep, meta={"n": N, "k": K, "bench": "ablation_topk_impl"}
    )
    assert report.ops["selector.sort"].calls == 1
    assert report.ops["selector.heap"].calls == 1


def test_benchmark_heap_selector(scores, benchmark):
    benchmark.pedantic(lambda: HeapSelector().select(scores, K), rounds=3, iterations=1)
