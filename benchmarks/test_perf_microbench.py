"""Performance microbenchmarks of the core kernels.

Quantifies the *software* cost of DropBack relative to plain SGD — the
per-step selection/regeneration overhead — plus the throughput of the
primitives everything rests on: convolution, xorshift regeneration, and
top-k selection.  These are the numbers a user cares about before adopting
the optimizer, and the benches pytest-benchmark is built for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DropBack
from repro.core.selection import top_k_mask
from repro.init import normal_at
from repro.models import mnist_100_100, wrn_10_2
from repro.optim import SGD
from repro.tensor import Tensor, conv2d, cross_entropy


@pytest.fixture(scope="module")
def mlp_batch():
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(64, 784)).astype(np.float32))
    y = rng.integers(0, 10, size=64)
    return x, y


def _train_step(model, opt, x, y):
    model.zero_grad()
    cross_entropy(model(x), y).backward()
    opt.step()


def test_perf_sgd_step(benchmark, mlp_batch):
    x, y = mlp_batch
    model = mnist_100_100().finalize(1)
    opt = SGD(model, lr=0.4)
    benchmark.pedantic(lambda: _train_step(model, opt, x, y), rounds=10, iterations=1,
                       warmup_rounds=2)


def test_perf_dropback_step(benchmark, mlp_batch):
    x, y = mlp_batch
    model = mnist_100_100().finalize(1)
    opt = DropBack(model, k=9_000, lr=0.4)
    benchmark.pedantic(lambda: _train_step(model, opt, x, y), rounds=10, iterations=1,
                       warmup_rounds=2)


def test_perf_dropback_step_frozen(benchmark, mlp_batch):
    x, y = mlp_batch
    model = mnist_100_100().finalize(1)
    opt = DropBack(model, k=9_000, lr=0.4)
    _train_step(model, opt, x, y)
    opt.freeze()
    benchmark.pedantic(lambda: _train_step(model, opt, x, y), rounds=10, iterations=1,
                       warmup_rounds=2)


def test_perf_conv_forward(benchmark):
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(16, 16, 16, 16)).astype(np.float32))
    w = Tensor(rng.normal(size=(32, 16, 3, 3)).astype(np.float32))
    benchmark.pedantic(lambda: conv2d(x, w, None, stride=1, pad=1), rounds=10,
                       iterations=1, warmup_rounds=2)


def test_perf_conv_backward(benchmark):
    rng = np.random.default_rng(0)

    def fwd_bwd():
        x = Tensor(rng.normal(size=(16, 16, 16, 16)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.normal(size=(32, 16, 3, 3)).astype(np.float32), requires_grad=True)
        (conv2d(x, w, None, stride=1, pad=1) ** 2).sum().backward()

    benchmark.pedantic(fwd_bwd, rounds=5, iterations=1, warmup_rounds=1)


def test_perf_xorshift_regeneration(benchmark):
    """Regenerating 1M init values (vectorized stateless xorshift)."""
    idx = np.arange(1_000_000, dtype=np.int64)
    result = benchmark.pedantic(lambda: normal_at(42, idx), rounds=5, iterations=1,
                                warmup_rounds=1)


def test_perf_topk_selection(benchmark):
    """Top-k over a WRN-10-2-sized score vector (300k weights)."""
    rng = np.random.default_rng(0)
    scores = rng.normal(size=wrn_10_2().num_parameters())
    benchmark.pedantic(lambda: top_k_mask(scores, scores.size // 5), rounds=10,
                       iterations=1, warmup_rounds=2)


def test_perf_overhead_summary(mlp_batch, benchmark):
    """DropBack's software overhead over SGD stays within a small factor."""
    import time

    x, y = mlp_batch

    def time_steps(opt_factory, n=20):
        model = mnist_100_100().finalize(1)
        opt = opt_factory(model)
        _train_step(model, opt, x, y)  # warm
        t0 = time.perf_counter()
        for _ in range(n):
            _train_step(model, opt, x, y)
        return (time.perf_counter() - t0) / n

    sgd_t = time_steps(lambda m: SGD(m, lr=0.4))
    db_t = time_steps(lambda m: DropBack(m, k=9_000, lr=0.4))
    # The selection adds work, but stays within an order of magnitude.
    assert db_t < 10 * sgd_t
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _synthetic_grad_setter(model, seed=7):
    """Fixed synthetic float32 gradients, reapplied before every step so the
    timing isolates the optimizer from the forward/backward pass."""
    rng = np.random.default_rng(seed)
    params = model.parameters()
    grads = [rng.normal(scale=0.1, size=p.shape).astype(np.float32) for p in params]

    def set_grads():
        for p, g in zip(params, grads):
            p.grad = g

    return set_grads


def test_perf_dropback_step_paths():
    """Flat-plane step vs. the dense reference, and the O(k) frozen path.

    MNIST-100-100 scale (89,610 params) at the paper's extreme budget
    k=1,500 (~60x compression).  Asserts the PR's acceptance criteria —
    the vectorized unfrozen step beats the retained per-parameter
    reference implementation, and the frozen path is >= 5x faster than the
    dense reference — then emits ``perf_dropback_step.json``, the
    committed baseline CI gates on (normalized by
    ``dropback.reference_step`` so the comparison is machine-independent).
    """
    import time

    from common import profiled_run

    k = 1_500
    model = mnist_100_100().finalize(1)
    opt = DropBack(model, k=k, lr=0.01)
    set_grads = _synthetic_grad_setter(model)

    def time_per_step(fn, rounds, warmup=5):
        for _ in range(warmup):
            set_grads()
            fn()
        t0 = time.perf_counter()
        for _ in range(rounds):
            set_grads()
            fn()
        return (time.perf_counter() - t0) / rounds

    step_t = time_per_step(opt.step, rounds=50)
    reference_t = time_per_step(opt.reference_step, rounds=50)
    opt.freeze()
    frozen_t = time_per_step(opt.step, rounds=200)
    opt.unfreeze()

    # Fixed workload for the committed perf baseline: the gate compares
    # per-op ratios vs dropback.reference_step, so composition must stay
    # stable across regenerations of this report.
    def workload():
        m = mnist_100_100().finalize(1)
        o = DropBack(m, k=k, lr=0.01)
        grads = _synthetic_grad_setter(m)
        for _ in range(150):
            grads()
            o.step()
        for _ in range(150):
            grads()
            o.reference_step()
        o.freeze()
        for _ in range(600):
            grads()
            o.step()

    report = profiled_run(
        "dropback_step",
        workload,
        meta={
            "model": "mnist_100_100",
            "n_params": model.num_parameters(),
            "k": k,
            "steps": {"unfrozen": 150, "reference": 150, "frozen": 600},
            "measured_per_step_seconds": {
                "step": step_t,
                "reference_step": reference_t,
                "frozen_step": frozen_t,
            },
        },
    )
    assert "dropback.step" in report.ops
    assert "dropback.step.frozen" in report.ops
    assert "dropback.reference_step" in report.ops

    # Acceptance criteria (generous slack vs the ~100x typically measured).
    assert step_t < reference_t, (
        f"vectorized step ({step_t * 1e3:.3f} ms) should beat the dense "
        f"reference ({reference_t * 1e3:.3f} ms)"
    )
    assert frozen_t * 5 < reference_t, (
        f"frozen step ({frozen_t * 1e6:.0f} us) should be >=5x faster than "
        f"the dense reference ({reference_t * 1e6:.0f} us)"
    )


def test_packed_registry_bytes_and_parity(tmp_path):
    """Packed serving on a genuinely trained checkpoint from the shared
    density-sweep fixture: same outputs as the dense path (to sparse-kernel
    tolerance) at a fraction of the resident bytes."""
    from common import synth_sparse_checkpoint

    from repro.serve import ModelRegistry
    from repro.tensor.kernels import sparse

    if not sparse.is_available():
        pytest.skip("scipy.sparse unavailable")

    ckpt = synth_sparse_checkpoint(
        "mnist-100-100", tmp_path / "bench.npz", density=0.05, zero_untracked=True
    )
    dense = ModelRegistry()
    packed = ModelRegistry()
    dd = dense.register("m", mnist_100_100, ckpt)
    pd = packed.register("m", mnist_100_100, ckpt, packed=True)
    x = np.random.default_rng(0).normal(size=(16, 28, 28)).astype(np.float32)
    out_dense = dense.acquire(dd).forward(x)
    out_packed = packed.acquire(pd).forward(x)
    np.testing.assert_allclose(out_packed, out_dense, rtol=1e-5, atol=1e-6)
    assert packed.resident_bytes < 0.5 * dense.resident_bytes
