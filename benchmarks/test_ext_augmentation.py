"""Extension — DropBack under a data-augmentation pipeline.

The paper trained CIFAR without augmentation; real deployments augment.
This bench verifies DropBack composes with a standard flip/crop/noise
pipeline: the budget invariant is unaffected (augmentation only perturbs
inputs) and accuracy under augmentation stays in family with the
unaugmented run at the same budget.
"""

from __future__ import annotations

import pytest

from repro.core import DropBack
from repro.data import (
    AugmentedLoader,
    Compose,
    DataLoader,
    GaussianNoise,
    RandomCrop,
    RandomHorizontalFlip,
)
from repro.models import wrn_10_1
from repro.optim import ConstantLR
from repro.train import Trainer
from repro.utils import format_percent, format_table

from common import SCALE, budget_for_ratio, cifar_data, emit_report


@pytest.fixture(scope="module")
def augmentation_results():
    train, test = cifar_data()
    lr = SCALE.cifar_lr
    out = {}
    for augment in (False, True):
        model = wrn_10_1().finalize(42)
        opt = DropBack(model, k=budget_for_ratio(model, 5.0), lr=lr)
        loader = DataLoader(train, 32, seed=0)
        if augment:
            pipeline = Compose(
                [RandomHorizontalFlip(0.5), RandomCrop(2), GaussianNoise(0.02)]
            )
            loader = AugmentedLoader(loader, pipeline, seed=7)
        trainer = Trainer(model, opt, schedule=ConstantLR(lr))
        hist = trainer.fit(loader, test, epochs=SCALE.cifar_epochs)
        out["augmented" if augment else "plain"] = {
            "acc": hist.best_val_accuracy,
            "invariant": opt.untracked_values_match_init(),
        }
    return out


def test_ext_augmentation_report(augmentation_results, benchmark):
    table = format_table(
        ["pipeline", "best val acc", "untracked == regenerated init"],
        [
            [name, format_percent(rec["acc"]), str(rec["invariant"])]
            for name, rec in augmentation_results.items()
        ],
    )
    emit_report(
        "ext_augmentation",
        "DropBack 5x on WRN-10-1 with and without augmentation\n" + table,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ext_augmentation_claims(augmentation_results, benchmark):
    plain = augmentation_results["plain"]
    aug = augmentation_results["augmented"]
    assert plain["invariant"] and aug["invariant"]
    # Augmentation makes the synthetic task harder but must not break
    # training: both runs clearly learn the 10-class task.
    assert plain["acc"] > 0.4
    assert aug["acc"] > 0.3
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
