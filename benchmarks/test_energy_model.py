"""Energy claims (paper Sections 1, 2.1, 6).

* a DRAM access costs over 700x a float op at 45 nm (640 pJ vs 0.9 pJ);
* regenerating an init value (6 int + 1 float op ~ 1.5 pJ) costs 427x less
  than fetching it from DRAM;
* during training, DropBack's weight-memory energy shrinks roughly with
  the compression ratio, because untracked weights are regenerated
  on-chip instead of stored and fetched.
"""

from __future__ import annotations

import pytest

from repro.core import DropBack
from repro.energy import EnergyModel
from repro.models import mnist_100_100
from repro.optim import SGD
from repro.utils import format_ratio, format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run


@pytest.fixture(scope="module")
def energy_results():
    data = mnist_data()
    em = EnergyModel()
    epochs = max(2, SCALE.mnist_epochs // 2)

    base = mnist_100_100().finalize(42)
    sgd = SGD(base, lr=SCALE.lr)
    train_run(base, sgd, data, epochs=epochs, lr=SCALE.lr)

    rows = []
    for ratio in (2.0, 5.0, 20.0, 60.0):
        model = mnist_100_100().finalize(42)
        opt = DropBack(model, k=budget_for_ratio(model, ratio), lr=SCALE.lr)
        train_run(model, opt, data, epochs=epochs, lr=SCALE.lr)
        rep = em.report(opt.counter)
        rows.append(
            {
                "ratio": ratio,
                "energy_ratio": em.training_energy_ratio(sgd.counter, opt.counter),
                "regen_share": rep.regen_pj / rep.total_pj,
            }
        )
    return em, em.report(sgd.counter), rows


def test_energy_report(energy_results, benchmark):
    em, base_rep, rows = energy_results
    lines = [
        "Energy model (45 nm constants, paper Sections 1 & 2.1)",
        f"DRAM access vs float op: {em.dram_vs_flop_ratio:.0f}x   (paper: >700x)",
        f"regen cost per value:    {em.regen_pj_per_value:.2f} pJ (paper: ~1.5 pJ)",
        f"DRAM access vs regen:    {em.regen_vs_dram_ratio:.0f}x   (paper: 427x)",
        "",
        "Training weight-memory energy, baseline SGD vs DropBack:",
        format_table(
            ["weight compression", "energy reduction", "regen share of total"],
            [
                [
                    format_ratio(r["ratio"]),
                    format_ratio(r["energy_ratio"]),
                    f"{r['regen_share']:.2%}",
                ]
                for r in rows
            ],
        ),
        "",
        f"baseline per-run weight-memory energy: {base_rep.total_uj:.1f} uJ",
    ]
    emit_report("energy_model", "\n".join(lines))

    benchmark.pedantic(
        lambda: EnergyModel().report(_dummy_counter()), rounds=3, iterations=1
    )


def _dummy_counter():
    from repro.optim.base import AccessCounter

    return AccessCounter(weight_reads=10_000, weight_writes=10_000, regenerations=10_000)


def test_energy_shape_claims(energy_results, benchmark):
    em, _, rows = energy_results
    assert em.dram_vs_flop_ratio > 700
    assert em.regen_vs_dram_ratio == pytest.approx(427, abs=1)
    # Energy reduction grows with compression and roughly tracks it.
    ratios = [r["energy_ratio"] for r in rows]
    assert ratios == sorted(ratios)
    for r in rows:
        assert r["energy_ratio"] > 0.5 * r["ratio"]
        # Regeneration overhead stays a small share of the remaining energy.
        assert r["regen_share"] < 0.25
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
