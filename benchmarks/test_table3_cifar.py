"""Table 3 — CIFAR-10: DropBack vs baselines on VGG-S, DenseNet, WRN.

Paper rows (validation error / compression):

    VGG-S:    baseline 10.08%; DropBack 3x 9.75%, 5x 9.90%, 20x 13.49%,
              30x 20.85%; VD 13.50%/3.4x; magnitude .80 9.42%/5x;
              slimming 11.08%/3.8x
    DenseNet: baseline 6.48%; DropBack 4.5x 5.86%, 27x 9.42%;
              VD fails (90%); magnitude .75 6.41%/4x; slimming 5.65%/2.9x
    WRN-28-10: baseline 3.75%; DropBack 4.5x 3.85%, 5.2x 4.02%, 7.3x 4.20%;
              VD fails (90%); magnitude .75 26.52%/4x; slimming 16.64%/4x

At CPU scale the architectures shrink (VGG-S -> 4-pool small config,
DenseNet L=16 k=8, WRN-10-2) but every training regime runs: the claims
checked are the *orderings* — DropBack ~5x stays near baseline on all three
nets, while magnitude/slimming degrade the residual/dense architectures
much more, and variational dropout is the least stable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DropBack
from repro.models import densenet_tiny, vgg_s, wrn_10_2
from repro.optim import SGD
from repro.prune import (
    MagnitudePruning,
    SlimmingSGD,
    make_variational,
    prune_channels,
    slimming_compression,
    vd_loss_fn,
    vd_sparsity,
)
from repro.utils import format_percent, format_ratio, format_table

from common import SCALE, budget_for_ratio, cifar_data, emit_report, train_run


def _vgg_small():
    return vgg_s(fc_width=64, config=(16, "M", 32, "M", 64, 64, "M", 128, 128, "M"))


NETWORKS = [
    ("VGG-S", _vgg_small),
    ("DenseNet", densenet_tiny),
    ("WRN", wrn_10_2),
]

#: Paper numbers per network: {config: (error, compression)}.
PAPER = {
    "VGG-S": {
        "Baseline": (0.1008, 1.0),
        "DropBack 5x": (0.0990, 5.0),
        "DropBack 20x": (0.1349, 20.0),
        "Var. Dropout": (0.1350, 3.4),
        "Mag Pruning .80": (0.0942, 5.0),
        "Slimming": (0.1108, 3.8),
    },
    "DenseNet": {
        "Baseline": (0.0648, 1.0),
        "DropBack 5x": (0.0586, 4.5),
        "DropBack 20x": (0.0942, 27.0),
        "Var. Dropout": (0.90, float("nan")),
        "Mag Pruning .80": (0.0641, 4.0),
        "Slimming": (0.0565, 2.9),
    },
    "WRN": {
        "Baseline": (0.0375, 1.0),
        "DropBack 5x": (0.0402, 5.2),
        "DropBack 20x": (float("nan"), float("nan")),  # not reported
        "Var. Dropout": (0.90, float("nan")),
        "Mag Pruning .80": (0.2652, 4.0),
        "Slimming": (0.1664, 4.0),
    },
}


def _run_config(net_name: str, factory, cfg: str):
    """Train one (network, regime) cell of Table 3 and return its record."""
    data = cifar_data()
    n_train = len(data[0])
    epochs = SCALE.cifar_epochs
    lr = SCALE.cifar_lr
    model = factory()

    if cfg == "Baseline":
        model.finalize(42)
        opt = SGD(model, lr=lr)
        hist = train_run(model, opt, data, epochs=epochs, lr=lr, batch_size=32)
        return hist.best_val_error, 1.0

    if cfg.startswith("DropBack"):
        ratio = float(cfg.split()[1].rstrip("x"))
        model.finalize(42)
        opt = DropBack(model, k=budget_for_ratio(model, ratio), lr=lr)
        hist = train_run(model, opt, data, epochs=epochs, lr=lr, batch_size=32)
        return hist.best_val_error, opt.compression_ratio

    if cfg == "Var. Dropout":
        model = make_variational(model)
        model.finalize(42)
        # VD needs technique-specific hyperparameters (gentler lr, KL
        # warm-up) to converge at all; with the tuned setting it trains on
        # VGG-S (paper: VD "works well only on VGG-S") while the residual/
        # dense architectures remain unstable (paper: "fails to converge on
        # Densenet and WRN").
        steps_per_epoch = max(1, n_train // 32)
        if net_name == "VGG-S":
            vd_lr, klw = 0.05, 0.2
        else:
            vd_lr, klw = lr, 1.0
        opt = SGD(model, lr=vd_lr)
        loss_fn = vd_loss_fn(
            model, n_train=n_train, kl_weight=klw, warmup_steps=2 * steps_per_epoch
        )
        hist = train_run(
            model, opt, data, epochs=epochs + 2, lr=vd_lr, batch_size=32, loss_fn=loss_fn
        )
        sparsity = vd_sparsity(model)
        compression = 1.0 / max(1.0 - sparsity, 1e-6)
        return hist.best_val_error, compression

    if cfg.startswith("Mag Pruning"):
        frac = float(cfg.split()[-1])
        model.finalize(42)
        opt = MagnitudePruning(model, lr=lr, prune_fraction=frac)
        hist = train_run(model, opt, data, epochs=epochs, lr=lr, batch_size=32)
        return hist.best_val_error, opt.compression_ratio

    if cfg == "Slimming":
        model.finalize(42)
        opt = SlimmingSGD(model, lr=lr, l1=1e-3)
        train_run(model, opt, data, epochs=max(2, epochs - 2), lr=lr, batch_size=32)
        prune_channels(model, 0.5)
        retrain_opt = SGD(model, lr=lr / 2)
        hist = train_run(model, retrain_opt, data, epochs=2, lr=lr / 2, batch_size=32)
        return hist.best_val_error, slimming_compression(model)

    raise ValueError(cfg)


@pytest.fixture(scope="module")
def table3_results():
    results: dict[str, dict[str, tuple[float, float]]] = {}
    for net_name, factory in NETWORKS:
        results[net_name] = {}
        for cfg in PAPER[net_name]:
            if np.isnan(PAPER[net_name][cfg][0]) and np.isnan(PAPER[net_name][cfg][1]):
                continue  # cell not reported in the paper
            results[net_name][cfg] = _run_config(net_name, factory, cfg)
    return results


def test_table3_report(table3_results, benchmark):
    sections = []
    for net_name, cells in table3_results.items():
        rows = []
        for cfg, (err, comp) in cells.items():
            paper_err, paper_comp = PAPER[net_name][cfg]
            rows.append(
                [
                    cfg,
                    format_percent(paper_err) if np.isfinite(paper_err) else "n/a",
                    format_percent(err),
                    format_ratio(paper_comp) if np.isfinite(paper_comp) else "n/a",
                    format_ratio(comp),
                ]
            )
        table = format_table(
            ["config", "paper err", "measured err", "paper comp", "measured comp"], rows
        )
        sections.append(f"{net_name}\n{table}")
    emit_report("table3_cifar", "\n\n".join(sections))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table3_shape_claims(table3_results, benchmark):
    for net_name, cells in table3_results.items():
        base_err = cells["Baseline"][0]
        db5_err = cells["DropBack 5x"][0]
        # DropBack ~5x stays within a few points of baseline on every net.
        assert db5_err < base_err + 0.12, (net_name, base_err, db5_err)
    # Extreme DropBack compression degrades vs moderate on nets reporting it.
    for net_name in ("VGG-S", "DenseNet"):
        cells = table3_results[net_name]
        assert cells["DropBack 20x"][0] >= cells["DropBack 5x"][0] - 0.02
    # VD converges on VGG-S but not on the dense/residual architectures
    # (paper: "works well only on VGG-S, and fails to converge on Densenet
    # and WRN").
    assert table3_results["VGG-S"]["Var. Dropout"][0] < 0.55
    for net_name in ("DenseNet", "WRN"):
        assert table3_results[net_name]["Var. Dropout"][0] > 0.3
    # On every network, DropBack 5x beats variational dropout.
    for net_name, cells in table3_results.items():
        assert cells["DropBack 5x"][0] < cells["Var. Dropout"][0]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
