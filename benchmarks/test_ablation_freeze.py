"""Ablation — tracked-set freeze epoch sweep.

Paper (Table 1 discussion): "freezing sooner to reduce the computational
overhead results in lower achieved accuracy — especially for very high
compression ratios — but for smaller compression ratios freezing early has
little effect".
"""

from __future__ import annotations

import pytest

from repro.core import DropBack
from repro.models import mnist_100_100
from repro.train import FreezeCallback
from repro.utils import format_percent, format_ratio, format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run

FREEZE_EPOCHS = (1, 2, 4, None)  # None = never freeze
RATIOS = (4.5, 60.0)


@pytest.fixture(scope="module")
def freeze_results():
    data = mnist_data()
    out = []
    for ratio in RATIOS:
        for freeze in FREEZE_EPOCHS:
            model = mnist_100_100().finalize(42)
            opt = DropBack(model, k=budget_for_ratio(model, ratio), lr=SCALE.lr)
            callbacks = [FreezeCallback(freeze)] if freeze else None
            hist = train_run(
                model, opt, data, epochs=SCALE.mnist_epochs, lr=SCALE.lr, callbacks=callbacks
            )
            out.append(
                {
                    "ratio": ratio,
                    "freeze": freeze,
                    "acc": hist.best_val_accuracy,
                    "frozen": opt.frozen,
                }
            )
    return out


def test_ablation_freeze_report(freeze_results, benchmark):
    table = format_table(
        ["compression", "freeze epoch", "best val acc"],
        [
            [
                format_ratio(r["ratio"]),
                r["freeze"] if r["freeze"] else "never",
                format_percent(r["acc"]),
            ]
            for r in freeze_results
        ],
    )
    emit_report("ablation_freeze", "Freeze-epoch sweep (paper Table 1 discussion)\n" + table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_freeze_claims(freeze_results, benchmark):
    def acc(ratio, freeze):
        return next(
            r["acc"] for r in freeze_results if r["ratio"] == ratio and r["freeze"] == freeze
        )

    # Low compression: freezing after epoch 1 costs little vs never freezing.
    assert abs(acc(4.5, 1) - acc(4.5, None)) < 0.08
    # High compression is more freeze-sensitive than low compression.
    hi_gap = acc(60.0, None) - acc(60.0, 1)
    lo_gap = acc(4.5, None) - acc(4.5, 1)
    assert hi_gap >= lo_gap - 0.05
    # Frozen flag actually set when a freeze epoch was requested.
    assert all(r["frozen"] for r in freeze_results if r["freeze"])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
