"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures at CPU scale:
the architectures keep their shape but shrink, the datasets are the
synthetic stand-ins, and the tracked-weight budgets are chosen to match the
paper's *compression ratios* rather than its absolute k values.  Reports
print the paper's numbers next to the measured ones and are also written to
``benchmarks/results/``.

Scale knobs live in :data:`SCALE`; setting the environment variable
``REPRO_BENCH_SCALE=full`` multiplies dataset sizes and epochs toward the
paper's regime (hours of CPU time).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.data import DataLoader, Dataset, synth_cifar, synth_mnist
from repro.nn import Module
from repro.optim import ConstantLR, Optimizer, Schedule
from repro.train import Callback, History, Trainer

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchScale:
    """Workload sizing for the bench harness."""

    mnist_train: int = 1500
    mnist_test: int = 400
    cifar_train: int = 800
    cifar_test: int = 240
    cifar_size: int = 16
    mnist_epochs: int = 8
    cifar_epochs: int = 5
    batch_size: int = 64
    lr: float = 0.4
    cifar_lr: float = 0.1


def _scale() -> BenchScale:
    if os.environ.get("REPRO_BENCH_SCALE") == "full":
        return BenchScale(
            mnist_train=10_000,
            mnist_test=2_000,
            cifar_train=6_000,
            cifar_test=1_000,
            cifar_size=32,
            mnist_epochs=40,
            cifar_epochs=30,
        )
    return BenchScale()


SCALE = _scale()

_mnist_cache: dict[tuple, tuple[Dataset, Dataset]] = {}
_cifar_cache: dict[tuple, tuple[Dataset, Dataset]] = {}


def mnist_data(seed: int = 0) -> tuple[Dataset, Dataset]:
    """Cached bench-scale synthetic MNIST."""
    key = (SCALE.mnist_train, SCALE.mnist_test, seed)
    if key not in _mnist_cache:
        _mnist_cache[key] = synth_mnist(
            n_train=SCALE.mnist_train, n_test=SCALE.mnist_test, seed=seed
        )
    return _mnist_cache[key]


def cifar_data(seed: int = 0) -> tuple[Dataset, Dataset]:
    """Cached bench-scale synthetic CIFAR."""
    key = (SCALE.cifar_train, SCALE.cifar_test, SCALE.cifar_size, seed)
    if key not in _cifar_cache:
        _cifar_cache[key] = synth_cifar(
            n_train=SCALE.cifar_train,
            n_test=SCALE.cifar_test,
            seed=seed,
            size=SCALE.cifar_size,
        )
    return _cifar_cache[key]


def train_run(
    model: Module,
    optimizer: Optimizer,
    data: tuple[Dataset, Dataset],
    epochs: int,
    lr: float | None = None,
    schedule: Schedule | None = None,
    callbacks: list[Callback] | None = None,
    loss_fn=None,
    batch_size: int | None = None,
    patience: int | None = None,
) -> History:
    """Run one training configuration and return its history."""
    train, test = data
    lr = lr if lr is not None else optimizer.lr
    trainer = Trainer(
        model,
        optimizer,
        loss_fn=loss_fn,
        schedule=schedule or ConstantLR(lr),
        callbacks=callbacks,
        patience=patience,
    )
    loader = DataLoader(train, batch_size or SCALE.batch_size, seed=0)
    return trainer.fit(loader, test, epochs=epochs)


def budget_for_ratio(model: Module, compression: float) -> int:
    """Tracked-weight budget k giving the requested compression ratio."""
    return max(1, int(round(model.num_parameters() / compression)))


def emit_report(name: str, text: str) -> None:
    """Print a bench report and persist it under benchmarks/results/."""
    print(f"\n===== {name} =====")
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
