"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures at CPU scale:
the architectures keep their shape but shrink, the datasets are the
synthetic stand-ins, and the tracked-weight budgets are chosen to match the
paper's *compression ratios* rather than its absolute k values.  Reports
print the paper's numbers next to the measured ones and are also written to
``benchmarks/results/``.

Scale knobs live in :data:`SCALE`; setting the environment variable
``REPRO_BENCH_SCALE=full`` multiplies dataset sizes and epochs toward the
paper's regime (hours of CPU time), while ``REPRO_BENCH_SCALE=tiny`` is
the CI smoke path (seconds).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro import profile
from repro.data import DataLoader, Dataset, synth_cifar, synth_mnist
from repro.nn import Module
from repro.optim import ConstantLR, Optimizer, Schedule
from repro.train import Callback, History, ProfilerCallback, Trainer

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchScale:
    """Workload sizing for the bench harness."""

    mnist_train: int = 1500
    mnist_test: int = 400
    cifar_train: int = 800
    cifar_test: int = 240
    cifar_size: int = 16
    mnist_epochs: int = 8
    cifar_epochs: int = 5
    batch_size: int = 64
    lr: float = 0.4
    cifar_lr: float = 0.1


def _scale() -> BenchScale:
    mode = os.environ.get("REPRO_BENCH_SCALE")
    if mode == "full":
        return BenchScale(
            mnist_train=10_000,
            mnist_test=2_000,
            cifar_train=6_000,
            cifar_test=1_000,
            cifar_size=32,
            mnist_epochs=40,
            cifar_epochs=30,
        )
    if mode == "tiny":  # CI smoke: seconds, not minutes
        return BenchScale(
            mnist_train=400,
            mnist_test=120,
            cifar_train=240,
            cifar_test=80,
            mnist_epochs=2,
            cifar_epochs=2,
        )
    return BenchScale()


SCALE = _scale()

_mnist_cache: dict[tuple, tuple[Dataset, Dataset]] = {}
_cifar_cache: dict[tuple, tuple[Dataset, Dataset]] = {}


def mnist_data(seed: int = 0) -> tuple[Dataset, Dataset]:
    """Cached bench-scale synthetic MNIST."""
    key = (SCALE.mnist_train, SCALE.mnist_test, seed)
    if key not in _mnist_cache:
        _mnist_cache[key] = synth_mnist(
            n_train=SCALE.mnist_train, n_test=SCALE.mnist_test, seed=seed
        )
    return _mnist_cache[key]


def cifar_data(seed: int = 0) -> tuple[Dataset, Dataset]:
    """Cached bench-scale synthetic CIFAR."""
    key = (SCALE.cifar_train, SCALE.cifar_test, SCALE.cifar_size, seed)
    if key not in _cifar_cache:
        _cifar_cache[key] = synth_cifar(
            n_train=SCALE.cifar_train,
            n_test=SCALE.cifar_test,
            seed=seed,
            size=SCALE.cifar_size,
        )
    return _cifar_cache[key]


def train_run(
    model: Module,
    optimizer: Optimizer,
    data: tuple[Dataset, Dataset],
    epochs: int,
    lr: float | None = None,
    schedule: Schedule | None = None,
    callbacks: list[Callback] | None = None,
    loss_fn=None,
    batch_size: int | None = None,
    patience: int | None = None,
    profile_name: str | None = None,
) -> History:
    """Run one training configuration and return its history.

    ``profile_name`` attaches a :class:`ProfilerCallback` and writes the
    op-level report to ``benchmarks/results/perf_<profile_name>.json``.
    """
    train, test = data
    lr = lr if lr is not None else optimizer.lr
    callbacks = list(callbacks or [])
    if profile_name is not None:
        RESULTS_DIR.mkdir(exist_ok=True)
        callbacks.append(
            ProfilerCallback(
                report_name=profile_name,
                emit_path=RESULTS_DIR / f"perf_{profile_name}.json",
            )
        )
    trainer = Trainer(
        model,
        optimizer,
        loss_fn=loss_fn,
        schedule=schedule or ConstantLR(lr),
        callbacks=callbacks,
        patience=patience,
    )
    loader = DataLoader(train, batch_size or SCALE.batch_size, seed=0)
    return trainer.fit(loader, test, epochs=epochs)


def budget_for_ratio(model: Module, compression: float) -> int:
    """Tracked-weight budget k giving the requested compression ratio."""
    return max(1, int(round(model.num_parameters() / compression)))


#: The tracked-density grid shared by the sparse-kernel parity tests,
#: ``bench_sparse.py``, and the serving microbenches: the paper's extreme
#: budgets (1%, 5%), the dispatch cutoff boundary (25%), and a clearly
#: dense point (90%) that must fall back to the fast kernels.
DENSITY_GRID = (0.01, 0.05, 0.25, 0.9)


def synth_sparse_checkpoint(
    model_name: str,
    path,
    *,
    density: float = 0.05,
    zero_untracked: bool = True,
    seed: int = 42,
) -> str:
    """Train-and-export one bench checkpoint at a given tracked density.

    The single checkpoint-synthesis helper shared by ``bench_sparse.py``,
    ``bench_serve.py`` (through the same underlying trainer), and
    ``test_perf_microbench.py`` — delegates to
    :func:`repro.serve.loadgen.train_bench_checkpoint` so every consumer
    trains the identical tiny model.  Returns the path.
    """
    from repro.serve.loadgen import train_bench_checkpoint

    train_bench_checkpoint(
        model_name, str(path), seed=seed, density=density, zero_untracked=zero_untracked
    )
    return str(path)


def density_sweep_checkpoints(
    model_name: str,
    out_dir,
    densities=DENSITY_GRID,
    *,
    zero_untracked: bool = True,
    seed: int = 42,
) -> dict[float, str]:
    """One checkpoint per density in ``densities``; returns density -> path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    return {
        d: synth_sparse_checkpoint(
            model_name,
            out_dir / f"{model_name}-d{d:g}.npz",
            density=d,
            zero_untracked=zero_untracked,
            seed=seed,
        )
        for d in densities
    }


def emit_report(name: str, text: str) -> None:
    """Print a bench report and persist it under benchmarks/results/."""
    print(f"\n===== {name} =====")
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_perf_report(name: str, report: profile.PerfReport) -> Path:
    """Persist a perf report as ``benchmarks/results/perf_<name>.json``.

    The machine-readable counterpart of :func:`emit_report`: CI archives
    these files and ``scripts/check_perf_report.py`` diffs two of them.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    return report.write(RESULTS_DIR / f"perf_{name}.json")


def profiled_run(name: str, fn, meta: dict | None = None) -> profile.PerfReport:
    """Run ``fn()`` with op-level profiling and emit ``perf_<name>.json``.

    Convenience wrapper for benches that are plain callables rather than
    :class:`Trainer` loops (which should attach :class:`ProfilerCallback`
    — see :func:`train_run`'s ``profile_name``).
    """
    was_enabled = profile.is_enabled()
    baseline = profile.snapshot()
    profile.enable()
    try:
        fn()
    finally:
        if not was_enabled:
            profile.disable()
    snap = profile.snapshot()
    ops = {}
    for op_name, raw in snap["ops"].items():
        base = baseline["ops"].get(op_name, {})
        calls = raw["calls"] - base.get("calls", 0)
        if calls <= 0:
            continue
        ops[op_name] = profile.OpStat(
            name=op_name,
            calls=calls,
            total_seconds=raw["total_seconds"] - base.get("total_seconds", 0.0),
            bytes_allocated=raw["bytes_allocated"] - base.get("bytes_allocated", 0),
        )
    counters = {
        k: v - baseline["counters"].get(k, 0)
        for k, v in snap["counters"].items()
        if v - baseline["counters"].get(k, 0)
    }
    report = profile.PerfReport(name=name, ops=ops, counters=counters, meta=dict(meta or {}))
    emit_perf_report(name, report)
    return report
