"""Figure 3 — LeNet-300-100 convergence: DropBack vs the baseline.

The paper plots epoch-by-epoch validation accuracy and notes both methods
show "similar convergence behavior" with final accuracies "within 1% of
each other".
"""

from __future__ import annotations

import pytest

from repro.core import DropBack
from repro.models import lenet_300_100
from repro.optim import SGD
from repro.utils import ascii_series, format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run

COMPRESSION = 13.33  # the paper's DropBack 20k configuration


@pytest.fixture(scope="module")
def convergence_curves():
    data = mnist_data()
    base = lenet_300_100().finalize(42)
    h_base = train_run(base, SGD(base, lr=SCALE.lr), data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)

    db = lenet_300_100().finalize(42)
    opt = DropBack(db, k=budget_for_ratio(db, COMPRESSION), lr=SCALE.lr)
    h_db = train_run(db, opt, data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)
    return h_base, h_db


def test_fig3_report(convergence_curves, benchmark):
    h_base, h_db = convergence_curves
    rows = [
        [e, f"{b:.4f}", f"{d:.4f}"]
        for e, (b, d) in enumerate(zip(h_base.val_accuracy, h_db.val_accuracy))
    ]
    lines = [
        "LeNet-300-100 validation accuracy per epoch (paper Fig. 3)",
        format_table(["epoch", "baseline", f"DropBack {COMPRESSION:.0f}x"], rows),
        "",
        ascii_series(h_base.val_accuracy, width=40, height=8, label="baseline"),
        ascii_series(h_db.val_accuracy, width=40, height=8, label="dropback"),
        "",
        f"final gap: {abs(h_base.val_accuracy[-1] - h_db.val_accuracy[-1]):.4f}"
        "  (paper: within 1%)",
    ]
    emit_report("fig3_convergence_mnist", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig3_shape_claims(convergence_curves, benchmark):
    h_base, h_db = convergence_curves
    # Similar convergence: final accuracies within a few points on the
    # scaled workload (paper: within 1% at full scale).
    assert abs(h_base.best_val_accuracy - h_db.best_val_accuracy) < 0.05
    # Both curves end near their best (converged, not diverging).
    assert h_db.val_accuracy[-1] > 0.8 * h_db.best_val_accuracy
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
