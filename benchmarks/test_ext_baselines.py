"""Extension — the related-work baselines: DSD and gradual magnitude pruning.

The paper's Section 5 contrasts DropBack with DSD (Han et al. 2017) and
gradual pruning (Zhu & Gupta 2017): both are implemented here and compared
on MNIST-100-100 under matched nominal compression.  The structural claim:
all of these need dense training memory, so only DropBack reduces the
*training-time* weight storage — visible in the storage column.
"""

from __future__ import annotations

import pytest

from repro.core import DropBack
from repro.models import mnist_100_100
from repro.optim import SGD
from repro.prune import DSD, GradualMagnitudePruning, MagnitudePruning
from repro.utils import format_percent, format_ratio, format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run

TARGET_COMPRESSION = 4.0


@pytest.fixture(scope="module")
def baseline_results():
    data = mnist_data()
    steps_per_epoch = max(1, len(data[0]) // SCALE.batch_size)
    rows = []

    def run(name, model, opt, train_storage):
        hist = train_run(model, opt, data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)
        rows.append(
            {
                "name": name,
                "error": hist.best_val_error,
                "train_storage": train_storage,
            }
        )

    m = mnist_100_100().finalize(42)
    run("SGD baseline", m, SGD(m, lr=SCALE.lr), m.num_parameters())

    m = mnist_100_100().finalize(42)
    opt = DropBack(m, k=budget_for_ratio(m, TARGET_COMPRESSION), lr=SCALE.lr)
    run("DropBack", m, opt, opt.storage_floats())

    m = mnist_100_100().finalize(42)
    opt = MagnitudePruning(m, lr=SCALE.lr, prune_fraction=1 - 1 / TARGET_COMPRESSION)
    run("Magnitude (per-step)", m, opt, m.num_parameters())

    m = mnist_100_100().finalize(42)
    opt = GradualMagnitudePruning(
        m,
        lr=SCALE.lr,
        final_sparsity=1 - 1 / TARGET_COMPRESSION,
        ramp_steps=3 * steps_per_epoch,
        prune_every=max(1, steps_per_epoch // 4),
    )
    run("Gradual (Zhu & Gupta)", m, opt, m.num_parameters())

    m = mnist_100_100().finalize(42)
    opt = DSD(
        m,
        lr=SCALE.lr,
        sparsity=1 - 1 / TARGET_COMPRESSION,
        dense_steps=2 * steps_per_epoch,
        sparse_steps=2 * steps_per_epoch,
    )
    run("DSD (Han et al.)", m, opt, m.num_parameters())
    return rows


def test_ext_baselines_report(baseline_results, benchmark):
    total = mnist_100_100().num_parameters()
    table = format_table(
        ["technique", "val error", "training-time weight storage"],
        [
            [
                r["name"],
                format_percent(r["error"]),
                f"{r['train_storage']:,} floats ({format_ratio(total / r['train_storage'])})",
            ]
            for r in baseline_results
        ],
    )
    emit_report(
        "ext_baselines",
        f"Related-work baselines at ~{TARGET_COMPRESSION:.0f}x nominal compression "
        "(paper Section 5)\n" + table,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ext_baselines_claims(baseline_results, benchmark):
    by_name = {r["name"]: r for r in baseline_results}
    # Only DropBack trains with reduced weight storage.
    assert by_name["DropBack"]["train_storage"] < by_name["SGD baseline"]["train_storage"] / 3
    for other in ("Magnitude (per-step)", "Gradual (Zhu & Gupta)", "DSD (Han et al.)"):
        assert by_name[other]["train_storage"] == by_name["SGD baseline"]["train_storage"]
    # And it stays accuracy-competitive with every dense-memory technique.
    assert by_name["DropBack"]["error"] < by_name["SGD baseline"]["error"] + 0.06
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
