"""Ablation — selection criterion: accumulated gradient vs alternatives.

Paper Section 2.1 argues for tracking the *highest accumulated gradients*
rather than the naive alternatives:

* weight magnitude ("this naive approach is not effective during the first
  few training iterations");
* the current step's gradient (no memory of what has been learned).
"""

from __future__ import annotations

import pytest

from repro.core import DropBack
from repro.models import mnist_100_100
from repro.utils import format_percent, format_ratio, format_table

from common import SCALE, budget_for_ratio, emit_report, mnist_data, train_run

CRITERIA = ("accumulated", "magnitude", "current")
RATIOS = (10.0, 60.0)


@pytest.fixture(scope="module")
def criterion_results():
    data = mnist_data()
    out = []
    for ratio in RATIOS:
        for crit in CRITERIA:
            model = mnist_100_100().finalize(42)
            opt = DropBack(
                model, k=budget_for_ratio(model, ratio), lr=SCALE.lr, criterion=crit
            )
            hist = train_run(model, opt, data, epochs=SCALE.mnist_epochs, lr=SCALE.lr)
            out.append({"ratio": ratio, "criterion": crit, "acc": hist.best_val_accuracy})
    return out


def test_ablation_criterion_report(criterion_results, benchmark):
    table = format_table(
        ["compression", "criterion", "best val acc"],
        [
            [format_ratio(r["ratio"]), r["criterion"], format_percent(r["acc"])]
            for r in criterion_results
        ],
    )
    emit_report(
        "ablation_criterion",
        "Selection criterion ablation (paper Section 2.1)\n" + table,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_criterion_claims(criterion_results, benchmark):
    def acc(ratio, crit):
        return next(
            r["acc"] for r in criterion_results if r["ratio"] == ratio and r["criterion"] == crit
        )

    for ratio in RATIOS:
        # Accumulated-gradient selection is never worse than the current-
        # gradient criterion, and competitive-or-better vs magnitude.
        assert acc(ratio, "accumulated") >= acc(ratio, "current") - 0.03
        assert acc(ratio, "accumulated") >= acc(ratio, "magnitude") - 0.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
