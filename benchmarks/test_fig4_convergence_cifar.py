"""Figure 4 — VGG-S on CIFAR-10: convergence of DropBack vs VD vs baseline.

The paper plots validation accuracy per epoch for the baseline, DropBack at
5M tracked parameters (3x), and variational dropout: DropBack initially
learns slightly more slowly than baseline but matches it after ~20 epochs,
while VD learns quickly at first and converges to a substantially lower
accuracy.
"""

from __future__ import annotations

import pytest

from repro.core import DropBack
from repro.models import vgg_s
from repro.optim import SGD
from repro.prune import make_variational, vd_loss_fn
from repro.utils import ascii_series, format_table

from common import SCALE, budget_for_ratio, cifar_data, emit_report, train_run

COMPRESSION = 3.0  # the paper's DropBack 5M configuration


def _vgg_small():
    return vgg_s(fc_width=64, config=(16, "M", 32, "M", 64, 64, "M", 128, 128, "M"))


@pytest.fixture(scope="module")
def curves():
    data = cifar_data()
    n_train = len(data[0])
    lr = SCALE.cifar_lr
    epochs = SCALE.cifar_epochs + 2  # convergence plot benefits from a tail

    base = _vgg_small().finalize(42)
    h_base = train_run(base, SGD(base, lr=lr), data, epochs=epochs, lr=lr, batch_size=32)

    db = _vgg_small().finalize(42)
    opt = DropBack(db, k=budget_for_ratio(db, COMPRESSION), lr=lr)
    h_db = train_run(db, opt, data, epochs=epochs, lr=lr, batch_size=32)

    # VD needs technique-specific hyperparameters to converge on VGG-S
    # (same settings as the Table 3 bench).
    vd = make_variational(_vgg_small()).finalize(42)
    steps_per_epoch = max(1, n_train // 32)
    vd_lr, klw = 0.05, 0.2
    loss_fn = vd_loss_fn(vd, n_train=n_train, kl_weight=klw, warmup_steps=2 * steps_per_epoch)
    h_vd = train_run(
        vd, SGD(vd, lr=vd_lr), data, epochs=epochs, lr=vd_lr, batch_size=32, loss_fn=loss_fn
    )
    return h_base, h_db, h_vd


def test_fig4_report(curves, benchmark):
    h_base, h_db, h_vd = curves
    rows = [
        [e, f"{b:.3f}", f"{d:.3f}", f"{v:.3f}"]
        for e, (b, d, v) in enumerate(
            zip(h_base.val_accuracy, h_db.val_accuracy, h_vd.val_accuracy)
        )
    ]
    lines = [
        "VGG-S validation accuracy per epoch (paper Fig. 4)",
        format_table(["epoch", "baseline", f"DropBack {COMPRESSION:.0f}x", "VD"], rows),
        "",
        ascii_series(h_db.val_accuracy, width=40, height=8, label="dropback"),
        "",
        f"best: baseline {h_base.best_val_accuracy:.3f}, "
        f"dropback {h_db.best_val_accuracy:.3f}, vd {h_vd.best_val_accuracy:.3f}",
    ]
    emit_report("fig4_convergence_cifar", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig4_shape_claims(curves, benchmark):
    h_base, h_db, h_vd = curves
    # DropBack converges to near-baseline accuracy...
    assert h_db.best_val_accuracy > h_base.best_val_accuracy - 0.08
    # ...while VD converges substantially below both (paper Fig. 4).
    assert h_vd.best_val_accuracy < h_db.best_val_accuracy
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
