#!/usr/bin/env python
"""Run every registered experiment and write a consolidated report.

Drives the :mod:`repro.experiments` registry end to end, logging every run
to JSONL and printing a paper-vs-measured summary table — the programmatic
complement to ``pytest benchmarks/ --benchmark-only``.

Usage:
    python scripts/run_all_experiments.py [--scale 0.2] [--out results/]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.experiments import list_experiments, run_experiment
from repro.utils import format_percent, format_ratio, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15,
                        help="dataset-size multiplier (1.0 ~ bench default x5)")
    parser.add_argument("--out", type=str, default="experiment_results")
    parser.add_argument("--experiments", nargs="*", default=None,
                        help="subset of experiments (default: all)")
    args = parser.parse_args()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    names = args.experiments or list_experiments()

    for name in names:
        print(f"\n=== {name} (scale={args.scale}) ===")
        t0 = time.time()
        results = run_experiment(
            name, scale=args.scale, log_path=str(out_dir / f"{name}.jsonl")
        )
        rows = []
        for r in results:
            paper = (
                format_percent(r.config.paper_error)
                if r.config.paper_error is not None
                else "-"
            )
            rows.append(
                [
                    r.config.name,
                    r.config.technique,
                    paper,
                    format_percent(r.val_error),
                    format_ratio(r.achieved_compression),
                    "DIVERGED" if r.diverged else "",
                ]
            )
        table = format_table(
            ["run", "technique", "paper err", "measured err", "compression", ""], rows
        )
        print(table)
        (out_dir / f"{name}.txt").write_text(table + "\n")
        print(f"({time.time() - t0:.1f}s; log: {out_dir / (name + '.jsonl')})")


if __name__ == "__main__":
    main()
