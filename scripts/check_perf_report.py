#!/usr/bin/env python
"""Compare two perf reports and fail on wall-time regressions.

Usage:
    python scripts/check_perf_report.py BASELINE.json CURRENT.json \
        [--threshold 0.30] [--min-seconds 0.005] [--top 20]

Loads two ``perf_*.json`` files (written by ``repro.profile.PerfReport``)
and exits non-zero if any op's total wall time regressed by more than
``--threshold`` (default 30%).  Ops faster than ``--min-seconds`` in the
baseline are skipped — they are timer noise at CI scale.

This is the comparison tool the CI bench-smoke artifact feeds into: once a
baseline report is committed (or fetched from a previous run's artifact),
the job runs::

    python scripts/check_perf_report.py baseline/perf_X.json \
        benchmarks/results/perf_X.json

New ops (present only in the current report) and removed ops are reported
but never fail the check — only a measured slowdown of a shared op does.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _ensure_repo_on_path() -> None:
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))


def compare(baseline, current, threshold: float, min_seconds: float) -> tuple[list, list]:
    """Return ``(regressions, rows)`` comparing two PerfReports.

    ``regressions`` holds ``(name, base_s, cur_s, ratio)`` tuples for ops
    whose wall time grew past ``threshold``; ``rows`` is the full
    comparison table data for display.
    """
    regressions = []
    rows = []
    names = sorted(set(baseline.ops) | set(current.ops))
    for name in names:
        base = baseline.ops.get(name)
        cur = current.ops.get(name)
        if base is None:
            rows.append([name, "-", f"{cur.total_seconds:.4f}", "new"])
            continue
        if cur is None:
            rows.append([name, f"{base.total_seconds:.4f}", "-", "removed"])
            continue
        ratio = cur.total_seconds / base.total_seconds if base.total_seconds > 0 else 1.0
        rows.append(
            [name, f"{base.total_seconds:.4f}", f"{cur.total_seconds:.4f}", f"{ratio - 1:+.0%}"]
        )
        if base.total_seconds >= min_seconds and ratio > 1.0 + threshold:
            regressions.append((name, base.total_seconds, cur.total_seconds, ratio))
    return regressions, rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="baseline perf_*.json")
    parser.add_argument("current", help="current perf_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed fractional slowdown per op (default 0.30)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="ignore ops faster than this in the baseline (noise floor)")
    parser.add_argument("--top", type=int, default=20, help="rows to display")
    args = parser.parse_args(argv)

    _ensure_repo_on_path()
    from repro.profile import PerfReport
    from repro.utils import format_table

    baseline = PerfReport.load(args.baseline)
    current = PerfReport.load(args.current)

    regressions, rows = compare(baseline, current, args.threshold, args.min_seconds)

    print(f"baseline: {baseline.name} ({args.baseline})")
    print(f"current:  {current.name} ({args.current})")
    print(format_table(["op", "base s", "current s", "delta"], rows[: args.top]))

    if regressions:
        print(f"\nFAIL: {len(regressions)} op(s) regressed more than "
              f"{args.threshold:.0%} (noise floor {args.min_seconds}s):")
        for name, base_s, cur_s, ratio in regressions:
            print(f"  {name}: {base_s:.4f}s -> {cur_s:.4f}s ({ratio - 1:+.0%})")
        return 1
    print(f"\nOK: no op regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
