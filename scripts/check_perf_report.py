#!/usr/bin/env python
"""Compare two perf reports and fail on wall-time regressions.

Usage:
    python scripts/check_perf_report.py BASELINE.json CURRENT.json \
        [--threshold 0.30] [--min-seconds 0.005] [--normalize OP] [--top 20]

Loads two ``perf_*.json`` files (written by ``repro.profile.PerfReport``)
and exits non-zero if any op's total wall time regressed by more than
``--threshold`` (default 30%).  Ops faster than ``--min-seconds`` in the
baseline are skipped — they are timer noise at CI scale.

This is the comparison tool the CI bench-smoke artifact feeds into: once a
baseline report is committed (or fetched from a previous run's artifact),
the job runs::

    python scripts/check_perf_report.py baseline/perf_X.json \
        benchmarks/results/perf_X.json

New ops (present only in the current report) and removed ops are reported
but never fail the check — only a measured slowdown of a shared op does.

Reports produced under the runtime sanitizers (``meta.sanitize: true``,
stamped by the ProfilerCallback when ``REPRO_SANITIZE=1`` / ``--sanitize``
is active) carry checker overhead in every op and are **excluded from the
gate**: the script prints a notice and exits 0.  Pass ``--allow-sanitized``
to gate on such a report anyway (e.g. sanitized-vs-sanitized comparisons).

``--normalize OP`` divides every op's time by OP's time *within the same
report* before comparing.  Absolute wall times are machine-dependent, so a
baseline committed to the repo can only be gated on ratios; normalizing by
an op measured in the same process (e.g. ``dropback.reference_step``)
cancels the hardware out of the comparison.

The same mechanism gates serving latency percentiles: the serving bench
stores p50/p99 seconds as gauge ops and a bare single-sample forward as
the anchor, so ``--normalize serve.single_forward`` compares "p99 in units
of one forward pass" across machines (pass ``--min-seconds 0`` there —
sub-millisecond percentiles sit below the default noise floor).

``--gate-meta NAME:MIN`` (repeatable) additionally requires the *current*
report's ``meta[NAME]`` to be a number >= MIN — e.g.
``--gate-meta speedup_vs_batch1:2.0`` enforces the dynamic-batching
throughput win, which is a same-process ratio and therefore
machine-independent by construction.  ``--gate-meta-max NAME:MAX`` is the
mirror-image ceiling gate for metas where smaller is better — e.g.
``--gate-meta-max registry_bytes_ratio:0.5`` enforces that packed serving
stays under half the dense registry bytes.

Exit codes: 0 = gate passed (or sanitized-run skip), 1 = regression or a
failed meta gate, 2 = unusable input (missing report file, unreadable
JSON, or a schema version newer than this checker understands).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _ensure_repo_on_path() -> None:
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))


class UnusableInput(SystemExit):
    """Exit 2: the gate could not run at all (vs 1: it ran and failed)."""

    def __init__(self, message: str):
        print(message, file=sys.stderr)
        super().__init__(2)


def _load_report(path: str, loader):
    """Load one report, mapping every unusable-input failure to exit 2.

    A missing file or a schema version this checker does not understand
    must fail the CI job *loudly* — silently exiting 0 would disable the
    gate, and a bare traceback buries the cause.
    """
    try:
        return loader(path)
    except FileNotFoundError:
        raise UnusableInput(f"ERROR: perf report not found: {path}")
    except ValueError as exc:  # schema mismatch or malformed JSON
        raise UnusableInput(f"ERROR: cannot read perf report {path}: {exc}")


def _parse_meta_gates(specs: list[str], flag: str = "--gate-meta") -> list[tuple[str, float]]:
    gates = []
    for spec in specs:
        name, sep, bound = spec.rpartition(":")
        if not sep or not name:
            raise UnusableInput(f"ERROR: {flag} expects NAME:BOUND, got {spec!r}")
        try:
            gates.append((name, float(bound)))
        except ValueError:
            raise UnusableInput(f"ERROR: {flag} bound must be a number, got {spec!r}")
    return gates


def _anchor_seconds(report, normalize: str) -> float:
    anchor = report.ops.get(normalize)
    if anchor is None or anchor.total_seconds <= 0:
        raise SystemExit(
            f"--normalize op {normalize!r} missing (or zero-time) in report {report.name!r}"
        )
    return anchor.total_seconds


def compare(
    baseline, current, threshold: float, min_seconds: float, normalize: str | None = None
) -> tuple[list, list]:
    """Return ``(regressions, rows)`` comparing two PerfReports.

    ``regressions`` holds ``(name, base_s, cur_s, ratio)`` tuples for ops
    whose wall time grew past ``threshold``; ``rows`` is the full
    comparison table data for display.

    With ``normalize``, each op's time is divided by the named anchor op's
    time *within the same report* before comparing, so the gate checks
    machine-independent ratios — the way to diff a committed baseline
    against a report regenerated on different CI hardware.  The noise
    floor still applies to the baseline's raw seconds, and the anchor op
    itself (ratio identically 1) is never a regression.
    """
    regressions = []
    rows = []
    base_scale = _anchor_seconds(baseline, normalize) if normalize else 1.0
    cur_scale = _anchor_seconds(current, normalize) if normalize else 1.0
    names = sorted(set(baseline.ops) | set(current.ops))
    for name in names:
        base = baseline.ops.get(name)
        cur = current.ops.get(name)
        if base is None:
            rows.append([name, "-", f"{cur.total_seconds:.4f}", "new"])
            continue
        if cur is None:
            rows.append([name, f"{base.total_seconds:.4f}", "-", "removed"])
            continue
        base_t = base.total_seconds / base_scale
        cur_t = cur.total_seconds / cur_scale
        ratio = cur_t / base_t if base_t > 0 else 1.0
        rows.append(
            [name, f"{base.total_seconds:.4f}", f"{cur.total_seconds:.4f}", f"{ratio - 1:+.0%}"]
        )
        if name == normalize:
            continue
        if base.total_seconds >= min_seconds and ratio > 1.0 + threshold:
            regressions.append((name, base.total_seconds, cur.total_seconds, ratio))
    return regressions, rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="baseline perf_*.json")
    parser.add_argument("current", help="current perf_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed fractional slowdown per op (default 0.30)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="ignore ops faster than this in the baseline (noise floor)")
    parser.add_argument("--normalize", metavar="OP", default=None,
                        help="divide each op's time by this op's time within the same "
                             "report before comparing (machine-independent ratios)")
    parser.add_argument("--gate-meta", metavar="NAME:MIN", action="append", default=[],
                        help="require current report meta[NAME] >= MIN (repeatable, "
                             "e.g. --gate-meta speedup_vs_batch1:2.0)")
    parser.add_argument("--gate-meta-max", metavar="NAME:MAX", action="append", default=[],
                        help="require current report meta[NAME] <= MAX (repeatable, "
                             "e.g. --gate-meta-max registry_bytes_ratio:0.5)")
    parser.add_argument("--top", type=int, default=20, help="rows to display")
    parser.add_argument("--allow-sanitized", action="store_true",
                        help="gate even if a report was produced under REPRO_SANITIZE "
                             "(default: sanitized runs are excluded from the perf gate)")
    args = parser.parse_args(argv)

    _ensure_repo_on_path()
    from repro.profile import PerfReport
    from repro.utils import format_table

    meta_gates = _parse_meta_gates(args.gate_meta)
    meta_max_gates = _parse_meta_gates(args.gate_meta_max, flag="--gate-meta-max")
    baseline = _load_report(args.baseline, PerfReport.load)
    current = _load_report(args.current, PerfReport.load)

    if not args.allow_sanitized:
        sanitized = [
            rep.name for rep in (baseline, current) if rep.meta.get("sanitize")
        ]
        if sanitized:
            print(
                "SKIP: report(s) produced under runtime sanitizers "
                f"({', '.join(sanitized)}); sanitizer overhead is not a perf "
                "regression. Use --allow-sanitized to gate anyway."
            )
            return 0

    regressions, rows = compare(
        baseline, current, args.threshold, args.min_seconds, normalize=args.normalize
    )

    print(f"baseline: {baseline.name} ({args.baseline})")
    print(f"current:  {current.name} ({args.current})")
    if args.normalize:
        print(f"normalized by: {args.normalize}")
    print(format_table(["op", "base s", "current s", "delta"], rows[: args.top]))

    meta_failures = []
    for name, minimum in meta_gates:
        value = current.meta.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            meta_failures.append(f"meta[{name!r}] missing or non-numeric "
                                 f"(got {value!r}, need >= {minimum})")
        elif value < minimum:
            meta_failures.append(f"meta[{name!r}] = {value} < required minimum {minimum}")
        else:
            print(f"meta gate ok: {name} = {value} >= {minimum}")
    for name, maximum in meta_max_gates:
        value = current.meta.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            meta_failures.append(f"meta[{name!r}] missing or non-numeric "
                                 f"(got {value!r}, need <= {maximum})")
        elif value > maximum:
            meta_failures.append(f"meta[{name!r}] = {value} > required maximum {maximum}")
        else:
            print(f"meta gate ok: {name} = {value} <= {maximum}")

    if regressions or meta_failures:
        if regressions:
            print(f"\nFAIL: {len(regressions)} op(s) regressed more than "
                  f"{args.threshold:.0%} (noise floor {args.min_seconds}s):")
            for name, base_s, cur_s, ratio in regressions:
                print(f"  {name}: {base_s:.4f}s -> {cur_s:.4f}s ({ratio - 1:+.0%})")
        for failure in meta_failures:
            print(f"\nFAIL: {failure}")
        return 1
    print(f"\nOK: no op regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
