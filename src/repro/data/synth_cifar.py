"""Synthetic CIFAR-10: class-conditional colored shape/texture composites.

A stand-in for CIFAR-10 (undownloadable here) preserving what the paper's
CIFAR experiments need: a 10-class 32x32x3 task with genuine *spatial*
structure, so convolutional architectures (VGG-S, DenseNet, WRN) outperform
flat models and the relative ordering of pruning techniques on conv nets is
exercised.

Each class pairs a geometric motif (disc, ring, box, cross, diagonal
stripes, horizontal stripes, checkerboard, triangle, two blobs, grid of
dots) with a base color; samples randomize position, scale, rotation-ish
parameters, color jitter, background color, and pixel noise.  Within-class
variation is high enough that small networks plateau below 100% — leaving
room for pruning-induced accuracy differences to show, as in Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["synth_cifar", "render_cifar_class", "CIFAR_CLASS_NAMES"]

#: Motif names, index = class label.
CIFAR_CLASS_NAMES = (
    "disc", "ring", "box", "cross", "diag-stripes",
    "h-stripes", "checker", "triangle", "blobs", "dots",
)

_BASE_COLORS = np.array(
    [
        [0.85, 0.25, 0.25],
        [0.25, 0.65, 0.9],
        [0.3, 0.8, 0.35],
        [0.9, 0.75, 0.2],
        [0.7, 0.35, 0.85],
        [0.95, 0.55, 0.2],
        [0.3, 0.85, 0.8],
        [0.85, 0.4, 0.6],
        [0.55, 0.6, 0.9],
        [0.75, 0.8, 0.3],
    ],
    dtype=np.float64,
)


def _motif_mask(label: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Grayscale motif intensity in [0, 1], shape (size, size)."""
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    xs = (xs + 0.5) / size
    ys = (ys + 0.5) / size
    cx, cy = rng.uniform(0.35, 0.65, size=2)
    r = rng.uniform(0.18, 0.3)
    d = np.sqrt((xs - cx) ** 2 + (ys - cy) ** 2)
    soft = 2.0 / size  # anti-aliasing width

    if label == 0:  # disc
        return np.clip((r - d) / soft, 0, 1)
    if label == 1:  # ring
        w = rng.uniform(0.05, 0.09)
        return np.clip((w - np.abs(d - r)) / soft, 0, 1)
    if label == 2:  # box
        hw = rng.uniform(0.15, 0.25)
        inside = (np.abs(xs - cx) < hw) & (np.abs(ys - cy) < hw)
        return inside.astype(np.float64)
    if label == 3:  # cross
        w = rng.uniform(0.05, 0.09)
        arm = rng.uniform(0.2, 0.3)
        h = (np.abs(ys - cy) < w) & (np.abs(xs - cx) < arm)
        v = (np.abs(xs - cx) < w) & (np.abs(ys - cy) < arm)
        return (h | v).astype(np.float64)
    if label == 4:  # diagonal stripes
        freq = rng.uniform(4.0, 7.0)
        phase = rng.uniform(0, 2 * np.pi)
        return 0.5 + 0.5 * np.sin(2 * np.pi * freq * (xs + ys) / 2 + phase)
    if label == 5:  # horizontal stripes
        freq = rng.uniform(4.0, 7.0)
        phase = rng.uniform(0, 2 * np.pi)
        return 0.5 + 0.5 * np.sin(2 * np.pi * freq * ys + phase)
    if label == 6:  # checkerboard
        freq = rng.uniform(3.0, 5.0)
        px = rng.uniform(0, 1)
        py = rng.uniform(0, 1)
        return (
            (np.sin(2 * np.pi * freq * (xs + px)) * np.sin(2 * np.pi * freq * (ys + py))) > 0
        ).astype(np.float64)
    if label == 7:  # triangle (half-plane intersection)
        s = rng.uniform(0.2, 0.3)
        in_tri = (
            (ys - (cy - s) > 0)
            & ((ys - cy - s) < 1.8 * (xs - cx + s))
            & ((ys - cy - s) < 1.8 * (cx + s - xs))
        )
        return in_tri.astype(np.float64)
    if label == 8:  # two blobs
        cx2, cy2 = rng.uniform(0.25, 0.75, size=2)
        r2 = rng.uniform(0.1, 0.18)
        d2 = np.sqrt((xs - cx2) ** 2 + (ys - cy2) ** 2)
        b1 = np.exp(-((d / (r * 0.7)) ** 2))
        b2 = np.exp(-((d2 / (r2 * 0.7)) ** 2))
        return np.clip(b1 + b2, 0, 1)
    if label == 9:  # grid of dots
        freq = rng.uniform(4.0, 6.0)
        gx = np.sin(np.pi * freq * xs) ** 2
        gy = np.sin(np.pi * freq * ys) ** 2
        return ((gx > 0.8) & (gy > 0.8)).astype(np.float64)
    raise ValueError(f"label out of range: {label}")


def render_cifar_class(
    label: int, size: int, rng: np.random.Generator, noise: float = 0.06
) -> np.ndarray:
    """Render one (3, size, size) float32 sample of the given class."""
    mask = _motif_mask(label, size, rng)
    color = _BASE_COLORS[label] + rng.normal(0, 0.08, size=3)
    bg = rng.uniform(0.1, 0.45, size=3)
    img = bg[:, None, None] * (1.0 - mask)[None] + color[:, None, None] * mask[None]
    img += rng.normal(0, noise, size=img.shape)
    return np.clip(img, 0.0, 1.0).astype(np.float32)


def synth_cifar(
    n_train: int = 4000,
    n_test: int = 1000,
    seed: int = 0,
    size: int = 32,
    noise: float = 0.06,
) -> tuple[Dataset, Dataset]:
    """Generate a deterministic synthetic-CIFAR train/test pair.

    Parameters
    ----------
    n_train, n_test:
        Split sizes (class-balanced round-robin labels, shuffled).
    size:
        Spatial resolution; 32 reproduces CIFAR geometry, smaller values
        (e.g. 16) give CPU-friendly bench workloads with identical structure.
    """
    if n_train <= 0 or n_test <= 0:
        raise ValueError("dataset sizes must be positive")
    rng = np.random.default_rng(seed)
    y_train = np.arange(n_train) % 10
    y_test = np.arange(n_test) % 10
    rng.shuffle(y_train)
    rng.shuffle(y_test)
    x_train = np.stack([render_cifar_class(int(y), size, rng, noise) for y in y_train])
    x_test = np.stack([render_cifar_class(int(y), size, rng, noise) for y in y_test])
    # Model boundary: motif math is float64 (explicitly) for anti-aliasing;
    # the stacked batches must already be float32 (the plane/tensor dtype).
    assert x_train.dtype == np.float32 and x_test.dtype == np.float32
    return (
        Dataset(x_train, y_train, name="synth-cifar-train"),
        Dataset(x_test, y_test, name="synth-cifar-test"),
    )
