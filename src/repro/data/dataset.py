"""Dataset and DataLoader primitives.

Minimal but complete equivalents of the loading machinery the original
Chainer implementation used: an array-backed :class:`Dataset` with
deterministic splits, and a :class:`DataLoader` that shuffles with its own
seeded generator so experiment runs are exactly reproducible.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["Dataset", "DataLoader", "train_val_split"]


class Dataset:
    """An in-memory supervised dataset.

    Parameters
    ----------
    images:
        Float array, ``(N, C, H, W)`` or ``(N, D)``.
    labels:
        Integer class labels, ``(N,)``.
    name:
        Human-readable tag used in experiment reports.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray, name: str = "dataset"):
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if len(images) != len(labels):
            raise ValueError(f"images/labels length mismatch: {len(images)} vs {len(labels)}")
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        self.images = images
        self.labels = labels
        self.name = name

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, idx) -> tuple[np.ndarray, np.ndarray]:
        return self.images[idx], self.labels[idx]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    @property
    def sample_shape(self) -> tuple[int, ...]:
        return self.images.shape[1:]

    def subset(self, indices: np.ndarray) -> "Dataset":
        """New dataset restricted to the given indices."""
        return Dataset(self.images[indices], self.labels[indices], name=self.name)

    def __repr__(self) -> str:
        return f"Dataset({self.name}, n={len(self)}, shape={self.sample_shape})"


def train_val_split(
    ds: Dataset, val_fraction: float = 0.2, seed: int = 0
) -> tuple[Dataset, Dataset]:
    """Deterministic shuffled split into train and validation subsets."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(ds))
    n_val = int(round(len(ds) * val_fraction))
    if n_val == 0 or n_val == len(ds):
        raise ValueError("split produces an empty subset")
    return ds.subset(perm[n_val:]), ds.subset(perm[:n_val])


class DataLoader:
    """Iterate a dataset in (optionally shuffled) mini-batches.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Batch size; the final partial batch is kept unless ``drop_last``.
    shuffle:
        Reshuffle example order each epoch.
    seed:
        Seed for the shuffle generator.  The order for epoch ``e`` is a pure
        function of ``(seed, e)`` — see :meth:`epoch_order` — so any number
        of independent iterators (a prefetching wrapper, per-rank loaders in
        data-parallel training, a fresh loader in a new process) derive the
        exact same batch sequence without sharing generator state.
    drop_last:
        Drop a trailing batch smaller than ``batch_size``.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.seed = int(seed)
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def epoch_order(self, epoch: int) -> np.ndarray:
        """Example order for ``epoch`` — a pure function of ``(seed, epoch)``.

        Unlike a stateful generator advanced by each ``__iter__``, this
        derivation is independent of how many times (or in what
        interleaving) the loader has been consumed, which is what makes a
        prefetching iterator and the synchronous iterator — or N
        data-parallel ranks each holding their own loader — agree bit-for-bit
        on the same sequence.
        """
        n = len(self.dataset)
        if not self.shuffle:
            return np.arange(n)
        return np.random.default_rng((self.seed, int(epoch))).permutation(n)

    def set_epoch(self, epoch: int) -> None:
        """Position the loader so the next ``__iter__`` yields ``epoch``'s order."""
        self._epoch = int(epoch)

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        # Batches feed Parameter planes directly; a float64 batch would
        # silently promote activations and break bit-determinism (RPA004).
        if self.dataset.images.dtype != np.float32:
            raise TypeError(
                f"dataset {self.dataset.name!r} images are "
                f"{self.dataset.images.dtype}; the model boundary is float32"
            )
        order = self.epoch_order(self._epoch)
        self._epoch += 1
        end = n - (n % self.batch_size) if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset[idx]
