"""Input transforms and augmentation.

The paper trains CIFAR *without* augmentation ("No data augmentation of
CIFAR-10 was performed"), so the reproduction benches don't use these —
but a training library needs them, and the augmentation ablation bench
uses them to show DropBack composes with standard pipelines.

Transforms are pure functions over image batches (N, C, H, W) driven by an
explicit generator, so augmented runs stay reproducible.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "GaussianNoise",
    "AugmentedLoader",
]


class Compose:
    """Apply transforms in order."""

    def __init__(self, transforms: Sequence[Callable]):
        self.transforms = list(transforms)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for t in self.transforms:
            x = t(x, rng)
        return x

    def __repr__(self) -> str:
        return f"Compose({', '.join(repr(t) for t in self.transforms)})"


class Normalize:
    """Per-channel standardization ``(x - mean) / std``."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        self.mean = np.asarray(mean, np.float32).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, np.float32).reshape(1, -1, 1, 1)
        if np.any(self.std <= 0):
            raise ValueError("std must be positive")

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return ((x - self.mean) / self.std).astype(np.float32)

    def __repr__(self) -> str:
        return "Normalize()"


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = float(p)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flip = rng.random(len(x)) < self.p
        out = x.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out

    def __repr__(self) -> str:
        return f"RandomHorizontalFlip(p={self.p})"


class RandomCrop:
    """Zero-pad by ``padding`` and crop back to the original size."""

    def __init__(self, padding: int = 4):
        if padding < 1:
            raise ValueError(f"padding must be >= 1, got {padding}")
        self.padding = int(padding)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.padding
        padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))
        out = np.empty_like(x)
        ys = rng.integers(0, 2 * p + 1, size=n)
        xs = rng.integers(0, 2 * p + 1, size=n)
        for i in range(n):
            out[i] = padded[i, :, ys[i] : ys[i] + h, xs[i] : xs[i] + w]
        return out

    def __repr__(self) -> str:
        return f"RandomCrop(padding={self.padding})"


class GaussianNoise:
    """Add N(0, sigma^2) pixel noise."""

    def __init__(self, sigma: float = 0.02):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0:
            return x
        return (x + rng.normal(0, self.sigma, size=x.shape)).astype(np.float32)

    def __repr__(self) -> str:
        return f"GaussianNoise(sigma={self.sigma})"


class AugmentedLoader:
    """Wrap a DataLoader, applying a transform to each training batch.

    Parameters
    ----------
    loader:
        The underlying :class:`repro.data.DataLoader`.
    transform:
        Callable ``(images, rng) -> images``.
    seed:
        Seed for the augmentation generator.  Like
        :meth:`repro.data.DataLoader.epoch_order`, the draw stream for epoch
        ``e`` is a pure function of ``(seed, e)`` rather than shared
        generator state, so an asynchronous (prefetching) consumer and a
        synchronous one apply bit-identical augmentations.
    """

    def __init__(self, loader, transform: Callable, seed: int = 0):
        self.loader = loader
        self.transform = transform
        self.seed = int(seed)
        self._epoch = 0

    def __len__(self) -> int:
        return len(self.loader)

    def epoch_rng(self, epoch: int) -> np.random.Generator:
        """The augmentation generator for ``epoch`` (pure in ``(seed, epoch)``)."""
        return np.random.default_rng((self.seed, int(epoch)))

    def set_epoch(self, epoch: int) -> None:
        """Position the wrapper (and its loader, if it supports it)."""
        self._epoch = int(epoch)
        if hasattr(self.loader, "set_epoch"):
            self.loader.set_epoch(epoch)

    def __iter__(self):
        rng = self.epoch_rng(self._epoch)
        self._epoch += 1
        for x, y in self.loader:
            yield self.transform(x, rng), y
