"""Synthetic MNIST: procedurally rasterized handwritten-style digits.

The real MNIST files cannot be downloaded in this environment, so we build a
drop-in substitute that preserves what the paper's MNIST experiments
exercise: a 10-class, 28x28 grayscale task that a 90k-parameter MLP learns
to a few percent error, with enough intra-class variation that cutting the
weight budget 60-180x visibly costs accuracy (Table 1's trend).

Each digit class is defined by a stroke skeleton (a set of polyline/arc
control points in a unit box).  A sample applies a random affine deformation
(rotation, scale, shear, translation) and per-point jitter to the skeleton,
rasterizes it with an anti-aliased distance-to-segment pen of random
thickness, then adds mild pixel noise — mimicking handwriting variation.

Generation is deterministic given ``seed`` and is vectorized over segments
and pixels.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["digit_strokes", "render_digits", "synth_mnist"]


def _arc(
    cx: float, cy: float, r: float, a0: float, a1: float, n: int = 8
) -> list[tuple[float, float]]:
    """Polyline approximation of a circular arc (angles in degrees)."""
    ts = np.linspace(math.radians(a0), math.radians(a1), n)
    return [(cx + r * math.cos(t), cy + r * math.sin(t)) for t in ts]


def digit_strokes() -> dict[int, list[list[tuple[float, float]]]]:
    """Stroke skeletons for digits 0-9 in a unit box (x right, y up).

    Each digit is a list of polylines; consecutive points form pen segments.
    """
    return {
        0: [_arc(0.5, 0.5, 0.32, 90, 450, 16)],
        1: [[(0.35, 0.62), (0.5, 0.8), (0.5, 0.2)], [(0.35, 0.2), (0.65, 0.2)]],
        2: [_arc(0.5, 0.62, 0.22, 180, 0, 8) + [(0.3, 0.2)], [(0.3, 0.2), (0.72, 0.2)]],
        3: [_arc(0.48, 0.64, 0.18, 150, -60, 8), _arc(0.48, 0.34, 0.2, 120, -90, 8)],
        4: [[(0.62, 0.2), (0.62, 0.8)], [(0.62, 0.8), (0.3, 0.4)], [(0.3, 0.4), (0.75, 0.4)]],
        5: [[(0.7, 0.8), (0.35, 0.8)], [(0.35, 0.8), (0.33, 0.52)],
            _arc(0.5, 0.36, 0.2, 120, -120, 10)],
        6: [[(0.62, 0.8), (0.4, 0.5)], _arc(0.5, 0.35, 0.18, 90, 450, 12)],
        7: [[(0.3, 0.8), (0.72, 0.8)], [(0.72, 0.8), (0.45, 0.2)]],
        8: [_arc(0.5, 0.62, 0.16, 90, 450, 12), _arc(0.5, 0.3, 0.2, 90, 450, 12)],
        9: [_arc(0.5, 0.62, 0.18, 90, 450, 12), [(0.66, 0.62), (0.58, 0.2)]],
    }


def _segments_for(strokes: list[list[tuple[float, float]]]) -> np.ndarray:
    """Stack stroke polylines into an (S, 4) array of segments (x0,y0,x1,y1)."""
    segs = []
    for line in strokes:
        pts = np.asarray(line, dtype=np.float64)
        segs.append(np.concatenate([pts[:-1], pts[1:]], axis=1))
    return np.concatenate(segs, axis=0)


def render_digits(
    labels: np.ndarray,
    rng: np.random.Generator,
    size: int = 28,
    noise: float = 0.08,
) -> np.ndarray:
    """Render one image per label with random handwriting-style deformation.

    Returns a float32 array of shape ``(N, 1, size, size)`` in [0, 1].
    """
    strokes = digit_strokes()
    segments = {d: _segments_for(s) for d, s in strokes.items()}

    ys, xs = np.mgrid[0:size, 0:size]
    # Pixel centers in unit coordinates, y flipped so strokes' y-up matches rows.
    px = (xs + 0.5) / size
    py = 1.0 - (ys + 0.5) / size
    pix = np.stack([px.ravel(), py.ravel()], axis=1)  # (P, 2)

    n = len(labels)
    out = np.zeros((n, size * size), dtype=np.float32)
    for i, lab in enumerate(labels):
        seg = segments[int(lab)].copy()  # (S, 4)
        pts = seg.reshape(-1, 2)

        # Random affine about the glyph center.  Geometry stays float64 on
        # purpose (sub-pixel rasterization); the rendered image is handed
        # to the model boundary as float32 below.
        angle = rng.normal(0.0, 0.12)
        scale = rng.uniform(0.85, 1.12)
        shear = rng.normal(0.0, 0.12)
        ca, sa = math.cos(angle), math.sin(angle)
        affine = np.array([[ca, -sa + shear], [sa, ca]], dtype=np.float64) * scale
        center = np.array([0.5, 0.5], dtype=np.float64)
        shift = rng.normal(0.0, 0.035, size=2)
        pts = (pts - center) @ affine.T + center + shift
        # Small per-point wobble for stroke irregularity.
        pts = pts + rng.normal(0.0, 0.008, size=pts.shape)
        seg = pts.reshape(-1, 4)

        a = seg[:, 0:2][None]          # (1, S, 2) segment starts
        b = seg[:, 2:4][None]          # (1, S, 2) segment ends
        p = pix[:, None, :]            # (P, 1, 2)
        ab = b - a
        denom = (ab * ab).sum(-1) + 1e-12
        t = np.clip(((p - a) * ab).sum(-1) / denom, 0.0, 1.0)
        proj = a + t[..., None] * ab
        d = np.sqrt(((p - proj) ** 2).sum(-1)).min(axis=1)  # (P,)

        pen = rng.uniform(0.028, 0.05)
        img = np.clip(1.0 - d / pen, 0.0, 1.0)  # anti-aliased stroke
        out[i] = img.astype(np.float32)

    if noise > 0:
        out += rng.normal(0.0, noise, size=out.shape).astype(np.float32)
        np.clip(out, 0.0, 1.0, out=out)
    return out.reshape(n, 1, size, size)


def synth_mnist(
    n_train: int = 8000,
    n_test: int = 2000,
    seed: int = 0,
    size: int = 28,
    noise: float = 0.08,
) -> tuple[Dataset, Dataset]:
    """Generate a deterministic synthetic-MNIST train/test pair.

    Labels are balanced round-robin so every class appears equally often.
    """
    if n_train <= 0 or n_test <= 0:
        raise ValueError("dataset sizes must be positive")
    rng = np.random.default_rng(seed)
    y_train = np.arange(n_train) % 10
    y_test = np.arange(n_test) % 10
    # Shuffle label order (rendering consumes rng per-sample, so the split
    # between train and test stays deterministic).
    rng.shuffle(y_train)
    rng.shuffle(y_test)
    x_train = render_digits(y_train, rng, size=size, noise=noise)
    x_test = render_digits(y_test, rng, size=size, noise=noise)
    # Model boundary: rasterization may use float64 internally, but what
    # leaves this module must be float32 (the plane/tensor dtype).
    assert x_train.dtype == np.float32 and x_test.dtype == np.float32
    return (
        Dataset(x_train, y_train, name="synth-mnist-train"),
        Dataset(x_test, y_test, name="synth-mnist-test"),
    )
