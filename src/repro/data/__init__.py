"""Datasets: loader machinery and synthetic MNIST / CIFAR substitutes."""

from repro.data.dataset import DataLoader, Dataset, train_val_split
from repro.data.synth_cifar import CIFAR_CLASS_NAMES, render_cifar_class, synth_cifar
from repro.data.synth_mnist import digit_strokes, render_digits, synth_mnist
from repro.data.transforms import (
    AugmentedLoader,
    Compose,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
)

__all__ = [
    "Dataset",
    "DataLoader",
    "train_val_split",
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "GaussianNoise",
    "AugmentedLoader",
    "synth_mnist",
    "render_digits",
    "digit_strokes",
    "synth_cifar",
    "render_cifar_class",
    "CIFAR_CLASS_NAMES",
]
