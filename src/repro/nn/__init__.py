"""Neural-network layers with regenerable initialization."""

from repro.nn.layers import (
    ELU,
    GELU,
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    PReLU,
    ReLU,
    Sequential,
    Softplus,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.module import Module, Parameter

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "GELU",
    "Softplus",
    "PReLU",
    "Dropout",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
]
