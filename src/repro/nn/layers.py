"""Standard layers built on the autograd engine.

Every trainable tensor is a :class:`~repro.nn.module.Parameter` carrying a
regenerable initializer: LeCun scaled normal for weight matrices and kernels
(the paper's choice), constants for biases, BatchNorm scale/shift, and PReLU
slopes.  That makes *every* layer prunable by DropBack, including the
normalization layers that post-hoc pruning methods cannot touch.
"""

from __future__ import annotations

import numpy as np

from repro import tensor as F
from repro.init import ConstantInit, HeNormalInit, ScaledNormalInit, lecun_std
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "GELU",
    "Softplus",
    "PReLU",
    "Dropout",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Sequential",
    "Identity",
    "FusedBNReLU",
    "fuse_bn_relu",
]


class Linear(Module):
    """Affine layer ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Include a bias vector (constant-0 initialized).
    init:
        ``"lecun"`` (paper default) or ``"he"`` weight initialization.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, init: str = "lecun"):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        weight_init = (
            HeNormalInit(in_features) if init == "he" else ScaledNormalInit(lecun_std(in_features))
        )
        self.weight = Parameter((out_features, in_features), weight_init)
        self.bias = Parameter((out_features,), ConstantInit(0.0)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Conv2d(Module):
    """2-D convolution layer (NCHW).

    Kernel initialized from a scaled normal with fan-in ``C_in * KH * KW``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        init: str = "lecun",
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        weight_init = HeNormalInit(fan_in) if init == "he" else ScaledNormalInit(lecun_std(fan_in))
        self.weight = Parameter((out_channels, in_channels, kernel_size, kernel_size), weight_init)
        self.bias = Parameter((out_channels,), ConstantInit(0.0)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, pad=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class _BatchNorm(Module):
    """Shared batch-norm implementation; γ and β are prunable Parameters.

    γ regenerates to 1.0 and β to 0.0 when untracked — the paper highlights
    that constant-initialized layers are prunable by DropBack "out of the
    box", unlike with magnitude or slimming approaches.
    """

    _buffers = ("running_mean", "running_var")

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter((num_features,), ConstantInit(1.0))
        self.beta = Parameter((num_features,), ConstantInit(0.0))
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)

    def forward(self, x: Tensor) -> Tensor:
        self._check_ndim(x)
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def _check_ndim(self, x: Tensor) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features})"


class BatchNorm1d(_BatchNorm):
    """Batch normalization over (N, C) activations."""

    def _check_ndim(self, x: Tensor) -> None:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, C), got shape {x.shape}")


class BatchNorm2d(_BatchNorm):
    """Batch normalization over (N, C, H, W) activations (per channel)."""

    def _check_ndim(self, x: Tensor) -> None:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W), got shape {x.shape}")


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class FusedBNReLU(Module):
    """Batch normalization + ReLU as a single fused op.

    Wraps an existing :class:`BatchNorm1d`/:class:`BatchNorm2d` so the
    γ/β Parameters (and their weight-plane slots, if already finalized)
    are shared with the wrapped layer, and forwards through
    :func:`repro.tensor.batch_norm_relu` — one tape node, one pass over
    the activation on the ``fast`` backend instead of two.

    Note: wrapping changes parameter *names* in ``state_dict`` (e.g.
    ``layers.3.gamma`` becomes ``layers.3.bn.gamma``) but not their order,
    so weight-plane layouts are identical whether fusion happens before or
    after ``finalize``.
    """

    def __init__(self, bn: _BatchNorm):
        super().__init__()
        if not isinstance(bn, _BatchNorm):
            raise TypeError(f"FusedBNReLU wraps a BatchNorm1d/BatchNorm2d, got {type(bn).__name__}")
        self.bn = bn

    def forward(self, x: Tensor) -> Tensor:
        bn = self.bn
        bn._check_ndim(x)
        return F.batch_norm_relu(
            x,
            bn.gamma,
            bn.beta,
            bn.running_mean,
            bn.running_var,
            training=self.training,
            momentum=bn.momentum,
            eps=bn.eps,
        )

    def __repr__(self) -> str:
        return f"FusedBNReLU({self.bn!r})"


def fuse_bn_relu(model: Module) -> int:
    """Replace adjacent ``[BatchNorm, ReLU]`` pairs in every ``Sequential``
    of ``model`` with :class:`FusedBNReLU`, in place.

    Returns the number of pairs fused.  Safe to call before or after
    ``finalize`` — the wrapped BatchNorm keeps its Parameter objects, so
    plane views stay valid.
    """
    fused = 0
    for module in model.modules():
        if not isinstance(module, Sequential):
            continue
        layers = module.layers
        i = 0
        while i < len(layers) - 1:
            if isinstance(layers[i], _BatchNorm) and type(layers[i + 1]) is ReLU:
                layers[i : i + 2] = [FusedBNReLU(layers[i])]
                fused += 1
            i += 1
    return fused


class LeakyReLU(Module):
    """Leaky ReLU with a fixed negative slope."""

    def __init__(self, slope: float = 0.01):
        super().__init__()
        self.slope = float(slope)

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.slope)

    def __repr__(self) -> str:
        return f"LeakyReLU(slope={self.slope})"


class ELU(Module):
    """Exponential linear unit."""

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = float(alpha)

    def forward(self, x: Tensor) -> Tensor:
        return F.elu(x, self.alpha)

    def __repr__(self) -> str:
        return f"ELU(alpha={self.alpha})"


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)

    def __repr__(self) -> str:
        return "GELU()"


class Softplus(Module):
    """Softplus activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.softplus(x)

    def __repr__(self) -> str:
        return "Softplus()"


class PReLU(Module):
    """Parametric ReLU with trainable (and prunable) slope, init 0.25."""

    def __init__(self, num_parameters: int = 1, init_slope: float = 0.25):
        super().__init__()
        self.slope = Parameter((num_parameters,), ConstantInit(init_slope))

    def forward(self, x: Tensor) -> Tensor:
        return F.prelu(x, self.slope)

    def __repr__(self) -> str:
        return f"PReLU({self.slope.shape[0]})"


class Dropout(Module):
    """Inverted dropout (active only in training mode)."""

    def __init__(self, p: float = 0.5, seed: int = 0xD06):
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class MaxPool2d(Module):
    """Max pooling."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    """Average pooling."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    """Global average pooling: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"


class Flatten(Module):
    """Flatten all but the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"


class Identity(Module):
    """No-op module (useful as a placeholder in skip connections)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class Sequential(Module):
    """Compose modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def append(self, module: Module) -> "Sequential":
        self.layers.append(module)
        return self

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self.layers)
        return f"Sequential({inner})"
