"""Module/Parameter system with regenerable initialization.

The central departure from a conventional layer library: every
:class:`Parameter` carries the :class:`~repro.init.Initializer` that produced
it and, once the network is *finalized*, a ``base_index`` into a single
global flat index space covering all parameters.  Given the network seed and
a flat index, any parameter element's initial value can be regenerated
exactly — the property DropBack's untracked-weight regeneration relies on
(paper §2.1: "each value only depends on the seed value and its index").

Finalization also materializes the **flat weight plane**: one contiguous
float32 buffer holding every parameter back to back in global-index order.
Each ``Parameter.data`` is a zero-copy view into the plane, so whole-network
operations (DropBack's candidate/score/commit step, sparse checkpoint
scatter, flat analyses) run as single vectorized ops over the plane while
layers keep reading their own shaped views.  Assigning ``p.data = arr``
*writes through* the view (the values are copied into the plane) rather
than detaching it, so optimizer- and checkpoint-style assignments preserve
the aliasing invariant automatically.

Typical lifecycle::

    model = lenet_300_100()
    model.finalize(seed=7)        # assign indices, build plane, set W(0)
    opt = DropBack(model, k=20_000, lr=0.4)
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.init import Initializer
from repro.tensor import Tensor

__all__ = ["Parameter", "Module", "set_plane_detach_hook"]

# Observer invoked when a plane-backed parameter falls back to detaching
# (an assignment that cannot broadcast into its plane view).  The runtime
# sanitizer (repro.analyze.sanitize) installs a hook that raises, turning
# the silent detach into a hard error; None keeps the legacy fallback.
_PLANE_DETACH_HOOK: Callable[["Parameter"], None] | None = None


def set_plane_detach_hook(hook: Callable[["Parameter"], None] | None) -> None:
    """Install (or clear, with ``None``) the plane-detach observer."""
    global _PLANE_DETACH_HOOK
    _PLANE_DETACH_HOOK = hook


class Parameter(Tensor):
    """A trainable tensor with a regenerable initializer.

    Parameters
    ----------
    shape:
        Parameter shape.
    initializer:
        Deterministic source of the initial values.
    prunable:
        Whether DropBack may untrack (and thus regenerate) this parameter.
        All parameters in the paper are prunable, including BatchNorm and
        PReLU parameters; the flag exists for ablations.
    """

    __slots__ = ("initializer", "base_index", "prunable", "_data", "_plane_backed")

    def __init__(self, shape: tuple[int, ...], initializer: Initializer, prunable: bool = True):
        super().__init__(np.zeros(shape, dtype=np.float32), requires_grad=True)
        self.initializer = initializer
        self.base_index: int | None = None
        self.prunable = bool(prunable)

    # -- flat-plane aliasing ------------------------------------------- #
    #
    # ``data`` shadows the Tensor slot with a property so a plane-backed
    # parameter keeps its zero-copy view alive across assignments: writing
    # ``p.data = arr`` copies the values into the plane instead of
    # rebinding, which is what SGD/DropBack/checkpoint-load style code
    # does all over the tree.  An assignment that cannot broadcast into
    # the view (a genuine reshape) falls back to detaching, matching the
    # pre-plane replacement semantics.

    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value) -> None:
        if getattr(self, "_plane_backed", False):
            arr = np.asarray(value)
            view = self._data
            if arr is view:
                return
            try:
                view[...] = arr
                return
            except (ValueError, TypeError):
                self._plane_backed = False
                if _PLANE_DETACH_HOOK is not None:
                    _PLANE_DETACH_HOOK(self)
        self._data = np.asarray(value)

    @property
    def plane_backed(self) -> bool:
        """Whether :attr:`data` is currently a view into the weight plane."""
        return getattr(self, "_plane_backed", False)

    def _attach_plane(self, view: np.ndarray) -> None:
        """Rebind :attr:`data` to a plane view (values are preserved)."""
        view[...] = self._data
        self._data = view
        self._plane_backed = True

    def initialize(self, seed: int, base_index: int) -> None:
        """Assign this parameter's global index range and set W(0)."""
        self.base_index = int(base_index)
        self.data = self.initializer.regenerate(seed, base_index, self.shape, dtype=np.float32)

    def initial_values(self, seed: int) -> np.ndarray:
        """Regenerate this parameter's full W(0) block (pure function)."""
        if self.base_index is None:
            raise RuntimeError("parameter not finalized; call Module.finalize(seed) first")
        return self.initializer.regenerate(seed, self.base_index, self.shape, dtype=np.float32)

    def __repr__(self) -> str:
        return (
            f"Parameter(shape={self.shape}, init={self.initializer!r}, "
            f"base_index={self.base_index})"
        )


class Module:
    """Base class for layers and models.

    Submodules and parameters are discovered via attribute inspection (like
    PyTorch).  ``finalize(seed)`` must be called once after construction to
    lay out the global parameter index space and materialize initial values.
    """

    def __init__(self) -> None:
        self.training = True
        self._seed: int | None = None
        self._plane: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # discovery
    # ------------------------------------------------------------------ #

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in definition order."""
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield (f"{prefix}{name}", value)
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{prefix}{name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield (f"{prefix}{name}.{i}", item)

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield self and all descendant modules."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def finalize(self, seed: int) -> "Module":
        """Assign global flat indices to every parameter and set W(0).

        Parameters occupy consecutive index ranges in definition order, so
        the pair ``(seed, flat_index)`` identifies every weight for the
        stateless regeneration path.  The same walk allocates the flat
        weight plane — ``plane[p.base_index : p.base_index + p.size]``
        *is* ``p.data`` (a reshaped zero-copy view) for every parameter.
        Idempotent for the same seed (each call rebuilds the plane).
        """
        params = [p for _, p in self.named_parameters()]
        plane = np.zeros(sum(p.size for p in params), dtype=np.float32)
        offset = 0
        for p in params:
            p._attach_plane(plane[offset : offset + p.size].reshape(p.shape))
            p.initialize(seed, offset)
            offset += p.size
        self._plane = plane
        self._seed = int(seed)
        return self

    @property
    def weight_plane(self) -> np.ndarray | None:
        """The flat float32 buffer all parameters view into (None before
        :meth:`finalize`).  Indexed by the global flat index space:
        ``weight_plane[p.base_index + i] == p.data.reshape(-1)[i]``."""
        return getattr(self, "_plane", None)

    @property
    def seed(self) -> int:
        if self._seed is None:
            raise RuntimeError("model not finalized; call finalize(seed) first")
        return self._seed

    @property
    def is_finalized(self) -> bool:
        return self._seed is not None

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # train/eval + grads
    # ------------------------------------------------------------------ #

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for value in vars(self).values():
            if isinstance(value, Module):
                value.train(mode)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------ #
    # state I/O (dense; sparse checkpoints live in repro.io)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted name."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for mod_name, buf_name, buf in self._named_buffers():
            state[f"{mod_name}{buf_name}"] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter (and buffer) arrays saved by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        buffers = {f"{m}{b}": (m, b) for m, b, _ in self._named_buffers()}
        for key, arr in state.items():
            if key in params:
                if params[key].shape != arr.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: {params[key].shape} vs {arr.shape}"
                    )
                params[key].data = arr.astype(np.float32).copy()
            elif key in buffers:
                self._set_buffer(key, arr)
            else:
                raise KeyError(f"unexpected state key: {key}")

    def _named_buffers(self) -> Iterator[tuple[str, str, np.ndarray]]:
        """Yield (module_prefix, buffer_name, array) for running statistics."""
        for prefix, mod in self._named_modules():
            for buf_name in getattr(mod, "_buffers", ()):
                yield prefix, buf_name, getattr(mod, buf_name)

    def _named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield from value._named_modules(prefix=f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_modules(prefix=f"{prefix}{name}.{i}.")

    def _set_buffer(self, dotted: str, arr: np.ndarray) -> None:
        for prefix, mod in self._named_modules():
            for buf_name in getattr(mod, "_buffers", ()):
                if f"{prefix}{buf_name}" == dotted:
                    getattr(mod, buf_name)[...] = arr
                    return
        raise KeyError(dotted)

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)
