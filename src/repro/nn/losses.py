"""Loss modules."""

from __future__ import annotations

import numpy as np

from repro import tensor as F
from repro.nn.module import Module
from repro.tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss(Module):
    """Mean softmax cross-entropy from logits and integer class labels."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:  # type: ignore[override]
        return F.cross_entropy(logits, targets)

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:  # type: ignore[override]
        return self.forward(logits, targets)

    def __repr__(self) -> str:
        return "CrossEntropyLoss()"


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, pred: Tensor, target) -> Tensor:  # type: ignore[override]
        return F.mse_loss(pred, target)

    def __call__(self, pred: Tensor, target) -> Tensor:  # type: ignore[override]
        return self.forward(pred, target)

    def __repr__(self) -> str:
        return "MSELoss()"
