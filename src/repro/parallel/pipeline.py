"""Asynchronous input pipeline: background prefetch with double buffering.

``PrefetchLoader`` wraps any batch iterable (``DataLoader``,
``AugmentedLoader``, a per-rank microbatch generator) and materializes up to
``depth`` upcoming batches on a background thread, so index gathering and
augmentation overlap the compute step instead of serializing with it.  The
default ``depth=2`` is classic double buffering: one batch in flight to the
consumer, one being prepared.

Because the wrapped loaders derive their order and augmentation draws as
pure functions of ``(seed, epoch)`` (see ``DataLoader.epoch_order``),
prefetching changes *when* batches are built but never *what* they contain:
the async and synchronous iterators yield bit-identical sequences, which
``tests/test_parallel.py`` pins.
"""

from __future__ import annotations

import queue
import threading

__all__ = ["PrefetchLoader"]

_DONE = object()


class PrefetchLoader:
    """Iterate ``loader`` through a bounded background-thread buffer.

    Parameters
    ----------
    loader:
        Any iterable of batches.  Each ``__iter__`` of the wrapper starts a
        fresh ``iter(loader)`` on its own daemon thread.
    depth:
        Maximum prefetched batches (>= 1); 2 = double buffering.

    Exceptions raised by the producer (including inside the wrapped
    loader's transforms) are re-raised in the consumer.  Abandoning the
    iterator early — ``break``, or closing the generator — stops and joins
    the producer thread; no thread outlives its iteration.
    """

    def __init__(self, loader, depth: int = 2):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.loader = loader
        self.depth = int(depth)

    def __len__(self) -> int:
        return len(self.loader)

    def set_epoch(self, epoch: int) -> None:
        """Forward to the wrapped loader, if it is epoch-addressable."""
        if hasattr(self.loader, "set_epoch"):
            self.loader.set_epoch(epoch)

    def __iter__(self):
        buf: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def put(item) -> bool:
            # Bounded put that gives up once the consumer has gone away.
            while not stop.is_set():
                try:
                    buf.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def produce() -> None:
            try:
                for item in self.loader:
                    if not put(item):
                        return
                put(_DONE)
            except BaseException as exc:  # noqa: BLE001 - re-raised in consumer
                put(exc)

        worker = threading.Thread(
            target=produce, name="repro-prefetch", daemon=True
        )
        worker.start()
        try:
            while True:
                item = buf.get()
                if item is _DONE:
                    return
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            stop.set()
            # Unblock a producer stuck on a full queue, then reap it.
            while True:
                try:
                    buf.get_nowait()
                except queue.Empty:
                    break
            worker.join(timeout=5.0)
