"""Data-parallel scaling bench: N-worker vs single-worker throughput.

Trains the same model/config twice — ``workers=1`` and ``workers=N`` with
the *same* microbatch size, so both runs do identical numerical work — and
freezes wall time and throughput into a :class:`~repro.profile.PerfReport`:

* gauge ops ``parallel.step.1w`` / ``parallel.step.<N>w`` (total training
  wall seconds; ``calls`` = optimizer steps) and per-rank
  ``parallel.rank<r>.compute`` seconds from the N-worker run;
* meta ``throughput_1w`` / ``throughput_<N>w`` (samples/s),
  ``speedup_<N>w``, and ``scaling_efficiency_<N>w`` (speedup / N) — the
  number the CI gate enforces on multi-core runners via
  ``check_perf_report.py --gate-meta scaling_efficiency_2w:<floor>``.

Absolute times are machine-dependent; CI diffs the committed baseline
(``benchmarks/results/perf_parallel.json``) only on ratios normalized by
the ``parallel.step.1w`` anchor.  ``meta.cpu_count`` records the regime:
on a single-CPU host the scaling efficiency is honestly ~0.5 (two workers
time-slice one core), which is why the efficiency floor is applied only
when ``nproc >= 2`` — the same conditional that gates the threaded-GEMM
kernel meta.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.core import DropBack
from repro.data import DataLoader, synth_mnist
from repro.models import mnist_100_100
from repro.parallel.trainer import ParallelTrainer
from repro.profile import OpStat, PerfReport

__all__ = ["bench_parallel", "main"]


def _train_once(
    workers: int,
    train,
    test,
    batch_size: int,
    microbatch: int,
    epochs: int,
    seed: int,
    prefetch: int,
) -> tuple[float, int, ParallelTrainer]:
    model = mnist_100_100().finalize(seed)
    opt = DropBack(model, k=max(1, model.num_parameters() // 5), lr=0.1)
    trainer = ParallelTrainer(
        model, opt, workers=workers, microbatch=microbatch, prefetch=prefetch
    )
    loader = DataLoader(train, batch_size, shuffle=True, seed=1, drop_last=True)
    t0 = time.perf_counter()
    history = trainer.fit(loader, test, epochs=epochs)
    wall = time.perf_counter() - t0
    steps = history.epochs_run * (len(train) // batch_size)
    return wall, steps, trainer


def bench_parallel(
    workers: int = 2,
    train_size: int = 2048,
    batch_size: int = 128,
    microbatch: int | None = None,
    epochs: int = 4,
    seed: int = 0,
    prefetch: int = 2,
) -> PerfReport:
    """Run the 1-worker and ``workers``-worker trainings; return the report."""
    if workers < 2:
        raise ValueError(f"workers must be >= 2 to measure scaling, got {workers}")
    # Same microbatch in both runs: the determinism contract's requirement
    # for identical numerics, and what makes the comparison apples-to-apples.
    m = microbatch if microbatch is not None else batch_size // workers
    train, test = synth_mnist(n_train=train_size, n_test=max(64, train_size // 16), seed=0)

    wall_1, steps_1, _ = _train_once(
        1, train, test, batch_size, m, epochs, seed, prefetch
    )
    wall_n, steps_n, trainer_n = _train_once(
        workers, train, test, batch_size, m, epochs, seed, prefetch
    )

    tag = f"{workers}w"
    ops = {
        "parallel.step.1w": OpStat(
            name="parallel.step.1w", calls=steps_1, total_seconds=wall_1
        ),
        f"parallel.step.{tag}": OpStat(
            name=f"parallel.step.{tag}", calls=steps_n, total_seconds=wall_n
        ),
    }
    for rank, seconds in enumerate(trainer_n.rank_compute_seconds):
        name = f"parallel.rank{rank}.compute"
        ops[name] = OpStat(name=name, calls=steps_n, total_seconds=seconds)

    samples_1 = steps_1 * batch_size
    samples_n = steps_n * batch_size
    throughput_1 = samples_1 / wall_1 if wall_1 > 0 else 0.0
    throughput_n = samples_n / wall_n if wall_n > 0 else 0.0
    speedup = throughput_n / throughput_1 if throughput_1 > 0 else 0.0
    meta = {
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "train_size": train_size,
        "batch_size": batch_size,
        "microbatch": m,
        "epochs": epochs,
        "seed": seed,
        "prefetch": prefetch,
        "throughput_1w": round(throughput_1, 2),
        f"throughput_{tag}": round(throughput_n, 2),
        f"speedup_{tag}": round(speedup, 4),
        f"scaling_efficiency_{tag}": round(speedup / workers, 4),
        "rank_wait_seconds": [round(s, 4) for s in trainer_n.rank_wait_seconds],
    }
    return PerfReport(name="parallel", ops=ops, meta=meta)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--train-size", type=int, default=2048)
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--microbatch", type=int, default=None)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--prefetch", type=int, default=2)
    parser.add_argument("--out", default=None, help="write the perf-report JSON here")
    args = parser.parse_args(argv)

    report = bench_parallel(
        workers=args.workers,
        train_size=args.train_size,
        batch_size=args.batch_size,
        microbatch=args.microbatch,
        epochs=args.epochs,
        seed=args.seed,
        prefetch=args.prefetch,
    )
    tag = f"{args.workers}w"
    print(
        f"1w: {report.meta['throughput_1w']:.0f} samples/s   "
        f"{tag}: {report.meta[f'throughput_{tag}']:.0f} samples/s   "
        f"speedup {report.meta[f'speedup_{tag}']:.2f}x   "
        f"efficiency {report.meta[f'scaling_efficiency_{tag}']:.2f} "
        f"(cpus: {report.meta['cpu_count']})"
    )
    if args.out:
        report.write(args.out)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
