"""Data-parallel training over the shared weight plane.

``ParallelTrainer`` runs ``N`` fork-based worker processes in lockstep over
one global batch per step.  The flat weight plane lives in a
:class:`~repro.parallel.shm.SharedArena`, so the "broadcast" of updated
weights is free (every rank's parameters are views of the same buffer) and
gradient exchange is one write per rank into a preallocated slot.

Determinism contract
--------------------
A global batch of size ``B`` is defined as ``M = B / m`` microbatches of a
fixed size ``m``.  Each microbatch's gradient is the bit-deterministic
forward/backward the sanitizers already pin; microbatches are combined with
the canonical pairwise tree of :mod:`repro.parallel.reduce`.  Rank ``r``
owns the ``r``-th contiguous block of ``M / N`` microbatches and tree-sums
it locally; rank 0 tree-combines the ``N`` partials **in rank order** and
scales once.  Because ``N`` is a power of two dividing ``M``, the combined
tree is exactly the ``N = 1`` tree (see ``reduce.py``), so for a fixed
``(seed, m)``:

* repeated runs at the same worker count are bit-identical, and
* runs at different worker counts (including ``workers=1``) produce
  byte-identical weight planes.

DropBack's accumulated-gradient scoring and top-k selection run **once per
step, on rank 0 only**, after the reduce — the selection sees the global
accumulated gradient, and its commit writes the shared plane that every
rank reads on the next step.

Known limitation (mirrors distributed data parallel elsewhere): BatchNorm
*running* statistics are per-process buffers outside the plane, so they are
rank-local.  Training math is unaffected (train mode normalizes with batch
statistics), but eval-mode inference on a >1-worker run reflects rank 0's
share of the data.  The bit-identity tests therefore use plane-only models.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
import traceback

import numpy as np

from repro.data import DataLoader, Dataset
from repro.data.transforms import AugmentedLoader
from repro.nn import Module
from repro.optim import Optimizer, Schedule
from repro.parallel.pipeline import PrefetchLoader
from repro.parallel.reduce import tree_sum, tree_sum_range, tree_sum_scalars
from repro.parallel.shm import SharedArena, adopt_plane, parallel_supported
from repro.profile import is_enabled, profiled, registry
from repro.tensor import Tensor
from repro.train.callbacks import Callback
from repro.train.metrics import evaluate
from repro.train.trainer import History, Trainer

__all__ = ["ParallelTrainer"]


class ParallelTrainer(Trainer):
    """Train with ``N`` lockstep worker processes sharing the weight plane.

    Drop-in alongside :class:`~repro.train.Trainer`: same constructor
    arguments plus the parallel knobs, same :class:`History`, same callback
    stream (callbacks, validation, scheduling, and the optimizer run on
    rank 0 only).  ``fit`` accepts the same ``DataLoader`` (or
    ``AugmentedLoader``); the loader's ``(seed, epoch)``-pure
    ``epoch_order`` is what lets every rank derive the global batch
    sequence independently.  ``drop_last`` semantics are forced: a trailing
    partial batch would change the reduction tree shape.

    Parameters
    ----------
    workers:
        Rank count; a power of two (required by the reduction-tree
        alignment argument).  ``1`` is the single-process equivalent the
        cross-worker-count identity tests compare against.
    microbatch:
        Microbatch size ``m``.  Default: ``batch_size // workers``.  Bit
        identity across worker counts requires the *same* ``m``.
    prefetch:
        Per-rank input-pipeline depth (microbatches prepared ahead on a
        background thread; 2 = double buffering).  ``0`` disables
        prefetching; contents are identical either way.
    barrier_timeout:
        Seconds a rank waits at a step barrier before declaring the fleet
        wedged (a crashed peer breaks the barrier immediately).
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn=None,
        schedule: Schedule | None = None,
        callbacks: list[Callback] | None = None,
        patience: int | None = None,
        stop_on_divergence: bool = True,
        sanitize: bool | None = None,
        workers: int = 2,
        microbatch: int | None = None,
        prefetch: int = 2,
        barrier_timeout: float = 120.0,
    ):
        super().__init__(
            model,
            optimizer,
            loss_fn=loss_fn,
            schedule=schedule,
            callbacks=callbacks,
            patience=patience,
            stop_on_divergence=stop_on_divergence,
            sanitize=sanitize,
        )
        workers = int(workers)
        if workers < 1 or workers & (workers - 1):
            raise ValueError(
                f"workers must be a power of two >= 1 (tree alignment), got {workers}"
            )
        if microbatch is not None and microbatch < 1:
            raise ValueError(f"microbatch must be positive, got {microbatch}")
        if prefetch < 0:
            raise ValueError(f"prefetch must be >= 0, got {prefetch}")
        self.workers = workers
        self.microbatch = None if microbatch is None else int(microbatch)
        self.prefetch = int(prefetch)
        self.barrier_timeout = float(barrier_timeout)
        # Per-rank (compute, barrier-wait) seconds, filled after fit().
        self.rank_compute_seconds: list[float] = []
        self.rank_wait_seconds: list[float] = []
        self._arena: SharedArena | None = None
        self._barrier = None
        self._reduced: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #

    def _resolve_spec(self, train_loader):
        """Unpack the loader into (dataset, B, shuffle, seed, transform, aug_seed)."""
        transform = None
        aug_seed = 0
        loader = train_loader
        if isinstance(loader, AugmentedLoader):
            transform = loader.transform
            aug_seed = loader.seed
            loader = loader.loader
        if not isinstance(loader, DataLoader):
            raise TypeError(
                "ParallelTrainer.fit needs a DataLoader (or AugmentedLoader "
                f"over one), got {type(train_loader).__name__}"
            )
        ds = loader.dataset
        if ds.images.dtype != np.float32:
            raise TypeError(
                f"dataset {ds.name!r} images are {ds.images.dtype}; "
                "the model boundary is float32"
            )
        return loader, ds, loader.batch_size, transform, aug_seed

    def _geometry(self, batch_size: int, n_examples: int) -> tuple[int, int, int, int]:
        """Validate and return ``(m, M, q, steps_per_epoch)``."""
        m = self.microbatch if self.microbatch is not None else batch_size // self.workers
        if m < 1:
            raise ValueError(
                f"batch_size {batch_size} too small for {self.workers} workers; "
                "pass an explicit microbatch"
            )
        if batch_size % m:
            raise ValueError(f"batch_size {batch_size} not divisible by microbatch {m}")
        n_micro = batch_size // m
        if n_micro % self.workers:
            raise ValueError(
                f"microbatch count {n_micro} not divisible by {self.workers} workers"
            )
        steps = n_examples // batch_size
        if steps < 1:
            raise ValueError(
                f"dataset ({n_examples} examples) smaller than one global batch "
                f"({batch_size})"
            )
        return m, n_micro, n_micro // self.workers, steps

    # ------------------------------------------------------------------ #
    # per-rank work
    # ------------------------------------------------------------------ #

    def _microbatch_stream(
        self, rank, epoch, order, steps, batch_size, m, q, ds, transform, aug_seed
    ):
        """Yield this rank's ``(x, y)`` microbatches for one epoch, in order.

        Augmentation draws come from a generator seeded purely by
        ``(aug_seed, epoch, step, global microbatch index)``, so they are
        independent of worker count and of prefetch timing.
        """
        for step in range(steps):
            base = step * batch_size
            for j in range(q):
                g = rank * q + j  # global microbatch index within the batch
                idx = order[base + g * m : base + (g + 1) * m]
                x = ds.images[idx]
                y = ds.labels[idx]
                if transform is not None:
                    rng = np.random.default_rng((aug_seed, epoch, step, g))
                    x = transform(x, rng)
                yield x, y

    def _open_stream(self, *args):
        """The (optionally prefetching) microbatch iterator for one epoch."""
        stream = self._microbatch_stream(*args)
        if self.prefetch > 0:
            return iter(PrefetchLoader(stream, depth=self.prefetch))
        return stream

    def _write_partial(self, rank: int, stream, q: int, arena: SharedArena) -> None:
        """Tree-sum this rank's ``q`` microbatch gradients into its slot."""
        plane_size = arena.plane_size
        losses: list[float] = []

        def leaf(_i: int) -> np.ndarray:
            x, y = next(stream)
            self.model.zero_grad()
            logits = self.model(Tensor(x))
            loss = self.loss_fn(logits, y)
            loss.backward()
            losses.append(loss.item())
            flat = np.zeros(plane_size, dtype=np.float32)
            for p in self.model.parameters():
                if p.grad is not None:
                    seg = flat[p.base_index : p.base_index + p.size]
                    np.copyto(seg.reshape(p.shape), p.grad)
            return flat

        tree_sum_range(q, leaf, out=arena.grads[rank])
        arena.losses[rank] = tree_sum_scalars(losses)

    def _make_fence(self, arena: SharedArena, rank: int):
        """The per-rank arena write-fence, or ``None`` outside sanitize mode.

        The fence CRC-stamps this rank's SharedArena data regions at the
        two barrier transitions of every step (runtime mirror of static
        rule RPA011); see :class:`repro.analyze.sanitize.ArenaWriteFence`.
        """
        if not self.sanitize:
            return None
        from repro.analyze.sanitize import ArenaWriteFence

        return ArenaWriteFence(arena, rank)

    def _sync(self, rank: int, arena: SharedArena) -> None:
        """Barrier with wait-time accounting and crash propagation."""
        t0 = time.perf_counter()
        try:
            self._barrier.wait(self.barrier_timeout)
        except threading.BrokenBarrierError:
            detail = (
                "a worker reported an error"
                if arena.flag(SharedArena.CTRL_ABORT)
                else "a worker crashed or timed out"
            )
            raise RuntimeError(f"data-parallel barrier broke: {detail}") from None
        arena.timers[rank, 1] += time.perf_counter() - t0

    # ------------------------------------------------------------------ #
    # child process
    # ------------------------------------------------------------------ #

    def _child_main(
        self, rank, loader, epochs, steps, batch_size, m, q, ds, transform, aug_seed
    ):  # pragma: no cover - runs in a forked child
        arena = self._arena
        fence = self._make_fence(arena, rank)
        rc = 0
        try:
            self.model.train()
            for epoch in range(epochs):
                order = loader.epoch_order(epoch)
                stream = self._open_stream(
                    rank, epoch, order, steps, batch_size, m, q, ds, transform, aug_seed
                )
                try:
                    for _step in range(steps):
                        t0 = time.perf_counter()
                        self._write_partial(rank, stream, q, arena)
                        arena.timers[rank, 0] += time.perf_counter() - t0
                        if fence is not None:
                            fence.seal_compute()
                        self._sync(rank, arena)  # grads ready
                        self._sync(rank, arena)  # weights + control updated
                        if fence is not None:
                            fence.open_compute()
                        if arena.flag(SharedArena.CTRL_STOP):
                            break
                finally:
                    if hasattr(stream, "close"):
                        stream.close()
                self._sync(rank, arena)  # epoch boundary (rank 0 validates)
                if arena.flag(SharedArena.CTRL_STOP):
                    break
        except BaseException:
            arena.set_flag(SharedArena.CTRL_ABORT)
            try:
                self._barrier.abort()
            except Exception:
                pass
            traceback.print_exc()
            rc = 1
        finally:
            sys.stderr.flush()
        # Exit without Python-level cleanup: the child's parameters still
        # view the shared plane, so closing the mapping here (or letting
        # SharedMemory.__del__ try) would just raise BufferError noise —
        # the kernel unmaps at process exit, and rank 0 owns the unlink.
        # os._exit also skips inherited atexit machinery (profiler
        # emitters, resource trackers) the child does not own.
        os._exit(rc)

    # ------------------------------------------------------------------ #
    # rank 0
    # ------------------------------------------------------------------ #

    def fit(
        self,
        train_loader: DataLoader,
        val_data: Dataset | DataLoader,
        epochs: int,
        verbose: bool = False,
    ) -> History:
        """Train for up to ``epochs`` epochs across ``self.workers`` ranks."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if not parallel_supported():
            raise RuntimeError(
                "ParallelTrainer requires the 'fork' start method "
                "(POSIX); use Trainer on this platform"
            )
        loader, ds, batch_size, transform, aug_seed = self._resolve_spec(train_loader)
        m, n_micro, q, steps = self._geometry(batch_size, len(ds))
        plane = self.model.weight_plane
        if plane is None:
            raise RuntimeError("model must be finalized before training")

        for cb in self.callbacks:
            cb.on_train_begin(self)

        ctx = multiprocessing.get_context("fork")
        arena = SharedArena(plane.size, self.workers)
        self._arena = arena
        self._barrier = ctx.Barrier(self.workers)
        self._reduced = np.empty(arena.plane_size, dtype=np.float32)
        procs: list = []
        failed: Exception | None = None
        try:
            # Move the plane into the arena *before* forking so children
            # inherit parameters that already view shared memory, then
            # refresh optimizer-cached views (DropBack's direct path).
            adopt_plane(self.model, arena.plane)
            self.optimizer.rebind_plane()

            for rank in range(1, self.workers):
                proc = ctx.Process(
                    target=self._child_main,
                    args=(rank, loader, epochs, steps, batch_size, m, q, ds,
                          transform, aug_seed),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)

            self._rank0_loop(
                loader, val_data, epochs, steps, batch_size, m, n_micro, q, ds,
                transform, aug_seed, arena, verbose,
            )
        except BaseException as exc:
            failed = exc
            arena.set_flag(SharedArena.CTRL_ABORT)
            try:
                self._barrier.abort()
            except Exception:
                pass
            raise
        finally:
            self._teardown(arena, procs, raising=failed is not None)

        for cb in self.callbacks:
            cb.on_train_end(self)
        return self.history

    def _rank0_loop(
        self, loader, val_data, epochs, steps, batch_size, m, n_micro, q, ds,
        transform, aug_seed, arena, verbose,
    ) -> None:
        epochs_since_best = 0
        scale = np.float32(n_micro)
        fence = self._make_fence(arena, 0)
        for epoch in range(epochs):
            epoch_start = time.perf_counter()
            if self.schedule is not None:
                self.optimizer.lr = self.schedule(epoch)
            for cb in self.callbacks:
                cb.on_epoch_begin(self, epoch)

            self.model.train()
            order = loader.epoch_order(epoch)
            stream = self._open_stream(
                0, epoch, order, steps, batch_size, m, q, ds, transform, aug_seed
            )
            losses: list[float] = []
            try:
                for _step in range(steps):
                    t0 = time.perf_counter()
                    with profiled("parallel.compute"):
                        self._write_partial(0, stream, q, arena)
                    arena.timers[0, 0] += time.perf_counter() - t0
                    if fence is not None:
                        fence.seal_compute()
                    self._sync(0, arena)  # all partials written
                    if arena.flag(SharedArena.CTRL_ABORT):
                        raise RuntimeError("a data-parallel worker failed")

                    # Rank-ordered deterministic reduce, then one optimizer
                    # step — DropBack's selection runs exactly here, once,
                    # against the global gradient; its plane commit is the
                    # broadcast.
                    with profiled("parallel.reduce"):
                        tree_sum(list(arena.grads), out=self._reduced)
                        np.divide(self._reduced, scale, out=self._reduced)
                    self.optimizer.load_flat_grad(self._reduced)
                    for cb in self.callbacks:
                        cb.on_backward_end(self, self.global_step)
                    with profiled("trainer.optimizer_step"):
                        self.optimizer.step()

                    loss_val = tree_sum_scalars(arena.losses) / n_micro
                    losses.append(loss_val)
                    if self.stop_on_divergence and not np.isfinite(loss_val):
                        self.history.diverged = True
                        arena.set_flag(SharedArena.CTRL_DIVERGED)
                        arena.set_flag(SharedArena.CTRL_STOP)
                    else:
                        for cb in self.callbacks:
                            cb.on_step_end(self, self.global_step, loss_val)
                        self.global_step += 1
                    self._sync(0, arena)  # release workers into the next step
                    if fence is not None:
                        fence.open_compute()
                    if arena.flag(SharedArena.CTRL_STOP):
                        break
            finally:
                if hasattr(stream, "close"):
                    stream.close()

            if not self.history.diverged:
                with profiled("trainer.evaluate"):
                    val_acc = evaluate(self.model, val_data)
                logs: dict = {
                    "epoch": epoch,
                    "train_loss": float(np.mean(losses)) if losses else float("nan"),
                    "val_accuracy": val_acc,
                    "lr": self.optimizer.lr,
                }
                total_swaps = getattr(self.optimizer, "total_swaps", None)
                if total_swaps is not None:
                    logs["total_swaps"] = int(total_swaps)
                self.history.train_loss.append(logs["train_loss"])
                self.history.val_accuracy.append(val_acc)
                self.history.lr.append(self.optimizer.lr)
                self.history.epoch_seconds.append(time.perf_counter() - epoch_start)

                if val_acc > self.history.best_val_accuracy:
                    self.history.best_val_accuracy = val_acc
                    self.history.best_epoch = epoch
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1

                for cb in self.callbacks:
                    cb.on_epoch_end(self, epoch, logs)
                if verbose:
                    print(
                        f"epoch {epoch:3d}  loss {logs['train_loss']:.4f}  "
                        f"val_acc {val_acc:.4f}  lr {self.optimizer.lr:.4f}  "
                        f"workers {self.workers}"
                    )

                if self.patience is not None and epochs_since_best >= self.patience:
                    self.history.stopped_early = True
                    arena.set_flag(SharedArena.CTRL_STOP)
                if epoch == epochs - 1:
                    arena.set_flag(SharedArena.CTRL_STOP)

            self._sync(0, arena)  # epoch boundary: workers read the verdict
            if arena.flag(SharedArena.CTRL_STOP):
                break

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #

    def _teardown(self, arena: SharedArena, procs, raising: bool) -> None:
        child_error = False
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
                child_error = True
            elif proc.exitcode:
                child_error = True

        self.rank_compute_seconds = [float(s) for s in arena.timers[:, 0]]
        self.rank_wait_seconds = [float(s) for s in arena.timers[:, 1]]
        if is_enabled():
            for rank in range(self.workers):
                registry.record(
                    f"parallel.rank{rank}.compute", self.rank_compute_seconds[rank]
                )
                registry.record(
                    f"parallel.rank{rank}.wait", self.rank_wait_seconds[rank]
                )

        # Re-home the plane onto private memory before the arena unmaps, so
        # the model (and any further single-process use of it) stays valid.
        restored = np.empty(arena.plane_size, dtype=np.float32)
        adopt_plane(self.model, restored)
        self.optimizer.rebind_plane()
        arena.destroy()
        self._arena = None
        self._barrier = None
        self._reduced = None

        if child_error and not raising:
            raise RuntimeError(
                "a data-parallel worker exited abnormally (see stderr above)"
            )
