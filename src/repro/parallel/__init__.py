"""Data-parallel training over the shared weight plane.

The flat weight plane (PR 2) makes a worker's entire model one contiguous
float32 buffer; this package turns that into multi-core training:

* :class:`SharedArena` — one ``multiprocessing.shared_memory`` segment
  holding the plane, per-rank gradient slots, loss/timer slots, and
  control flags;
* :func:`tree_sum` / :func:`tree_sum_range` — the canonical fixed-order
  pairwise reduction that keeps gradient summation bit-reproducible and
  identical across worker counts;
* :class:`PrefetchLoader` — background-thread double-buffered input
  pipeline;
* :class:`ParallelTrainer` — the lockstep N-process trainer; DropBack's
  top-k selection runs once per step on rank 0 against the reduced global
  gradient, and the shared plane is the broadcast.

See ``docs/parallel.md`` for the architecture and determinism contract.

This package is the designated home for process/shared-memory lifecycle
code: lint rule RPA008 flags direct ``multiprocessing`` use elsewhere.
"""

from repro.parallel.pipeline import PrefetchLoader
from repro.parallel.reduce import tree_sum, tree_sum_range, tree_sum_scalars
from repro.parallel.shm import SharedArena, adopt_plane, parallel_supported
from repro.parallel.trainer import ParallelTrainer

__all__ = [
    "ParallelTrainer",
    "PrefetchLoader",
    "SharedArena",
    "adopt_plane",
    "parallel_supported",
    "tree_sum",
    "tree_sum_range",
    "tree_sum_scalars",
]
