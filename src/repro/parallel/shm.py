"""Shared-memory arena for data-parallel training.

The flat weight plane (``Module.finalize``) makes a worker's entire model a
single contiguous float32 buffer, so data parallelism needs exactly one
shared mapping: this module allocates a single
:class:`multiprocessing.shared_memory.SharedMemory` segment and partitions
it into the training-time buffers every rank needs —

========  =======================  ==========================================
region    dtype/shape              role
========  =======================  ==========================================
plane     float32 ``[P]``          the weight plane itself (rank 0 writes,
                                   all ranks read — the "broadcast")
grads     float32 ``[N, P]``       per-rank partial gradient sums
losses    float64 ``[N]``          per-rank partial loss sums
timers    float64 ``[N, 2]``       per-rank (compute, barrier-wait) seconds
control   int64 ``[4]``            stop / diverged / abort flags
========  =======================  ==========================================

Process model: the arena is created by rank 0 *before* forking, so children
inherit the mapping (and the open file descriptor) directly — no attach-by-
name, which keeps :mod:`multiprocessing.resource_tracker` from double-
registering the segment.  Rank 0 owns the lifecycle: :func:`adopt_plane`
moves the model's weight plane into the arena before the fork and back onto
a private heap buffer before :meth:`destroy` unmaps it.

Write discipline: ``plane``, ``grads`` and ``losses`` are *data* regions
with a barrier-phased ownership protocol — within a step, each rank writes
only its own ``grads``/``losses`` slots during the compute phase, and only
rank 0 writes ``plane`` during the update phase.  ``timers``/``control``
are monitoring regions outside the protocol.  Static rule RPA011 checks
that every data-region write is fenced by a barrier, and
:class:`repro.analyze.sanitize.ArenaWriteFence` enforces the same phases
at runtime under ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import gc
import multiprocessing
import sys
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArena", "adopt_plane", "parallel_supported"]


def parallel_supported() -> bool:
    """Whether the platform supports the fork-based parallel trainer.

    Children must inherit the arena mapping, the barrier, and the (closured)
    trainer state without pickling, so the ``fork`` start method is
    required — available on POSIX, not on Windows.
    """
    if sys.platform == "win32":
        return False
    return "fork" in multiprocessing.get_all_start_methods()


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


class SharedArena:
    """One shared segment holding every cross-rank buffer (see module docs).

    Parameters
    ----------
    plane_size:
        Number of float32 elements in the model's weight plane.
    workers:
        Rank count ``N``; sizes the gradient/loss/timer regions.
    """

    # control-word indices
    CTRL_STOP = 0       # training is over (epochs done / early stop / divergence)
    CTRL_DIVERGED = 1   # loss went NaN/inf on rank 0
    CTRL_ABORT = 2      # some rank hit an exception; everyone bail out
    _CTRL_SLOTS = 4

    def __init__(self, plane_size: int, workers: int):
        if plane_size <= 0:
            raise ValueError(f"plane_size must be positive, got {plane_size}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.plane_size = int(plane_size)
        self.workers = int(workers)

        off = 0
        self._plane_off = off
        off = _align8(off + 4 * self.plane_size)
        self._grads_off = off
        off = _align8(off + 4 * self.workers * self.plane_size)
        self._losses_off = off
        off += 8 * self.workers
        self._timers_off = off
        off += 8 * self.workers * 2
        self._control_off = off
        off += 8 * self._CTRL_SLOTS

        self.shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=off
        )
        self._map_views()
        self.control[:] = 0

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def _region(self, offset: int, dtype, count: int) -> np.ndarray:
        return np.frombuffer(self.shm.buf, dtype=dtype, count=count, offset=offset)

    def _map_views(self) -> None:
        n, p = self.workers, self.plane_size
        self.plane = self._region(self._plane_off, np.float32, p)
        self.grads = self._region(self._grads_off, np.float32, n * p).reshape(n, p)
        self.losses = self._region(self._losses_off, np.float64, n)
        self.timers = self._region(self._timers_off, np.float64, n * 2).reshape(n, 2)
        self.control = self._region(self._control_off, np.int64, self._CTRL_SLOTS)

    def _drop_views(self) -> None:
        self.plane = self.grads = self.losses = self.timers = self.control = None

    # ------------------------------------------------------------------ #
    # flags
    # ------------------------------------------------------------------ #

    def set_flag(self, idx: int, value: bool = True) -> None:
        self.control[idx] = 1 if value else 0

    def flag(self, idx: int) -> bool:
        return bool(self.control[idx])

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _close(self) -> None:
        """Unmap, tolerating exported views that outlive the arena.

        ``SharedMemory.close`` refuses to unmap while ndarray views exist;
        after :func:`adopt_plane` has moved the model off the arena only our
        own region views remain, but a caller-held reference (a debugger, a
        stray callback) must degrade to "freed at process exit", not crash
        training teardown.
        """
        self._drop_views()
        # Autograd graphs are cyclic, so the last step's tensors — which
        # hold plane views — may be awaiting garbage collection rather than
        # refcount release; collect before unmapping.
        gc.collect()
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - depends on caller refs
            pass

    def destroy(self) -> None:
        """Owner-side teardown: unmap and remove the segment (rank 0 only)."""
        if self.shm is None:
            return
        self._close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass
        self.shm = None

    def child_close(self) -> None:
        """Child-side teardown: unmap only; the segment belongs to rank 0."""
        if self.shm is None:
            return
        self._close()
        self.shm = None


def adopt_plane(model, plane: np.ndarray) -> None:
    """Re-home a finalized model's weight plane onto ``plane`` (values kept).

    Every parameter is re-attached as a zero-copy view at its existing
    ``base_index`` offset, exactly mirroring ``Module.finalize``'s layout —
    so ``repro.analyze.sanitize.check_plane_integrity`` holds on the new
    buffer, and optimizers that cache plane views (DropBack's direct path)
    can re-resolve against ``model.weight_plane`` afterwards.

    Used in both directions: onto the shared arena before forking workers,
    and back onto a private heap buffer before the arena is unmapped.
    """
    if not model.is_finalized:
        raise RuntimeError("model must be finalized before adopting a plane")
    params = model.parameters()
    total = sum(p.size for p in params)
    if plane.dtype != np.float32 or plane.ndim != 1 or plane.size != total:
        raise ValueError(
            f"plane must be float32[{total}], got {plane.dtype}{list(plane.shape)}"
        )
    for p in params:
        view = plane[p.base_index : p.base_index + p.size].reshape(p.shape)
        # _attach_plane copies the parameter's current values into the view.
        p._attach_plane(view)
    model._plane = plane
