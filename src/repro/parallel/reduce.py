"""Deterministic pairwise tree reduction.

Floating-point addition is not associative, so the *order* in which
per-microbatch gradients are combined is part of the numerical contract:
data-parallel training is only bit-reproducible — and only bit-identical
across worker counts — if every configuration sums the same leaves in the
same tree shape.

The canonical tree used throughout :mod:`repro.parallel` splits a span of
``n`` leaves at ``mid = n // 2`` and recurses::

    T(a_0 .. a_{n-1}) = T(a_0 .. a_{mid-1}) + T(a_mid .. a_{n-1})

**Alignment property.**  If ``N`` is a power of two dividing ``n``, the top
``log2(N)`` levels of this tree split exactly on multiples of ``n / N``:
at every one of those levels the span length is ``2**(k-i) * (n/N)`` for
some ``i < k = log2(N)``, which is even, so ``mid`` lands on a block
boundary.  Each rank can therefore tree-sum its own contiguous block of
``n / N`` leaves locally, and a rank-ordered tree combine of the ``N``
partials reproduces the single-sequence tree **bitwise** — the basis for
the cross-worker-count identity tests in ``tests/test_parallel.py``.

Note that the common streaming alternative (an adjacent-pair / binary-carry
stack) does *not* have this property: for ``n = 6`` it yields
``((a0+a1)+(a2+a3)) + (a4+a5)`` as one sequence but
``((a0+a1)+a2) + ((a3+a4)+a5)`` when split across two ranks, which differ
in the last bit for generic float inputs.  Hence the explicit mid-split.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["tree_sum", "tree_sum_range", "tree_sum_scalars"]


def _tree(seq: Sequence[np.ndarray]) -> np.ndarray:
    n = len(seq)
    if n == 1:
        return seq[0]
    mid = n // 2
    return np.add(_tree(seq[:mid]), _tree(seq[mid:]))


def tree_sum(arrays: Sequence[np.ndarray], out: np.ndarray | None = None) -> np.ndarray:
    """Sum ``arrays`` with the canonical mid-split pairwise tree.

    Inputs are never mutated; internal nodes allocate.  Intended for the
    rank-combine on rank 0, where the operand count is the (small) worker
    count — use :func:`tree_sum_range` for long streaming reductions.
    """
    arrays = list(arrays)
    if not arrays:
        raise ValueError("tree_sum of an empty sequence")
    total = _tree(arrays)
    if out is None:
        # A length-1 input short-circuits to the operand itself; copy so the
        # caller always owns the result.
        return np.array(total, copy=True) if total is arrays[0] else total
    np.copyto(out, total)
    return out


def tree_sum_range(
    count: int,
    leaf: Callable[[int], np.ndarray],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Tree-sum ``leaf(0) .. leaf(count-1)`` with leaves produced on demand.

    Leaves are requested strictly in index order (depth-first left to
    right), so ``leaf`` may be an expensive sequential producer — e.g. "run
    forward/backward on microbatch ``i`` and return the flat gradient".
    ``leaf`` must return an array the reduction may consume (accumulation
    happens in place on returned buffers); at most ``O(log count)`` partial
    sums are held at once.

    Bitwise identical to ``tree_sum([leaf(i) for i in range(count)])``.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")

    def rec(lo: int, hi: int) -> np.ndarray:
        if hi - lo == 1:
            return leaf(lo)
        mid = lo + (hi - lo) // 2
        left = rec(lo, mid)
        right = rec(mid, hi)
        np.add(left, right, out=left)
        return left

    total = rec(0, count)
    if out is None:
        return total
    np.copyto(out, total)
    return out


def tree_sum_scalars(values: Sequence[float]) -> float:
    """Canonical tree sum over python/numpy scalars (same split rule).

    Used for loss aggregation so the reported global-batch loss is also
    bit-identical across worker counts, not just the gradients.
    """
    vals = list(values)
    if not vals:
        raise ValueError("tree_sum_scalars of an empty sequence")

    def rec(lo: int, hi: int) -> float:
        if hi - lo == 1:
            return float(vals[lo])
        mid = lo + (hi - lo) // 2
        return rec(lo, mid) + rec(mid, hi)

    return rec(0, len(vals))
