"""Declarative experiment configurations.

Each row of the paper's tables is a :class:`RunConfig`; a named experiment
(``"table1"``, ``"fig5"``, ...) is a list of them.  The runner in
:mod:`repro.experiments.runner` executes configs and logs results, giving a
programmatic counterpart to the bench harness::

    from repro.experiments import get_experiment, run_config
    for cfg in get_experiment("table1"):
        result = run_config(cfg, scale=0.2)

Configs are plain dataclasses so they serialize cleanly into the JSONL
experiment log.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Literal

__all__ = ["RunConfig", "get_experiment", "list_experiments", "EXPERIMENTS"]

Technique = Literal[
    "sgd", "dropback", "dropback-q8", "magnitude", "variational", "slimming",
    "gradual", "dsd",
]
DatasetName = Literal["mnist", "cifar"]
ModelName = Literal[
    "lenet-300-100", "mnist-100-100", "vgg-s-small", "densenet-tiny", "wrn-10-2",
    "lenet5", "lenet5-prelu",
]


@dataclass(frozen=True)
class RunConfig:
    """One training run of one technique on one model.

    ``compression`` is the weight-budget ratio for techniques that take one
    (ignored by ``sgd``).  ``paper_error`` records the number the paper
    reports for the corresponding full-scale row, when it exists.
    """

    name: str
    model: ModelName
    dataset: DatasetName
    technique: Technique = "dropback"
    compression: float = 1.0
    epochs: int = 8
    lr: float = 0.4
    freeze_epoch: int | None = None
    paper_error: float | None = None
    paper_compression: float | None = None

    def to_dict(self) -> dict:
        return asdict(self)


def _table1() -> list[RunConfig]:
    rows: list[RunConfig] = []
    for model, paper in (
        ("lenet-300-100", [(None, 0.0141, None), (5.33, 0.0151, 100), (13.33, 0.0178, 35),
                           (177.74, 0.0384, 40)]),
        ("mnist-100-100", [(None, 0.0170, None), (1.8, 0.0158, 5), (4.5, 0.0170, 5),
                           (60.0, 0.0378, 30)]),
    ):
        for comp, err, freeze in paper:
            technique = "sgd" if comp is None else "dropback"
            label = "baseline" if comp is None else f"dropback-{comp:g}x"
            rows.append(
                RunConfig(
                    name=f"{model}/{label}",
                    model=model,  # type: ignore[arg-type]
                    dataset="mnist",
                    technique=technique,  # type: ignore[arg-type]
                    compression=comp or 1.0,
                    paper_error=err,
                    paper_compression=comp,
                )
            )
    return rows


def _table3() -> list[RunConfig]:
    rows: list[RunConfig] = []
    nets: list[tuple[ModelName, dict]] = [
        ("vgg-s-small", {"baseline": 0.1008, "dropback-5x": 0.0990, "dropback-20x": 0.1349,
                         "variational": 0.1350, "magnitude-5x": 0.0942, "slimming": 0.1108}),
        ("densenet-tiny", {"baseline": 0.0648, "dropback-5x": 0.0586, "dropback-20x": 0.0942,
                           "variational": 0.90, "magnitude-5x": 0.0641, "slimming": 0.0565}),
        ("wrn-10-2", {"baseline": 0.0375, "dropback-5x": 0.0402,
                      "variational": 0.90, "magnitude-5x": 0.2652, "slimming": 0.1664}),
    ]
    for model, cells in nets:
        for label, err in cells.items():
            if label == "baseline":
                tech, comp = "sgd", 1.0
            elif label.startswith("dropback"):
                tech, comp = "dropback", float(label.split("-")[1].rstrip("x"))
            elif label.startswith("magnitude"):
                tech, comp = "magnitude", 5.0
            elif label == "variational":
                tech, comp = "variational", 3.4
            else:
                tech, comp = "slimming", 4.0
            rows.append(
                RunConfig(
                    name=f"{model}/{label}",
                    model=model,
                    dataset="cifar",
                    technique=tech,  # type: ignore[arg-type]
                    compression=comp,
                    epochs=5,
                    lr=0.1,
                    paper_error=err,
                )
            )
    return rows


def _ablation_zero() -> list[RunConfig]:
    return [
        RunConfig(
            name=f"mnist-100-100/{'zeroed' if zero else 'regen'}-{comp:g}x",
            model="mnist-100-100",
            dataset="mnist",
            technique="dropback",
            compression=comp,
            paper_error=None,
        )
        for comp in (2.0, 30.0, 60.0)
        for zero in (False, True)
    ]


def _ablation_freeze() -> list[RunConfig]:
    return [
        RunConfig(
            name=f"mnist-100-100/comp{comp:g}x-freeze{freeze or 'never'}",
            model="mnist-100-100",
            dataset="mnist",
            technique="dropback",
            compression=comp,
            freeze_epoch=freeze,
        )
        for comp in (4.5, 60.0)
        for freeze in (1, 3, None)
    ]


EXPERIMENTS: dict[str, list[RunConfig]] = {
    "table1": _table1(),
    "table3": _table3(),
    "ablation-zero": _ablation_zero(),
    "ablation-freeze": _ablation_freeze(),
}


def list_experiments() -> list[str]:
    """Names of the registered experiments."""
    return sorted(EXPERIMENTS)


def get_experiment(name: str) -> list[RunConfig]:
    """The config list for a registered experiment."""
    try:
        return list(EXPERIMENTS[name])
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(list_experiments())}"
        ) from None
