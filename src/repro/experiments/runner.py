"""Experiment runner: execute a :class:`RunConfig`, return structured results.

The runner owns model/dataset construction and technique dispatch, so the
same config can run at test scale (seconds) or near paper scale by turning
the ``scale`` knob.  Results optionally append to a JSONL experiment log
(:mod:`repro.utils.explog`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core import DropBack
from repro.data import DataLoader, Dataset, synth_cifar, synth_mnist
from repro.experiments.configs import RunConfig
from repro.models import (
    densenet_tiny,
    lenet5,
    lenet5_prelu,
    lenet_300_100,
    mnist_100_100,
    vgg_s,
    wrn_10_2,
)
from repro.optim import SGD, ConstantLR
from repro.prune import (
    DSD,
    GradualMagnitudePruning,
    MagnitudePruning,
    SlimmingSGD,
    make_variational,
    prune_channels,
    slimming_compression,
    vd_loss_fn,
    vd_sparsity,
)
from repro.quant import QuantizedDropBack
from repro.train import FreezeCallback, Trainer
from repro.utils.explog import ExperimentLogger

__all__ = ["RunResult", "run_config", "run_experiment"]


def _vgg_s_small():
    return vgg_s(fc_width=64, config=(16, "M", 32, "M", 64, 64, "M", 128, 128, "M"))


_MODEL_FACTORIES: dict[str, Callable] = {
    "lenet-300-100": lenet_300_100,
    "mnist-100-100": mnist_100_100,
    "vgg-s-small": _vgg_s_small,
    "densenet-tiny": densenet_tiny,
    "wrn-10-2": wrn_10_2,
    "lenet5": lenet5,
    "lenet5-prelu": lenet5_prelu,
}


@dataclass
class RunResult:
    """Outcome of one config run."""

    config: RunConfig
    val_error: float
    best_epoch: int
    achieved_compression: float
    diverged: bool

    def to_metrics(self) -> dict:
        return {
            "val_error": self.val_error,
            "best_epoch": self.best_epoch,
            "achieved_compression": self.achieved_compression,
            "diverged": self.diverged,
        }


def _datasets(kind: str, scale: float, seed: int) -> tuple[Dataset, Dataset]:
    if kind == "mnist":
        n = max(200, int(8000 * scale))
        return synth_mnist(n_train=n, n_test=max(100, n // 4), seed=seed)
    n = max(200, int(4000 * scale))
    return synth_cifar(n_train=n, n_test=max(100, n // 4), seed=seed, size=16)


def run_config(
    cfg: RunConfig,
    scale: float = 0.2,
    seed: int = 42,
    logger: ExperimentLogger | None = None,
    zero_untracked: bool = False,
) -> RunResult:
    """Execute one run configuration.

    Parameters
    ----------
    cfg:
        The run to execute.
    scale:
        Dataset-size multiplier relative to the default workload.
    seed:
        Model initialization seed.
    logger:
        Optional JSONL logger; the result is appended when given.
    zero_untracked:
        Forwarded to DropBack (for the zeroing ablation experiment).
    """
    if cfg.model not in _MODEL_FACTORIES:
        raise KeyError(f"unknown model {cfg.model!r}")
    data = _datasets(cfg.dataset, scale, seed=0)
    train, test = data
    model = _MODEL_FACTORIES[cfg.model]()
    loss_fn = None
    callbacks = []
    epochs = cfg.epochs
    achieved = 1.0

    if cfg.technique == "variational":
        model = make_variational(model)
    model.finalize(seed)

    if cfg.technique == "sgd":
        opt = SGD(model, lr=cfg.lr)
    elif cfg.technique in ("dropback", "dropback-q8"):
        k = max(1, int(round(model.num_parameters() / cfg.compression)))
        if cfg.technique == "dropback":
            opt = DropBack(model, k=k, lr=cfg.lr, zero_untracked=zero_untracked)
        else:
            opt = QuantizedDropBack(model, k=k, lr=cfg.lr, bits=8)
        achieved = opt.compression_ratio
        if cfg.freeze_epoch:
            callbacks.append(FreezeCallback(cfg.freeze_epoch))
    elif cfg.technique == "magnitude":
        opt = MagnitudePruning(model, lr=cfg.lr, prune_fraction=1 - 1 / cfg.compression)
        achieved = opt.compression_ratio
    elif cfg.technique == "gradual":
        opt = GradualMagnitudePruning(model, lr=cfg.lr,
                                      final_sparsity=1 - 1 / cfg.compression)
    elif cfg.technique == "dsd":
        opt = DSD(model, lr=cfg.lr, sparsity=1 - 1 / cfg.compression)
    elif cfg.technique == "variational":
        opt = SGD(model, lr=cfg.lr / 2)
        steps = max(1, len(train) // 64)
        loss_fn = vd_loss_fn(model, n_train=len(train), kl_weight=0.2,
                             warmup_steps=2 * steps)
    elif cfg.technique == "slimming":
        opt = SlimmingSGD(model, lr=cfg.lr, l1=1e-3)
    else:
        raise ValueError(f"unknown technique {cfg.technique!r}")

    trainer = Trainer(model, opt, loss_fn=loss_fn, schedule=ConstantLR(opt.lr),
                      callbacks=callbacks)
    hist = trainer.fit(DataLoader(train, 64, seed=1), test, epochs=epochs)

    if cfg.technique == "slimming" and not hist.diverged:
        prune_channels(model, 1 - 1 / cfg.compression)
        retrain = Trainer(model, SGD(model, lr=cfg.lr / 2), schedule=ConstantLR(cfg.lr / 2))
        hist = retrain.fit(DataLoader(train, 64, seed=2), test,
                           epochs=max(1, epochs // 2))
        achieved = slimming_compression(model)
    elif cfg.technique == "variational":
        achieved = 1.0 / max(1e-6, 1.0 - vd_sparsity(model))

    result = RunResult(
        config=cfg,
        val_error=hist.best_val_error,
        best_epoch=hist.best_epoch,
        achieved_compression=achieved,
        diverged=hist.diverged,
    )
    if logger is not None:
        logger.log(cfg.to_dict(), result.to_metrics())
    return result


def run_experiment(
    name: str,
    scale: float = 0.2,
    seed: int = 42,
    log_path: str | None = None,
) -> list[RunResult]:
    """Run every config of a registered experiment (optionally logging)."""
    from repro.experiments.configs import get_experiment

    logger = ExperimentLogger(log_path, name) if log_path else None
    results = []
    for cfg in get_experiment(name):
        zero = name == "ablation-zero" and "zeroed" in cfg.name
        results.append(run_config(cfg, scale=scale, seed=seed, logger=logger,
                                  zero_untracked=zero))
    return results
