"""Declarative experiment registry and runner."""

from repro.experiments.configs import (
    EXPERIMENTS,
    RunConfig,
    get_experiment,
    list_experiments,
)
from repro.experiments.runner import RunResult, run_config, run_experiment

__all__ = [
    "RunConfig",
    "RunResult",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run_config",
    "run_experiment",
]
