"""Op-level profiling primitives: registry, counters, timers, ``profiled``.

Design constraints (see docs/profiling.md):

* **Zero-cost when disabled.**  Profiling is off by default; every
  instrumented call checks one module-level flag (:func:`is_enabled`) and
  takes the un-instrumented path when it is False.  Numerics are never
  touched either way, so ``tests/test_determinism.py`` is bit-identical
  with profiling on or off.
* **Thread-safe.**  All registry mutation happens under a single lock;
  op records are aggregated in place (no per-event storage), so overhead
  stays O(1) per call and memory stays O(#distinct op names).
* **One vocabulary.**  An *op* (``OpStat``) aggregates wall time, call
  count, and bytes allocated; a *counter* is a bare integer tally
  (e.g. ``conv.workspace_hits``).  Both live in the same
  :class:`Registry` and serialize into the same perf report.
"""

from __future__ import annotations

import functools
import threading
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

__all__ = [
    "OpStat",
    "Registry",
    "registry",
    "enable",
    "disable",
    "is_enabled",
    "profiled",
    "add_counter",
    "snapshot",
    "reset",
]


@dataclass
class OpStat:
    """Aggregated cost of one named operation."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    bytes_allocated: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "bytes_allocated": self.bytes_allocated,
        }

    @staticmethod
    def from_dict(d: dict) -> "OpStat":
        return OpStat(
            name=d["name"],
            calls=int(d["calls"]),
            total_seconds=float(d["total_seconds"]),
            bytes_allocated=int(d["bytes_allocated"]),
        )


def _result_nbytes(result) -> int:
    """Bytes held by an op result (ndarray, Tensor, or neither)."""
    nbytes = getattr(result, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    data = getattr(result, "data", None)
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    return 0


@dataclass
class Registry:
    """Thread-safe store of op stats and named counters."""

    ops: dict[str, OpStat] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, name: str, seconds: float, nbytes: int = 0) -> None:
        """Fold one timed call into the aggregate for ``name``."""
        with self._lock:
            stat = self.ops.get(name)
            if stat is None:
                stat = self.ops[name] = OpStat(name)
            stat.calls += 1
            stat.total_seconds += seconds
            stat.bytes_allocated += nbytes

    def add_counter(self, name: str, value: int = 1) -> None:
        """Increment the named counter by ``value``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def snapshot(self) -> dict:
        """Deep-copied, JSON-ready view of the current state."""
        with self._lock:
            return {
                "ops": {name: stat.to_dict() for name, stat in self.ops.items()},
                "counters": dict(self.counters),
            }

    def reset(self) -> None:
        with self._lock:
            self.ops.clear()
            self.counters.clear()


#: The process-global registry all instrumentation records into.
registry = Registry()

# Module-level enable flag, wrapped in a list so ``enable``/``disable``
# mutate shared state that hot-path closures can read without a global
# statement.  Checked exactly once per instrumented call.
_ENABLED = [False]


def enable() -> None:
    """Turn on profiling (instrumented ops start recording)."""
    _ENABLED[0] = True


def disable() -> None:
    """Turn off profiling (instrumented ops revert to pass-through)."""
    _ENABLED[0] = False


def is_enabled() -> bool:
    return _ENABLED[0]


def add_counter(name: str, value: int = 1) -> None:
    """Increment a named counter iff profiling is enabled."""
    if _ENABLED[0]:
        registry.add_counter(name, value)


def snapshot() -> dict:
    """Snapshot the global registry (ops + counters)."""
    return registry.snapshot()


def reset() -> None:
    """Clear the global registry."""
    registry.reset()


class profiled:
    """Time a named op — usable as a decorator *or* a context manager.

    As a decorator::

        @profiled("conv2d.forward")
        def conv2d(...): ...

    As a context manager (for timing a region inside a function)::

        with profiled("dropback.select"):
            mask = selector.select(scores, k)

    When profiling is disabled the decorator adds a single flag check per
    call and the context manager is a no-op; nothing is recorded.  Wrapped
    functions keep their metadata (``functools.wraps``) and exceptions
    propagate unchanged (the call is still counted so hot-spot tables
    reflect attempted work).
    """

    __slots__ = ("name", "_t0")

    def __init__(self, name: str):
        self.name = name
        self._t0: float | None = None

    # -- decorator form ------------------------------------------------ #

    def __call__(self, fn):
        name = self.name

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _ENABLED[0]:
                return fn(*args, **kwargs)
            t0 = perf_counter()
            try:
                result = fn(*args, **kwargs)
            except BaseException:
                registry.record(name, perf_counter() - t0, 0)
                raise
            registry.record(name, perf_counter() - t0, _result_nbytes(result))
            return result

        return wrapper

    # -- context-manager form ------------------------------------------ #

    def __enter__(self) -> "profiled":
        self._t0 = perf_counter() if _ENABLED[0] else None
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._t0 is not None:
            registry.record(self.name, perf_counter() - self._t0, 0)
            self._t0 = None
        return False
