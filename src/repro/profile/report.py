"""Machine-readable performance reports.

A :class:`PerfReport` freezes a registry snapshot (per-op wall time, call
counts, bytes) plus run metadata into a JSON document with a versioned
schema.  Reports are written as ``perf_<name>.json`` next to the human
bench tables in ``benchmarks/results/`` so CI can archive them and
``scripts/check_perf_report.py`` can diff two runs for regressions.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.profile.core import OpStat, registry

__all__ = ["PerfReport", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1


@dataclass
class PerfReport:
    """One profiling run, ready to serialize.

    ``ops`` maps op name to its :class:`OpStat`; ``counters`` holds bare
    tallies; ``meta`` is free-form run context (config name, scale, ...).
    """

    name: str
    ops: dict[str, OpStat] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    created: float = field(default_factory=time.time)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_registry(cls, name: str, meta: dict | None = None, reg=None) -> "PerfReport":
        """Snapshot the (global by default) registry into a report."""
        snap = (reg or registry).snapshot()
        return cls(
            name=name,
            ops={k: OpStat.from_dict(v) for k, v in snap["ops"].items()},
            counters=snap["counters"],
            meta=dict(meta or {}),
        )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "created": self.created,
            "platform": platform.platform(),
            "meta": self.meta,
            "ops": {k: v.to_dict() for k, v in sorted(self.ops.items())},
            "counters": dict(sorted(self.counters.items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, d: dict) -> "PerfReport":
        if d.get("schema_version") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported perf-report schema: {d.get('schema_version')!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        return cls(
            name=d["name"],
            ops={k: OpStat.from_dict(v) for k, v in d.get("ops", {}).items()},
            counters={k: int(v) for k, v in d.get("counters", {}).items()},
            meta=dict(d.get("meta", {})),
            created=float(d.get("created", 0.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "PerfReport":
        return cls.from_dict(json.loads(text))

    def write(self, path: str | Path) -> Path:
        """Write the report as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "PerfReport":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #

    @property
    def total_seconds(self) -> float:
        return sum(op.total_seconds for op in self.ops.values())

    def hotspots(self, limit: int | None = None) -> list[OpStat]:
        """Ops sorted by descending wall time."""
        ranked = sorted(self.ops.values(), key=lambda s: -s.total_seconds)
        return ranked if limit is None else ranked[:limit]

    def hotspot_table(self, limit: int | None = 20) -> str:
        """Human-readable per-op hot-spot table (sorted by wall time)."""
        from repro.utils import format_table

        total = self.total_seconds or 1.0
        rows = []
        for op in self.hotspots(limit):
            mean_us = 1e6 * op.total_seconds / max(op.calls, 1)
            rows.append(
                [
                    op.name,
                    f"{op.calls:,}",
                    f"{op.total_seconds * 1e3:,.1f}",
                    f"{mean_us:,.1f}",
                    f"{op.bytes_allocated / 1e6:,.1f}",
                    f"{op.total_seconds / total:.1%}",
                ]
            )
        table = format_table(
            ["op", "calls", "total ms", "mean us", "MB alloc", "share"], rows
        )
        if self.counters:
            counter_rows = [[k, f"{v:,}"] for k, v in sorted(self.counters.items())]
            table += "\n\ncounters\n" + format_table(["counter", "value"], counter_rows)
        return table
