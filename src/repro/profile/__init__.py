"""Op-level instrumentation: counters, timers, and perf reports.

The measurement substrate for every optimisation PR: the tensor engine's
hot paths and the DropBack optimizer phases are wrapped in
:class:`profiled` scopes, the :class:`~repro.train.ProfilerCallback`
traces training steps and epochs, and :class:`PerfReport` serializes the
result as ``perf_*.json`` for CI to archive and diff.

Profiling is **off by default** and zero-cost when disabled — a single
module-level flag is checked per instrumented call, and numerics are
identical either way (``tests/test_determinism.py`` pins this).

Quickstart::

    from repro import profile

    profile.enable()
    ...  # run training
    report = profile.PerfReport.from_registry("my-run")
    print(report.hotspot_table())
    profile.disable()
"""

from repro.profile.core import (
    OpStat,
    Registry,
    add_counter,
    disable,
    enable,
    is_enabled,
    profiled,
    registry,
    reset,
    snapshot,
)
from repro.profile.report import SCHEMA_VERSION, PerfReport

__all__ = [
    "OpStat",
    "Registry",
    "registry",
    "enable",
    "disable",
    "is_enabled",
    "profiled",
    "add_counter",
    "snapshot",
    "reset",
    "PerfReport",
    "SCHEMA_VERSION",
]
