"""Inference with on-the-fly weight regeneration (the accelerator view)."""

from repro.infer.engine import InferenceTraffic, RegeneratingInferenceEngine

__all__ = ["RegeneratingInferenceEngine", "InferenceTraffic"]
