"""Inference with on-the-fly weight regeneration.

The accelerator the paper sketches never stores untracked weights: at
inference, each layer's weight block is *materialized on demand* — the
xorshift unit regenerates the initialization values, the k tracked values
are fetched from the small on-chip weight memory and scattered over them —
used for the layer's arithmetic, and discarded.

:class:`RegeneratingInferenceEngine` simulates exactly that on top of a
sparse checkpoint's content (seed + tracked indices/values):

* for :class:`~repro.nn.Sequential` models it streams layer by layer, so
  the peak resident weight count is ``max_layer_weights + k`` instead of
  the full model;
* for arbitrary module graphs it materializes per top-level submodule;
* a traffic report counts tracked-weight fetches and regenerations per
  forward pass, feeding the same :class:`~repro.energy.EnergyModel` as
  training.

Outputs are bit-identical to running the trained dense model (verified in
the test suite), because regeneration is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import DropBack
from repro.nn import Module, Parameter, Sequential
from repro.optim.base import AccessCounter
from repro.tensor import Tensor, no_grad

__all__ = ["RegeneratingInferenceEngine", "InferenceTraffic"]


@dataclass
class InferenceTraffic:
    """Weight traffic of one forward pass."""

    tracked_fetches: int
    regenerations: int
    peak_resident_weights: int

    def as_counter(self) -> AccessCounter:
        """View as an AccessCounter for the energy model."""
        return AccessCounter(
            weight_reads=self.tracked_fetches,
            regenerations=self.regenerations,
            steps=1,
        )


class RegeneratingInferenceEngine:
    """Run inference storing only the tracked weights.

    Parameters
    ----------
    model:
        A finalized model *architecture*.  Its current weight values are
        ignored; weights are materialized from (seed, tracked set).
    tracked_indices, tracked_values:
        The sparse checkpoint content: global flat indices and trained
        values of the tracked weights.
    """

    def __init__(
        self,
        model: Module,
        tracked_indices: np.ndarray,
        tracked_values: np.ndarray,
    ):
        if not model.is_finalized:
            raise RuntimeError("model must be finalized (it defines the seed/index map)")
        tracked_indices = np.asarray(tracked_indices, dtype=np.int64)
        tracked_values = np.asarray(tracked_values, dtype=np.float32)
        if tracked_indices.shape != tracked_values.shape:
            raise ValueError("indices and values must have matching shapes")
        if tracked_indices.size and tracked_indices.max() >= model.num_parameters():
            raise ValueError("tracked index out of range for this model")
        self.model = model
        self.seed = model.seed
        order = np.argsort(tracked_indices)
        self._indices = tracked_indices[order]
        self._values = tracked_values[order]
        self.last_traffic: InferenceTraffic | None = None
        self.resident = False

    @classmethod
    def from_optimizer(cls, model: Module, optimizer: DropBack) -> "RegeneratingInferenceEngine":
        """Build directly from a trained DropBack optimizer's tracked set."""
        mask = optimizer.tracked_mask
        if mask is None:
            raise RuntimeError("optimizer has no tracked set yet")
        if optimizer._fixed:
            raise ValueError("engine requires include_nonprunable=True optimizers")
        flat = np.concatenate([p.data.reshape(-1) for _, p in optimizer._prunable])
        idx = np.flatnonzero(mask)
        return cls(model, idx, flat[idx])

    # ------------------------------------------------------------------ #

    def _materialize(self, param: Parameter) -> tuple[np.ndarray, int, int]:
        """Regenerate one parameter block and overlay its tracked values.

        Returns ``(weights, n_tracked, n_regenerated)``.
        """
        lo = param.base_index
        hi = lo + param.size
        block = param.initializer.regenerate(self.seed, lo, param.shape).reshape(-1)
        start, stop = np.searchsorted(self._indices, [lo, hi])
        sel = slice(start, stop)
        block[self._indices[sel] - lo] = self._values[sel]
        n_tracked = stop - start
        return block.reshape(param.shape), int(n_tracked), param.size - int(n_tracked)

    def materialize_resident(self, zero_untracked: bool = False) -> InferenceTraffic:
        """Materialize the full weight plane once and leave it resident.

        The serving path: regenerate every untracked weight (or zero it,
        for connectivity-only checkpoints) and scatter the tracked values,
        writing through the flat weight plane in one pass.  Afterwards the
        model's weights are exactly the trained dense weights and
        :meth:`forward_resident` can run batched forwards with no per-call
        regeneration — materialize once, serve many.

        Returns (and records in :attr:`last_traffic`) the one-time
        materialization traffic.
        """
        model = self.model
        params = model.parameters()
        total = model.num_parameters()
        plane = model.weight_plane
        fetches = int(self._indices.size)
        regens = 0
        if plane is not None and plane.size == total and all(p.plane_backed for p in params):
            if zero_untracked:
                plane.fill(0.0)
            else:
                for p in params:
                    p.data[...] = p.initial_values(self.seed)
                regens = total - fetches
            plane[self._indices] = self._values
        else:  # detached-view fallback: per-parameter materialize
            for _, p in model.named_parameters():
                if zero_untracked:
                    block = np.zeros(p.size, dtype=np.float32)
                    lo = p.base_index
                    start, stop = np.searchsorted(self._indices, [lo, lo + p.size])
                    block[self._indices[start:stop] - lo] = self._values[start:stop]
                    p.data[...] = block.reshape(p.shape)
                else:
                    w, _, r = self._materialize(p)
                    p.data[...] = w
                    regens += r
        self.resident = True
        self.last_traffic = InferenceTraffic(
            tracked_fetches=fetches,
            regenerations=regens,
            peak_resident_weights=total + fetches,
        )
        return self.last_traffic

    def forward_resident(self, x: np.ndarray | Tensor) -> np.ndarray:
        """Batched forward over the resident (pre-materialized) weights.

        Requires :meth:`materialize_resident` first (called implicitly on
        first use).  Unlike :meth:`forward`, no weights are regenerated —
        the whole plane stays resident, trading memory for latency, which
        is the serving-layer trade (the registry's LRU budget bounds the
        total resident bytes across models).
        """
        if not self.resident:
            self.materialize_resident()
        x = x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float32))
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                out = self.model(x)
        finally:
            self.model.train(was_training)
        return out.numpy()

    def forward(self, x: np.ndarray | Tensor) -> np.ndarray:
        """One forward pass; records traffic in :attr:`last_traffic`."""
        x = x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float32))
        was_training = self.model.training
        self.model.eval()
        fetches = 0
        regens = 0
        peak = 0

        try:
            with no_grad():
                if isinstance(self.model, Sequential):
                    out = x
                    for layer in self.model:
                        resident = 0
                        for _, p in layer.named_parameters():
                            w, t, r = self._materialize(p)
                            p.data = w
                            fetches += t
                            regens += r
                            resident += p.size
                        out = layer(out)
                        peak = max(peak, resident)
                else:
                    resident = 0
                    for _, p in self.model.named_parameters():
                        w, t, r = self._materialize(p)
                        p.data = w
                        fetches += t
                        regens += r
                        resident += p.size
                    peak = resident
                    out = self.model(x)
        finally:
            self.model.train(was_training)

        self.last_traffic = InferenceTraffic(
            tracked_fetches=fetches,
            regenerations=regens,
            peak_resident_weights=peak + self._indices.size,
        )
        return out.numpy()

    def predict(self, x: np.ndarray, batch_size: int = 256, resident: bool = False) -> np.ndarray:
        """Class predictions over a batch of inputs.

        With ``resident=True`` the weights are materialized once up front
        and every batch reuses them (the serving fast path); the default
        re-materializes per batch, preserving the streaming memory profile.
        """
        if resident:
            self.materialize_resident()
        step = self.forward_resident if resident else self.forward
        outs = []
        for start in range(0, len(x), batch_size):
            outs.append(step(x[start : start + batch_size]).argmax(axis=-1))
        return np.concatenate(outs)

    def storage_floats(self) -> int:
        """Persistent weight storage: only the tracked values."""
        return int(self._indices.size)
