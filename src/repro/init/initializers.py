"""Regenerating weight initializers.

Every parameter in a DropBack-trained network carries an initializer that can
*regenerate* its initial value at any time, from nothing but a global seed and
the parameter's global index range.  Two families are needed:

* :class:`ScaledNormalInit` — LeCun scaled normal (LeCun et al., 1998), used
  for weight matrices and convolution kernels.  Values come from the stateless
  xorshift generator (:func:`repro.init.xorshift.normal_at`).
* :class:`ConstantInit` — constant initialization (BatchNorm γ=1 / β=0,
  PReLU slope=0.25, biases=0).  The paper notes these layers are *also*
  pruned by DropBack because a constant is trivially regenerable ("xorshift
  is not used for these").

An initializer does not store the generated tensor; ``regenerate()`` is a
pure function.  :class:`repro.core.dropback.DropBack` calls it on every step
for the untracked weights.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.init.xorshift import normal_at

__all__ = [
    "Initializer",
    "ScaledNormalInit",
    "HeNormalInit",
    "ConstantInit",
    "lecun_std",
    "he_std",
]


def lecun_std(fan_in: int) -> float:
    """LeCun scaled-normal standard deviation, ``1/sqrt(fan_in)``.

    LeCun et al. (1998), "Efficient BackProp" — the initialization the paper
    specifies for all weight tensors.
    """
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    return 1.0 / math.sqrt(fan_in)


def he_std(fan_in: int) -> float:
    """He-normal standard deviation ``sqrt(2/fan_in)`` (for ReLU nets)."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    return math.sqrt(2.0 / fan_in)


class Initializer(abc.ABC):
    """A deterministic, index-addressed source of initial parameter values.

    Subclasses must make ``regenerate`` a *pure function* of
    ``(seed, base_index, shape)`` so that values can be recomputed at every
    access instead of being stored — the core memory-saving mechanism of
    DropBack.
    """

    @abc.abstractmethod
    def regenerate(
        self, seed: int, base_index: int, shape: tuple[int, ...], dtype=np.float32
    ) -> np.ndarray:
        """Return the initial values for a parameter.

        Parameters
        ----------
        seed:
            Global network seed.
        base_index:
            This parameter's offset in the global flat index space (each
            parameter occupies ``[base_index, base_index + size)``).
        shape:
            Parameter shape.
        dtype:
            Output dtype.
        """

    @abc.abstractmethod
    def regenerate_flat(
        self, seed: int, flat_indices: np.ndarray, dtype=np.float32
    ) -> np.ndarray:
        """Regenerate only the values at the given *global* flat indices."""


class ScaledNormalInit(Initializer):
    """Scaled normal init regenerated from the stateless xorshift PRNG.

    Parameters
    ----------
    std:
        Standard deviation; typically :func:`lecun_std` of the layer fan-in.
    """

    def __init__(self, std: float) -> None:
        if not math.isfinite(std) or std < 0:
            raise ValueError(f"std must be finite and non-negative, got {std}")
        self.std = float(std)

    def regenerate(self, seed, base_index, shape, dtype=np.float32):
        size = int(np.prod(shape)) if shape else 1
        idx = np.arange(base_index, base_index + size, dtype=np.int64)
        return normal_at(seed, idx, std=self.std, dtype=dtype).reshape(shape)

    def regenerate_flat(self, seed, flat_indices, dtype=np.float32):
        flat_indices = np.asarray(flat_indices, dtype=np.int64)
        return normal_at(seed, flat_indices, std=self.std, dtype=dtype)

    def __repr__(self) -> str:
        return f"ScaledNormalInit(std={self.std:.6g})"


class HeNormalInit(ScaledNormalInit):
    """He-normal variant, ``std = sqrt(2 / fan_in)``; used by the conv nets."""

    def __init__(self, fan_in: int) -> None:
        super().__init__(he_std(fan_in))
        self.fan_in = fan_in

    def __repr__(self) -> str:
        return f"HeNormalInit(fan_in={self.fan_in})"


class ConstantInit(Initializer):
    """Constant initialization — regeneration costs zero memory accesses.

    Used for BatchNorm scale/shift, PReLU slopes, and biases.  Because the
    initial value is a single constant, DropBack can prune these layers too:
    an untracked BatchNorm γ is "regenerated" as 1.0 at every access.
    """

    def __init__(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(f"constant init value must be finite, got {value}")
        self.value = float(value)

    def regenerate(self, seed, base_index, shape, dtype=np.float32):
        return np.full(shape, self.value, dtype=dtype)

    def regenerate_flat(self, seed, flat_indices, dtype=np.float32):
        return np.full(np.asarray(flat_indices).shape, self.value, dtype=dtype)

    def __repr__(self) -> str:
        return f"ConstantInit({self.value})"
