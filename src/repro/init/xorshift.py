"""Xorshift pseudo-random number generation with stateless regeneration.

DropBack (Golub et al., MLSys 2019) never stores the initialization values of
untracked weights.  Instead each value is *regenerated on demand* from a
single seed and the weight's global index.  The paper uses Marsaglia's
xorshift generator (Marsaglia, 2003): regenerating one normally distributed
value costs six 32-bit integer operations plus one floating-point operation
(~1.5 pJ at 45 nm), versus ~640 pJ for a DRAM access.

This module provides two layers of API:

* :class:`Xorshift32` / :class:`Xorshift128` — faithful sequential xorshift
  generators, bit-exact with the reference C implementations.
* :func:`xorshift_at` / :func:`uniform_at` / :func:`normal_at` — *stateless*
  per-index generation: ``value = f(seed, index)``.  This is the property the
  hardware proposal relies on (any weight's init value is recomputable at any
  time without touching memory), and what :class:`repro.init.initializers`
  builds on.

The stateless form hashes ``(seed, index)`` into a xorshift state using a
SplitMix-style avalanche, then applies one xorshift32 round.  All arithmetic
is vectorized uint32/uint64 numpy so whole layers regenerate in one call.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Xorshift32",
    "Xorshift128",
    "xorshift_at",
    "uniform_at",
    "normal_at",
    "REGEN_INT_OPS",
    "REGEN_FLOAT_OPS",
]

_U32 = np.uint32
_U64 = np.uint64
_MASK32 = np.uint32(0xFFFFFFFF)

#: Integer / float operation counts for regenerating ONE normal value,
#: as accounted in the paper (Section 2.1): "six 32-bit integer operations
#: and one 32-bit floating point operation".  Used by :mod:`repro.energy`.
REGEN_INT_OPS = 6
REGEN_FLOAT_OPS = 1


class Xorshift32:
    """Marsaglia's 32-bit xorshift generator (shifts 13, 17, 5).

    Bit-exact with the reference implementation::

        x ^= x << 13; x ^= x >> 17; x ^= x << 5;

    Parameters
    ----------
    seed:
        Non-zero 32-bit seed.  Zero is a fixed point of xorshift and is
        rejected.
    """

    def __init__(self, seed: int) -> None:
        seed = int(seed) & 0xFFFFFFFF
        if seed == 0:
            raise ValueError("xorshift seed must be non-zero")
        self._state = _U32(seed)

    @property
    def state(self) -> int:
        """Current 32-bit generator state."""
        return int(self._state)

    def next_u32(self) -> int:
        """Advance one step and return the next 32-bit output."""
        with np.errstate(over="ignore"):
            x = self._state
            x ^= _U32((int(x) << 13) & 0xFFFFFFFF)
            x ^= x >> _U32(17)
            x ^= _U32((int(x) << 5) & 0xFFFFFFFF)
            self._state = x
        return int(x)

    def next_float(self) -> float:
        """Next value uniform on [0, 1)."""
        return self.next_u32() / 4294967296.0


class Xorshift128:
    """Marsaglia's xorshift128 generator (period 2**128 - 1).

    Reference sequence: with state ``(x, y, z, w)``::

        t = x ^ (x << 11)
        x, y, z = y, z, w
        w = w ^ (w >> 19) ^ t ^ (t >> 8)

    Parameters
    ----------
    seed:
        Any integer; expanded into the four state words via a SplitMix64
        sequence so that nearby seeds give unrelated streams.
    """

    def __init__(self, seed: int) -> None:
        s = _splitmix64_scalar(int(seed) & 0xFFFFFFFFFFFFFFFF)
        words = []
        for _ in range(4):
            s, out = _splitmix64_next(s)
            words.append(out & 0xFFFFFFFF or 0x9E3779B9)
        self._x, self._y, self._z, self._w = (_U32(wd) for wd in words)

    def next_u32(self) -> int:
        """Advance one step and return the next 32-bit output."""
        with np.errstate(over="ignore"):
            t = self._x ^ _U32((int(self._x) << 11) & 0xFFFFFFFF)
            self._x, self._y, self._z = self._y, self._z, self._w
            self._w = self._w ^ (self._w >> _U32(19)) ^ t ^ (t >> _U32(8))
        return int(self._w)

    def next_float(self) -> float:
        """Next value uniform on [0, 1)."""
        return self.next_u32() / 4294967296.0


def _splitmix64_scalar(seed: int) -> int:
    return (seed + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF


def _splitmix64_next(state: int) -> tuple[int, int]:
    """One SplitMix64 step: returns (next_state, output)."""
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    z ^= z >> 31
    next_state = (state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    return next_state, z


def _mix_seed_index(seed: int, indices: np.ndarray) -> np.ndarray:
    """Hash (seed, index) pairs into well-distributed uint32 states.

    Vectorized SplitMix64-style avalanche over ``seed * PHI + index``.
    Guarantees a non-zero result (zero is a xorshift fixed point).
    """
    with np.errstate(over="ignore"):
        z = indices.astype(_U64) + _U64((int(seed) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
        z = (z + _U64(0x9E3779B97F4A7C15)) & _U64(0xFFFFFFFFFFFFFFFF)
        z = ((z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)) & _U64(0xFFFFFFFFFFFFFFFF)
        z = ((z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)) & _U64(0xFFFFFFFFFFFFFFFF)
        z ^= z >> _U64(31)
    out = (z & _U64(0xFFFFFFFF)).astype(_U32)
    out[out == 0] = _U32(0x9E3779B9)
    return out


def xorshift_at(seed: int, indices: np.ndarray) -> np.ndarray:
    """Stateless xorshift: 32-bit outputs for each (seed, index) pair.

    ``xorshift_at(seed, i)`` is a pure function — calling it twice with the
    same arguments returns identical bits.  This models the hardware
    regeneration unit: a weight's initial value depends only on the global
    seed and the weight's index, never on stored state.

    Parameters
    ----------
    seed:
        Global integer seed.
    indices:
        Integer array of weight indices (any shape).

    Returns
    -------
    ``uint32`` array, same shape as ``indices``.
    """
    indices = np.asarray(indices)
    x = _mix_seed_index(seed, indices)
    with np.errstate(over="ignore"):
        x ^= (x << _U32(13)) & _MASK32
        x ^= x >> _U32(17)
        x ^= (x << _U32(5)) & _MASK32
    return x


def uniform_at(seed: int, indices: np.ndarray) -> np.ndarray:
    """Stateless uniform [0, 1) floats for each (seed, index) pair."""
    return xorshift_at(seed, indices).astype(np.float64) / 4294967296.0


def normal_at(
    seed: int,
    indices: np.ndarray,
    std: float = 1.0,
    mean: float = 0.0,
    dtype: np.dtype | type = np.float32,
) -> np.ndarray:
    """Stateless N(mean, std**2) values for each (seed, index) pair.

    Uses the Box–Muller transform over two decorrelated stateless uniform
    draws (index streams offset by a large constant), matching the paper's
    "postprocessed to fit a scaled normal distribution".  Deterministic:
    ``normal_at(s, i)`` never changes between calls, so untracked weights can
    be regenerated exactly at every access.

    Parameters
    ----------
    seed:
        Global integer seed.
    indices:
        Integer array of weight indices (any shape).
    std, mean:
        Scale and shift of the target normal distribution.
    dtype:
        Output dtype (float32 by default, matching training precision).
    """
    indices = np.asarray(indices, dtype=np.int64)
    u1 = uniform_at(seed, indices)
    u2 = uniform_at(seed ^ 0x5DEECE66D, indices + np.int64(0x9E3779B9))
    # Guard log(0): map u1 == 0 to the smallest representable positive step.
    u1 = np.maximum(u1, 1.0 / 4294967296.0)
    z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
    return (mean + std * z).astype(dtype)
