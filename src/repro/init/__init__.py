"""Deterministic, regenerable initialization (xorshift PRNG + initializers)."""

from repro.init.initializers import (
    ConstantInit,
    HeNormalInit,
    Initializer,
    ScaledNormalInit,
    he_std,
    lecun_std,
)
from repro.init.xorshift import (
    REGEN_FLOAT_OPS,
    REGEN_INT_OPS,
    Xorshift128,
    Xorshift32,
    normal_at,
    uniform_at,
    xorshift_at,
)

__all__ = [
    "ConstantInit",
    "HeNormalInit",
    "Initializer",
    "ScaledNormalInit",
    "he_std",
    "lecun_std",
    "REGEN_FLOAT_OPS",
    "REGEN_INT_OPS",
    "Xorshift32",
    "Xorshift128",
    "normal_at",
    "uniform_at",
    "xorshift_at",
]
