"""Pass-1 fact extraction for the interprocedural analysis engine.

The two-pass engine (see :mod:`repro.analyze.callgraph`) first reduces
every function in the package to a small record of *facts* — the only
things the concurrency rules (RPA010-013) need to reason about:

* lock acquisitions (``with some_lock:`` / ``some_lock.acquire()``),
  each annotated with the locks already held at that point;
* barrier waits (``barrier.wait(...)``);
* writes into :class:`~repro.parallel.shm.SharedArena` data regions
  (subscript stores and ``out=`` kernel arguments);
* RNG draws — legacy global-state calls, unseeded ``default_rng()``, and
  draw methods on generators that were not seeded locally;
* calls, each annotated with the locks held at the call site (so pass 2
  can propagate lock context through the call graph);
* worker spawn points (``multiprocessing`` ``Process(target=...)``,
  ``os.fork()``) and the ``@profiled`` decoration status.

Everything here is pure ``ast`` — no imports from the rest of the
package — so the extractor can run over arbitrary fixture trees in tests
and its output can be serialized into the CI index cache
(:meth:`ModuleFacts.to_dict` round-trips through JSON).

Lock identity
-------------
Locks are named, not object-tracked.  ``self.X`` inside class ``C``
becomes ``C.X``; a bare name resolves through the module's import table
(``module.NAME`` if local); any other ``obj.attr`` receiver becomes the
marker ``@attr:attr`` which pass 2 resolves to the unique lock-owning
class declaring that attribute (or leaves opaque).  This is the classic
lockset abstraction: all instances of one class attribute count as one
lock node in the order graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "ARENA_DATA_REGIONS",
    "ARENA_REGIONS",
    "CallSite",
    "LockAcquire",
    "ArenaWrite",
    "RngDraw",
    "SpawnSite",
    "Mutation",
    "FunctionFacts",
    "ClassFacts",
    "ModuleFacts",
    "collect_module_facts",
    "module_name_for",
]

#: SharedArena regions whose writes must be barrier-fenced (RPA011).
ARENA_DATA_REGIONS = frozenset({"plane", "grads", "losses"})
#: All SharedArena regions (timers/control are monitoring-only, exempt).
ARENA_REGIONS = ARENA_DATA_REGIONS | {"timers", "control"}

#: Name fragments that make an attribute/variable "a lock" for fact purposes.
_LOCKY = ("lock", "cond", "sem", "mutex")

#: np.random attributes that hit numpy's *global* RNG state (legacy API).
_GLOBAL_RNG_FNS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
        "choice", "shuffle", "permutation", "seed", "normal", "uniform",
        "standard_normal", "binomial", "poisson", "beta", "gamma", "exponential",
        "laplace", "bytes",
    }
)

#: Generator draw methods (``rng.normal(...)`` etc.).
_DRAW_METHODS = frozenset(
    {
        "random", "normal", "standard_normal", "uniform", "integers", "choice",
        "shuffle", "permutation", "permuted", "binomial", "poisson", "beta",
        "gamma", "exponential", "laplace", "bytes",
    }
)

#: Container-mutating method names (for RPA013's attribute-mutation facts).
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popleft", "appendleft",
        "clear", "add", "discard", "update", "setdefault", "move_to_end", "sort",
    }
)


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path (``src/`` is stripped)."""
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_locky(name: str) -> bool:
    return any(frag in name.lower() for frag in _LOCKY)


def _creates_lock(value: ast.AST) -> bool:
    """Whether an assignment RHS constructs a lock (possibly wrapped, e.g.
    ``tracked_lock(threading.RLock(), ...)`` or a Condition over one)."""
    for sub in ast.walk(value):
        if isinstance(sub, ast.Call):
            name = _dotted(sub.func)
            if name and name.split(".")[-1] in (
                "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"
            ):
                return True
    return False


@dataclass
class CallSite:
    """One call expression: the raw dotted callee text + held locks."""

    name: str
    lineno: int
    held: tuple[str, ...] = ()


@dataclass
class LockAcquire:
    lock: str
    lineno: int
    held: tuple[str, ...] = ()
    via: str = "with"  # "with" | "acquire"


@dataclass
class ArenaWrite:
    region: str
    lineno: int
    kind: str = "store"  # "store" | "out-arg"


@dataclass
class RngDraw:
    kind: str  # "global" | "unseeded" | "ambient"
    name: str
    lineno: int


@dataclass
class SpawnSite:
    kind: str  # "process" | "fork"
    target: str | None  # raw dotted target text for Process(target=...)
    lineno: int


@dataclass
class Mutation:
    """A ``self.<attr>`` state mutation with the locks held around it."""

    attr: str
    lineno: int
    held: tuple[str, ...] = ()
    kind: str = "assign"  # "assign" | "method" | "delete"


@dataclass
class FunctionFacts:
    """Everything pass 2 knows about one function."""

    module: str
    relpath: str
    scope: str  # dotted scope within the module, e.g. "Cls.method"
    name: str
    lineno: int
    cls: str | None = None  # immediately enclosing class, if a method
    profiled: bool = False
    calls: list[CallSite] = field(default_factory=list)
    acquires: list[LockAcquire] = field(default_factory=list)
    barrier_waits: list[int] = field(default_factory=list)
    arena_writes: list[ArenaWrite] = field(default_factory=list)
    rng_draws: list[RngDraw] = field(default_factory=list)
    spawns: list[SpawnSite] = field(default_factory=list)
    mutations: list[Mutation] = field(default_factory=list)
    nested: list[str] = field(default_factory=list)  # scopes of nested defs

    @property
    def qualname(self) -> str:
        return f"{self.module}:{self.scope}"

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "relpath": self.relpath,
            "scope": self.scope,
            "name": self.name,
            "lineno": self.lineno,
            "cls": self.cls,
            "profiled": self.profiled,
            "calls": [[c.name, c.lineno, list(c.held)] for c in self.calls],
            "acquires": [
                [a.lock, a.lineno, list(a.held), a.via] for a in self.acquires
            ],
            "barrier_waits": list(self.barrier_waits),
            "arena_writes": [[w.region, w.lineno, w.kind] for w in self.arena_writes],
            "rng_draws": [[d.kind, d.name, d.lineno] for d in self.rng_draws],
            "spawns": [[s.kind, s.target, s.lineno] for s in self.spawns],
            "mutations": [
                [m.attr, m.lineno, list(m.held), m.kind] for m in self.mutations
            ],
            "nested": list(self.nested),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionFacts":
        return cls(
            module=d["module"],
            relpath=d["relpath"],
            scope=d["scope"],
            name=d["name"],
            lineno=d["lineno"],
            cls=d["cls"],
            profiled=d["profiled"],
            calls=[CallSite(n, ln, tuple(h)) for n, ln, h in d["calls"]],
            acquires=[
                LockAcquire(k, ln, tuple(h), via) for k, ln, h, via in d["acquires"]
            ],
            barrier_waits=list(d["barrier_waits"]),
            arena_writes=[ArenaWrite(r, ln, k) for r, ln, k in d["arena_writes"]],
            rng_draws=[RngDraw(k, n, ln) for k, n, ln in d["rng_draws"]],
            spawns=[SpawnSite(k, t, ln) for k, t, ln in d["spawns"]],
            mutations=[
                Mutation(a, ln, tuple(h), k) for a, ln, h, k in d["mutations"]
            ],
            nested=list(d["nested"]),
        )


@dataclass
class ClassFacts:
    name: str
    lineno: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    #: lock-creating attributes (``self._lock = threading.RLock()`` in
    #: ``__init__``, or dataclass fields with a lock default_factory).
    lock_attrs: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "lock_attrs": dict(self.lock_attrs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ClassFacts":
        return cls(
            name=d["name"],
            lineno=d["lineno"],
            bases=list(d["bases"]),
            methods=list(d["methods"]),
            lock_attrs={k: int(v) for k, v in d["lock_attrs"].items()},
        )


@dataclass
class ModuleFacts:
    relpath: str
    module: str
    #: local name -> absolute dotted target, for every import.
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "relpath": self.relpath,
            "module": self.module,
            "imports": dict(self.imports),
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleFacts":
        return cls(
            relpath=d["relpath"],
            module=d["module"],
            imports=dict(d["imports"]),
            functions={
                k: FunctionFacts.from_dict(f) for k, f in d["functions"].items()
            },
            classes={k: ClassFacts.from_dict(c) for k, c in d["classes"].items()},
        )


# ---------------------------------------------------------------------- #
# extraction
# ---------------------------------------------------------------------- #


class _FactsVisitor(ast.NodeVisitor):
    """One walk of a module AST producing its :class:`ModuleFacts`."""

    def __init__(self, relpath: str, module: str):
        self.out = ModuleFacts(relpath=relpath, module=module)
        self._scope: list[str] = []
        self._class_stack: list[ClassFacts] = []
        self._func_stack: list[FunctionFacts] = []
        self._held: list[str] = []
        self._seeded: set[str] = set()  # dotted receivers seeded in this function

    # -- imports ------------------------------------------------------- #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.asname and alias.name or alias.name.split(".")[0]
            # `import a.b.c` binds `a`; `import a.b.c as x` binds the full path.
            self.out.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            # Relative import: resolve against this module's package.
            pkg_parts = self.out.module.split(".")
            # level 1 = current package (module's parent), 2 = its parent, ...
            base_parts = pkg_parts[: len(pkg_parts) - node.level]
            base = ".".join(base_parts + ([node.module] if node.module else []))
        else:
            base = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            self.out.imports[local] = f"{base}.{alias.name}" if base else alias.name

    # -- scopes -------------------------------------------------------- #

    def _scope_name(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cf = ClassFacts(
            name=node.name,
            lineno=node.lineno,
            bases=[b for b in (_dotted(base) for base in node.bases) if b],
        )
        self.out.classes.setdefault(node.name, cf)
        self._scope.append(node.name)
        self._class_stack.append(cf)
        try:
            self.generic_visit(node)
        finally:
            self._class_stack.pop()
            self._scope.pop()
        # dataclass-style lock fields: `x: Lock = field(default_factory=Lock)`
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.value is not None and _creates_lock(stmt.value):
                    cf.lock_attrs.setdefault(stmt.target.id, stmt.lineno)
                else:
                    ann = _dotted(stmt.annotation)
                    if ann and _is_locky(ann.split(".")[-1]):
                        cf.lock_attrs.setdefault(stmt.target.id, stmt.lineno)

    def _visit_function(self, node) -> None:
        cls = self._class_stack[-1].name if (
            self._class_stack and self._scope and self._scope[-1] == self._class_stack[-1].name
        ) else None
        self._scope.append(node.name)
        facts = FunctionFacts(
            module=self.out.module,
            relpath=self.out.relpath,
            scope=self._scope_name(),
            name=node.name,
            lineno=node.lineno,
            cls=cls,
            profiled=self._is_profiled(node),
        )
        if cls is not None:
            self._class_stack[-1].methods.append(node.name)
        parent = self._func_stack[-1] if self._func_stack else None
        if parent is not None:
            parent.nested.append(facts.scope)
        self.out.functions[facts.scope] = facts
        self._func_stack.append(facts)
        saved_held, self._held = self._held, []
        saved_seeded, self._seeded = self._seeded, set()
        try:
            for deco in node.decorator_list:
                self.visit(deco)
            for stmt in node.body:
                self.visit(stmt)
        finally:
            self._func_stack.pop()
            self._scope.pop()
            self._held = saved_held
            self._seeded = saved_seeded

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @staticmethod
    def _is_profiled(node) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted(target)
            if name and name.split(".")[-1] == "profiled":
                return True
        return False

    # -- lock identity -------------------------------------------------- #

    def _lock_id(self, expr: ast.AST) -> str | None:
        """Normalized lock name for an acquired expression, or None if the
        expression does not look like a lock."""
        # Unwrap `lock.acquire` handled by caller; here expr is the lock expr.
        name = _dotted(expr)
        if name is None:
            return None
        parts = name.split(".")
        if not _is_locky(parts[-1]):
            return None
        if parts[0] == "self" and len(parts) == 2:
            cls = self._func_stack[-1].cls if self._func_stack else None
            if cls:
                return f"{cls}.{parts[1]}"
            return f"@attr:{parts[1]}"
        if len(parts) == 1:
            target = self.out.imports.get(parts[0])
            if target:
                return target
            return f"{self.out.module}.{parts[0]}"
        # Some other receiver: resolve the attribute in pass 2.
        return f"@attr:{parts[-1]}"

    # -- statements ----------------------------------------------------- #

    def visit_With(self, node: ast.With) -> None:
        if not self._func_stack:
            self.generic_visit(node)
            return
        facts = self._func_stack[-1]
        acquired: list[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            lock = self._lock_id(item.context_expr)
            if lock is not None:
                facts.acquires.append(
                    LockAcquire(lock, node.lineno, tuple(self._held), via="with")
                )
                self._held.append(lock)
                acquired.append(lock)
        try:
            for stmt in node.body:
                self.visit(stmt)
        finally:
            for _ in acquired:
                self._held.pop()

    visit_AsyncWith = visit_With

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_seeding(node.targets, node.value)
        for target in node.targets:
            self._record_store(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_seeding([node.target], node.value)
            self._record_store(node.target, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self._func_stack:
            facts = self._func_stack[-1]
            for target in node.targets:
                base = target.value if isinstance(target, ast.Subscript) else target
                name = _dotted(base)
                if name and name.startswith("self.") and len(name.split(".")) >= 2:
                    facts.mutations.append(
                        Mutation(
                            name.split(".")[1], node.lineno, tuple(self._held), "delete"
                        )
                    )
        self.generic_visit(node)

    def _record_seeding(self, targets, value: ast.AST) -> None:
        """Track `x = default_rng(seed...)` / `x = ...epoch_rng(...)` bindings."""
        if not isinstance(value, ast.Call):
            return
        name = _dotted(value.func)
        if name is None:
            return
        leaf = name.split(".")[-1]
        seeded = (
            (leaf in ("default_rng", "RandomState", "Generator") and bool(value.args))
            or leaf == "epoch_rng"
        )
        if not seeded:
            return
        for target in targets:
            tname = _dotted(target)
            if tname:
                self._seeded.add(tname)

    def _record_store(self, target: ast.AST, lineno: int) -> None:
        if not self._func_stack:
            return
        facts = self._func_stack[-1]
        # Arena data-region write: a subscript store through `<arena>.region`.
        if isinstance(target, ast.Subscript):
            region = self._arena_region(target.value)
            if region is not None:
                facts.arena_writes.append(ArenaWrite(region, lineno, "store"))
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._record_store(elt, lineno)
            return
        # self-attribute mutation (rebind, nested store, or subscript store).
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        name = _dotted(base)
        if name and name.startswith("self.") and facts.cls is not None:
            facts.mutations.append(
                Mutation(name.split(".")[1], lineno, tuple(self._held), "assign")
            )

    def _arena_region(self, expr: ast.AST) -> str | None:
        """``arena.grads`` / ``self.plane`` (inside an arena class) -> region."""
        if not isinstance(expr, ast.Attribute) or expr.attr not in ARENA_REGIONS:
            return None
        recv = _dotted(expr.value)
        if recv is None:
            return None
        if "arena" in recv.lower():
            return expr.attr
        if recv == "self":
            cls = self._func_stack[-1].cls if self._func_stack else None
            if cls and "arena" in cls.lower():
                return expr.attr
        return None

    # -- calls ---------------------------------------------------------- #

    def visit_Call(self, node: ast.Call) -> None:
        if self._func_stack:
            self._record_call(node)
        self.generic_visit(node)

    def _record_call(self, node: ast.Call) -> None:
        facts = self._func_stack[-1]
        name = _dotted(node.func)
        if name is None:
            return
        parts = name.split(".")
        leaf = parts[-1]
        facts.calls.append(CallSite(name, node.lineno, tuple(self._held)))

        # barrier waits: `<something barrier-ish>.wait(...)`
        if leaf == "wait" and len(parts) >= 2 and "barrier" in parts[-2].lower():
            facts.barrier_waits.append(node.lineno)

        # bare `.acquire()` on a lock (RPA006 flags these; still record order)
        if leaf == "acquire" and len(parts) >= 2:
            lock = self._lock_id(node.func.value)
            if lock is not None:
                facts.acquires.append(
                    LockAcquire(lock, node.lineno, tuple(self._held), via="acquire")
                )

        # `out=` keyword targeting an arena data region
        for kw in node.keywords:
            if kw.arg != "out":
                continue
            expr = kw.value
            if isinstance(expr, ast.Subscript):
                expr = expr.value
            region = self._arena_region(expr)
            if region is not None:
                facts.arena_writes.append(ArenaWrite(region, node.lineno, "out-arg"))

        # RNG draws
        self._record_rng(node, name, parts, leaf)

        # spawn sites
        if leaf == "Process":
            target = None
            for kw in node.keywords:
                if kw.arg == "target":
                    target = _dotted(kw.value)
            facts.spawns.append(SpawnSite("process", target, node.lineno))
        elif name in ("os.fork", "fork") and parts[0] in ("os", "fork"):
            facts.spawns.append(SpawnSite("fork", None, node.lineno))

        # mutating method call on a self attribute: `self._queues.clear()`
        if (
            leaf in _MUTATING_METHODS
            and len(parts) >= 3
            and parts[0] == "self"
            and facts.cls is not None
        ):
            facts.mutations.append(
                Mutation(parts[1], node.lineno, tuple(self._held), "method")
            )

    def _record_rng(self, node: ast.Call, name: str, parts: list[str], leaf: str) -> None:
        facts = self._func_stack[-1]
        # Legacy global-state API: np.random.<fn>(...)
        if (
            len(parts) >= 3
            and parts[-2] == "random"
            and parts[-3] in ("np", "numpy")
            and leaf in _GLOBAL_RNG_FNS
        ):
            facts.rng_draws.append(RngDraw("global", name, node.lineno))
            return
        # Unseeded fresh generator: default_rng() / RandomState() with no args
        if leaf in ("default_rng", "RandomState") and not node.args and not node.keywords:
            facts.rng_draws.append(RngDraw("unseeded", name, node.lineno))
            return
        # Draw method on a generator-ish receiver not seeded in this function.
        if leaf in _DRAW_METHODS and len(parts) >= 2:
            recv = ".".join(parts[:-1])
            recv_leaf = parts[-2]
            looks_rng = "rng" in recv_leaf.lower() or "rand" in recv_leaf.lower()
            if looks_rng and recv not in self._seeded:
                facts.rng_draws.append(RngDraw("ambient", recv, node.lineno))


def collect_module_facts(tree: ast.AST, relpath: str, module: str | None = None) -> ModuleFacts:
    """Extract :class:`ModuleFacts` from one parsed module."""
    if module is None:
        module = module_name_for(relpath)
    visitor = _FactsVisitor(relpath, module)
    visitor.visit(tree)
    _collect_init_locks(tree, visitor.out)
    return visitor.out


def _collect_init_locks(tree: ast.AST, out: ModuleFacts) -> None:
    """Find ``self.<attr> = <lock ctor>`` in each class body (any method)."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cf = out.classes.get(node.name)
        if cf is None:
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            if not _creates_lock(sub.value):
                continue
            for target in sub.targets:
                name = _dotted(target)
                if name and name.startswith("self.") and len(name.split(".")) == 2:
                    cf.lock_attrs.setdefault(name.split(".")[1], sub.lineno)
