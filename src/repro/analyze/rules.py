"""Repo-specific per-file lint rules (RPA001-RPA009).

Each rule encodes one invariant the flat-weight-plane / workspace-pool /
deterministic-regeneration design depends on (RPA006 guards the serving
layer's lock discipline, RPA007 the kernel-dispatch boundary, RPA008 the
process/shared-memory boundary, RPA009 the sparse-format boundary).
These rules see one file at a time; the interprocedural concurrency
rules RPA010-RPA013 live in :mod:`repro.analyze.concurrency` and run
over the pass-1 package index instead.  See ``docs/static-analysis.md``
for the full catalog with rationale and the suppression syntax.
"""

from __future__ import annotations

import ast

from repro.analyze.engine import (
    Rule,
    call_keywords,
    contains_float_constant,
    dotted_name,
    register_rule,
)

__all__ = [
    "DataRebindRule",
    "HotPathAllocationRule",
    "UnseededRandomRule",
    "ImplicitFloat64Rule",
    "MissingProfiledRule",
    "LockDisciplineRule",
    "DirectMatmulRule",
    "MultiprocessingBoundaryRule",
    "SparseFormatBoundaryRule",
    "HOT_MODULES",
    "ALLOC_CALLS",
]

#: Modules whose public functions are hot-path ops and must be profiled.
HOT_MODULES = (
    "tensor/conv.py",
    "tensor/functional.py",
    "tensor/kernels/reference.py",
    "tensor/kernels/fast.py",
    "tensor/kernels/threaded.py",
    "core/selection.py",
)

#: numpy free functions that allocate a fresh buffer per call.
ALLOC_CALLS = frozenset(
    {"zeros", "empty", "ones", "full", "copy", "zeros_like", "empty_like", "ones_like"}
)

#: np.random attributes that hit numpy's *global* RNG state (legacy API).
_GLOBAL_RNG_FNS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
        "choice", "shuffle", "permutation", "seed", "normal", "uniform", "standard_normal",
        "binomial", "poisson", "beta", "gamma", "exponential", "laplace", "bytes",
    }
)


def _ends_with(path: str, suffixes: tuple[str, ...] | str) -> bool:
    if isinstance(suffixes, str):
        suffixes = (suffixes,)
    return any(path.endswith(s) for s in suffixes)


@register_rule
class DataRebindRule(Rule):
    """RPA001: ``.data`` rebinding outside the Parameter/Tensor core.

    ``Parameter.data`` is a zero-copy view into the flat weight plane.
    Rebinding the attribute (``p.data = arr``) relies on the write-through
    property to keep the aliasing alive, and silently *detaches* the view
    when the value cannot broadcast.  Mutate in place instead
    (``p.data[...] = arr`` or ``np.copyto(p.data, arr)``) so plane
    aliasing is preserved by construction.
    """

    code = "RPA001"
    summary = ".data rebinding can detach a parameter from the weight plane"
    rationale = (
        "Every Parameter.data must stay a zero-copy view into the flat "
        "weight plane; attribute rebinding goes through a fallback that "
        "detaches on shape mismatch. In-place writes cannot detach."
    )

    #: The property implementation itself plus the raw Tensor slot.
    allowed_paths = ("nn/module.py", "tensor/tensor.py")

    # AugAssign (`p.data += v`) is exempt: ndarray.__iadd__ mutates the
    # view in place and the write-through setter sees the identical array.
    def visit_Assign(self, node: ast.Assign) -> None:
        if not _ends_with(self.src.relpath, self.allowed_paths):
            for target in node.targets:
                self._check_target(target)
        self.generic_visit(node)

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt)
        elif isinstance(target, ast.Attribute) and target.attr == "data":
            owner = dotted_name(target.value) or "<expr>"
            self.report(
                target,
                f"rebinding `{owner}.data` — write in place "
                f"(`{owner}.data[...] = ...`) to preserve plane aliasing",
            )


@register_rule
class HotPathAllocationRule(Rule):
    """RPA002: fresh allocations inside ``@profiled`` hot-path functions.

    Functions instrumented with ``@profiled`` are the per-step hot paths;
    a ``np.zeros``/``np.empty``/``.copy()``/``.astype()`` there is one
    allocation per training step per layer.  Use the conv workspace pool,
    a preallocated scratch buffer, or an ``out=`` argument — or suppress
    with a justification when the allocation is the op's output.
    """

    code = "RPA002"
    summary = "per-call allocation inside a @profiled hot-path function"
    rationale = (
        "Hot paths run once per layer per step; per-call allocations "
        "defeat the workspace pool and show up as GC churn. Reuse "
        "buffers (out=, _acquire_workspace) or justify with a noqa."
    )

    def __init__(self, src):
        super().__init__(src)
        self._profiled_depth = 0

    @staticmethod
    def _is_profiled_decorator(dec: ast.AST) -> bool:
        if isinstance(dec, ast.Call):
            dec = dec.func
        name = dotted_name(dec)
        return name is not None and name.split(".")[-1] == "profiled"

    def scope_entered(self, node) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and any(
            self._is_profiled_decorator(d) for d in node.decorator_list
        ):
            self._profiled_depth += 1
            node._rpa002_profiled = True  # noqa: SLF001 - private tag on our own AST

    def scope_exited(self, node) -> None:
        if getattr(node, "_rpa002_profiled", False):
            self._profiled_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if self._profiled_depth > 0:
            name = dotted_name(node.func)
            if name is not None and "." in name:
                head, _, tail = name.rpartition(".")
                if head in ("np", "numpy") and tail in ALLOC_CALLS:
                    self.report(node, f"`{name}(...)` allocates per call in a hot path")
                elif tail == "astype":
                    self.report(node, "`.astype(...)` allocates per call in a hot path")
                elif tail == "copy" and not node.args and not node.keywords:
                    self.report(node, "`.copy()` allocates per call in a hot path")
        self.generic_visit(node)


@register_rule
class UnseededRandomRule(Rule):
    """RPA003: unseeded or global-state ``np.random`` use outside ``data/``.

    DropBack's untracked weights are *recomputed*, not stored: training
    must be a pure function of the experiment seeds.  The legacy
    ``np.random.*`` API draws from interpreter-global state, and
    ``default_rng()`` with no seed draws from the OS — either silently
    breaks the ``|w_t - w_0|`` regeneration criterion.  Construct a
    seeded ``np.random.default_rng(seed)`` and inject it.
    """

    code = "RPA003"
    summary = "unseeded / global-state np.random use breaks determinism"
    rationale = (
        "Untracked weights are regenerated from (seed, index); any "
        "global-RNG draw or OS-seeded generator in the training path "
        "makes runs irreproducible and the regeneration criterion drift."
    )

    #: Dataset synthesis owns its generators (they are seeded at the API
    #: boundary and tested for determinism).
    exempt_dirs = ("data/",)

    def _exempt(self) -> bool:
        return any(d in self.src.relpath for d in self.exempt_dirs)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._exempt():
            name = dotted_name(node.func)
            if name is not None:
                parts = name.split(".")
                if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
                    fn = parts[-1]
                    if fn in _GLOBAL_RNG_FNS:
                        self.report(
                            node,
                            f"`{name}(...)` uses numpy's global RNG state; "
                            "inject a seeded np.random.default_rng instead",
                        )
                    elif fn in ("default_rng", "RandomState", "Generator") and self._unseeded(
                        node
                    ):
                        self.report(
                            node,
                            f"`{name}()` without a seed draws OS entropy; "
                            "pass an explicit seed",
                        )
        self.generic_visit(node)

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if not node.args and not node.keywords:
            return True
        first = node.args[0] if node.args else None
        return isinstance(first, ast.Constant) and first.value is None


@register_rule
class ImplicitFloat64Rule(Rule):
    """RPA004: implicit float64 promotion near the tensor boundary.

    The plane, parameters, and all tensor ops are float32.  A dtype-less
    ``np.array([0.5, ...])`` is float64; once it flows into a tensor op
    the write-through plane view silently *truncates* on store while any
    intermediate arithmetic upcasts — so regenerated and stored weights
    stop agreeing bitwise.  Spell the dtype (float32 at the model
    boundary; float64 only where numerically required, explicitly).
    """

    code = "RPA004"
    summary = "dtype-less float array literal promotes to float64"
    rationale = (
        "All training numerics are float32; implicit float64 "
        "intermediates break bit-determinism of the regeneration "
        "criterion and double memory traffic. Make the dtype explicit."
    )

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            head, _, tail = name.rpartition(".")
            if (
                head in ("np", "numpy")
                and tail in ("array", "asarray")
                and "dtype" not in call_keywords(node)
                and len(node.args) < 2  # second positional arg is dtype
                and node.args
                and contains_float_constant(node.args[0])
            ):
                self.report(
                    node,
                    f"`{name}(...)` with float literals and no dtype is float64; "
                    "pass dtype=np.float32 (or an explicit np.float64 if intended)",
                )
            elif tail == "astype" and node.args and not self._explicit_dtype(node.args[0]):
                self.report(
                    node,
                    "`.astype(float)` is float64 in disguise; "
                    "name the width explicitly (np.float32 / np.float64)",
                )
        self.generic_visit(node)

    @staticmethod
    def _explicit_dtype(arg: ast.AST) -> bool:
        """True unless the dtype argument is the bare builtin ``float``."""
        return not (isinstance(arg, ast.Name) and arg.id == "float")


@register_rule
class MissingProfiledRule(Rule):
    """RPA005: public hot-module functions missing ``@profiled``.

    The perf CI gate can only guard what the profiler sees.  Public
    module-level functions in the hot modules (conv, functional,
    selection) must either carry ``@profiled("...")`` or open a
    ``with profiled("...")`` region, so new ops never ship unmeasured.
    """

    code = "RPA005"
    summary = "public hot-module function is invisible to the profiler"
    rationale = (
        "The CI perf gate diffs profiler reports; an uninstrumented hot "
        "op can regress without tripping it. Decorate public functions "
        "in hot modules with @profiled (or open a profiled region)."
    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if (
            _ends_with(self.src.relpath, HOT_MODULES)
            and not self._scope  # module-level only; methods are exempt
            and not node.name.startswith("_")
            and not self._instrumented(node)
        ):
            self.report(
                node,
                f"public function `{node.name}` in a hot module has no "
                "@profiled decorator or profiled region",
            )
        self._visit_scoped(node)

    @staticmethod
    def _instrumented(node: ast.FunctionDef) -> bool:
        for dec in node.decorator_list:
            if HotPathAllocationRule._is_profiled_decorator(dec):
                return True
        for sub in ast.walk(node):
            if isinstance(sub, ast.With):
                for item in sub.items:
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Call) and HotPathAllocationRule._is_profiled_decorator(
                        ctx
                    ):
                        return True
        return False


@register_rule
class LockDisciplineRule(Rule):
    """RPA006: bare lock ``.acquire()`` in the serving layer.

    ``repro.serve`` is the repo's only multithreaded subsystem: worker
    threads, client futures, and the registry's LRU all share locks.  A
    lock acquired outside a ``with`` block (and not immediately wrapped
    in ``try``/``finally: ...release()``) leaks on any exception between
    acquire and release — and a leaked serving lock deadlocks every
    worker, which presents as requests timing out rather than a crash.
    Use ``with lock:`` so release is structural.

    The receiver is matched by name (``lock``/``cond``/``sem``/``mutex``
    substring, case-insensitive) so domain ``acquire`` APIs — e.g.
    ``ModelRegistry.acquire(digest)``, which checks out a model — are not
    confused with synchronization primitives.
    """

    code = "RPA006"
    summary = "bare lock .acquire() in repro.serve leaks the lock on exceptions"
    rationale = (
        "The serving layer is the only multithreaded subsystem; a lock "
        "acquired without `with` (or try/finally release) stays held if "
        "anything between acquire and release raises, deadlocking every "
        "worker thread. Structural release (`with lock:`) cannot leak."
    )

    #: Only the serving layer is in scope for this rule.
    serve_dirs = ("serve/",)

    #: Receiver-name fragments that mark a synchronization primitive.
    _LOCKY = ("lock", "cond", "sem", "mutex")

    def _applies(self) -> bool:
        return any(d in self.src.relpath for d in self.serve_dirs)

    # -- block scanning ------------------------------------------------- #
    # Bare-acquire detection is positional (is the *next* statement a
    # try/finally releasing the same lock?), so the rule walks statement
    # lists rather than individual nodes.

    def visit_Module(self, node: ast.Module) -> None:
        if self._applies():
            self._check_block(node.body)
        self.generic_visit(node)

    def scope_entered(self, node) -> None:
        if self._applies():
            self._check_block(node.body)

    def visit_If(self, node: ast.If) -> None:
        if self._applies():
            self._check_block(node.body)
            self._check_block(node.orelse)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._applies():
            self._check_block(node.body)
            self._check_block(node.orelse)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        if self._applies():
            self._check_block(node.body)
            self._check_block(node.orelse)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        if self._applies():
            self._check_block(node.body)
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        if self._applies():
            self._check_block(node.body)
            self._check_block(node.orelse)
            self._check_block(node.finalbody)
            for handler in node.handlers:
                self._check_block(handler.body)
        self.generic_visit(node)

    def _check_block(self, stmts: list[ast.stmt]) -> None:
        for i, stmt in enumerate(stmts):
            call = self._bare_acquire(stmt)
            if call is None:
                continue
            owner = dotted_name(call.func.value)
            nxt = stmts[i + 1] if i + 1 < len(stmts) else None
            if self._released_in_finally(nxt, owner):
                continue
            shown = owner or "<lock>"
            self.report(
                call,
                f"`{shown}.acquire()` without `with` or try/finally release; "
                f"use `with {shown}:` so the lock cannot leak on exceptions",
            )

    @classmethod
    def _bare_acquire(cls, stmt: ast.stmt) -> ast.Call | None:
        """The ``.acquire`` call if ``stmt`` is a bare/assigned acquire."""
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        else:
            return None
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "acquire"
        ):
            return None
        owner = dotted_name(value.func.value) or ""
        if not any(frag in owner.lower() for frag in cls._LOCKY):
            return None
        return value

    @staticmethod
    def _released_in_finally(stmt: ast.stmt | None, owner: str | None) -> bool:
        """Whether ``stmt`` is a try/finally whose finalbody releases ``owner``."""
        if not isinstance(stmt, ast.Try) or not stmt.finalbody:
            return False
        for final_stmt in stmt.finalbody:
            for sub in ast.walk(final_stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"
                ):
                    rel_owner = dotted_name(sub.func.value)
                    if owner is None or rel_owner == owner:
                        return True
        return False


@register_rule
class DirectMatmulRule(Rule):
    """RPA007: raw GEMM calls that bypass the kernel-dispatch registry.

    Since the kernels package landed, every matrix product in model and
    training code is supposed to route through ``kernels.resolve`` — that
    is what makes ``REPRO_BACKEND=reference`` a trustworthy parity oracle
    and lets the perf gate attribute GEMM time per backend.  A direct
    ``np.matmul``/``@``/``np.einsum`` in ``nn/`` or ``core/`` silently
    pins that product to the default BLAS path on *every* backend.
    Intentional exceptions (e.g. the PCA analysis helpers, which are
    offline and backend-irrelevant) are fingerprinted in the baseline.
    """

    code = "RPA007"
    summary = "raw numpy GEMM bypasses the kernel-dispatch registry"
    rationale = (
        "Backend selection (REPRO_BACKEND / use_backend) only governs ops "
        "that resolve through repro.tensor.kernels; a direct np.matmul or "
        "ndarray @ in model/training code runs the same code on every "
        "backend, so reference-vs-fast parity no longer covers it and the "
        "per-backend perf counters under-report GEMM time."
    )

    #: Directories whose matrix products must go through the registry.
    guarded_dirs = ("nn/", "core/", "analysis/")

    #: Guarded directories that never hold Tensors — there, *every* ``@``
    #: is an ndarray product (nn/ and core/ mix Tensor ``@``, which
    #: already dispatches, so they get the evidence-based heuristic).
    ndarray_only_dirs = ("analysis/",)

    #: numpy free functions that perform a matrix product.
    _GEMM_CALLS = frozenset({"matmul", "dot", "einsum", "tensordot", "inner", "vdot"})

    def _applies(self) -> bool:
        return any(d in self.src.relpath for d in self.guarded_dirs)

    def visit_Call(self, node: ast.Call) -> None:
        if self._applies():
            name = dotted_name(node.func)
            if name is not None:
                head, _, tail = name.rpartition(".")
                if head in ("np", "numpy") and tail in self._GEMM_CALLS:
                    self.report(
                        node,
                        f"`{name}(...)` bypasses the kernel registry; build the "
                        "product from Tensor ops (or kernels.resolve('matmul'))",
                    )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            self._applies()
            and isinstance(node.op, ast.MatMult)
            and (
                any(d in self.src.relpath for d in self.ndarray_only_dirs)
                or self._on_ndarray(node)
            )
        ):
            self.report(
                node,
                "ndarray `@` bypasses the kernel registry; build the product "
                "from Tensor ops (or kernels.resolve('matmul'))",
            )
        self.generic_visit(node)

    @staticmethod
    def _on_ndarray(node: ast.BinOp) -> bool:
        """Heuristic: ``a.data @ b`` / ``np.*`` operands are ndarray products;
        a bare ``x @ y`` is assumed to be Tensor.__matmul__ (which already
        dispatches) and left alone."""
        for side in (node.left, node.right):
            name = dotted_name(side)
            if name is not None and (name.endswith(".data") or name.startswith(("np.", "numpy."))):
                return True
            if isinstance(side, ast.Call):
                fn = dotted_name(side.func)
                if fn is not None and fn.startswith(("np.", "numpy.")):
                    return True
        return False


@register_rule
class MultiprocessingBoundaryRule(Rule):
    """RPA008: direct ``multiprocessing`` primitives outside ``repro.parallel``.

    Process forking and shared-memory segments have lifecycle obligations —
    barrier teardown on crash, ``shm`` close/unlink ownership, resource-
    tracker hygiene, ``os._exit`` discipline in forked children — that
    ``repro.parallel`` centralizes (mirroring RPA006, which keeps lock
    discipline inside ``repro.serve``).  A stray ``multiprocessing`` import
    elsewhere either duplicates that machinery or leaks segments/zombies on
    the failure paths the parallel package already handles.  Route process
    parallelism through :class:`repro.parallel.ParallelTrainer` /
    :class:`repro.parallel.SharedArena` instead.
    """

    code = "RPA008"
    summary = "multiprocessing primitives belong in repro.parallel"
    rationale = (
        "Fork/shared-memory lifecycle (barrier aborts, shm unlink "
        "ownership, child exit discipline) is centralized in "
        "repro.parallel; ad-hoc multiprocessing use elsewhere leaks "
        "segments or hangs on worker crashes."
    )

    #: The designated home for process/shared-memory lifecycle code.
    allowed_dirs = ("parallel/",)

    #: Bare process-spawn syscalls count too.
    _FORK_CALLS = ("os.fork", "os.forkpty")

    def _applies(self) -> bool:
        return not any(d in self.src.relpath for d in self.allowed_dirs)

    @staticmethod
    def _is_mp(module: str | None) -> bool:
        return module is not None and (
            module == "multiprocessing" or module.startswith("multiprocessing.")
        )

    def visit_Import(self, node: ast.Import) -> None:
        if self._applies():
            for alias in node.names:
                if self._is_mp(alias.name):
                    self.report(
                        node,
                        f"`import {alias.name}` outside repro.parallel; use "
                        "ParallelTrainer/SharedArena (RPA008)",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._applies() and self._is_mp(node.module):
            names = ", ".join(alias.name for alias in node.names)
            self.report(
                node,
                f"`from {node.module} import {names}` outside repro.parallel; "
                "use ParallelTrainer/SharedArena (RPA008)",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._applies():
            name = dotted_name(node.func)
            if name in self._FORK_CALLS:
                self.report(
                    node,
                    f"`{name}()` outside repro.parallel; forked children need "
                    "the parallel package's exit/cleanup discipline",
                )
        self.generic_visit(node)


@register_rule
class SparseFormatBoundaryRule(Rule):
    """RPA009: sparse-format construction outside ``tensor/kernels/sparse*``.

    The packed CSR representation has load-bearing invariants — index
    arrays kept int32, value buffers shared by reference so dirty-flag
    refresh works, pack keys tied to live plane views, the density-cutoff
    fallback contract — that ``repro.tensor.kernels.sparse`` centralizes
    (mirroring RPA007/RPA008's boundary rules).  A raw ``scipy.sparse``
    import or ``csr_matrix(...)`` call in ``nn/``, ``core/``, or
    ``serve/`` builds structures those invariants do not cover: values
    copied instead of shared go stale after frozen updates, and ad-hoc
    formats dodge the parity tests and the auto-dispatch cutoff.  Go
    through the dispatch registry or the sparse module's public packing
    API (``pack_from_indices`` / ``register_weight`` / ``sparse_linear``)
    instead.
    """

    code = "RPA009"
    summary = "sparse-format construction belongs in tensor/kernels/sparse"
    rationale = (
        "Packed-format invariants (int32 indices, by-reference value "
        "buffers for dirty refresh, view-keyed registration, cutoff "
        "fallback) live in repro.tensor.kernels.sparse; ad-hoc "
        "scipy.sparse structures elsewhere silently break value refresh "
        "and skip the sparse parity/dispatch tests."
    )

    #: The designated home for sparse-format construction.
    allowed_paths = ("tensor/kernels/sparse",)

    #: scipy.sparse constructors that build a sparse-format object.
    _SPARSE_CTORS = frozenset(
        {
            "csr_matrix", "csc_matrix", "coo_matrix", "bsr_matrix",
            "lil_matrix", "dok_matrix", "dia_matrix",
            "csr_array", "csc_array", "coo_array", "bsr_array",
            "lil_array", "dok_array", "dia_array",
        }
    )

    def _applies(self) -> bool:
        return not any(p in self.src.relpath for p in self.allowed_paths)

    @staticmethod
    def _is_scipy_sparse(module: str | None) -> bool:
        return module is not None and (
            module == "scipy.sparse" or module.startswith("scipy.sparse.")
        )

    def visit_Import(self, node: ast.Import) -> None:
        if self._applies():
            for alias in node.names:
                if self._is_scipy_sparse(alias.name):
                    self.report(
                        node,
                        f"`import {alias.name}` outside tensor/kernels/sparse; "
                        "use the sparse backend's packing API (RPA009)",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._applies():
            imported_sparse = self._is_scipy_sparse(node.module) or (
                node.module == "scipy" and any(a.name == "sparse" for a in node.names)
            )
            if imported_sparse:
                names = ", ".join(alias.name for alias in node.names)
                self.report(
                    node,
                    f"`from {node.module} import {names}` outside "
                    "tensor/kernels/sparse; use the sparse backend's packing "
                    "API (RPA009)",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._applies():
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] in self._SPARSE_CTORS:
                self.report(
                    node,
                    f"`{name}(...)` builds a raw sparse format outside "
                    "tensor/kernels/sparse; use pack_from_indices/"
                    "register_weight so refresh and dispatch invariants hold",
                )
        self.generic_visit(node)
