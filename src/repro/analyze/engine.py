"""AST lint engine enforcing the repo's plane/pool/determinism invariants.

The flat-weight-plane refactor made several correctness properties
*invisible* to black-box tests: every ``Parameter.data`` must stay a
zero-copy view into the plane, hot-path functions must not allocate per
call, and DropBack's untracked-weight regeneration must stay
bit-deterministic (no stray global RNG, no silent float64 promotion).
This module provides the machinery that checks those properties at lint
time; the rules themselves live in :mod:`repro.analyze.rules`.

Architecture
------------

* :class:`Rule` — an ``ast.NodeVisitor`` with a registered ``code``
  (``RPA###``), scope tracking, and suppression-aware reporting.
* :class:`SourceFile` — one parsed file plus its ``# repro: noqa[...]``
  suppression table.
* :class:`LintEngine` — walks paths, runs every (selected) rule over
  every file, returns :class:`Violation` records.
* Baseline — a committed JSON file of *accepted* violation fingerprints.
  Fingerprints are ``code:path:scope`` (line-number free, so they survive
  unrelated edits); the engine fails only on violations beyond the
  baselined count for their fingerprint.

Suppression syntax::

    xg = np.empty(shape)  # repro: noqa[RPA002] forward output buffer

A bare ``# repro: noqa`` suppresses every rule on that line; the
bracketed form suppresses only the listed codes (comma separated).
Anything after the closing bracket is a free-form justification.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Violation",
    "Rule",
    "SourceFile",
    "LintEngine",
    "RULE_REGISTRY",
    "register_rule",
    "load_baseline",
    "write_baseline",
    "diff_baseline",
    "findings_to_dict",
    "BASELINE_SCHEMA_VERSION",
    "DEFAULT_BASELINE_NAME",
]

BASELINE_SCHEMA_VERSION = 1
DEFAULT_BASELINE_NAME = "analyze_baseline.json"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE)

#: All registered rule classes keyed by code (populated via ``register_rule``).
RULE_REGISTRY: dict[str, type["Rule"]] = {}


def register_rule(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY` by code."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    code: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    scope: str  # dotted enclosing def/class chain, or "<module>"

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline (stable across
        unrelated edits to the same file)."""
        return f"{self.code}:{self.path}:{self.scope}"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "scope": self.scope,
            "fingerprint": self.fingerprint,
        }


class SourceFile:
    """A parsed source file with its per-line suppression table."""

    def __init__(self, path: Path, relpath: str, text: str):
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        # line -> set of suppressed codes; empty set means "all codes".
        # A noqa on a comment-only line applies to the next code line, so
        # justifications too long for an inline comment can sit above.
        self.suppressions: dict[int, set[str]] = {}
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            m = _NOQA_RE.search(line)
            if not m:
                continue
            codes = m.group("codes")
            parsed = (
                set()
                if codes is None
                else {c.strip().upper() for c in codes.split(",") if c.strip()}
            )
            target = lineno
            if line.lstrip().startswith("#"):
                for nxt in range(lineno, len(lines)):
                    stripped = lines[nxt].strip()
                    if stripped and not stripped.startswith("#"):
                        target = nxt + 1
                        break
            existing = self.suppressions.get(target)
            if existing is None:
                self.suppressions[target] = parsed
            elif existing and parsed:
                existing.update(parsed)
            else:  # either side is "all codes"
                self.suppressions[target] = set()

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return not codes or code in codes


class Rule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set ``code``/``summary``/``rationale`` and override the
    ``visit_*`` methods they need.  Scope (enclosing class/function chain)
    is tracked automatically; subclasses that care about function entry
    override :meth:`scope_entered` / :meth:`scope_exited` rather than
    ``visit_FunctionDef`` so the bookkeeping stays in one place.
    """

    code: str = ""
    summary: str = ""
    rationale: str = ""

    def __init__(self, src: SourceFile):
        self.src = src
        self.violations: list[Violation] = []
        self._scope: list[str] = []

    # -- scope tracking ------------------------------------------------ #

    def _visit_scoped(self, node) -> None:
        self._scope.append(node.name)
        self.scope_entered(node)
        try:
            self.generic_visit(node)
        finally:
            self.scope_exited(node)
            self._scope.pop()

    visit_FunctionDef = _visit_scoped
    visit_AsyncFunctionDef = _visit_scoped
    visit_ClassDef = _visit_scoped

    def scope_entered(self, node) -> None:  # pragma: no cover - hook
        pass

    def scope_exited(self, node) -> None:  # pragma: no cover - hook
        pass

    @property
    def scope(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    # -- reporting ----------------------------------------------------- #

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.src.is_suppressed(self.code, line):
            return
        self.violations.append(
            Violation(
                code=self.code,
                path=self.src.relpath,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                scope=self.scope,
            )
        )

    def run(self) -> list[Violation]:
        self.visit(self.src.tree)
        return self.violations


# ---------------------------------------------------------------------- #
# shared AST helpers (used by several rules)
# ---------------------------------------------------------------------- #


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_keywords(node: ast.Call) -> set[str]:
    return {kw.arg for kw in node.keywords if kw.arg is not None}


def contains_float_constant(node: ast.AST) -> bool:
    """Whether any literal in the subtree is a Python float."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
    return False


# ---------------------------------------------------------------------- #
# engine
# ---------------------------------------------------------------------- #


class LintEngine:
    """Run a set of rules over files/directories.

    Parameters
    ----------
    select:
        Rule codes to run (default: every registered rule).
    root:
        Directory violation paths are reported relative to (default: the
        common parent inferred per-path; pass the repo root for stable
        baseline fingerprints).
    """

    def __init__(self, select: Iterable[str] | None = None, root: Path | str | None = None):
        codes = list(select) if select is not None else sorted(RULE_REGISTRY)
        unknown = [c for c in codes if c not in RULE_REGISTRY]
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
        self.rule_classes = [RULE_REGISTRY[c] for c in codes]
        self.root = Path(root).resolve() if root is not None else None
        self.errors: list[str] = []

    def _relpath(self, path: Path) -> str:
        path = path.resolve()
        if self.root is not None:
            try:
                return path.relative_to(self.root).as_posix()
            except ValueError:
                pass
        return path.as_posix()

    @staticmethod
    def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
        for p in paths:
            p = Path(p)
            if p.is_dir():
                yield from sorted(p.rglob("*.py"))
            elif p.suffix == ".py":
                yield p

    def lint_file(self, path: Path | str) -> list[Violation]:
        path = Path(path)
        text = path.read_text()
        try:
            src = SourceFile(path, self._relpath(path), text)
        except SyntaxError as exc:  # unparseable file is itself a finding
            self.errors.append(f"{self._relpath(path)}: syntax error: {exc}")
            return []
        out: list[Violation] = []
        for cls in self.rule_classes:
            out.extend(cls(src).run())
        return out

    def lint_paths(self, paths: Iterable[Path | str]) -> list[Violation]:
        violations: list[Violation] = []
        for path in self.iter_python_files(paths):
            violations.extend(self.lint_file(path))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return violations


# ---------------------------------------------------------------------- #
# baseline workflow
# ---------------------------------------------------------------------- #


@dataclass
class Baseline:
    """Accepted violation fingerprints with per-fingerprint counts."""

    entries: Counter = field(default_factory=Counter)
    path: Path | None = None

    @property
    def total(self) -> int:
        return sum(self.entries.values())


def load_baseline(path: Path | str) -> Baseline:
    path = Path(path)
    data = json.loads(path.read_text())
    if data.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baseline schema {data.get('schema_version')!r} in {path}"
        )
    entries = Counter({str(k): int(v) for k, v in data.get("entries", {}).items()})
    return Baseline(entries=entries, path=path)


def write_baseline(violations: Iterable[Violation], path: Path | str) -> Path:
    """Write the violations' fingerprints as the new accepted baseline."""
    entries = Counter(v.fingerprint for v in violations)
    doc = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "comment": (
            "Accepted repro-analyze violations. Regenerate with "
            "`repro analyze <paths> --update-baseline`; new code must not "
            "add entries."
        ),
        "entries": {k: entries[k] for k in sorted(entries)},
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def diff_baseline(
    violations: list[Violation], baseline: Baseline
) -> tuple[list[Violation], Counter]:
    """Split findings into (new violations, fixed baseline entries).

    For each fingerprint, up to the baselined count of occurrences is
    accepted; any excess is new.  Baseline entries with fewer current
    occurrences than recorded are reported as fixed (candidates for
    ``--update-baseline``).
    """
    seen = Counter(v.fingerprint for v in violations)
    budget = Counter(baseline.entries)
    new: list[Violation] = []
    for v in violations:
        if budget[v.fingerprint] > 0:
            budget[v.fingerprint] -= 1
        else:
            new.append(v)
    fixed = Counter(
        {
            fp: count - seen.get(fp, 0)
            for fp, count in baseline.entries.items()
            if seen.get(fp, 0) < count
        }
    )
    return new, fixed


def findings_to_dict(
    violations: list[Violation],
    new: list[Violation],
    baseline: Baseline | None,
    paths: list[str],
    errors: list[str] | None = None,
) -> dict:
    """JSON-ready findings document (the CI artifact format)."""
    from repro.analyze import rules as _rules  # late: registry must be populated

    del _rules
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "tool": "repro.analyze",
        "paths": list(paths),
        "rules": {
            code: {"summary": cls.summary, "rationale": cls.rationale}
            for code, cls in sorted(RULE_REGISTRY.items())
        },
        "summary": {
            "total": len(violations),
            "new": len(new),
            "baselined": len(violations) - len(new),
            "baseline_path": str(baseline.path) if baseline and baseline.path else None,
            "errors": len(errors or []),
        },
        "violations": [v.to_dict() for v in violations],
        "new": [v.to_dict() for v in new],
        "errors": list(errors or []),
    }
