"""AST lint engine enforcing the repo's plane/pool/determinism invariants.

The flat-weight-plane refactor made several correctness properties
*invisible* to black-box tests: every ``Parameter.data`` must stay a
zero-copy view into the plane, hot-path functions must not allocate per
call, and DropBack's untracked-weight regeneration must stay
bit-deterministic (no stray global RNG, no silent float64 promotion).
This module provides the machinery that checks those properties at lint
time; the rules themselves live in :mod:`repro.analyze.rules`.

Architecture
------------

The engine runs in two passes:

* **Pass 1 (per-file)** — every selected :class:`Rule` (an
  ``ast.NodeVisitor`` with a registered ``code``, scope tracking, and
  suppression-aware reporting) walks each :class:`SourceFile`
  independently.  While walking, the engine also collects each file's
  facts (locks, barriers, arena writes, RNG draws, calls — see
  :mod:`repro.analyze.facts`) into a whole-package
  :class:`~repro.analyze.callgraph.PackageIndex`.
* **Pass 2 (interprocedural)** — every selected :class:`ProjectRule`
  queries the index (call graph, reachability, lock/barrier fixpoints)
  and reports findings anywhere in the package.  The concurrency rules
  RPA010-013 live in :mod:`repro.analyze.concurrency`.
* Baseline — a committed JSON file of *accepted* violation fingerprints.
  Fingerprints are ``code:scope:normalized-snippet`` (line-number and
  path free, so they survive unrelated edits *and* file renames); the
  engine fails only on violations beyond the baselined count for their
  fingerprint.  :func:`explain_drift` pairs vanished and new
  fingerprints when they do churn.

Suppression syntax::

    xg = np.empty(shape)  # repro: noqa[RPA002] forward output buffer

A bare ``# repro: noqa`` suppresses every rule on that line; the
bracketed form suppresses only the listed codes (comma separated).
Anything after the closing bracket is a free-form justification.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Violation",
    "Rule",
    "ProjectRule",
    "SourceFile",
    "LintEngine",
    "RULE_REGISTRY",
    "register_rule",
    "load_baseline",
    "write_baseline",
    "diff_baseline",
    "explain_drift",
    "findings_to_dict",
    "format_github",
    "BASELINE_SCHEMA_VERSION",
    "DEFAULT_BASELINE_NAME",
]

# v2: fingerprints changed from `code:path:scope` to `code:scope:snippet`
# (move-resilient).  Regenerate v1 baselines with `--update-baseline`.
BASELINE_SCHEMA_VERSION = 2
DEFAULT_BASELINE_NAME = "analyze_baseline.json"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE)

#: All registered rule classes keyed by code (populated via ``register_rule``).
#: Holds both per-file :class:`Rule` and interprocedural :class:`ProjectRule`
#: subclasses; the engine dispatches on the base class.
RULE_REGISTRY: dict[str, type] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to :data:`RULE_REGISTRY` by code."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    code: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    scope: str  # dotted enclosing def/class chain, or "<module>"
    snippet: str = ""  # whitespace-normalized source line at `line`

    @property
    def fingerprint(self) -> str:
        """Line-number- and path-free identity used by the baseline:
        ``code:scope:snippet``.  Stable across unrelated edits *and* file
        renames; the path survives in the record as a drift tiebreaker."""
        return f"{self.code}:{self.scope}:{self.snippet}"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "scope": self.scope,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


def format_github(v: Violation) -> str:
    """One GitHub Actions workflow-command annotation for a violation."""

    def esc(s: str) -> str:
        return s.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")

    return (
        f"::error file={esc(v.path)},line={v.line},col={v.col + 1},"
        f"title={esc(v.code)}::{esc(v.message)}"
    )


class SourceFile:
    """A parsed source file with its per-line suppression table."""

    def __init__(self, path: Path, relpath: str, text: str):
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        self.lines = text.splitlines()
        # line -> set of suppressed codes; empty set means "all codes".
        # A noqa on a comment-only line applies to the next code line, so
        # justifications too long for an inline comment can sit above.
        self.suppressions: dict[int, set[str]] = {}
        lines = self.lines
        for lineno, line in enumerate(lines, start=1):
            m = _NOQA_RE.search(line)
            if not m:
                continue
            codes = m.group("codes")
            parsed = (
                set()
                if codes is None
                else {c.strip().upper() for c in codes.split(",") if c.strip()}
            )
            target = lineno
            if line.lstrip().startswith("#"):
                for nxt in range(lineno, len(lines)):
                    stripped = lines[nxt].strip()
                    if stripped and not stripped.startswith("#"):
                        target = nxt + 1
                        break
            self._merge_suppression(target, parsed)
        self._expand_statement_spans()

    def _merge_suppression(self, line: int, codes: set[str]) -> None:
        existing = self.suppressions.get(line)
        if existing is None:
            self.suppressions[line] = set(codes)
        elif existing and codes:
            existing.update(codes)
        else:  # either side is "all codes"
            self.suppressions[line] = set()

    def _expand_statement_spans(self) -> None:
        """Spread each suppression over every physical line of its statement.

        A ``# repro: noqa[...]`` on *any* line of a multi-line statement
        (the opening line, a wrapped argument, the closing paren) covers
        the whole statement, so a rule reporting on a continuation line
        cannot escape a suppression written on the first line — and vice
        versa.  Compound statements (``with``/``for``/``def``...) only
        spread over their header lines, never into their body.
        """
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            start = node.lineno
            end = getattr(node, "end_lineno", None) or start
            body = getattr(node, "body", None)
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                end = max(start, body[0].lineno - 1)
            if end <= start:
                continue
            merged: set[str] | None = None
            for ln in range(start, end + 1):
                codes = self.suppressions.get(ln)
                if codes is None:
                    continue
                if merged is None:
                    merged = set(codes)
                elif merged and codes:
                    merged |= codes
                else:
                    merged = set()
            if merged is None:
                continue
            for ln in range(start, end + 1):
                self._merge_suppression(ln, merged)

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return not codes or code in codes

    def snippet(self, line: int) -> str:
        """Whitespace-normalized source at ``line`` (fingerprint component)."""
        if 1 <= line <= len(self.lines):
            return " ".join(self.lines[line - 1].split())[:160]
        return ""


class Rule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set ``code``/``summary``/``rationale`` and override the
    ``visit_*`` methods they need.  Scope (enclosing class/function chain)
    is tracked automatically; subclasses that care about function entry
    override :meth:`scope_entered` / :meth:`scope_exited` rather than
    ``visit_FunctionDef`` so the bookkeeping stays in one place.
    """

    code: str = ""
    summary: str = ""
    rationale: str = ""

    def __init__(self, src: SourceFile):
        self.src = src
        self.violations: list[Violation] = []
        self._scope: list[str] = []

    # -- scope tracking ------------------------------------------------ #

    def _visit_scoped(self, node) -> None:
        self._scope.append(node.name)
        self.scope_entered(node)
        try:
            self.generic_visit(node)
        finally:
            self.scope_exited(node)
            self._scope.pop()

    visit_FunctionDef = _visit_scoped
    visit_AsyncFunctionDef = _visit_scoped
    visit_ClassDef = _visit_scoped

    def scope_entered(self, node) -> None:  # pragma: no cover - hook
        pass

    def scope_exited(self, node) -> None:  # pragma: no cover - hook
        pass

    @property
    def scope(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    # -- reporting ----------------------------------------------------- #

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.src.is_suppressed(self.code, line):
            return
        self.violations.append(
            Violation(
                code=self.code,
                path=self.src.relpath,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                scope=self.scope,
                snippet=self.src.snippet(line),
            )
        )

    def run(self) -> list[Violation]:
        self.visit(self.src.tree)
        return self.violations


class ProjectRule:
    """Base class for pass-2 interprocedural rules.

    Instantiated once per lint run with the whole-package
    :class:`~repro.analyze.callgraph.PackageIndex` (whose ``sources``
    attribute maps relpath -> :class:`SourceFile` for suppression and
    snippet lookups).  Subclasses override :meth:`check` and call
    :meth:`report` with explicit locations.
    """

    code: str = ""
    summary: str = ""
    rationale: str = ""

    def __init__(self, index):
        self.index = index
        self.violations: list[Violation] = []

    def report(self, relpath: str, line: int, col: int, message: str, scope: str) -> None:
        src = getattr(self.index, "sources", {}).get(relpath)
        if src is not None and src.is_suppressed(self.code, line):
            return
        self.violations.append(
            Violation(
                code=self.code,
                path=relpath,
                line=line,
                col=col,
                message=message,
                scope=scope,
                snippet=src.snippet(line) if src is not None else "",
            )
        )

    def check(self) -> None:
        raise NotImplementedError

    def run(self) -> list[Violation]:
        self.check()
        return self.violations


# ---------------------------------------------------------------------- #
# shared AST helpers (used by several rules)
# ---------------------------------------------------------------------- #


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_keywords(node: ast.Call) -> set[str]:
    return {kw.arg for kw in node.keywords if kw.arg is not None}


def contains_float_constant(node: ast.AST) -> bool:
    """Whether any literal in the subtree is a Python float."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
    return False


# ---------------------------------------------------------------------- #
# engine
# ---------------------------------------------------------------------- #


class LintEngine:
    """Run a set of rules over files/directories.

    Parameters
    ----------
    select:
        Rule codes to run (default: every registered rule).
    root:
        Directory violation paths are reported relative to (default: the
        common parent inferred per-path; pass the repo root for stable
        baseline fingerprints).
    index_cache:
        Optional JSON path caching pass-1 facts keyed on per-file source
        hashes (the CI analyze job persists it across runs).
    """

    def __init__(
        self,
        select: Iterable[str] | None = None,
        root: Path | str | None = None,
        index_cache: Path | str | None = None,
    ):
        codes = list(select) if select is not None else sorted(RULE_REGISTRY)
        unknown = [c for c in codes if c not in RULE_REGISTRY]
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
        classes = [RULE_REGISTRY[c] for c in codes]
        self.rule_classes = [c for c in classes if not issubclass(c, ProjectRule)]
        self.project_rule_classes = [c for c in classes if issubclass(c, ProjectRule)]
        self.root = Path(root).resolve() if root is not None else None
        self.index_cache = index_cache
        self.index = None  # the pass-1 PackageIndex of the last lint_paths run
        self.errors: list[str] = []

    def _relpath(self, path: Path) -> str:
        path = path.resolve()
        if self.root is not None:
            try:
                return path.relative_to(self.root).as_posix()
            except ValueError:
                pass
        return path.as_posix()

    @staticmethod
    def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
        for p in paths:
            p = Path(p)
            if p.is_dir():
                yield from sorted(p.rglob("*.py"))
            elif p.suffix == ".py":
                yield p

    def _parse(self, path: Path) -> SourceFile | None:
        text = path.read_text()
        try:
            return SourceFile(path, self._relpath(path), text)
        except SyntaxError as exc:  # unparseable file is itself a finding
            self.errors.append(f"{self._relpath(path)}: syntax error: {exc}")
            return None

    def lint_file(self, path: Path | str) -> list[Violation]:
        """Run the per-file rules over one file (pass 1 only)."""
        src = self._parse(Path(path))
        if src is None:
            return []
        out: list[Violation] = []
        for cls in self.rule_classes:
            out.extend(cls(src).run())
        return out

    def build_index(self, sources: dict[str, SourceFile]):
        """Build the pass-1 package index over already-parsed sources."""
        from repro.analyze.callgraph import build_index  # late: keeps engine ast-only

        index = build_index(
            {rp: (src.tree, src.text) for rp, src in sources.items()},
            cache_path=self.index_cache,
        )
        index.sources = sources
        return index

    def lint_paths(self, paths: Iterable[Path | str]) -> list[Violation]:
        violations: list[Violation] = []
        sources: dict[str, SourceFile] = {}
        for path in self.iter_python_files(paths):
            src = self._parse(path)
            if src is None:
                continue
            sources[src.relpath] = src
            for cls in self.rule_classes:
                violations.extend(cls(src).run())
        if self.project_rule_classes or self.index_cache is not None:
            self.index = self.build_index(sources)
            for cls in self.project_rule_classes:
                violations.extend(cls(self.index).run())
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return violations


# ---------------------------------------------------------------------- #
# baseline workflow
# ---------------------------------------------------------------------- #


@dataclass
class Baseline:
    """Accepted violation fingerprints with per-fingerprint counts."""

    entries: Counter = field(default_factory=Counter)
    path: Path | None = None

    @property
    def total(self) -> int:
        return sum(self.entries.values())


def load_baseline(path: Path | str) -> Baseline:
    path = Path(path)
    data = json.loads(path.read_text())
    if data.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baseline schema {data.get('schema_version')!r} in {path}"
        )
    entries = Counter({str(k): int(v) for k, v in data.get("entries", {}).items()})
    return Baseline(entries=entries, path=path)


def write_baseline(violations: Iterable[Violation], path: Path | str) -> Path:
    """Write the violations' fingerprints as the new accepted baseline."""
    entries = Counter(v.fingerprint for v in violations)
    doc = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "comment": (
            "Accepted repro-analyze violations. Regenerate with "
            "`repro analyze <paths> --update-baseline`; new code must not "
            "add entries."
        ),
        "entries": {k: entries[k] for k in sorted(entries)},
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def diff_baseline(
    violations: list[Violation], baseline: Baseline
) -> tuple[list[Violation], Counter]:
    """Split findings into (new violations, fixed baseline entries).

    For each fingerprint, up to the baselined count of occurrences is
    accepted; any excess is new.  Baseline entries with fewer current
    occurrences than recorded are reported as fixed (candidates for
    ``--update-baseline``).
    """
    seen = Counter(v.fingerprint for v in violations)
    budget = Counter(baseline.entries)
    new: list[Violation] = []
    for v in violations:
        if budget[v.fingerprint] > 0:
            budget[v.fingerprint] -= 1
        else:
            new.append(v)
    fixed = Counter(
        {
            fp: count - seen.get(fp, 0)
            for fp, count in baseline.entries.items()
            if seen.get(fp, 0) < count
        }
    )
    return new, fixed


def explain_drift(violations: list[Violation], baseline: Baseline) -> list[dict]:
    """Pair vanished baseline fingerprints with new findings.

    For every baseline entry that no longer occurs (at its recorded
    count), look for a new finding that is plausibly the *same* issue
    after an edit: same code and either the same scope (the reported line
    changed) or the same snippet (the enclosing scope was renamed or the
    code moved).  Each new finding is consumed by at most one vanished
    entry; leftovers are reported as genuinely new/fixed.
    """
    new, fixed = diff_baseline(violations, baseline)
    report: list[dict] = []
    unmatched = list(new)
    for fp in sorted(fixed):
        code, scope, snippet = (fp.split(":", 2) + ["", ""])[:3]
        best: Violation | None = None
        reason = "fixed (no matching new finding)"
        for v in unmatched:
            if v.code != code:
                continue
            if v.scope == scope:
                best, reason = v, "same scope, snippet changed (edited line)"
                break
            if best is None and v.snippet == snippet:
                best, reason = v, f"same snippet, scope moved to {v.path}:{v.scope}"
        entry: dict = {"vanished": fp, "count": fixed[fp], "reason": reason}
        if best is not None:
            entry["paired_with"] = best.to_dict()
            unmatched.remove(best)
        report.append(entry)
    for v in unmatched:
        report.append(
            {"vanished": None, "reason": "genuinely new", "paired_with": v.to_dict()}
        )
    return report


def findings_to_dict(
    violations: list[Violation],
    new: list[Violation],
    baseline: Baseline | None,
    paths: list[str],
    errors: list[str] | None = None,
) -> dict:
    """JSON-ready findings document (the CI artifact format)."""
    # late imports: the registry must be populated before we list it
    from repro.analyze import concurrency as _concurrency
    from repro.analyze import rules as _rules

    del _rules, _concurrency
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "tool": "repro.analyze",
        "paths": list(paths),
        "rules": {
            code: {"summary": cls.summary, "rationale": cls.rationale}
            for code, cls in sorted(RULE_REGISTRY.items())
        },
        "summary": {
            "total": len(violations),
            "new": len(new),
            "baselined": len(violations) - len(new),
            "baseline_path": str(baseline.path) if baseline and baseline.path else None,
            "errors": len(errors or []),
        },
        "violations": [v.to_dict() for v in violations],
        "new": [v.to_dict() for v in new],
        "errors": list(errors or []),
    }
