"""Static analysis + runtime sanitizers for the repo's core invariants.

Two complementary halves:

* :mod:`repro.analyze.engine` / :mod:`repro.analyze.rules` — an AST lint
  pass (``repro analyze`` on the CLI) with repo-specific rules RPA001-005
  guarding the flat-weight-plane aliasing, workspace-pool discipline, and
  bit-deterministic regeneration that the DropBack implementation depends
  on.  Violations diff against a committed baseline so CI fails only on
  *new* ones.
* :mod:`repro.analyze.sanitize` — runtime sanitizers (plane-integrity
  checker, workspace-pool poisoner, NaN/inf gradient tripwire) switched
  on via ``REPRO_SANITIZE=1`` or ``Trainer(..., sanitize=True)``.

See ``docs/static-analysis.md`` for the rule catalog and workflows.
"""

from repro.analyze.engine import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    LintEngine,
    RULE_REGISTRY,
    Violation,
    diff_baseline,
    findings_to_dict,
    load_baseline,
    write_baseline,
)
from repro.analyze import rules  # noqa: F401 - imported to populate RULE_REGISTRY
from repro.analyze.sanitize import (
    GradientTripwireError,
    PlaneIntegrityError,
    SanitizerError,
    check_plane_integrity,
    sanitize_enabled,
    sanitizer_callbacks,
)

__all__ = [
    "LintEngine",
    "Violation",
    "Baseline",
    "RULE_REGISTRY",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "write_baseline",
    "diff_baseline",
    "findings_to_dict",
    "rules",
    "SanitizerError",
    "PlaneIntegrityError",
    "GradientTripwireError",
    "check_plane_integrity",
    "sanitize_enabled",
    "sanitizer_callbacks",
]
