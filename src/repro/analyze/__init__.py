"""Static analysis + runtime sanitizers for the repo's core invariants.

Two complementary halves:

* :mod:`repro.analyze.engine` / :mod:`repro.analyze.rules` /
  :mod:`repro.analyze.concurrency` — a two-pass AST lint engine
  (``repro analyze`` on the CLI).  Pass 1 extracts per-function facts
  (:mod:`repro.analyze.facts`) and builds a whole-package call graph
  (:mod:`repro.analyze.callgraph`); pass 2 runs the per-file rules
  RPA001-009 plus the interprocedural concurrency rules RPA010-013
  (lock-order cycles, unfenced arena writes, fork-tainted RNG,
  unguarded shared mutation) over that index.  Violations diff against
  a committed baseline so CI fails only on *new* ones.
* :mod:`repro.analyze.sanitize` — runtime sanitizers (plane-integrity
  checker, workspace-pool poisoner, NaN/inf gradient tripwire, lock-order
  watchdog, arena write-fence) switched on via ``REPRO_SANITIZE=1`` or
  ``Trainer(..., sanitize=True)``.

See ``docs/static-analysis.md`` for the rule catalog and workflows.
"""

from repro.analyze.engine import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    LintEngine,
    ProjectRule,
    RULE_REGISTRY,
    Violation,
    diff_baseline,
    explain_drift,
    findings_to_dict,
    format_github,
    load_baseline,
    write_baseline,
)
from repro.analyze import rules  # noqa: F401 - imported to populate RULE_REGISTRY
from repro.analyze import concurrency  # noqa: F401 - populates RPA010-013
from repro.analyze.sanitize import (
    ArenaFenceError,
    ArenaWriteFence,
    GradientTripwireError,
    LockOrderError,
    LockOrderWatchdog,
    PlaneIntegrityError,
    SanitizerError,
    check_plane_integrity,
    lock_watchdog,
    sanitize_enabled,
    sanitizer_callbacks,
    tracked_lock,
)

__all__ = [
    "LintEngine",
    "Violation",
    "Baseline",
    "ProjectRule",
    "RULE_REGISTRY",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "write_baseline",
    "diff_baseline",
    "explain_drift",
    "findings_to_dict",
    "format_github",
    "rules",
    "concurrency",
    "SanitizerError",
    "PlaneIntegrityError",
    "GradientTripwireError",
    "LockOrderError",
    "ArenaFenceError",
    "LockOrderWatchdog",
    "ArenaWriteFence",
    "check_plane_integrity",
    "lock_watchdog",
    "tracked_lock",
    "sanitize_enabled",
    "sanitizer_callbacks",
]
