"""Interprocedural concurrency rules RPA010-RPA013 (pass 2).

These rules run over the pass-1 :class:`~repro.analyze.callgraph.PackageIndex`
rather than a single file, because the bugs they catch only exist *between*
functions: a lock-order inversion across ``serve/`` and ``parallel/``
modules, an arena write whose barrier fence lives in the caller, an RNG
draw several calls below a fork, a registry mutation whose lock is taken
two frames up.  Each has a runtime mirror in
:mod:`repro.analyze.sanitize` (lock-order watchdog, arena write-fence)
for what static analysis cannot see.

=======  ==============================================================
RPA010   lock-order cycles over the global acquisition-order graph
RPA011   SharedArena data-region writes not fenced by a step barrier
RPA012   RNG draws reachable from a fork/worker spawn without reseeding
RPA013   lock-owning class state mutated without its lock held
=======  ==============================================================
"""

from __future__ import annotations

from repro.analyze.engine import ProjectRule, register_rule
from repro.analyze.facts import ARENA_DATA_REGIONS, FunctionFacts

__all__ = [
    "LockOrderCycleRule",
    "BarrierPhaseWriteRule",
    "ForkTaintedRngRule",
    "UnguardedSharedMutationRule",
]

#: Directories whose code participates in the concurrency analysis.
CONCURRENT_DIRS = ("serve/", "parallel/")

#: Kernel-dispatch registry mutators (process-global state; RPA013).
_KERNEL_MUTATORS = frozenset({"set_backend", "set_op_backend", "use_backend"})


def _in_dirs(relpath: str, dirs=CONCURRENT_DIRS) -> bool:
    return any(d in relpath for d in dirs)


@register_rule
class LockOrderCycleRule(ProjectRule):
    """RPA010: cycle in the global lock-acquisition-order graph.

    Every ``with lock_b:`` while ``lock_a`` is held — directly, or through
    a callee that acquires somewhere below it — adds the edge
    ``lock_a -> lock_b``.  Any cycle in the aggregated graph over
    ``serve/`` + ``parallel/`` means two code paths can acquire the same
    pair of locks in opposite orders: a potential deadlock no single file
    shows.  Locks are identified by class attribute (``Cls.attr``) or
    module-level name, the standard lockset abstraction.
    """

    code = "RPA010"
    summary = "lock-acquisition-order cycle across serve/parallel (deadlock risk)"
    rationale = (
        "Two threads taking the same pair of locks in opposite orders can "
        "deadlock; the order graph must stay acyclic package-wide."
    )

    def check(self) -> None:
        # edge (a, b) -> first witness (relpath, lineno, scope, description)
        edges: dict[tuple[str, str], tuple[str, int, str, str]] = {}
        norm = self.index.normalize_lock
        for facts in self.index.functions.values():
            if not _in_dirs(facts.relpath):
                continue
            for acq in facts.acquires:
                lock = norm(acq.lock)
                for held in acq.held:
                    self._add_edge(
                        edges, norm(held), lock, facts, acq.lineno,
                        f"acquires {lock} while holding {norm(held)}",
                    )
            for callee, lineno, held in self.index.call_edges(facts.qualname):
                if not held:
                    continue
                for lock in self.index.locks_below(callee):
                    for h in held:
                        self._add_edge(
                            edges, norm(h), lock, facts, lineno,
                            f"calls {callee.split(':')[-1]} (which may acquire "
                            f"{lock}) while holding {norm(h)}",
                        )

        graph: dict[str, set[str]] = {}
        for (a, b) in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        for scc in _strongly_connected(graph):
            in_cycle = set(scc)
            if len(scc) < 2 and not (
                len(scc) == 1 and scc[0] in graph.get(scc[0], ())
            ):
                continue
            witnesses = sorted(
                (site, (a, b))
                for (a, b), site in edges.items()
                if a in in_cycle and b in in_cycle
            )
            (relpath, lineno, scope, desc), _edge = witnesses[0]
            others = "; ".join(
                f"{a} -> {b} at {s[0]}:{s[1]}" for s, (a, b) in witnesses[1:3]
            )
            self.report(
                relpath, lineno, 0,
                f"lock-order cycle through {{{', '.join(sorted(in_cycle))}}}: "
                f"{desc}" + (f" (opposing: {others})" if others else ""),
                scope,
            )

    @staticmethod
    def _add_edge(edges, a: str, b: str, facts: FunctionFacts, lineno: int, desc: str):
        if a == b:
            return
        edges.setdefault((a, b), (facts.relpath, lineno, facts.scope, desc))


def _strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC over a small adjacency dict (deterministic order)."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strong(v: str) -> None:
        index_of[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph.get(v, ())):
            if w not in index_of:
                strong(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index_of[w])
        if low[v] == index_of[v]:
            comp = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            sccs.append(sorted(comp))

    for v in sorted(graph):
        if v not in index_of:
            strong(v)
    return sccs


@register_rule
class BarrierPhaseWriteRule(ProjectRule):
    """RPA011: SharedArena data-region write not fenced by a barrier.

    In the lockstep protocol every write to ``plane``/``grads``/``losses``
    must be followed by a barrier before the step phase ends — otherwise a
    peer rank can read a half-written region.  A write is *fenced* if a
    barrier point (a direct ``barrier.wait`` or a call into a function
    that transitively awaits one) follows it in the same function, or if
    every reachable call site of the writing function is itself fenced in
    its caller.  ``timers``/``control`` are monitoring-only and exempt.
    """

    code = "RPA011"
    summary = "SharedArena data write not provably fenced by a step barrier"
    rationale = (
        "An unfenced write races the peer ranks' reads of the same region "
        "and silently breaks the bit-determinism contract."
    )

    def check(self) -> None:
        roots = [
            q for q, f in self.index.functions.items()
            if "parallel/" in f.relpath and f.relpath.endswith("trainer.py")
        ]
        reach = self.index.reachable(roots)
        for q in sorted(reach):
            facts = self.index.functions[q]
            for w in facts.arena_writes:
                if w.region not in ARENA_DATA_REGIONS:
                    continue
                if not self._fenced(q, w.lineno, reach, frozenset()):
                    self.report(
                        facts.relpath, w.lineno, 0,
                        f"write to SharedArena.{w.region} is not followed by a "
                        "barrier before the step phase ends (directly or in "
                        "any caller) — peer ranks may read a torn region",
                        facts.scope,
                    )

    def _barrier_points(self, q: str) -> list[int]:
        facts = self.index.functions[q]
        points = list(facts.barrier_waits)
        for callee, lineno, _held in self.index.call_edges(q):
            if self.index.awaits_barrier_below(callee):
                points.append(lineno)
        return points

    def _fenced(self, q: str, lineno: int, reach: set[str], visiting: frozenset) -> bool:
        if q in visiting:
            return False
        if any(pt > lineno for pt in self._barrier_points(q)):
            return True
        sites = self.index.callers_of(q, reach - {q})
        if not sites:
            return False
        return all(
            self._fenced(caller, site_line, reach, visiting | {q})
            for caller, site_line in sites
        )


@register_rule
class ForkTaintedRngRule(ProjectRule):
    """RPA012: RNG draw reachable from a worker spawn without reseeding.

    Forked workers inherit the parent's RNG state, so any draw on a
    generator that was not freshly seeded on a ``(seed, epoch, ...)``-pure
    key after the spawn point is nondeterministic across worker counts —
    exactly the bug the ``epoch_order``/``epoch_rng`` discipline exists to
    prevent.  Flags, in spawn-reachable code: legacy ``np.random.*``
    global-state calls, unseeded ``default_rng()``/``RandomState()``, and
    draw methods on generators with no local seeded binding.
    """

    code = "RPA012"
    summary = "np.random/Generator draw reachable from fork/spawn without reseed"
    rationale = (
        "Worker-inherited RNG state diverges across worker counts and "
        "breaks the (seed, epoch)-pure reproducibility contract."
    )

    _MESSAGES = {
        "global": "legacy np.random global-state call",
        "unseeded": "unseeded generator construction",
        "ambient": "draw on a generator not seeded in this function",
    }

    def check(self) -> None:
        spawn_roots: set[str] = set()
        fork_sites: list[tuple[str, int]] = []  # (qualname, fork lineno)
        for q, facts in self.index.functions.items():
            for spawn in facts.spawns:
                if spawn.kind == "process" and spawn.target:
                    spawn_roots.update(self.index.resolve_call(facts, spawn.target))
                elif spawn.kind == "fork":
                    fork_sites.append((q, spawn.lineno))

        reach = self.index.reachable(sorted(spawn_roots))
        reported: set[tuple[str, int]] = set()
        for q in sorted(reach):
            self._flag_draws(q, min_lineno=0, reported=reported)

        for q, fork_line in fork_sites:
            # Post-fork code in the forking function itself...
            self._flag_draws(q, min_lineno=fork_line, reported=reported)
            # ...and everything called after the fork point.
            post_roots = [
                callee
                for callee, lineno, _held in self.index.call_edges(q)
                if lineno > fork_line
            ]
            for pq in sorted(self.index.reachable(post_roots)):
                self._flag_draws(pq, min_lineno=0, reported=reported)

    def _flag_draws(self, q: str, min_lineno: int, reported: set) -> None:
        facts = self.index.functions.get(q)
        if facts is None:
            return
        for draw in facts.rng_draws:
            if draw.lineno <= min_lineno and min_lineno:
                continue
            key = (facts.relpath, draw.lineno)
            if key in reported:
                continue
            reported.add(key)
            what = self._MESSAGES.get(draw.kind, draw.kind)
            self.report(
                facts.relpath, draw.lineno, 0,
                f"{what} ({draw.name}) is reachable from a worker spawn "
                "without passing through epoch_order/epoch_rng reseeding; "
                "seed a fresh generator from pure (seed, epoch, step) keys",
                facts.scope,
            )


@register_rule
class UnguardedSharedMutationRule(ProjectRule):
    """RPA013: lock-owning class state mutated without the owning lock.

    For every class in ``serve/``/``parallel/`` that owns a lock, an
    attribute is *guarded* if any non-``__init__`` mutation of it happens
    with one of the class's locks held (directly, or provably on every
    call path into the method — the lock-context propagation fixpoint).
    A mutation of a guarded attribute at a site where no class lock is
    held is a data race.  Attributes never mutated under the lock (e.g. a
    worker-thread list managed only by the owner thread) stay unguarded
    and are not flagged.  Also flags kernel-dispatch registry mutations
    (process-global state) from serving code.
    """

    code = "RPA013"
    summary = "guarded class state mutated without holding the owning lock"
    rationale = (
        "A mutation outside the lock that guards the same attribute "
        "elsewhere races every locked reader/writer of that state."
    )

    def check(self) -> None:
        norm = self.index.normalize_lock
        # classes in scope with their normalized lock ids
        class_locks: dict[str, set[str]] = {}
        class_dirs: dict[str, str] = {}
        for facts in self.index.functions.values():
            if facts.cls is None or not _in_dirs(facts.relpath):
                continue
            for _mod, cf in self.index.class_facts(facts.cls):
                if cf.lock_attrs:
                    class_locks[facts.cls] = {
                        f"{facts.cls}.{attr}" for attr in cf.lock_attrs
                    }
                    class_dirs[facts.cls] = facts.relpath
        if class_locks:
            propagated = self.index.propagated_held(class_locks)
            self._check_guarded(class_locks, propagated, norm)
        self._check_kernel_registry()

    def _check_guarded(self, class_locks, propagated, norm) -> None:
        # Gather every (class, attr) mutation with its effective lock context.
        per_class: dict[str, list[tuple[FunctionFacts, object, frozenset]]] = {}
        for q, facts in self.index.functions.items():
            cls = facts.cls
            if cls not in class_locks or facts.name == "__init__":
                continue
            locks = class_locks[cls]
            entry_ctx = propagated.get(q, frozenset())
            for m in facts.mutations:
                effective = {norm(h) for h in m.held} | set(entry_ctx)
                per_class.setdefault(cls, []).append(
                    (facts, m, frozenset(effective & locks))
                )
        for cls, mutations in per_class.items():
            guarded = {m.attr for _f, m, eff in mutations if eff}
            for facts, m, eff in mutations:
                if m.attr in guarded and not eff:
                    self.report(
                        facts.relpath, m.lineno, 0,
                        f"{cls}.{m.attr} is mutated under "
                        f"{sorted(class_locks[cls])} elsewhere but not here; "
                        "hold the owning lock (or move the mutation out of "
                        "the shared state)",
                        facts.scope,
                    )

    def _check_kernel_registry(self) -> None:
        for facts in self.index.functions.values():
            if "serve/" not in facts.relpath:
                continue
            for call in facts.calls:
                leaf = call.name.split(".")[-1]
                if leaf not in _KERNEL_MUTATORS:
                    continue
                resolved = self.index.resolve_call(facts, call.name)
                kernelish = "kernel" in call.name.lower() or any(
                    ".kernels." in q for q in resolved
                )
                if kernelish:
                    self.report(
                        facts.relpath, call.lineno, 0,
                        f"{leaf}() mutates the process-global kernel-dispatch "
                        "registry from serving code; worker threads racing a "
                        "backend switch dispatch inconsistently — pin the "
                        "backend before starting the server",
                        facts.scope,
                    )
