"""Runtime sanitizers for the plane/pool/determinism invariants.

What the lint pass (:mod:`repro.analyze.rules`) cannot prove statically is
checked here at runtime, behind an opt-in switch so the hot path stays
untouched in normal runs:

* **Plane integrity** — every :class:`~repro.nn.Parameter` must remain a
  zero-copy view into its module's flat weight plane.
  :func:`check_plane_integrity` verifies aliasing (exact base-pointer
  offset), dtype, and a write round-trip for every parameter, and a
  detach guard hooks the ``Parameter.data`` fallback so a silent detach
  raises instead.
* **Workspace-pool poisoning** — released conv/pool backward buffers are
  NaN-filled between steps (:func:`repro.tensor.conv.poison_free_workspaces`),
  turning any use-after-release into either a loud
  :class:`~repro.tensor.conv.WorkspaceUseAfterReleaseError` (stale
  writer) or a NaN that the gradient tripwire catches (stale reader).
* **NaN/inf gradient tripwire** — after every backward pass each
  parameter gradient is scanned; the first non-finite value aborts with
  the parameter's name instead of corrupting the tracked-set selection.
* **Lock-order watchdog** — the runtime mirror of static rule RPA010.
  :func:`tracked_lock` wraps the serving-layer locks so every acquisition
  records a held->acquired edge in a global order graph; the first edge
  that closes a cycle raises :class:`LockOrderError` at the acquisition
  site instead of deadlocking some other night.
* **Arena write-fence** — the runtime mirror of RPA011.
  :class:`ArenaWriteFence` stamps a CRC of each rank's SharedArena data
  region at the barrier transitions (``seal_compute``/``open_compute``)
  and raises :class:`ArenaFenceError` if a region changed while the
  protocol says it must be quiescent.

Enable with ``REPRO_SANITIZE=1`` (any of ``1/true/on/yes``), the
``--sanitize`` CLI flag, or ``Trainer(..., sanitize=True)``.  Every hook
is zero-cost when disabled: :func:`tracked_lock` returns the lock
unchanged, and the fence is simply not constructed.
"""

from __future__ import annotations

import os
import threading
import zlib
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.nn import module as nn_module
from repro.nn.module import Module, Parameter
from repro.tensor import conv
from repro.train.callbacks import Callback

if TYPE_CHECKING:  # pragma: no cover
    from repro.tensor import Tensor
    from repro.train.trainer import Trainer

__all__ = [
    "ENV_VAR",
    "SanitizerError",
    "PlaneIntegrityError",
    "GradientTripwireError",
    "LockOrderError",
    "ArenaFenceError",
    "sanitize_enabled",
    "check_plane_integrity",
    "check_finite_gradients",
    "install_detach_guard",
    "uninstall_detach_guard",
    "LockOrderWatchdog",
    "TrackedLock",
    "tracked_lock",
    "lock_watchdog",
    "ArenaWriteFence",
    "PlaneCheckCallback",
    "GradTripwireCallback",
    "WorkspacePoisonCallback",
    "sanitizer_callbacks",
]

ENV_VAR = "REPRO_SANITIZE"


class SanitizerError(RuntimeError):
    """Base class for invariant violations caught at runtime."""


class PlaneIntegrityError(SanitizerError):
    """A parameter is no longer a live view into the flat weight plane."""


class GradientTripwireError(SanitizerError):
    """A non-finite value reached a parameter gradient."""


class LockOrderError(SanitizerError):
    """A lock acquisition closed a cycle in the acquisition-order graph."""


class ArenaFenceError(SanitizerError):
    """A SharedArena data region changed outside its barrier phase."""


def sanitize_enabled(env: dict | None = None) -> bool:
    """Whether ``REPRO_SANITIZE`` requests sanitizer mode."""
    value = (env if env is not None else os.environ).get(ENV_VAR, "")
    return str(value).strip().lower() in ("1", "true", "on", "yes")


# ---------------------------------------------------------------------- #
# plane integrity
# ---------------------------------------------------------------------- #


def _array_base_address(arr: np.ndarray) -> int:
    return arr.__array_interface__["data"][0]


def check_plane_integrity(model: Module, strict: bool = True) -> list[str]:
    """Verify every parameter still aliases the flat weight plane.

    Checks, per parameter: the ``plane_backed`` flag, dtype float32,
    C-contiguity, the exact base-pointer offset implied by ``base_index``,
    and a write round-trip (a value stored through ``p.data`` is read back
    from the plane, and vice versa, bit-exactly — the weights are restored
    afterwards).

    Returns the list of problems found; raises :class:`PlaneIntegrityError`
    instead when ``strict`` (the default).
    """
    problems: list[str] = []
    plane = model.weight_plane
    if not model.is_finalized or plane is None:
        problems.append("model is not finalized (no weight plane)")
    else:
        plane_addr = _array_base_address(plane)
        for name, p in model.named_parameters():
            prefix = f"parameter {name!r}"
            if not p.plane_backed:
                problems.append(f"{prefix}: detached from the weight plane")
                continue
            if p.base_index is None:
                problems.append(f"{prefix}: plane-backed but has no base_index")
                continue
            data = p.data
            if data.dtype != np.float32:
                problems.append(f"{prefix}: dtype {data.dtype}, expected float32")
                continue
            if not data.flags.c_contiguous:
                problems.append(f"{prefix}: plane view is not C-contiguous")
                continue
            expected = plane_addr + 4 * p.base_index
            actual = _array_base_address(data)
            if actual != expected:
                problems.append(
                    f"{prefix}: data does not alias plane[{p.base_index}:] "
                    f"(offset {actual - plane_addr} bytes, expected {4 * p.base_index})"
                )
                continue
            if data.size == 0:
                continue
            # Write round-trip both directions through the first element.
            flat = data.reshape(-1)
            saved = flat[0]
            sentinel = np.float32(saved + 1.0) if np.isfinite(saved) else np.float32(1.0)
            flat[0] = sentinel
            if plane[p.base_index] != sentinel:
                problems.append(f"{prefix}: write through view did not reach the plane")
            plane[p.base_index] = saved
            if flat[0] != saved:
                problems.append(f"{prefix}: write through plane did not reach the view")
            flat[0] = saved
    if problems and strict:
        raise PlaneIntegrityError(
            f"weight-plane integrity violated ({len(problems)} problem(s)):\n  "
            + "\n  ".join(problems)
        )
    return problems


def _detach_guard(param: Parameter) -> None:
    raise PlaneIntegrityError(
        f"assignment detached {param!r} from the weight plane (value could "
        "not broadcast into the existing view); resize-by-assignment is "
        "forbidden under REPRO_SANITIZE"
    )


def install_detach_guard() -> None:
    """Make any plane-detaching ``Parameter.data`` assignment raise."""
    nn_module.set_plane_detach_hook(_detach_guard)


def uninstall_detach_guard() -> None:
    """Restore the silent detach-and-rebind fallback."""
    nn_module.set_plane_detach_hook(None)


# ---------------------------------------------------------------------- #
# lock-order watchdog (runtime mirror of RPA010)
# ---------------------------------------------------------------------- #


class LockOrderWatchdog:
    """Global lock-acquisition-order graph with cycle detection.

    Each thread keeps the stack of tracked locks it currently holds.  When
    a thread acquires lock ``b`` while holding ``a``, the edge ``a -> b``
    is recorded; before recording, a path ``b -> ... -> a`` in the
    existing graph means some other code path acquires the pair in the
    opposite order, and :class:`LockOrderError` is raised at this
    acquisition instead of letting the inversion deadlock later.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: dict[str, set[str]] = {}
        self._witness: dict[tuple[str, str], str] = {}
        self._local = threading.local()

    def _held(self) -> list[str]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def edges(self) -> dict[str, set[str]]:
        """Snapshot of the recorded acquisition-order edges (for tests)."""
        with self._mutex:
            return {a: set(bs) for a, bs in self._edges.items()}

    def reset(self) -> None:
        """Forget all recorded edges (held stacks are per-thread state)."""
        with self._mutex:
            self._edges.clear()
            self._witness.clear()

    def _path(self, start: str, goal: str) -> list[str] | None:
        # DFS under self._mutex; graphs are a handful of named locks.
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def on_acquire(self, name: str) -> None:
        held = self._held()
        if held:
            prev = held[-1]
            if prev != name:
                with self._mutex:
                    if name not in self._edges.get(prev, ()):
                        cycle = self._path(name, prev)
                        if cycle is not None:
                            first = self._witness.get(
                                (cycle[0], cycle[1]) if len(cycle) > 1 else (name, prev),
                                "?",
                            )
                            raise LockOrderError(
                                f"lock-order cycle: acquiring {name!r} while "
                                f"holding {prev!r}, but the opposite order "
                                f"{' -> '.join(cycle)} was already observed "
                                f"(first at {first}); a concurrent thread "
                                "taking that path can deadlock against this one"
                            )
                        self._edges.setdefault(prev, set()).add(name)
                        self._witness[(prev, name)] = threading.current_thread().name
        held.append(name)

    def on_release(self, name: str) -> None:
        held = self._held()
        if name in held:
            held.reverse()
            held.remove(name)
            held.reverse()


_WATCHDOG = LockOrderWatchdog()


def lock_watchdog() -> LockOrderWatchdog:
    """The process-global watchdog used by :func:`tracked_lock`."""
    return _WATCHDOG


class TrackedLock:
    """Wrap a lock so the watchdog sees first-entry acquire/release.

    Reentrant acquisitions (RLock) only notify the watchdog on the 0->1
    depth transition, so holding a lock twice never fakes a self-edge.
    The ``_release_save``/``_acquire_restore``/``_is_owned`` trio is
    forwarded so a wrapped RLock still works as the lock behind a
    :class:`threading.Condition` (``wait`` fully releases and reacquires).
    """

    def __init__(self, lock, name: str, watchdog: LockOrderWatchdog | None = None):
        self._lock = lock
        self.name = name
        self._watchdog = watchdog if watchdog is not None else _WATCHDOG
        self._depth = threading.local()

    def _get_depth(self) -> int:
        return getattr(self._depth, "value", 0)

    def _set_depth(self, value: int) -> None:
        self._depth.value = value

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            depth = self._get_depth()
            if depth == 0:
                try:
                    self._watchdog.on_acquire(self.name)
                except BaseException:
                    self._lock.release()
                    raise
            self._set_depth(depth + 1)
        return got

    def release(self) -> None:
        depth = self._get_depth()
        if depth == 1:
            self._watchdog.on_release(self.name)
        self._set_depth(max(depth - 1, 0))
        self._lock.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        inner = getattr(self._lock, "locked", None)
        if inner is not None:
            return inner()
        return self._is_owned()

    # -- Condition protocol: full release around wait() ------------------ #

    def _release_save(self):
        depth = self._get_depth()
        if depth > 0:
            self._watchdog.on_release(self.name)
        self._set_depth(0)
        inner = getattr(self._lock, "_release_save", None)
        if inner is not None:
            state = inner()
        else:
            self._lock.release()
            state = None
        return (state, depth)

    def _acquire_restore(self, saved) -> None:
        state, depth = saved
        inner = getattr(self._lock, "_acquire_restore", None)
        if inner is not None:
            inner(state)
        else:
            self._lock.acquire()
        if depth > 0:
            self._watchdog.on_acquire(self.name)
        self._set_depth(depth)

    def _is_owned(self) -> bool:
        inner = getattr(self._lock, "_is_owned", None)
        if inner is not None:
            return inner()
        return self._get_depth() > 0


def tracked_lock(lock, name: str, enabled: bool | None = None):
    """Wrap ``lock`` for the watchdog, or return it unchanged.

    When sanitizer mode is off (the default), this is the identity
    function — zero overhead, same object.  Already-tracked locks are
    returned as-is so double wrapping cannot double-count.
    """
    if enabled is None:
        enabled = sanitize_enabled()
    if not enabled or isinstance(lock, TrackedLock):
        return lock
    return TrackedLock(lock, name)


# ---------------------------------------------------------------------- #
# arena write-fence (runtime mirror of RPA011)
# ---------------------------------------------------------------------- #


class ArenaWriteFence:
    """Per-rank CRC stamps over SharedArena data regions.

    The lockstep protocol gives each step two phases: *compute* (each rank
    writes only its own ``grads[rank]`` row and ``losses[rank]`` slot; the
    plane is read-only) and *update* (rank 0 writes the plane; the partial
    regions are read-only).  At each transition the trainer calls

    * :meth:`seal_compute` — end of compute: verify the plane did not
      change since the last update phase, then stamp this rank's partials;
    * :meth:`open_compute` — after the update barrier: verify the partials
      did not change during the update phase, then stamp the plane.

    A mismatched CRC means some code wrote a region outside its phase —
    exactly the race static rule RPA011 looks for — and raises
    :class:`ArenaFenceError` naming the region.
    """

    def __init__(self, arena, rank: int):
        self.arena = arena
        self.rank = int(rank)
        self._stamps: dict[str, int] = {}

    @staticmethod
    def _crc(arr) -> int:
        view = np.ascontiguousarray(arr)
        return zlib.crc32(view.view(np.uint8).reshape(-1))

    def _regions(self, phase: str) -> dict[str, "np.ndarray"]:
        if phase == "partials":
            return {
                f"grads[{self.rank}]": self.arena.grads[self.rank],
                f"losses[{self.rank}]": self.arena.losses[self.rank : self.rank + 1],
            }
        return {"plane": self.arena.plane}

    def _verify(self, phase: str) -> None:
        for name, arr in self._regions(phase).items():
            stamped = self._stamps.get(name)
            if stamped is None:
                continue
            now = self._crc(arr)
            if now != stamped:
                raise ArenaFenceError(
                    f"SharedArena.{name} changed outside its barrier phase "
                    f"(rank {self.rank}): CRC {now:#010x} != stamped "
                    f"{stamped:#010x}; a write raced the "
                    f"{'update' if phase == 'partials' else 'compute'} phase"
                )

    def _stamp(self, phase: str) -> None:
        for name, arr in self._regions(phase).items():
            self._stamps[name] = self._crc(arr)

    def seal_compute(self) -> None:
        """End of compute phase: plane must be unchanged; stamp partials."""
        self._verify("plane")
        self._stamp("partials")

    def open_compute(self) -> None:
        """After the update barrier: partials unchanged; stamp the plane."""
        self._verify("partials")
        self._stamp("plane")


# ---------------------------------------------------------------------- #
# gradient tripwire
# ---------------------------------------------------------------------- #


def check_finite_gradients(
    named: Iterable[tuple[str, "Parameter | Tensor"]], where: str = ""
) -> None:
    """Raise :class:`GradientTripwireError` on the first non-finite grad."""
    for name, p in named:
        g = p.grad
        if g is None:
            continue
        if not np.isfinite(g).all():
            bad = int(np.size(g) - np.count_nonzero(np.isfinite(g)))
            suffix = f" {where}" if where else ""
            raise GradientTripwireError(
                f"non-finite gradient in {name!r}{suffix}: {bad} of {np.size(g)} "
                "elements are NaN/inf (poisoned workspace read, exploding "
                "loss, or a broken backward rule)"
            )


# ---------------------------------------------------------------------- #
# trainer callbacks
# ---------------------------------------------------------------------- #


class PlaneCheckCallback(Callback):
    """Assert plane integrity at train start and every epoch end."""

    def on_train_begin(self, trainer: "Trainer") -> None:
        check_plane_integrity(trainer.model)

    def on_epoch_end(self, trainer: "Trainer", epoch: int, logs: dict) -> None:
        check_plane_integrity(trainer.model)
        logs["sanitize_plane_ok"] = True

    def on_train_end(self, trainer: "Trainer") -> None:
        check_plane_integrity(trainer.model)


class GradTripwireCallback(Callback):
    """Scan every parameter gradient between backward and optimizer step."""

    def on_backward_end(self, trainer: "Trainer", step: int) -> None:
        check_finite_gradients(trainer.model.named_parameters(), where=f"at step {step}")


class WorkspacePoisonCallback(Callback):
    """NaN-fill released conv/pool workspaces after every optimizer step."""

    def __init__(self):
        self.poisoned_total = 0

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        self.poisoned_total += conv.poison_free_workspaces()

    def on_train_end(self, trainer: "Trainer") -> None:
        # Leave no poison behind for non-sanitized code that runs next.
        conv.clear_workspace_cache()


def sanitizer_callbacks() -> list[Callback]:
    """The callback set ``Trainer(..., sanitize=True)`` installs."""
    return [PlaneCheckCallback(), GradTripwireCallback(), WorkspacePoisonCallback()]


def verify_model(model: Module, sample: Sequence | None = None) -> dict:
    """One-shot sanitizer sweep outside a training loop.

    Checks plane integrity and (when ``sample`` — an ``(x, y)`` pair — is
    given) runs one forward/backward under the gradient tripwire.
    Returns a small summary dict; raises :class:`SanitizerError` on any
    violation.
    """
    from repro.tensor import Tensor, cross_entropy

    check_plane_integrity(model)
    summary = {"plane_ok": True, "parameters": sum(1 for _ in model.named_parameters())}
    if sample is not None:
        x, y = sample
        model.zero_grad()
        loss = cross_entropy(model(Tensor(np.asarray(x, dtype=np.float32))), y)
        loss.backward()
        check_finite_gradients(model.named_parameters(), where="in verify_model")
        model.zero_grad()
        summary["grads_ok"] = True
    return summary
