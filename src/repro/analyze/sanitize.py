"""Runtime sanitizers for the plane/pool/determinism invariants.

What the lint pass (:mod:`repro.analyze.rules`) cannot prove statically is
checked here at runtime, behind an opt-in switch so the hot path stays
untouched in normal runs:

* **Plane integrity** — every :class:`~repro.nn.Parameter` must remain a
  zero-copy view into its module's flat weight plane.
  :func:`check_plane_integrity` verifies aliasing (exact base-pointer
  offset), dtype, and a write round-trip for every parameter, and a
  detach guard hooks the ``Parameter.data`` fallback so a silent detach
  raises instead.
* **Workspace-pool poisoning** — released conv/pool backward buffers are
  NaN-filled between steps (:func:`repro.tensor.conv.poison_free_workspaces`),
  turning any use-after-release into either a loud
  :class:`~repro.tensor.conv.WorkspaceUseAfterReleaseError` (stale
  writer) or a NaN that the gradient tripwire catches (stale reader).
* **NaN/inf gradient tripwire** — after every backward pass each
  parameter gradient is scanned; the first non-finite value aborts with
  the parameter's name instead of corrupting the tracked-set selection.

Enable with ``REPRO_SANITIZE=1`` (any of ``1/true/on/yes``), the
``--sanitize`` CLI flag, or ``Trainer(..., sanitize=True)``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.nn import module as nn_module
from repro.nn.module import Module, Parameter
from repro.tensor import conv
from repro.train.callbacks import Callback

if TYPE_CHECKING:  # pragma: no cover
    from repro.tensor import Tensor
    from repro.train.trainer import Trainer

__all__ = [
    "ENV_VAR",
    "SanitizerError",
    "PlaneIntegrityError",
    "GradientTripwireError",
    "sanitize_enabled",
    "check_plane_integrity",
    "check_finite_gradients",
    "install_detach_guard",
    "uninstall_detach_guard",
    "PlaneCheckCallback",
    "GradTripwireCallback",
    "WorkspacePoisonCallback",
    "sanitizer_callbacks",
]

ENV_VAR = "REPRO_SANITIZE"


class SanitizerError(RuntimeError):
    """Base class for invariant violations caught at runtime."""


class PlaneIntegrityError(SanitizerError):
    """A parameter is no longer a live view into the flat weight plane."""


class GradientTripwireError(SanitizerError):
    """A non-finite value reached a parameter gradient."""


def sanitize_enabled(env: dict | None = None) -> bool:
    """Whether ``REPRO_SANITIZE`` requests sanitizer mode."""
    value = (env if env is not None else os.environ).get(ENV_VAR, "")
    return str(value).strip().lower() in ("1", "true", "on", "yes")


# ---------------------------------------------------------------------- #
# plane integrity
# ---------------------------------------------------------------------- #


def _array_base_address(arr: np.ndarray) -> int:
    return arr.__array_interface__["data"][0]


def check_plane_integrity(model: Module, strict: bool = True) -> list[str]:
    """Verify every parameter still aliases the flat weight plane.

    Checks, per parameter: the ``plane_backed`` flag, dtype float32,
    C-contiguity, the exact base-pointer offset implied by ``base_index``,
    and a write round-trip (a value stored through ``p.data`` is read back
    from the plane, and vice versa, bit-exactly — the weights are restored
    afterwards).

    Returns the list of problems found; raises :class:`PlaneIntegrityError`
    instead when ``strict`` (the default).
    """
    problems: list[str] = []
    plane = model.weight_plane
    if not model.is_finalized or plane is None:
        problems.append("model is not finalized (no weight plane)")
    else:
        plane_addr = _array_base_address(plane)
        for name, p in model.named_parameters():
            prefix = f"parameter {name!r}"
            if not p.plane_backed:
                problems.append(f"{prefix}: detached from the weight plane")
                continue
            if p.base_index is None:
                problems.append(f"{prefix}: plane-backed but has no base_index")
                continue
            data = p.data
            if data.dtype != np.float32:
                problems.append(f"{prefix}: dtype {data.dtype}, expected float32")
                continue
            if not data.flags.c_contiguous:
                problems.append(f"{prefix}: plane view is not C-contiguous")
                continue
            expected = plane_addr + 4 * p.base_index
            actual = _array_base_address(data)
            if actual != expected:
                problems.append(
                    f"{prefix}: data does not alias plane[{p.base_index}:] "
                    f"(offset {actual - plane_addr} bytes, expected {4 * p.base_index})"
                )
                continue
            if data.size == 0:
                continue
            # Write round-trip both directions through the first element.
            flat = data.reshape(-1)
            saved = flat[0]
            sentinel = np.float32(saved + 1.0) if np.isfinite(saved) else np.float32(1.0)
            flat[0] = sentinel
            if plane[p.base_index] != sentinel:
                problems.append(f"{prefix}: write through view did not reach the plane")
            plane[p.base_index] = saved
            if flat[0] != saved:
                problems.append(f"{prefix}: write through plane did not reach the view")
            flat[0] = saved
    if problems and strict:
        raise PlaneIntegrityError(
            f"weight-plane integrity violated ({len(problems)} problem(s)):\n  "
            + "\n  ".join(problems)
        )
    return problems


def _detach_guard(param: Parameter) -> None:
    raise PlaneIntegrityError(
        f"assignment detached {param!r} from the weight plane (value could "
        "not broadcast into the existing view); resize-by-assignment is "
        "forbidden under REPRO_SANITIZE"
    )


def install_detach_guard() -> None:
    """Make any plane-detaching ``Parameter.data`` assignment raise."""
    nn_module.set_plane_detach_hook(_detach_guard)


def uninstall_detach_guard() -> None:
    """Restore the silent detach-and-rebind fallback."""
    nn_module.set_plane_detach_hook(None)


# ---------------------------------------------------------------------- #
# gradient tripwire
# ---------------------------------------------------------------------- #


def check_finite_gradients(
    named: Iterable[tuple[str, "Parameter | Tensor"]], where: str = ""
) -> None:
    """Raise :class:`GradientTripwireError` on the first non-finite grad."""
    for name, p in named:
        g = p.grad
        if g is None:
            continue
        if not np.isfinite(g).all():
            bad = int(np.size(g) - np.count_nonzero(np.isfinite(g)))
            suffix = f" {where}" if where else ""
            raise GradientTripwireError(
                f"non-finite gradient in {name!r}{suffix}: {bad} of {np.size(g)} "
                "elements are NaN/inf (poisoned workspace read, exploding "
                "loss, or a broken backward rule)"
            )


# ---------------------------------------------------------------------- #
# trainer callbacks
# ---------------------------------------------------------------------- #


class PlaneCheckCallback(Callback):
    """Assert plane integrity at train start and every epoch end."""

    def on_train_begin(self, trainer: "Trainer") -> None:
        check_plane_integrity(trainer.model)

    def on_epoch_end(self, trainer: "Trainer", epoch: int, logs: dict) -> None:
        check_plane_integrity(trainer.model)
        logs["sanitize_plane_ok"] = True

    def on_train_end(self, trainer: "Trainer") -> None:
        check_plane_integrity(trainer.model)


class GradTripwireCallback(Callback):
    """Scan every parameter gradient between backward and optimizer step."""

    def on_backward_end(self, trainer: "Trainer", step: int) -> None:
        check_finite_gradients(trainer.model.named_parameters(), where=f"at step {step}")


class WorkspacePoisonCallback(Callback):
    """NaN-fill released conv/pool workspaces after every optimizer step."""

    def __init__(self):
        self.poisoned_total = 0

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        self.poisoned_total += conv.poison_free_workspaces()

    def on_train_end(self, trainer: "Trainer") -> None:
        # Leave no poison behind for non-sanitized code that runs next.
        conv.clear_workspace_cache()


def sanitizer_callbacks() -> list[Callback]:
    """The callback set ``Trainer(..., sanitize=True)`` installs."""
    return [PlaneCheckCallback(), GradTripwireCallback(), WorkspacePoisonCallback()]


def verify_model(model: Module, sample: Sequence | None = None) -> dict:
    """One-shot sanitizer sweep outside a training loop.

    Checks plane integrity and (when ``sample`` — an ``(x, y)`` pair — is
    given) runs one forward/backward under the gradient tripwire.
    Returns a small summary dict; raises :class:`SanitizerError` on any
    violation.
    """
    from repro.tensor import Tensor, cross_entropy

    check_plane_integrity(model)
    summary = {"plane_ok": True, "parameters": sum(1 for _ in model.named_parameters())}
    if sample is not None:
        x, y = sample
        model.zero_grad()
        loss = cross_entropy(model(Tensor(np.asarray(x, dtype=np.float32))), y)
        loss.backward()
        check_finite_gradients(model.named_parameters(), where="in verify_model")
        model.zero_grad()
        summary["grads_ok"] = True
    return summary
