"""Pass-1 package index: module facts stitched into a call graph.

:func:`build_index` runs :mod:`repro.analyze.facts` over every parsed
source file and links the per-module results into a
:class:`PackageIndex` — the whole-package view the interprocedural rules
(:mod:`repro.analyze.concurrency`) query in pass 2:

* **call resolution** through ``repro.*`` imports: bare names, module
  aliases, ``self.method`` (with base-class lookup), and class
  constructors (``Cls(...)`` resolves to ``Cls.__init__``);
* **reachability** (:meth:`PackageIndex.reachable`) including the
  implicit parent→nested-function edges closures introduce;
* **transitive fixpoints**: every lock a function may acquire anywhere
  below it (:meth:`locks_below`) and whether it awaits a barrier
  (:meth:`awaits_barrier_below`);
* **lock-context propagation**: which of a class's locks are provably
  held on entry to each method, from the locks held at every resolvable
  call site (:meth:`propagated_held`).

The index serializes to JSON keyed on per-file content hashes, so CI can
cache pass 1 across runs (``repro analyze --index-cache``): files whose
hash is unchanged reuse their cached :class:`ModuleFacts` without
re-walking the AST.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

from repro.analyze.facts import (
    ClassFacts,
    FunctionFacts,
    ModuleFacts,
    collect_module_facts,
)

__all__ = ["PackageIndex", "build_index", "INDEX_SCHEMA_VERSION"]

INDEX_SCHEMA_VERSION = 1


def _source_hash(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class PackageIndex:
    """Whole-package facts + call graph (see module docstring)."""

    def __init__(self, modules: dict[str, ModuleFacts]):
        #: relpath -> ModuleFacts
        self.modules = modules
        #: qualname ("module:scope") -> FunctionFacts
        self.functions: dict[str, FunctionFacts] = {}
        #: module dotted name -> ModuleFacts
        self._by_module: dict[str, ModuleFacts] = {}
        #: class name -> [(module, ClassFacts)]
        self._classes: dict[str, list[tuple[str, ClassFacts]]] = {}
        #: lock attr name -> {class names declaring it}
        self._lock_attr_owners: dict[str, set[str]] = {}
        for mf in modules.values():
            self._by_module[mf.module] = mf
            for facts in mf.functions.values():
                self.functions[facts.qualname] = facts
            for cf in mf.classes.values():
                self._classes.setdefault(cf.name, []).append((mf.module, cf))
                for attr in cf.lock_attrs:
                    self._lock_attr_owners.setdefault(attr, set()).add(cf.name)
        self._edges_cache: dict[str, list[tuple[str, int, tuple[str, ...]]]] = {}
        self._locks_below_cache: dict[str, frozenset[str]] = {}
        self._awaits_cache: dict[str, bool] = {}

    # ------------------------------------------------------------------ #
    # lock identity
    # ------------------------------------------------------------------ #

    def normalize_lock(self, token: str) -> str:
        """Resolve ``@attr:<name>`` markers to ``Class.<name>`` when exactly
        one indexed class declares that lock attribute."""
        if not token.startswith("@attr:"):
            return token
        attr = token[len("@attr:"):]
        owners = self._lock_attr_owners.get(attr, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}.{attr}"
        return token

    def class_facts(self, name: str) -> list[tuple[str, ClassFacts]]:
        return self._classes.get(name, [])

    # ------------------------------------------------------------------ #
    # call resolution
    # ------------------------------------------------------------------ #

    def _class_method(self, module: str, cls_name: str, method: str) -> str | None:
        """Resolve ``cls_name.method`` starting in ``module``, walking bases."""
        seen: set[str] = set()
        queue = [(module, cls_name)]
        while queue:
            mod, cname = queue.pop(0)
            if (mod, cname) in seen:
                continue
            seen.add((mod, cname))
            mf = self._by_module.get(mod)
            cf = mf.classes.get(cname) if mf else None
            if cf is None:
                # The class may live elsewhere (imported name).
                target = mf.imports.get(cname) if mf else None
                if target and "." in target:
                    tmod, tcls = target.rsplit(".", 1)
                    queue.append((tmod, tcls))
                    continue
                for omod, ocf in self._classes.get(cname, []):
                    if omod != mod:
                        queue.append((omod, ocf.name))
                continue
            scope = f"{cname}.{method}"
            if scope in mf.functions:
                return mf.functions[scope].qualname
            for base in cf.bases:
                base_leaf = base.split(".")[-1]
                target = mf.imports.get(base, mf.imports.get(base.split(".")[0]))
                if target:
                    # `from x import Base` or `import x` + `x.Base`
                    if target.endswith("." + base_leaf) or target == base_leaf:
                        tmod = target.rsplit(".", 1)[0] if "." in target else mod
                        queue.append((tmod, base_leaf))
                        continue
                    queue.append((f"{target}.{base}".rsplit(".", 1)[0], base_leaf))
                else:
                    queue.append((mod, base_leaf))
        return None

    def resolve_call(self, caller: FunctionFacts, name: str) -> list[str]:
        """Qualnames a dotted call expression may target (possibly empty)."""
        mf = self._by_module.get(caller.module)
        if mf is None:
            return []
        parts = name.split(".")
        # self.method()
        if parts[0] == "self" and len(parts) == 2 and caller.cls is not None:
            hit = self._class_method(caller.module, caller.cls, parts[1])
            return [hit] if hit else []
        if len(parts) == 1:
            # Local function / local class constructor.
            if name in mf.functions:
                return [mf.functions[name].qualname]
            if name in mf.classes:
                hit = self._class_method(caller.module, name, "__init__")
                return [hit] if hit else []
            target = mf.imports.get(name)
            if target:
                return self._resolve_dotted(target)
            return []
        # alias.attr...: resolve the head through the import table.
        head = mf.imports.get(parts[0])
        if head:
            return self._resolve_dotted(".".join([head] + parts[1:]))
        return []

    def _resolve_dotted(self, dotted: str) -> list[str]:
        """Resolve an absolute dotted path to function qualnames."""
        if "." not in dotted:
            # A bare imported symbol (e.g. from a module we did not index).
            return []
        mod, leaf = dotted.rsplit(".", 1)
        mf = self._by_module.get(mod)
        if mf is not None:
            if leaf in mf.functions:
                return [mf.functions[leaf].qualname]
            if leaf in mf.classes:
                hit = self._class_method(mod, leaf, "__init__")
                return [hit] if hit else []
        # Maybe `dotted` itself names Class.method or package.__init__ symbol.
        if "." in mod:
            pmod, cls = mod.rsplit(".", 1)
            pmf = self._by_module.get(pmod)
            if pmf is not None and cls in pmf.classes:
                hit = self._class_method(pmod, cls, leaf)
                return [hit] if hit else []
        # Package re-export: follow `pkg/__init__.py` imports one level.
        pkg = self._by_module.get(dotted) or None
        if pkg is None:
            init = self._by_module.get(mod)
            if init is not None and leaf in init.imports:
                target = init.imports[leaf]
                if target != dotted:
                    return self._resolve_dotted(target)
        return []

    # ------------------------------------------------------------------ #
    # graph queries
    # ------------------------------------------------------------------ #

    def call_edges(self, qualname: str) -> list[tuple[str, int, tuple[str, ...]]]:
        """Resolved outgoing edges: ``(callee qualname, lineno, held locks)``.
        Includes implicit edges to nested functions (closures run inside
        their parent's dynamic extent)."""
        cached = self._edges_cache.get(qualname)
        if cached is not None:
            return cached
        facts = self.functions.get(qualname)
        edges: list[tuple[str, int, tuple[str, ...]]] = []
        if facts is not None:
            for call in facts.calls:
                for callee in self.resolve_call(facts, call.name):
                    edges.append((callee, call.lineno, call.held))
            for nested_scope in facts.nested:
                nested_q = f"{facts.module}:{nested_scope}"
                if nested_q in self.functions:
                    edges.append((nested_q, self.functions[nested_q].lineno, ()))
        self._edges_cache[qualname] = edges
        return edges

    def reachable(self, roots: list[str]) -> set[str]:
        """Transitive closure over resolved call edges, roots included."""
        seen: set[str] = set()
        queue = [q for q in roots if q in self.functions]
        while queue:
            q = queue.pop()
            if q in seen:
                continue
            seen.add(q)
            for callee, _lineno, _held in self.call_edges(q):
                if callee not in seen:
                    queue.append(callee)
        return seen

    def callers_of(self, qualname: str, within: set[str]) -> list[tuple[str, int]]:
        """Call sites of ``qualname`` from functions in ``within``."""
        out: list[tuple[str, int]] = []
        for caller in within:
            for callee, lineno, _held in self.call_edges(caller):
                if callee == qualname:
                    out.append((caller, lineno))
        return out

    def locks_below(self, qualname: str) -> frozenset[str]:
        """Every lock ``qualname`` may acquire, directly or in any callee."""
        return self._fix_locks(qualname, set())

    def _fix_locks(self, qualname: str, stack: set[str]) -> frozenset[str]:
        cached = self._locks_below_cache.get(qualname)
        if cached is not None:
            return cached
        if qualname in stack:
            return frozenset()
        facts = self.functions.get(qualname)
        if facts is None:
            return frozenset()
        stack.add(qualname)
        acc = {self.normalize_lock(a.lock) for a in facts.acquires}
        for callee, _lineno, _held in self.call_edges(qualname):
            acc |= self._fix_locks(callee, stack)
        stack.discard(qualname)
        result = frozenset(acc)
        self._locks_below_cache[qualname] = result
        return result

    def awaits_barrier_below(self, qualname: str) -> bool:
        """Whether ``qualname`` awaits a barrier, directly or in any callee."""
        return self._fix_awaits(qualname, set())

    def _fix_awaits(self, qualname: str, stack: set[str]) -> bool:
        cached = self._awaits_cache.get(qualname)
        if cached is not None:
            return cached
        if qualname in stack:
            return False
        facts = self.functions.get(qualname)
        if facts is None:
            return False
        if facts.barrier_waits:
            self._awaits_cache[qualname] = True
            return True
        stack.add(qualname)
        result = any(
            self._fix_awaits(callee, stack)
            for callee, _lineno, _held in self.call_edges(qualname)
        )
        stack.discard(qualname)
        self._awaits_cache[qualname] = result
        return result

    # ------------------------------------------------------------------ #
    # lock-context propagation (RPA013)
    # ------------------------------------------------------------------ #

    def propagated_held(self, class_locks: dict[str, set[str]]) -> dict[str, frozenset[str]]:
        """For each method of each class in ``class_locks`` (class name ->
        its normalized lock ids), the class locks provably held on *every*
        resolvable call path into it.  Fixpoint over the call graph: a
        method's entry context is the intersection over its call sites of
        (locks held at the site) ∪ (the caller's own entry context)."""
        relevant: dict[str, str] = {}  # qualname -> class name
        for cls, _locks in class_locks.items():
            for mod, cf in self.class_facts(cls):
                mf = self._by_module[mod]
                for method in cf.methods:
                    scope = f"{cls}.{method}"
                    if scope in mf.functions:
                        relevant[mf.functions[scope].qualname] = cls

        # Precompute call sites into each relevant method.
        sites: dict[str, list[tuple[str, tuple[str, ...]]]] = {q: [] for q in relevant}
        for caller_q in self.functions:
            for callee, _lineno, held in self.call_edges(caller_q):
                if callee in sites:
                    normalized = tuple(self.normalize_lock(t) for t in held)
                    sites[callee].append((caller_q, normalized))

        held_in: dict[str, frozenset[str]] = {q: frozenset() for q in relevant}
        for _ in range(len(relevant) + 2):
            changed = False
            for q, cls in relevant.items():
                locks = class_locks[cls]
                if not sites[q]:
                    new = frozenset()
                else:
                    acc: frozenset[str] | None = None
                    for caller_q, held in sites[q]:
                        ctx = set(held) | set(held_in.get(caller_q, frozenset()))
                        ctx &= locks
                        acc = frozenset(ctx) if acc is None else acc & frozenset(ctx)
                    new = acc or frozenset()
                if new != held_in[q]:
                    held_in[q] = new
                    changed = True
            if not changed:
                break
        return held_in

    # ------------------------------------------------------------------ #
    # serialization (CI cache + --graph dump)
    # ------------------------------------------------------------------ #

    def to_graph_dict(self) -> dict:
        """Human-inspectable dump for ``repro analyze --graph``."""
        return {
            "schema_version": INDEX_SCHEMA_VERSION,
            "modules": sorted(self._by_module),
            "functions": {
                q: {
                    "calls": sorted({c for c, _l, _h in self.call_edges(q)}),
                    "locks_below": sorted(self.locks_below(q)),
                    "awaits_barrier": self.awaits_barrier_below(q),
                    "profiled": f.profiled,
                }
                for q, f in sorted(self.functions.items())
            },
        }


def build_index(
    sources: dict[str, tuple[ast.AST, str]],
    cache_path: Path | str | None = None,
) -> PackageIndex:
    """Build (or incrementally load) the package index.

    Parameters
    ----------
    sources:
        ``relpath -> (parsed AST, source text)`` for every file in scope.
    cache_path:
        Optional JSON cache.  Entries whose source hash matches are reused
        without re-extracting facts; the file is rewritten afterwards so
        the cache converges on the current tree.
    """
    cached_entries: dict[str, dict] = {}
    if cache_path is not None:
        cache_path = Path(cache_path)
        if cache_path.is_file():
            try:
                doc = json.loads(cache_path.read_text())
                if doc.get("schema_version") == INDEX_SCHEMA_VERSION:
                    cached_entries = doc.get("files", {})
            except (ValueError, OSError):
                cached_entries = {}

    modules: dict[str, ModuleFacts] = {}
    out_entries: dict[str, dict] = {}
    for relpath, (tree, text) in sources.items():
        digest = _source_hash(text)
        entry = cached_entries.get(relpath)
        if entry is not None and entry.get("hash") == digest:
            modules[relpath] = ModuleFacts.from_dict(entry["facts"])
        else:
            modules[relpath] = collect_module_facts(tree, relpath)
        out_entries[relpath] = {"hash": digest, "facts": modules[relpath].to_dict()}

    if cache_path is not None:
        doc = {"schema_version": INDEX_SCHEMA_VERSION, "files": out_entries}
        try:
            cache_path.write_text(json.dumps(doc) + "\n")
        except OSError:  # read-only checkout: the cache is best-effort
            pass
    return PackageIndex(modules)
