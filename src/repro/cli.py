"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    List the model zoo with parameter counts and the paper's budgets.
``train``
    Train a model on a synthetic dataset with a chosen technique
    (``--sanitize`` runs it under the runtime invariant sanitizers).
``energy``
    Print the analytic energy table for a model and budget.
``profile``
    Run one experiment config under the op-level profiler and print the
    sorted hot-spot table (optionally writing the perf JSON).
``analyze``
    AST lint pass enforcing the plane/pool/determinism invariants
    (per-file rules RPA001-009 plus the interprocedural concurrency
    rules RPA010-013), diffed against a committed baseline.
``kernels``
    Inspect the kernel-dispatch registry (backends per op, active
    selection) and micro-bench every backend into a perf report — the
    artifact the CI kernel gate diffs against its committed baseline.
``serve``
    Register sparse checkpoints in a model registry and drive concurrent
    clients through the dynamic-batching inference server, printing
    per-model latency and registry/batching statistics.
``serve-bench``
    The serving load bench behind the CI latency gate (same entry point
    as ``benchmarks/bench_serve.py``).

The CLI drives the same public API as the examples; it exists so that the
headline experiment is one shell command away::

    python -m repro train --model mnist-100-100 --optimizer dropback \\
        --compression 4.5 --epochs 8
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from repro import profile
from repro.core import DropBack
from repro.data import DataLoader, synth_cifar, synth_mnist
from repro.energy import EnergyModel
from repro.experiments import get_experiment, list_experiments, run_config
from repro.models import (
    densenet_2_7m,
    densenet_tiny,
    lenet_300_100,
    mnist_100_100,
    vgg_s,
    wrn_10_2,
    wrn_28_10,
)
from repro.optim import SGD, BoundedStepDecay, StepDecay
from repro.optim.base import AccessCounter
from repro.prune import DSD, GradualMagnitudePruning, MagnitudePruning
from repro.quant import QuantizedDropBack
from repro.tensor import kernels
from repro.train import FreezeCallback, ProfilerCallback, Trainer
from repro.utils import format_percent, format_ratio, format_table

MODELS: dict[str, tuple[Callable, str]] = {
    "lenet-300-100": (lenet_300_100, "mnist"),
    "mnist-100-100": (mnist_100_100, "mnist"),
    "vgg-s": (vgg_s, "cifar"),
    "densenet": (densenet_2_7m, "cifar"),
    "densenet-tiny": (densenet_tiny, "cifar"),
    "wrn-28-10": (wrn_28_10, "cifar"),
    "wrn-10-2": (wrn_10_2, "cifar"),
}

OPTIMIZERS = ("sgd", "dropback", "dropback-q8", "magnitude", "gradual", "dsd")


def cmd_info(args: argparse.Namespace) -> int:
    rows = []
    for name, (factory, dataset) in MODELS.items():
        model = factory()
        rows.append([name, f"{model.num_parameters():,}", dataset])
    print(format_table(["model", "parameters", "dataset"], rows))
    return 0


def _build_optimizer(name: str, model, lr: float, compression: float):
    if name == "sgd":
        return SGD(model, lr=lr)
    k = max(1, int(round(model.num_parameters() / compression)))
    if name == "dropback":
        return DropBack(model, k=k, lr=lr)
    if name == "dropback-q8":
        return QuantizedDropBack(model, k=k, lr=lr, bits=8)
    if name == "magnitude":
        return MagnitudePruning(model, lr=lr, prune_fraction=1.0 - 1.0 / compression)
    if name == "gradual":
        return GradualMagnitudePruning(model, lr=lr, final_sparsity=1.0 - 1.0 / compression)
    if name == "dsd":
        return DSD(model, lr=lr, sparsity=1.0 - 1.0 / compression)
    raise ValueError(f"unknown optimizer: {name}")


def cmd_train(args: argparse.Namespace) -> int:
    factory, dataset_kind = MODELS[args.model]
    model = factory().finalize(args.seed)
    print(f"{args.model}: {model.num_parameters():,} parameters")

    if dataset_kind == "mnist":
        train, test = synth_mnist(n_train=args.train_size, n_test=args.train_size // 4,
                                  seed=0)
        schedule = BoundedStepDecay(args.lr, period=max(2, args.epochs // 4))
    else:
        train, test = synth_cifar(n_train=args.train_size, n_test=args.train_size // 4,
                                  seed=0, size=args.image_size)
        schedule = StepDecay(args.lr, period=max(2, args.epochs // 3))

    opt = _build_optimizer(args.optimizer, model, args.lr, args.compression)
    callbacks = []
    if args.freeze_epoch and hasattr(opt, "freeze"):
        callbacks.append(FreezeCallback(args.freeze_epoch))
    profiler = None
    if args.perf_out:
        profiler = ProfilerCallback(report_name=f"train_{args.model}",
                                    emit_path=args.perf_out,
                                    meta={"model": args.model, "optimizer": args.optimizer})
        callbacks.append(profiler)

    sanitize = True if args.sanitize else None  # None defers to REPRO_SANITIZE
    if args.workers > 1:
        from repro.parallel import ParallelTrainer

        trainer = ParallelTrainer(model, opt, schedule=schedule, callbacks=callbacks,
                                  patience=args.patience, sanitize=sanitize,
                                  workers=args.workers, microbatch=args.microbatch,
                                  prefetch=args.prefetch)
        print(f"data-parallel: {args.workers} workers, prefetch depth {args.prefetch}")
    else:
        trainer = Trainer(model, opt, schedule=schedule, callbacks=callbacks,
                          patience=args.patience, sanitize=sanitize)
    if trainer.sanitize:
        print("runtime sanitizers: ON (plane integrity, grad tripwire, pool poisoning)")
    hist = trainer.fit(
        DataLoader(train, args.batch_size, seed=1, drop_last=args.workers > 1),
        test, epochs=args.epochs, verbose=True
    )
    if profiler is not None and profiler.report is not None:
        print(f"perf report written to {args.perf_out}")

    print(f"\nbest validation error: {format_percent(hist.best_val_error)} "
          f"(epoch {hist.best_epoch})")
    if hasattr(opt, "compression_ratio"):
        print(f"weight compression: {format_ratio(opt.compression_ratio)}")
    if hasattr(opt, "storage_floats"):
        print(f"training-time weight storage: {opt.storage_floats():,} floats")
    em = EnergyModel()
    rep = em.report(opt.counter)
    print(f"weight-memory energy: {rep.total_uj:.1f} uJ "
          f"({rep.regen_pj / max(rep.total_pj, 1e-12):.2%} regeneration)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    configs = get_experiment(args.experiment)
    if args.run:
        matches = [c for c in configs if c.name == args.run]
        if not matches:
            names = ", ".join(c.name for c in configs)
            print(f"unknown run {args.run!r} in {args.experiment}; available: {names}",
                  file=sys.stderr)
            return 2
        cfg = matches[0]
    else:
        cfg = configs[0]

    print(f"profiling {cfg.name} ({cfg.technique}, scale={args.scale}) ...")
    profile.reset()
    profile.enable()
    try:
        result = run_config(cfg, scale=args.scale, seed=args.seed)
    finally:
        profile.disable()

    report = profile.PerfReport.from_registry(
        f"profile_{cfg.name.replace('/', '-')}",
        meta={
            "experiment": args.experiment,
            "config": cfg.to_dict(),
            "scale": args.scale,
            "seed": args.seed,
            "val_error": result.val_error,
            "backend": kernels.get_backend(),
            "threads": kernels.thread_count(),
        },
    )
    print()
    print(report.hotspot_table(limit=args.top))
    print(f"\ntotal instrumented wall time: {report.total_seconds:.2f} s  "
          f"(val error {format_percent(result.val_error)})")
    if args.out:
        path = report.write(args.out)
        print(f"perf report written to {path}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import analyze

    if args.list_rules:
        for code, cls in sorted(analyze.RULE_REGISTRY.items()):
            print(f"{code}  {cls.summary}")
        return 0

    select = [c.strip().upper() for c in args.select.split(",")] if args.select else None
    if args.concurrency:
        if select:
            print("error: --concurrency and --select are mutually exclusive",
                  file=sys.stderr)
            return 2
        select = ["RPA010", "RPA011", "RPA012", "RPA013"]
    engine = analyze.LintEngine(
        select=select, root=Path.cwd(), index_cache=args.index_cache
    )
    paths = args.paths or ["src"]
    violations = engine.lint_paths(paths)

    if args.graph:
        index = engine.index
        if index is None:  # only per-file rules selected: build pass 1 now
            sources = {}
            for path in engine.iter_python_files(paths):
                src = engine._parse(path)
                if src is not None:
                    sources[src.relpath] = src
            index = engine.build_index(sources)
        Path(args.graph).write_text(
            json.dumps(index.to_graph_dict(), indent=2) + "\n"
        )
        print(f"call/lock graph written to {args.graph}")

    baseline = None
    baseline_path = Path(args.baseline)
    if args.update_baseline:
        analyze.write_baseline(violations, baseline_path)
        print(f"baseline updated: {baseline_path} ({len(violations)} accepted violation(s))")
        return 0
    if not args.no_baseline and baseline_path.is_file():
        baseline = analyze.load_baseline(baseline_path)
        new, fixed = analyze.diff_baseline(violations, baseline)
    else:
        new, fixed = list(violations), {}

    if args.json:
        findings = analyze.findings_to_dict(
            violations, new, baseline, [str(p) for p in paths], errors=engine.errors
        )
        Path(args.json).write_text(json.dumps(findings, indent=2) + "\n")
        print(f"findings JSON written to {args.json}")

    if args.explain_drift and baseline is not None:
        drift = analyze.explain_drift(violations, baseline)
        if drift:
            print("baseline drift:")
        for entry in drift:
            paired = entry.get("paired_with")
            where = (
                f" -> {paired['path']}:{paired['line']} [{paired['fingerprint']}]"
                if paired
                else ""
            )
            vanished = entry["vanished"] or "(no vanished entry)"
            print(f"  {vanished}: {entry['reason']}{where}")

    for v in new:
        print(analyze.format_github(v) if args.format == "github" else v.format())
    for err in engine.errors:
        print(f"error: {err}", file=sys.stderr)
    baselined = len(violations) - len(new)
    print(
        f"\n{len(violations)} violation(s): {len(new)} new, {baselined} baselined"
        + (f" ({baseline_path})" if baseline else " (no baseline file)")
    )
    if fixed:
        total_fixed = sum(fixed.values())
        print(f"{total_fixed} baselined violation(s) no longer occur — run "
              "`repro analyze --update-baseline` to shrink the baseline")
    if new or engine.errors:
        return 1
    print("OK: no new violations")
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    from repro.tensor.kernels import bench

    if not args.bench:
        from repro.tensor.kernels import sparse

        active = kernels.get_backend()
        overrides = kernels.op_overrides()
        rows = []
        for op in kernels.list_ops():
            backends = kernels.list_backends(op)
            resolved, _ = kernels.resolve(op)
            rows.append([op, ", ".join(backends), overrides.get(op, "-"), resolved])
        print(format_table(["op", "backends", "override", "resolved"], rows))
        print(f"\nactive backend: {active} (REPRO_BACKEND)  "
              f"threads: {kernels.thread_count()} (REPRO_THREADS)")
        print(f"sparse density cutoff: {sparse.density_cutoff():g} "
              f"(REPRO_SPARSE_DENSITY_CUTOFF; above it the sparse backend "
              f"delegates to fast)")
        return 0

    print(f"micro-benching kernels ({args.rounds} round(s) per backend) ...")
    report = bench.bench_kernels(rounds=args.rounds, seed=args.seed)
    print(bench.format_bench_table(report))
    speedups = {k: v for k, v in report.meta.items() if k.startswith("speedup_")}
    if speedups:
        print("\n" + "  ".join(f"{k}={v:.2f}x" for k, v in sorted(speedups.items())))
    if args.out:
        path = report.write(args.out)
        print(f"perf report written to {path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.serve import InferenceServer, ModelRegistry, run_load

    factory, dataset_kind = MODELS[args.model]
    if dataset_kind == "mnist":
        _, test = synth_mnist(n_train=64, n_test=256, seed=0)
    else:
        _, test = synth_cifar(n_train=64, n_test=256, seed=0, size=args.image_size)
    samples = test.images

    budget = int(args.byte_budget_mb * (1 << 20)) if args.byte_budget_mb else None
    registry = ModelRegistry(byte_budget=budget)
    digests = [registry.register(Path(p).stem, factory, p) for p in args.checkpoints]

    rows = []
    with InferenceServer(registry, max_batch_size=args.max_batch,
                         max_wait_ms=args.wait_ms, workers=args.workers) as server:
        for digest in digests:
            result = run_load(server, digest, samples, clients=args.clients,
                              requests_per_client=args.requests, seed=args.seed)
            info = registry.describe(digest)
            rows.append([
                info["name"], digest[:12], f"{info['k']:,}",
                f"{info['plane_bytes']:,}", str(result.requests),
                f"{result.p50 * 1e3:.2f}", f"{result.p99 * 1e3:.2f}",
                f"{result.throughput_rps:.0f}",
            ])
        stats = server.stats
    print(format_table(
        ["model", "digest", "k", "plane B", "reqs", "p50 ms", "p99 ms", "req/s"], rows
    ))
    reg = registry.stats
    print(f"\nbatches: {stats.batches} (mean size {stats.mean_batch_size:.2f}, "
          f"max {stats.batch_size_max})")
    print(f"registry: {reg.hits} hit(s), {reg.materializations} materialization(s), "
          f"{reg.evictions} eviction(s); resident {registry.resident_bytes:,} bytes")
    if args.out:
        doc = {"models": [registry.describe(d) for d in digests],
               "server": stats.to_dict(), "registry": reg.to_dict()}
        Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"serve stats written to {args.out}")
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import run_main as bench_main

    return bench_main(args)


def cmd_energy(args: argparse.Namespace) -> int:
    factory, _ = MODELS[args.model]
    model = factory()
    n = model.num_parameters()
    em = EnergyModel()
    k = max(1, int(round(n / args.compression)))
    dense = em.report(AccessCounter(weight_reads=n * args.steps, weight_writes=n * args.steps,
                                    steps=args.steps))
    db = em.report(
        AccessCounter(
            weight_reads=k * args.steps,
            weight_writes=k * args.steps,
            regenerations=(n - k) * args.steps,
            steps=args.steps,
        )
    )
    print(format_table(
        ["", "dense SGD", f"DropBack {format_ratio(n / k)}"],
        [
            ["stored weights", f"{n:,}", f"{k:,}"],
            ["weight energy", f"{dense.total_uj:.0f} uJ", f"{db.total_uj:.0f} uJ"],
            ["saving", "-", format_ratio(dense.total_pj / db.total_pj)],
        ],
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list available models").set_defaults(func=cmd_info)

    p_train = sub.add_parser("train", help="train a model")
    p_train.add_argument("--model", choices=MODELS, default="mnist-100-100")
    p_train.add_argument("--optimizer", choices=OPTIMIZERS, default="dropback")
    p_train.add_argument("--compression", type=float, default=4.5)
    p_train.add_argument("--epochs", type=int, default=8)
    p_train.add_argument("--lr", type=float, default=0.4)
    p_train.add_argument("--batch-size", type=int, default=64)
    p_train.add_argument("--train-size", type=int, default=2000)
    p_train.add_argument("--image-size", type=int, default=16)
    p_train.add_argument("--freeze-epoch", type=int, default=0)
    p_train.add_argument("--patience", type=int, default=None)
    p_train.add_argument("--seed", type=int, default=42)
    p_train.add_argument("--workers", type=int, default=1,
                         help="data-parallel worker processes (power of two; "
                              ">1 trains with repro.parallel.ParallelTrainer)")
    p_train.add_argument("--microbatch", type=int, default=None,
                         help="microbatch size for the deterministic gradient "
                              "reduction (default: batch-size / workers)")
    p_train.add_argument("--prefetch", type=int, default=2,
                         help="per-rank input-pipeline depth (0 disables "
                              "prefetching; 2 = double buffering)")
    p_train.add_argument("--sanitize", action="store_true",
                         help="run under the runtime invariant sanitizers "
                              "(also enabled by REPRO_SANITIZE=1)")
    p_train.add_argument("--perf-out", default=None,
                         help="write a perf-report JSON for this run "
                              "(stamped meta.sanitize=true under --sanitize)")
    p_train.set_defaults(func=cmd_train)

    p_profile = sub.add_parser("profile", help="op-level hot-spot profile of one config")
    p_profile.add_argument("--experiment", choices=list_experiments(), default="table1")
    p_profile.add_argument("--run", default=None,
                           help="config name within the experiment (default: first)")
    p_profile.add_argument("--scale", type=float, default=0.1)
    p_profile.add_argument("--seed", type=int, default=42)
    p_profile.add_argument("--top", type=int, default=20)
    p_profile.add_argument("--out", default=None, help="write perf JSON to this path")
    p_profile.set_defaults(func=cmd_profile)

    p_analyze = sub.add_parser("analyze",
                               help="AST lint pass for plane/pool/determinism invariants")
    p_analyze.add_argument("paths", nargs="*", default=None,
                           help="files/directories to lint (default: src)")
    p_analyze.add_argument("--baseline", default="analyze_baseline.json",
                           help="accepted-violations file (default: analyze_baseline.json)")
    p_analyze.add_argument("--update-baseline", action="store_true",
                           help="accept all current violations into the baseline and exit")
    p_analyze.add_argument("--json", default=None, metavar="PATH",
                           help="write machine-readable findings JSON (the CI artifact)")
    p_analyze.add_argument("--select", default=None, metavar="CODES",
                           help="comma-separated rule codes to run (default: all)")
    p_analyze.add_argument("--concurrency", action="store_true",
                           help="run only the interprocedural concurrency rules "
                                "RPA010-RPA013 (lock order, barrier fencing, "
                                "fork-tainted RNG, unguarded shared mutation)")
    p_analyze.add_argument("--format", choices=("text", "github"), default="text",
                           help="'github' emits ::error workflow annotations for "
                                "new findings (inline PR surfacing)")
    p_analyze.add_argument("--graph", default=None, metavar="PATH",
                           help="dump the pass-1 call/lock graph as JSON")
    p_analyze.add_argument("--explain-drift", action="store_true",
                           help="pair vanished baseline fingerprints with new "
                                "findings (what moved vs. what is genuinely new)")
    p_analyze.add_argument("--no-baseline", action="store_true",
                           help="ignore any baseline file: every finding is new "
                                "(used by the zero-debt concurrency CI gate)")
    p_analyze.add_argument("--index-cache", default=None, metavar="PATH",
                           help="JSON cache for the pass-1 package index, keyed "
                                "on per-file source hashes (CI persists it)")
    p_analyze.add_argument("--list-rules", action="store_true",
                           help="print the rule catalog and exit")
    p_analyze.set_defaults(func=cmd_analyze)

    p_kernels = sub.add_parser("kernels",
                               help="kernel-dispatch registry: list backends or micro-bench")
    p_kernels.add_argument("--bench", action="store_true",
                           help="time every backend of the benched ops (default: just "
                                "list the dispatch table)")
    p_kernels.add_argument("--rounds", type=int, default=30,
                           help="timing rounds per (op, backend); the report keeps the min")
    p_kernels.add_argument("--seed", type=int, default=0)
    p_kernels.add_argument("--out", default=None,
                           help="write the bench perf JSON here (the CI gate artifact)")
    p_kernels.set_defaults(func=cmd_kernels)

    p_serve = sub.add_parser("serve",
                             help="serve sparse checkpoints through the batching server")
    p_serve.add_argument("checkpoints", nargs="+",
                         help="sparse/quantized checkpoint file(s) to register")
    p_serve.add_argument("--model", choices=MODELS, default="mnist-100-100",
                         help="architecture the checkpoints were trained with")
    p_serve.add_argument("--clients", type=int, default=8)
    p_serve.add_argument("--requests", type=int, default=25,
                         help="requests per client per model (default 25)")
    p_serve.add_argument("--max-batch", type=int, default=8)
    p_serve.add_argument("--wait-ms", type=float, default=2.0)
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--byte-budget-mb", type=float, default=None,
                         help="registry plane budget in MB (default: unbounded)")
    p_serve.add_argument("--image-size", type=int, default=16,
                         help="synthetic CIFAR image size (cifar models only)")
    p_serve.add_argument("--seed", type=int, default=42)
    p_serve.add_argument("--out", default=None, help="write serve stats JSON here")
    p_serve.set_defaults(func=cmd_serve)

    from repro.serve.loadgen import build_arg_parser as serve_bench_parser

    p_serve_bench = sub.add_parser(
        "serve-bench",
        parents=[serve_bench_parser()],
        add_help=False,
        help="serving load bench: batching vs batch-size-1 latency report "
             "(same flags as benchmarks/bench_serve.py)",
    )
    p_serve_bench.set_defaults(func=cmd_serve_bench)

    p_energy = sub.add_parser("energy", help="analytic energy comparison")
    p_energy.add_argument("--model", choices=MODELS, default="wrn-28-10")
    p_energy.add_argument("--compression", type=float, default=4.5)
    p_energy.add_argument("--steps", type=int, default=1000)
    p_energy.set_defaults(func=cmd_energy)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
