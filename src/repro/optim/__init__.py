"""Optimizers and learning-rate schedules."""

from repro.optim.base import AccessCounter, Optimizer
from repro.optim.schedules import (
    BoundedStepDecay,
    ConstantLR,
    ExponentialDecay,
    Schedule,
    StepDecay,
)
from repro.optim.sgd import SGD

__all__ = [
    "Optimizer",
    "AccessCounter",
    "SGD",
    "Schedule",
    "ConstantLR",
    "StepDecay",
    "BoundedStepDecay",
    "ExponentialDecay",
]
