"""Optimizer base class with off-chip memory-access accounting.

Every optimizer counts the number of off-chip weight-memory accesses its
update rule implies under the paper's accelerator model (Section 1: a DRAM
access costs ~700x a floating-point op at 45 nm).  The counters feed
:mod:`repro.energy`, which turns them into energy estimates, reproducing the
paper's training-energy argument.

Accounting model (per training step):

* reading a stored weight for the forward/backward pass — 1 access each;
* writing an updated weight back — 1 access;
* *regenerating* an untracked weight (DropBack) — 0 accesses, but
  ``REGEN_INT_OPS + REGEN_FLOAT_OPS`` on-chip ops, tracked separately.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.nn import Module, Parameter

__all__ = ["Optimizer", "AccessCounter"]


@dataclass
class AccessCounter:
    """Tally of memory traffic and regeneration work across training."""

    weight_reads: int = 0
    weight_writes: int = 0
    regenerations: int = 0
    steps: int = 0

    @property
    def total_accesses(self) -> int:
        """Off-chip accesses: reads plus writes (regens are on-chip)."""
        return self.weight_reads + self.weight_writes

    def merge(self, other: "AccessCounter") -> "AccessCounter":
        return AccessCounter(
            self.weight_reads + other.weight_reads,
            self.weight_writes + other.weight_writes,
            self.regenerations + other.regenerations,
            self.steps + other.steps,
        )


class Optimizer(abc.ABC):
    """Base optimizer over a finalized :class:`~repro.nn.Module`.

    Parameters
    ----------
    model:
        Finalized model whose parameters will be updated.
    lr:
        Initial learning rate (mutable via :attr:`lr`, used by schedules).
    """

    def __init__(self, model: Module, lr: float):
        if not model.is_finalized:
            raise RuntimeError("model must be finalized before constructing an optimizer")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.model = model
        self.lr = float(lr)
        self.params: list[Parameter] = model.parameters()
        self.counter = AccessCounter()

    @property
    def weight_plane(self):
        """The model's flat weight plane (all parameters, contiguous).

        Built by ``Module.finalize``; optimizers that can express their
        update as whole-plane vectorized ops (DropBack's flat-plane step,
        in-place SGD) read and write it through the parameter views.
        """
        return self.model.weight_plane

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def load_flat_grad(self, flat) -> None:
        """Install gradients from a flat, plane-indexed buffer.

        ``flat`` is indexed by the global flat index space (same layout as
        the weight plane); each parameter's gradient becomes a zero-copy
        reshaped view of its ``[base_index, base_index + size)`` span.  The
        data-parallel trainer uses this to hand the deterministically
        reduced global gradient to an unmodified ``step()``.
        """
        for p in self.params:
            p.grad = flat[p.base_index : p.base_index + p.size].reshape(p.shape)

    def rebind_plane(self) -> None:
        """Refresh cached plane views after the model's plane was re-homed.

        ``repro.parallel`` moves the weight plane into (and back out of)
        shared memory via ``adopt_plane``; optimizers that cache views into
        the plane override this to re-resolve them.  Stateless optimizers
        need nothing.
        """

    @abc.abstractmethod
    def step(self) -> None:
        """Apply one update using the gradients currently on the parameters."""

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.params)

    def storage_floats(self) -> int:
        """Weight-memory footprint in floats this optimizer must persist.

        Baseline SGD stores every weight; DropBack overrides this to return
        its tracked-weight budget (plus indices), which is what the paper's
        "weight compression" column measures.
        """
        return self.num_parameters
