"""Plain stochastic gradient descent.

The paper's baseline and the inner update rule of DropBack: "All networks
were optimized using stochastic gradient descent without momentum, as all
other optimization strategies cost significant extra memory."  Momentum and
weight decay are available for completeness but default off.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Module
from repro.optim.base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with optional momentum and L2 weight decay.

    Parameters
    ----------
    model:
        Finalized model.
    lr:
        Learning rate.
    momentum:
        Classical momentum coefficient (0 disables, paper default).
    weight_decay:
        L2 penalty coefficient applied as gradient decay.
    """

    def __init__(self, model: Module, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(model, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = (
            [np.zeros_like(p.data) for p in self.params] if momentum > 0.0 else None
        )

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            # In-place updates: plane-backed parameters mutate their plane
            # view directly (no replacement array, no write-through copy).
            if self._velocity is not None:
                v = self._velocity[i]
                v *= self.momentum
                v -= self.lr * g
                p.data += v
            else:
                p.data -= self.lr * g
            # Baseline traffic: read every weight (forward), write every
            # updated weight back.  The backward-pass weight reads are
            # counted by the energy model per-step from the same totals.
            self.counter.weight_reads += p.size
            self.counter.weight_writes += p.size
        self.counter.steps += 1
