"""Learning-rate schedules.

The paper's recipes:

* MNIST — "initial learning rate of 0.4 was exponentially reduced four
  times by a factor of 0.5" → :class:`BoundedStepDecay` (factor 0.5, at most
  4 reductions).
* CIFAR — "the starting learning rate of 0.4 decayed 0.5x every 25 epochs"
  → :class:`StepDecay` (period 25, factor 0.5).

A schedule is a callable ``epoch -> lr``; :class:`repro.train.Trainer`
applies it to the optimizer at the start of each epoch.
"""

from __future__ import annotations

import abc

__all__ = ["Schedule", "ConstantLR", "StepDecay", "BoundedStepDecay", "ExponentialDecay"]


class Schedule(abc.ABC):
    """Maps an epoch index (0-based) to a learning rate."""

    @abc.abstractmethod
    def __call__(self, epoch: int) -> float: ...


class ConstantLR(Schedule):
    """Fixed learning rate."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    def __call__(self, epoch: int) -> float:
        return self.lr


class StepDecay(Schedule):
    """Multiply by ``factor`` every ``period`` epochs (CIFAR recipe)."""

    def __init__(self, base_lr: float, factor: float = 0.5, period: int = 25):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        self.base_lr = float(base_lr)
        self.factor = float(factor)
        self.period = int(period)

    def __call__(self, epoch: int) -> float:
        return self.base_lr * self.factor ** (epoch // self.period)


class BoundedStepDecay(StepDecay):
    """Step decay capped at ``max_drops`` reductions (MNIST recipe: 4)."""

    def __init__(self, base_lr: float, factor: float = 0.5, period: int = 20, max_drops: int = 4):
        super().__init__(base_lr, factor, period)
        if max_drops < 0:
            raise ValueError(f"max_drops must be non-negative, got {max_drops}")
        self.max_drops = int(max_drops)

    def __call__(self, epoch: int) -> float:
        drops = min(epoch // self.period, self.max_drops)
        return self.base_lr * self.factor**drops


class ExponentialDecay(Schedule):
    """Smooth exponential decay ``lr = base * gamma**epoch``."""

    def __init__(self, base_lr: float, gamma: float = 0.97):
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.base_lr = float(base_lr)
        self.gamma = float(gamma)

    def __call__(self, epoch: int) -> float:
        return self.base_lr * self.gamma**epoch
