"""Variational dropout (comparison baseline).

The paper's baseline (b): variational dropout (Kingma et al., 2015), in the
sparsifying per-parameter form of Molchanov et al. (2017), "which can
progressively create weight sparsity during training".

Each weight ``w`` gets a variance parameter ``log σ²``; the multiplicative
noise level is ``α = σ² / w²``.  Training maximizes the ELBO: data
log-likelihood minus a KL term that *rewards* large α, driving unneeded
weights to effectively infinite noise.  Weights with ``log α`` above a
threshold (3.0, i.e. α > ~20) are considered pruned at inference.

Layers use the **local reparameterization trick**: the pre-activation is
sampled as ``N(x·W, x²·σ²)`` instead of sampling weights, which keeps the
gradient variance manageable.  The KL uses Molchanov et al.'s tight
approximation.

The paper observes VD converges on VGG-S but *fails to converge* ("90%"
error) on DenseNet and WRN at these learning rates, and diffuses much
faster than baseline SGD (Fig. 5) — behaviours this implementation
reproduces in the bench harness.
"""

from __future__ import annotations

import numpy as np

from repro import tensor as F
from repro.init import ConstantInit, ScaledNormalInit, lecun_std
from repro.nn import Conv2d, Linear, Module, Parameter
from repro.tensor import Tensor

__all__ = [
    "VDLinear",
    "VDConv2d",
    "make_variational",
    "total_kl",
    "vd_sparsity",
    "vd_loss_fn",
    "LOG_ALPHA_THRESHOLD",
]

#: log alpha above which a weight counts as pruned (Molchanov et al. 2017).
LOG_ALPHA_THRESHOLD = 3.0

# Molchanov et al. (2017) KL approximation constants.
_K1, _K2, _K3 = 0.63576, 1.87320, 1.48695
_EPS = 1e-8


def _kl_term(log_alpha: Tensor) -> Tensor:
    """Negative KL(q||p) approximation, summed; returned as the *loss* term.

    ``-KL ≈ k1·sigmoid(k2 + k3·logα) - 0.5·log(1 + α^{-1}) - k1``; the loss
    adds ``+KL``, so this returns its negation summed over weights.
    """
    neg_kl = (
        (log_alpha * _K3 + _K2).sigmoid() * _K1
        - ((log_alpha * -1.0).exp() + 1.0).log() * 0.5
        - _K1
    )
    return neg_kl.sum() * -1.0


class _VDMixin:
    """Shared log-alpha bookkeeping for VD layers."""

    weight: Parameter
    log_sigma2: Parameter

    def log_alpha(self) -> Tensor:
        """``log α = log σ² - log w²`` (clipped for numerical stability)."""
        w2 = self.weight * self.weight + _EPS
        return (self.log_sigma2 - w2.log()).clip(-10.0, 10.0)

    def kl(self) -> Tensor:
        """KL divergence contribution of this layer (add to the loss)."""
        return _kl_term(self.log_alpha())

    def pruned_mask(self) -> np.ndarray:
        """Boolean mask of weights considered pruned (logα > threshold)."""
        return self.log_alpha().numpy() > LOG_ALPHA_THRESHOLD

    def sparsity(self) -> float:
        """Fraction of weights pruned at the log-alpha threshold."""
        return float(self.pruned_mask().mean())


class VDLinear(Module, _VDMixin):
    """Linear layer with per-weight variational dropout."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 init_log_sigma2: float = -8.0, seed: int = 0x5EED):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            (out_features, in_features), ScaledNormalInit(lecun_std(in_features))
        )
        self.log_sigma2 = Parameter((out_features, in_features), ConstantInit(init_log_sigma2))
        self.bias = Parameter((out_features,), ConstantInit(0.0)) if bias else None
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = F.linear(x, self.weight, self.bias)
            var = F.linear(x * x, self.log_sigma2.exp(), None)
            eps = Tensor(self._rng.standard_normal(mean.shape).astype(np.float32))
            return mean + (var + _EPS).sqrt() * eps
        # Inference: pruned weights contribute nothing.
        w_eff = self.weight * Tensor((~self.pruned_mask()).astype(np.float32))
        return F.linear(x, w_eff, self.bias)

    def __repr__(self) -> str:
        return f"VDLinear({self.in_features}, {self.out_features})"


class VDConv2d(Module, _VDMixin):
    """Conv2d layer with per-weight variational dropout."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 init_log_sigma2: float = -8.0, seed: int = 0x5EED):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(shape, ScaledNormalInit(lecun_std(fan_in)))
        self.log_sigma2 = Parameter(shape, ConstantInit(init_log_sigma2))
        self.bias = Parameter((out_channels,), ConstantInit(0.0)) if bias else None
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = F.conv2d(x, self.weight, self.bias, stride=self.stride, pad=self.padding)
            var = F.conv2d(x * x, self.log_sigma2.exp(), None, stride=self.stride, pad=self.padding)
            eps = Tensor(self._rng.standard_normal(mean.shape).astype(np.float32))
            return mean + (var + _EPS).sqrt() * eps
        w_eff = self.weight * Tensor((~self.pruned_mask()).astype(np.float32))
        return F.conv2d(x, w_eff, self.bias, stride=self.stride, pad=self.padding)

    def __repr__(self) -> str:
        return f"VDConv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size})"


def make_variational(module: Module, seed: int = 0x5EED) -> Module:
    """Swap every Linear/Conv2d in a module tree for its VD counterpart.

    Traverses attributes, lists, and :class:`Sequential` containers in
    place and returns the same module for chaining.  Call *before*
    ``finalize``.
    """
    counter = [seed]

    def convert(m: Module) -> Module:
        if isinstance(m, Linear):
            counter[0] += 1
            return VDLinear(m.in_features, m.out_features, bias=m.bias is not None,
                            seed=counter[0])
        if isinstance(m, Conv2d):
            counter[0] += 1
            return VDConv2d(m.in_channels, m.out_channels, m.kernel_size,
                            stride=m.stride, padding=m.padding,
                            bias=m.bias is not None, seed=counter[0])
        _recurse(m)
        return m

    def _recurse(m: Module) -> None:
        for name, value in list(vars(m).items()):
            if isinstance(value, Module):
                setattr(m, name, convert(value))
            elif isinstance(value, list):
                setattr(m, name, [convert(v) if isinstance(v, Module) else v for v in value])

    _recurse(module)
    return module


def _vd_layers(model: Module) -> list[_VDMixin]:
    return [m for m in model.modules() if isinstance(m, (VDLinear, VDConv2d))]


def total_kl(model: Module) -> Tensor:
    """Sum of KL terms over all VD layers in the model."""
    layers = _vd_layers(model)
    if not layers:
        raise ValueError("model contains no variational-dropout layers")
    out = layers[0].kl()
    for layer in layers[1:]:
        out = out + layer.kl()
    return out


def vd_sparsity(model: Module) -> float:
    """Overall fraction of VD weights pruned at the log-alpha threshold."""
    layers = _vd_layers(model)
    pruned = sum(int(l.pruned_mask().sum()) for l in layers)
    total = sum(l.weight.size for l in layers)
    return pruned / total if total else 0.0


def vd_loss_fn(model: Module, n_train: int, kl_weight: float = 1.0, warmup_steps: int = 0):
    """Build the ELBO loss: cross-entropy + scaled KL.

    ``n_train`` rescales the KL to the per-batch likelihood, standard in VD
    implementations.  ``warmup_steps`` linearly ramps the KL weight from 0
    to ``kl_weight`` over the first calls — the usual trick that lets the
    likelihood term shape the weights before sparsification pressure kicks
    in (without it, VD collapses immediately at high learning rates, which
    is exactly the instability the paper reports on dense networks).
    """
    if n_train <= 0:
        raise ValueError(f"n_train must be positive, got {n_train}")
    if warmup_steps < 0:
        raise ValueError(f"warmup_steps must be non-negative, got {warmup_steps}")
    step = [0]

    def loss_fn(logits: Tensor, targets: np.ndarray) -> Tensor:
        if warmup_steps:
            ramp = min(1.0, step[0] / warmup_steps)
            step[0] += 1
        else:
            ramp = 1.0
        scale = kl_weight * ramp / n_train
        return F.cross_entropy(logits, targets) + total_kl(model) * scale

    return loss_fn
