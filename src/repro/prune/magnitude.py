"""Iterative magnitude-based pruning (comparison baseline).

The paper's baseline (a): "a straightforward magnitude-based pruning
implementation where only the highest weights are kept after each
iteration".  After every SGD update, all but the top ``keep_fraction`` of
weights (by absolute value, globally across prunable parameters) are set to
zero.  The paper labels runs by the *pruned* fraction: "Mag Pruning .75"
keeps 25% of weights (4x compression), ".80" keeps 20% (5x).

Unlike DropBack this (i) zeroes weights rather than regenerating their
initial values — destroying the initialization scaffolding, which is why it
starts at a large diffusion distance in Fig. 5 — and (ii) still requires
storing/updating the full dense weight set during training.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import top_k_mask
from repro.nn import Module
from repro.optim.base import Optimizer

__all__ = ["MagnitudePruning"]


class MagnitudePruning(Optimizer):
    """SGD followed by per-step global magnitude truncation.

    Parameters
    ----------
    model:
        Finalized model.
    lr:
        Learning rate.
    prune_fraction:
        Fraction of weights zeroed each step (paper notation: ".75" -> 0.75).
    include_nonweight:
        Also prune bias/BatchNorm/PReLU parameters.  Default False: zeroing
        BN scales kills entire channels, which magnitude pruning
        implementations avoid (and which DropBack, by regenerating instead
        of zeroing, does not have to avoid).
    """

    def __init__(
        self,
        model: Module,
        lr: float,
        prune_fraction: float,
        include_nonweight: bool = False,
    ):
        super().__init__(model, lr)
        if not 0.0 < prune_fraction < 1.0:
            raise ValueError(f"prune_fraction must be in (0, 1), got {prune_fraction}")
        self.prune_fraction = float(prune_fraction)
        self.include_nonweight = bool(include_nonweight)
        self._targets = [
            p
            for name, p in model.named_parameters()
            if include_nonweight or name.endswith("weight")
        ]
        self._others = [p for p in self.params if all(p is not t for t in self._targets)]
        self.total_target = sum(p.size for p in self._targets)
        self.keep = max(1, int(round(self.total_target * (1.0 - self.prune_fraction))))

    @property
    def compression_ratio(self) -> float:
        """Nominal weight compression of the final sparse model."""
        kept = self.keep + sum(p.size for p in self._others)
        return self.num_parameters / kept

    def storage_floats(self) -> int:
        """Inference-time storage; training still stores the dense model."""
        return self.keep + sum(p.size for p in self._others)

    def step(self) -> None:
        # Plain SGD update on every parameter.
        for p in self.params:
            if p.grad is not None:
                p.data = p.data - self.lr * p.grad
            self.counter.weight_reads += p.size
            self.counter.weight_writes += p.size
        # Global magnitude truncation over the target parameters.
        scores = np.concatenate([np.abs(p.data).reshape(-1) for p in self._targets])
        mask = top_k_mask(scores, self.keep)
        offset = 0
        for p in self._targets:
            m = mask[offset : offset + p.size].reshape(p.shape)
            p.data = np.where(m, p.data, 0.0).astype(p.data.dtype)
            offset += p.size
        self.counter.steps += 1

    def sparsity(self) -> float:
        """Measured fraction of exactly-zero target weights."""
        zero = sum(int(np.count_nonzero(p.data == 0.0)) for p in self._targets)
        return zero / self.total_target
