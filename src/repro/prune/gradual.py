"""Gradual magnitude pruning (Zhu & Gupta, 2017) — extension baseline.

Cited by the paper's related work: "Zhu & Gupta (2017) gradually increase
the number of weights masked from contributing to the network".  The
sparsity follows the cubic schedule

    s_t = s_f + (s_i - s_f) * (1 - (t - t_0) / (n * dt))^3

ramping from initial sparsity ``s_i`` (usually 0) to final sparsity ``s_f``
over ``n`` pruning events spaced ``dt`` steps apart.  Masked weights are
zeroed; the mask only grows (pruned weights stay pruned), unlike the
paper's per-step re-selection.

Like all magnitude methods it needs dense training memory — the contrast
DropBack draws in Section 5.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import top_k_mask
from repro.nn import Module
from repro.optim.base import Optimizer

__all__ = ["GradualMagnitudePruning", "cubic_sparsity_schedule"]


def cubic_sparsity_schedule(
    step: int, final_sparsity: float, ramp_steps: int, initial_sparsity: float = 0.0,
    begin_step: int = 0,
) -> float:
    """Zhu & Gupta's cubic sparsity ramp, clamped to its endpoints."""
    if step <= begin_step:
        return initial_sparsity
    t = min(1.0, (step - begin_step) / max(ramp_steps, 1))
    return final_sparsity + (initial_sparsity - final_sparsity) * (1.0 - t) ** 3


class GradualMagnitudePruning(Optimizer):
    """SGD with a cubic-ramped, monotonically growing magnitude mask.

    Parameters
    ----------
    model:
        Finalized model.
    lr:
        Learning rate.
    final_sparsity:
        Target fraction of weights zeroed at the end of the ramp.
    ramp_steps:
        Steps over which sparsity ramps from 0 to ``final_sparsity``.
    prune_every:
        Mask recomputation period (pruning events), in steps.
    """

    def __init__(
        self,
        model: Module,
        lr: float,
        final_sparsity: float = 0.75,
        ramp_steps: int = 200,
        prune_every: int = 10,
    ):
        super().__init__(model, lr)
        if not 0.0 < final_sparsity < 1.0:
            raise ValueError(f"final_sparsity must be in (0, 1), got {final_sparsity}")
        if ramp_steps <= 0 or prune_every <= 0:
            raise ValueError("ramp_steps and prune_every must be positive")
        self.final_sparsity = float(final_sparsity)
        self.ramp_steps = int(ramp_steps)
        self.prune_every = int(prune_every)
        self._step_idx = 0
        self._weights = [p for name, p in model.named_parameters() if name.endswith("weight")]
        self._total = sum(p.size for p in self._weights)
        self._dead = [np.zeros(p.shape, dtype=bool) for p in self._weights]

    def current_target_sparsity(self) -> float:
        return cubic_sparsity_schedule(self._step_idx, self.final_sparsity, self.ramp_steps)

    def step(self) -> None:
        for p in self.params:
            if p.grad is not None:
                p.data = p.data - self.lr * p.grad
            self.counter.weight_reads += p.size
            self.counter.weight_writes += p.size

        # Re-apply the monotone mask; extend it on pruning events.
        if self._step_idx % self.prune_every == 0:
            target = self.current_target_sparsity()
            n_dead_target = int(round(self._total * target))
            n_dead_now = sum(int(d.sum()) for d in self._dead)
            if n_dead_target > n_dead_now:
                # Among currently-alive weights, kill the smallest; dead
                # weights score -inf so they can never re-enter the alive set
                # (the mask is monotone, unlike DropBack's re-selection).
                scores = np.concatenate(
                    [
                        np.where(d, -np.inf, np.abs(p.data)).reshape(-1)
                        for p, d in zip(self._weights, self._dead)
                    ]
                )
                keep = self._total - n_dead_target
                alive_mask = top_k_mask(scores, keep)
                offset = 0
                for i, p in enumerate(self._weights):
                    m = alive_mask[offset : offset + p.size].reshape(p.shape)
                    self._dead[i] = ~m
                    offset += p.size
        for p, d in zip(self._weights, self._dead):
            if d.any():
                p.data = np.where(d, 0.0, p.data).astype(p.data.dtype)

        self._step_idx += 1
        self.counter.steps += 1

    def sparsity_now(self) -> float:
        """Measured zero fraction over the weight tensors."""
        zero = sum(int(np.count_nonzero(p.data == 0.0)) for p in self._weights)
        return zero / self._total

    @property
    def compression_ratio(self) -> float:
        dead = sum(int(d.sum()) for d in self._dead)
        kept = self.num_parameters - dead
        return self.num_parameters / kept if kept else float("inf")
