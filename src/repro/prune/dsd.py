"""DSD: Dense-Sparse-Dense training (Han et al., 2017) — extension baseline.

The paper contrasts DropBack with DSD (Section 2.2): DSD "repeatedly
alternates sparse phases (where the lowest-absolute-value weights are
deleted) and dense refinement phases (where all weights may be updated)",
i.e. it is a *regularizer* that needs full dense training memory, whereas
DropBack never stores more than k weights.

Implemented as an optimizer with a phase schedule:

    dense (d1 steps) -> sparse with a frozen magnitude mask (s steps)
                     -> dense refinement (d2 steps) -> ...

During sparse phases, masked weights are held at zero and receive no
updates; during dense phases everything trains.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import top_k_mask
from repro.nn import Module
from repro.optim.base import Optimizer

__all__ = ["DSD"]


class DSD(Optimizer):
    """Dense-Sparse-Dense SGD.

    Parameters
    ----------
    model:
        Finalized model.
    lr:
        Learning rate.
    sparsity:
        Fraction of weights zeroed during sparse phases (DSD paper: 25-50%).
    dense_steps, sparse_steps:
        Phase lengths in optimizer steps.
    cycles:
        Number of sparse phases before training stays dense.
    """

    def __init__(
        self,
        model: Module,
        lr: float,
        sparsity: float = 0.5,
        dense_steps: int = 100,
        sparse_steps: int = 100,
        cycles: int = 1,
    ):
        super().__init__(model, lr)
        if not 0.0 < sparsity < 1.0:
            raise ValueError(f"sparsity must be in (0, 1), got {sparsity}")
        if dense_steps <= 0 or sparse_steps <= 0:
            raise ValueError("phase lengths must be positive")
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        self.sparsity = float(sparsity)
        self.dense_steps = int(dense_steps)
        self.sparse_steps = int(sparse_steps)
        self.cycles = int(cycles)
        self._step_idx = 0
        self._mask: list[np.ndarray] | None = None  # per-param keep masks
        self._weights = [
            p for name, p in model.named_parameters() if name.endswith("weight")
        ]

    @property
    def phase(self) -> str:
        """Current phase: ``"dense"`` or ``"sparse"``."""
        cycle_len = self.dense_steps + self.sparse_steps
        cycle = self._step_idx // cycle_len
        if cycle >= self.cycles:
            return "dense"  # final dense refinement runs forever
        within = self._step_idx % cycle_len
        return "dense" if within < self.dense_steps else "sparse"

    def _build_mask(self) -> list[np.ndarray]:
        scores = np.concatenate([np.abs(p.data).reshape(-1) for p in self._weights])
        keep = max(1, int(round(scores.size * (1.0 - self.sparsity))))
        flat = top_k_mask(scores, keep)
        masks = []
        offset = 0
        for p in self._weights:
            masks.append(flat[offset : offset + p.size].reshape(p.shape))
            offset += p.size
        return masks

    def step(self) -> None:
        phase = self.phase
        entering_sparse = phase == "sparse" and self._mask is None
        if entering_sparse:
            self._mask = self._build_mask()
        if phase == "dense":
            self._mask = None

        for p in self.params:
            if p.grad is not None:
                p.data = p.data - self.lr * p.grad
            self.counter.weight_reads += p.size
            self.counter.weight_writes += p.size

        if self._mask is not None:
            for p, m in zip(self._weights, self._mask):
                p.data = np.where(m, p.data, 0.0).astype(p.data.dtype)

        self._step_idx += 1
        self.counter.steps += 1

    def sparsity_now(self) -> float:
        """Measured zero fraction over the weight tensors."""
        zero = sum(int(np.count_nonzero(p.data == 0.0)) for p in self._weights)
        total = sum(p.size for p in self._weights)
        return zero / total
