"""Network slimming (comparison baseline).

The paper's baseline (c): Liu et al. (2017), "a modern train-prune-retrain
pruning method".  The pipeline:

1. **Train with channel-level sparsity**: add an L1 penalty ``λ·Σ|γ|`` on
   all BatchNorm scale factors, pushing unimportant channels toward zero.
2. **Prune**: zero out the ``prune_fraction`` of channels with the smallest
   ``|γ|`` globally (γ and β are set to 0, which removes the channel's
   contribution entirely since it feeds a BN output).
3. **Retrain** the slimmed network to recover accuracy.

We implement pruning as channel masking rather than structural network
rebuilding: numerically identical outputs, and it applies uniformly to
VGG-S, DenseNet, and WRN (the paper notes slimming collapses on WRN —
Table 3 shows 16.6% error at 4x — a shape the bench harness reproduces).
The *effective* weight compression is computed from the masked channels'
incoming and outgoing dense weights.
"""

from __future__ import annotations

import numpy as np

from repro.nn import BatchNorm1d, BatchNorm2d, Conv2d, Linear, Module
from repro.optim import SGD

__all__ = ["SlimmingSGD", "prune_channels", "slimming_compression", "bn_gammas"]


def bn_gammas(model: Module):
    """All BatchNorm modules in the model (slimming's pruning targets)."""
    return [m for m in model.modules() if isinstance(m, (BatchNorm1d, BatchNorm2d))]


class SlimmingSGD(SGD):
    """SGD plus the slimming L1 subgradient on BatchNorm scales.

    Parameters
    ----------
    l1:
        Sparsity strength λ on Σ|γ| (Liu et al. use 1e-4 to 1e-5).
    """

    def __init__(self, model: Module, lr: float, l1: float = 1e-4, **kwargs):
        super().__init__(model, lr, **kwargs)
        if l1 < 0:
            raise ValueError(f"l1 must be non-negative, got {l1}")
        self.l1 = float(l1)
        self._gammas = [bn.gamma for bn in bn_gammas(model)]
        if not self._gammas:
            raise ValueError("network slimming requires BatchNorm layers")

    def step(self) -> None:
        # Add the L1 subgradient before the base update consumes .grad.
        if self.l1:
            for g in self._gammas:
                sub = self.l1 * np.sign(g.data)
                g.grad = sub if g.grad is None else g.grad + sub
        super().step()


def prune_channels(model: Module, prune_fraction: float) -> dict[str, np.ndarray]:
    """Zero the globally smallest-|γ| channels across all BatchNorm layers.

    Returns a mapping from BN module repr to the boolean *kept* mask, and
    mutates γ/β (and running stats) of pruned channels to zero so the
    channel is dead end-to-end.
    """
    if not 0.0 <= prune_fraction < 1.0:
        raise ValueError(f"prune_fraction must be in [0, 1), got {prune_fraction}")
    bns = bn_gammas(model)
    if not bns:
        raise ValueError("model has no BatchNorm layers to slim")
    scores = np.concatenate([np.abs(bn.gamma.data) for bn in bns])
    n_prune = int(round(scores.size * prune_fraction))
    if n_prune == 0:
        return {f"bn{i}": np.ones(bn.num_features, bool) for i, bn in enumerate(bns)}
    threshold = np.partition(scores, n_prune - 1)[n_prune - 1]

    masks: dict[str, np.ndarray] = {}
    for i, bn in enumerate(bns):
        keep = np.abs(bn.gamma.data) > threshold
        if not keep.any():
            # Never kill an entire layer: keep its strongest channel.
            keep[np.argmax(np.abs(bn.gamma.data))] = True
        # Mask in place: rebinding `.data` would detach the parameter's
        # zero-copy view into the weight plane (RPA001).
        dead = ~keep
        bn.gamma.data[dead] = 0.0
        bn.beta.data[dead] = 0.0
        bn.running_mean[dead] = 0.0
        bn.running_var[dead] = 1.0
        masks[f"bn{i}"] = keep
    return masks


def slimming_compression(model: Module) -> float:
    """Effective weight compression implied by the current dead channels.

    A channel whose BN scale is exactly zero contributes nothing, so the
    conv/linear weights that *produce* it (its filter) and the weight slices
    that *consume* it (the next layer's matching input channels) are both
    structurally removable.  We estimate this from the module traversal
    order: for each conv/linear, the nearest following BN gives the dead
    output fraction and the nearest preceding BN the dead input fraction;
    a weight survives only if both its row and column are alive.

    This is an estimate (residual/dense connectivity is approximated by
    traversal adjacency, exactly as structural-pruning papers approximate
    it), adequate for the compression column of Table 3.
    """
    mods = list(model.modules())
    total = model.num_parameters()
    removable = 0.0

    def dead_fraction(bn) -> float:
        return float(np.mean(bn.gamma.data == 0.0))

    last_bn = None
    # Pair each conv/linear with its neighbouring BNs in traversal order.
    nexts: list[float] = []
    for i, m in enumerate(mods):
        if isinstance(m, (Conv2d, Linear)):
            # preceding BN -> dead inputs
            p_in = dead_fraction(last_bn) if last_bn is not None else 0.0
            # following BN (before the next conv/linear) -> dead outputs
            p_out = 0.0
            for nxt in mods[i + 1 :]:
                if isinstance(nxt, (Conv2d, Linear)):
                    break
                if isinstance(nxt, (BatchNorm1d, BatchNorm2d)):
                    p_out = dead_fraction(nxt)
                    break
            frac_dead = p_in + p_out - p_in * p_out
            removable += m.weight.size * frac_dead
        elif isinstance(m, (BatchNorm1d, BatchNorm2d)):
            last_bn = m
            removable += 2.0 * float(np.sum(m.gamma.data == 0.0))
    kept = total - removable
    return total / kept if kept > 0 else float("inf")
