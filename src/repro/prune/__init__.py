"""Baseline pruning techniques the paper compares DropBack against."""

from repro.prune.dsd import DSD
from repro.prune.gradual import GradualMagnitudePruning, cubic_sparsity_schedule
from repro.prune.magnitude import MagnitudePruning
from repro.prune.slimming import (
    SlimmingSGD,
    bn_gammas,
    prune_channels,
    slimming_compression,
)
from repro.prune.variational import (
    LOG_ALPHA_THRESHOLD,
    VDConv2d,
    VDLinear,
    make_variational,
    total_kl,
    vd_loss_fn,
    vd_sparsity,
)

__all__ = [
    "MagnitudePruning",
    "DSD",
    "GradualMagnitudePruning",
    "cubic_sparsity_schedule",
    "SlimmingSGD",
    "prune_channels",
    "slimming_compression",
    "bn_gammas",
    "VDLinear",
    "VDConv2d",
    "make_variational",
    "total_kl",
    "vd_loss_fn",
    "vd_sparsity",
    "LOG_ALPHA_THRESHOLD",
]
