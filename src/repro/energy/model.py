"""Energy model for training memory traffic (paper Sections 1-2).

The paper's quantitative motivation, all at a 45 nm process node
(Han et al., 2016):

* a 32-bit DRAM access costs **640 pJ**;
* a 32-bit floating-point operation costs **0.9 pJ** (so DRAM is ~700x);
* regenerating one initialization value via xorshift takes six 32-bit
  integer ops and one float op, about **1.5 pJ** — "427x less energy than a
  single off-chip memory access".

:class:`EnergyModel` turns an optimizer's :class:`~repro.optim.AccessCounter`
into energy estimates, reproducing those headline ratios and the
training-time energy comparison between baseline SGD and DropBack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.init import REGEN_FLOAT_OPS, REGEN_INT_OPS
from repro.optim.base import AccessCounter

__all__ = ["EnergyModel", "EnergyReport", "PJ_DRAM_ACCESS", "PJ_FLOAT_OP", "PJ_INT_OP"]

#: 45 nm energy constants (picojoules), Han et al. 2016 via the paper.
PJ_DRAM_ACCESS = 640.0
PJ_FLOAT_OP = 0.9
#: 32-bit integer ALU op at 45 nm (Horowitz 2014 ballpark, used for xorshift).
PJ_INT_OP = 0.1


@dataclass
class EnergyReport:
    """Energy breakdown for a training run (picojoules)."""

    dram_pj: float
    regen_pj: float
    steps: int

    @property
    def total_pj(self) -> float:
        return self.dram_pj + self.regen_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    def __str__(self) -> str:
        return (
            f"EnergyReport(dram={self.dram_pj:.3e} pJ, regen={self.regen_pj:.3e} pJ, "
            f"total={self.total_pj:.3e} pJ over {self.steps} steps)"
        )


class EnergyModel:
    """Convert access counts into energy estimates.

    Parameters
    ----------
    pj_dram, pj_float, pj_int:
        Per-event energies; defaults are the paper's 45 nm numbers.
    """

    def __init__(
        self,
        pj_dram: float = PJ_DRAM_ACCESS,
        pj_float: float = PJ_FLOAT_OP,
        pj_int: float = PJ_INT_OP,
    ):
        if min(pj_dram, pj_float, pj_int) < 0:
            raise ValueError("energies must be non-negative")
        self.pj_dram = float(pj_dram)
        self.pj_float = float(pj_float)
        self.pj_int = float(pj_int)

    @property
    def regen_pj_per_value(self) -> float:
        """Energy to regenerate one init value (6 int ops + 1 float op)."""
        return REGEN_INT_OPS * self.pj_int + REGEN_FLOAT_OPS * self.pj_float

    @property
    def regen_vs_dram_ratio(self) -> float:
        """How many times cheaper regeneration is than a DRAM access.

        The paper quotes 427x (with 1.5 pJ per regen); with the defaults
        here it is 640 / 1.5 ≈ 427.
        """
        return self.pj_dram / self.regen_pj_per_value

    @property
    def dram_vs_flop_ratio(self) -> float:
        """DRAM access vs. float op (paper: "over 700x")."""
        return self.pj_dram / self.pj_float

    def report(self, counter: AccessCounter) -> EnergyReport:
        """Energy estimate for the traffic recorded by an optimizer."""
        dram = counter.total_accesses * self.pj_dram
        regen = counter.regenerations * self.regen_pj_per_value
        return EnergyReport(dram_pj=dram, regen_pj=regen, steps=counter.steps)

    def training_energy_ratio(
        self, baseline: AccessCounter, pruned: AccessCounter
    ) -> float:
        """Baseline-vs-pruned weight-memory energy ratio for a training run."""
        b = self.report(baseline).total_pj
        p = self.report(pruned).total_pj
        if p == 0:
            raise ValueError("pruned run recorded no energy")
        return b / p
