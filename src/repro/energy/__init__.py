"""Energy accounting for training-time memory traffic."""

from repro.energy.model import (
    PJ_DRAM_ACCESS,
    PJ_FLOAT_OP,
    PJ_INT_OP,
    EnergyModel,
    EnergyReport,
)

__all__ = ["EnergyModel", "EnergyReport", "PJ_DRAM_ACCESS", "PJ_FLOAT_OP", "PJ_INT_OP"]
