"""Request queue with dynamic batching.

Single-sample inference requests are cheap to issue but expensive to serve
one at a time: a batched forward over the flat weight plane amortizes the
weight reads across the whole batch.  The batcher coalesces concurrent
requests for the same model into batched forward passes under a
``(max_batch_size, max_wait_ms)`` policy:

* a batch launches as soon as ``max_batch_size`` requests for one model
  are queued, or
* when the *oldest* queued request has waited ``max_wait_ms`` — whichever
  comes first.

``max_wait_ms`` is the latency/throughput dial: larger values fill batches
under light load (throughput) at the cost of adding up to that wait to p99
latency; under saturating load batches fill before the deadline and the
wait never materializes (see ``docs/serving.md``).

Requests are queued per model digest and answered through
:class:`concurrent.futures.Future`, so N clients blocked on
``future.result()`` map onto ≤ ``ceil(N / max_batch_size)`` forward
passes.  Worker threads do the forwards; all queue state is guarded by one
condition variable (always via ``with`` — see lint rule RPA006).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analyze.sanitize import tracked_lock

__all__ = ["DynamicBatcher", "BatchPolicy"]


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy: flush at ``max_batch_size`` or after ``max_wait_ms``."""

    max_batch_size: int = 8
    max_wait_ms: float = 2.0

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")


@dataclass
class _Request:
    digest: str
    x: np.ndarray  # one sample, no batch dimension
    future: Future
    enqueued: float


class DynamicBatcher:
    """Coalesce single-sample requests into batched forward calls.

    Parameters
    ----------
    forward_fn:
        ``forward_fn(digest, batch) -> outputs``; ``batch`` is the stacked
        input array (batch dimension first) and the result must have the
        same leading dimension.
    policy:
        The :class:`BatchPolicy` (or pass ``max_batch_size``/``max_wait_ms``).
    workers:
        Number of worker threads executing forwards.  With one worker,
        batches for different models serialize; more workers let distinct
        models proceed concurrently (per-model forwards stay serialized by
        the registry handle lock).
    """

    def __init__(
        self,
        forward_fn: Callable[[str, np.ndarray], np.ndarray],
        policy: BatchPolicy | None = None,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        workers: int = 2,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.policy = policy or BatchPolicy(max_batch_size, max_wait_ms)
        self._n_workers = workers
        self._forward = forward_fn
        # The condition's underlying RLock goes through the lock-order
        # watchdog under REPRO_SANITIZE=1 (tracked_lock is the identity
        # function otherwise).
        self._cond = threading.Condition(
            tracked_lock(threading.RLock(), "DynamicBatcher._cond")
        )
        self._queues: dict[str, deque[_Request]] = {}
        self._threads: list[threading.Thread] = []
        self._running = False
        self.batch_sizes: list[int] = []  # one entry per executed forward
        self.requests_submitted = 0

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #

    def submit(self, digest: str, x: np.ndarray) -> Future:
        """Enqueue one single-sample request; resolves to its output row.

        Allowed before :meth:`start` — requests queue up and are served
        once workers run (tests use this to prove coalescing bounds).
        """
        future: Future = Future()
        request = _Request(
            digest=digest,
            x=np.asarray(x, dtype=np.float32),
            future=future,
            enqueued=time.monotonic(),
        )
        with self._cond:
            self._queues.setdefault(digest, deque()).append(request)
            self.requests_submitted += 1
            self._cond.notify_all()
        return future

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "DynamicBatcher":
        with self._cond:
            if self._running:
                return self
            self._running = True
        self._threads = [
            threading.Thread(target=self._worker, name=f"serve-worker-{i}", daemon=True)
            for i in range(self._n_workers)
        ]
        for t in self._threads:
            t.start()
        return self

    def stop(self) -> None:
        """Stop workers; pending (unserved) requests fail with RuntimeError."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=10.0)
        self._threads = []
        with self._cond:
            pending = [r for q in self._queues.values() for r in q]
            self._queues.clear()
        for r in pending:
            r.future.set_exception(RuntimeError("batcher stopped before request was served"))

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #

    def _worker(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _next_batch(self) -> list[_Request] | None:
        """Block until a batch is ready (or the batcher stops)."""
        max_batch = self.policy.max_batch_size
        max_wait = self.policy.max_wait_ms / 1000.0
        with self._cond:
            while True:
                if not self._running:
                    return None
                digest = self._oldest_digest()
                if digest is None:
                    self._cond.wait()
                    continue
                queue = self._queues[digest]
                now = time.monotonic()
                deadline = queue[0].enqueued + max_wait
                if len(queue) >= max_batch or now >= deadline:
                    batch = [queue.popleft() for _ in range(min(max_batch, len(queue)))]
                    if not queue:
                        del self._queues[digest]
                    return batch
                # Partial batch: wait for more requests or the deadline.
                self._cond.wait(timeout=deadline - now)

    def _oldest_digest(self) -> str | None:
        # caller holds self._cond
        oldest: str | None = None
        oldest_t = float("inf")
        for digest, queue in self._queues.items():
            if queue and queue[0].enqueued < oldest_t:
                oldest = digest
                oldest_t = queue[0].enqueued
        return oldest

    def _execute(self, batch: list[_Request]) -> None:
        try:
            xs = np.stack([r.x for r in batch])
            out = np.asarray(self._forward(batch[0].digest, xs))
            if out.shape[0] != len(batch):
                raise RuntimeError(
                    f"forward returned {out.shape[0]} rows for a batch of {len(batch)}"
                )
        except BaseException as exc:  # route the failure to every waiting client
            for r in batch:
                if not r.future.cancelled():
                    r.future.set_exception(exc)
            return
        self.batch_sizes.append(len(batch))
        for i, r in enumerate(batch):
            if not r.future.cancelled():
                r.future.set_result(out[i].copy())
