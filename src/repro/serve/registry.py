"""Model registry: sparse checkpoints in, materialized weight planes out.

A DropBack deployment stores almost nothing per model — a checkpoint is
``(xorshift seed, k tracked indices, k tracked values)`` plus BatchNorm
statistics.  The registry keeps that *sparse payload* pinned in memory for
every registered model (a few KB each) and materializes the full flat
weight plane only when a request actually needs it:

* checkpoints are keyed by **content digest** (SHA-256 of the wire bytes),
  so the same checkpoint registered twice shares one entry and a client
  can pin an exact model version;
* materialization reuses the regenerating inference engine: finalize the
  architecture with the stored seed (regenerating every untracked weight)
  and scatter the k tracked values — one contiguous write per model,
  courtesy of the flat weight plane;
* materialized planes are **LRU-evicted under a byte budget**: evicting a
  cold model drops only its plane (one contiguous buffer); the sparse
  payload stays, so the next request rematerializes it bit-exactly;
* ``packed=True`` entries with a ``zero_untracked`` payload skip the
  dense plane entirely and serve through CSR weight packs
  (:mod:`repro.serve.packed`), so their resident cost is the packed bytes
  — the budget counts pinned payloads plus whatever form (plane or pack)
  each materialized entry holds.

Bit-exactness of evict → rematerialize is a theorem of the design (the
plane is a pure function of ``(architecture, seed, tracked set)``) and is
enforced in tests under the plane-integrity sanitizer; when
``REPRO_SANITIZE=1`` the registry additionally verifies plane integrity
after every materialization.

All public methods are thread-safe; per-model forward passes are
serialized by the handle lock (numpy forward kernels share workspace
state, and batching — not intra-model parallelism — is where serving
throughput comes from).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analyze.sanitize import tracked_lock
from repro.infer import RegeneratingInferenceEngine
from repro.io import SparsePayload, read_sparse_payload
from repro.nn import Module
from repro.tensor import Tensor, no_grad

__all__ = ["ModelRegistry", "ModelHandle", "RegistryStats", "checkpoint_digest"]


def checkpoint_digest(path: str) -> str:
    """SHA-256 content digest of a checkpoint file (the registry key)."""
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _payload_digest(payload: SparsePayload) -> str:
    """Digest for payloads registered from memory (no wire bytes)."""
    h = hashlib.sha256()
    h.update(str(payload.seed).encode())
    h.update(np.ascontiguousarray(payload.indices).tobytes())
    h.update(np.ascontiguousarray(payload.values).tobytes())
    for name in sorted(payload.buffers):
        h.update(name.encode())
        h.update(np.ascontiguousarray(payload.buffers[name]).tobytes())
    return h.hexdigest()


@dataclass
class RegistryStats:
    """Registry traffic counters (all monotonically increasing)."""

    hits: int = 0  # acquire served from a resident plane
    materializations: int = 0  # acquire that had to (re)build a plane
    evictions: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "materializations": self.materializations,
            "evictions": self.evictions,
        }


@dataclass
class ModelHandle:
    """A materialized model checked out of the registry.

    Holding a handle keeps the plane alive even if the registry evicts the
    entry (numpy refcounting); :meth:`forward` serializes per-model
    forward passes under the entry lock.
    """

    digest: str
    name: str
    model: Module
    lock: threading.Lock

    def forward(self, x: np.ndarray) -> np.ndarray:
        """One batched eval-mode forward pass; returns the output array."""
        with self.lock:
            with no_grad():
                out = self.model(Tensor(np.asarray(x, dtype=np.float32)))
            return out.numpy()


@dataclass
class _Entry:
    digest: str
    name: str
    factory: Callable[[], Module]
    payload: SparsePayload
    packed: bool = False
    model: Module | None = None
    plane_bytes: int = 0
    forward_lock: threading.Lock = field(
        default_factory=lambda: tracked_lock(
            threading.Lock(), "ModelHandle.forward_lock"
        )
    )
    materializations: int = 0


class ModelRegistry:
    """Digest-keyed registry of sparse checkpoints with LRU plane cache.

    Parameters
    ----------
    byte_budget:
        Maximum total bytes the registry keeps alive (``None`` =
        unbounded): pinned decoded payloads for every entry plus
        materialized servables (dense planes, or CSR bytes for
        ``packed=True`` entries).  Only servables are evictable; the one
        most recently acquired is never evicted, so a single model larger
        than the budget still serves.
    """

    def __init__(self, byte_budget: int | None = None):
        if byte_budget is not None and byte_budget <= 0:
            raise ValueError("byte_budget must be positive (or None for unbounded)")
        self.byte_budget = byte_budget
        self.stats = RegistryStats()
        # tracked_lock is the identity function unless REPRO_SANITIZE=1,
        # in which case the lock-order watchdog (RPA010's runtime mirror)
        # observes every acquisition.
        self._lock = tracked_lock(threading.RLock(), "ModelRegistry._lock")
        # Insertion order == recency order (oldest first); only entries
        # with a resident plane participate in eviction.
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        factory: Callable[[], Module],
        checkpoint_path: str,
        *,
        packed: bool = False,
    ) -> str:
        """Register a sparse/quantized checkpoint file; returns its digest.

        ``packed=True`` opts the entry into packed materialization: a
        ``zero_untracked`` payload over supported layers serves straight
        from CSR (see :mod:`repro.serve.packed`) and its resident cost is
        the packed bytes, not the dense plane.  Unsupported entries fall
        back to dense materialization silently.
        """
        digest = checkpoint_digest(checkpoint_path)
        payload = read_sparse_payload(checkpoint_path)
        return self.register_payload(name, factory, payload, digest=digest, packed=packed)

    def register_payload(
        self,
        name: str,
        factory: Callable[[], Module],
        payload: SparsePayload,
        digest: str | None = None,
        *,
        packed: bool = False,
    ) -> str:
        """Register an already-decoded payload (tests, in-process export)."""
        if digest is None:
            digest = _payload_digest(payload)
        with self._lock:
            if digest not in self._entries:
                self._entries[digest] = _Entry(
                    digest=digest, name=name, factory=factory, payload=payload, packed=packed
                )
        return digest

    # ------------------------------------------------------------------ #
    # materialization + LRU
    # ------------------------------------------------------------------ #

    def acquire(self, digest: str) -> ModelHandle:
        """Check out a materialized model, building its plane if cold."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                raise KeyError(f"unknown model digest: {digest}")
            if entry.model is None:
                entry.model = self._materialize(entry)
                plane = getattr(entry.model, "weight_plane", None)
                # Packed models have no plane; their resident cost is the
                # CSR structures themselves.
                entry.plane_bytes = int(entry.model.nbytes if plane is None else plane.nbytes)
                entry.materializations += 1
                self.stats.materializations += 1
            else:
                self.stats.hits += 1
            self._entries.move_to_end(digest)
            self._evict_over_budget(keep=digest)
            return ModelHandle(
                digest=digest, name=entry.name, model=entry.model, lock=entry.forward_lock
            )

    def _materialize(self, entry: _Entry):
        """Build the servable for one entry: a finalized dense ``Module``,
        or a plane-free ``PackedModel`` for packed-eligible entries."""
        payload = entry.payload
        if entry.packed:
            from repro.serve.packed import PackedModel

            packed = PackedModel.try_build(entry.factory(), payload)
            if packed is not None:
                return packed
            # Unsupported for packing (regeneration-mode payload, buffers,
            # exotic layers): serve densely like any other entry.
        model = entry.factory().finalize(payload.seed)
        engine = RegeneratingInferenceEngine(model, payload.indices, payload.values)
        engine.materialize_resident(zero_untracked=payload.zero_untracked)
        for dotted, arr in payload.buffers.items():
            model._set_buffer(dotted, arr)
        model.eval()
        from repro.analyze.sanitize import check_plane_integrity, sanitize_enabled

        if sanitize_enabled():
            check_plane_integrity(model)
        return model

    def _evict_over_budget(self, keep: str) -> None:
        # caller holds self._lock.  The budget covers everything the
        # registry keeps alive: pinned payloads (which eviction can never
        # reclaim) plus materialized planes/packs (which it can) — so a
        # registry full of "cheap" packed entries still respects the cap.
        if self.byte_budget is None:
            return
        while self.pinned_bytes + self.resident_bytes > self.byte_budget:
            victim = next(
                (e for e in self._entries.values() if e.model is not None and e.digest != keep),
                None,
            )
            if victim is None:
                break  # only `keep` is resident; never evict the active model
            self._drop_plane(victim)

    def _drop_plane(self, entry: _Entry) -> None:
        entry.model = None
        entry.plane_bytes = 0
        self.stats.evictions += 1

    def evict(self, digest: str) -> bool:
        """Explicitly drop one model's plane; returns whether it was resident."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                raise KeyError(f"unknown model digest: {digest}")
            if entry.model is None:
                return False
            self._drop_plane(entry)
            return True

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def resident_bytes(self) -> int:
        """Total bytes of currently materialized servables.

        Dense entries contribute their weight-plane bytes; packed entries
        contribute their CSR structure bytes (typically a small fraction
        of the plane — that gap is the ``registry_bytes_ratio`` the sparse
        bench gates on).
        """
        with self._lock:
            return sum(e.plane_bytes for e in self._entries.values())

    @property
    def pinned_bytes(self) -> int:
        """Total bytes of decoded payloads (pinned for every entry, incl.
        quantized ``__qformat__`` checkpoints, which pin their dequantized
        values)."""
        with self._lock:
            return sum(e.payload.nbytes for e in self._entries.values())

    def digests(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def resident_digests(self) -> list[str]:
        """Digests with a materialized plane, LRU order (coldest first)."""
        with self._lock:
            return [d for d, e in self._entries.items() if e.model is not None]

    def describe(self, digest: str) -> dict:
        """One entry's metadata (for status endpoints and the CLI table)."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                raise KeyError(f"unknown model digest: {digest}")
            payload = entry.payload
            return {
                "digest": entry.digest,
                "name": entry.name,
                "kind": payload.kind,
                "k": payload.k,
                "seed": payload.seed,
                "resident": entry.model is not None,
                "packed": entry.packed,
                "plane_bytes": entry.plane_bytes,
                "sparse_bytes": payload.nbytes,
                "materializations": entry.materializations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
