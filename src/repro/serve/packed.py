"""Packed serving executor: run a zero-untracked checkpoint with no plane.

A 95%-sparse ``zero_untracked`` checkpoint carries only the tracked
``(index, value)`` pairs, yet the registry's normal materialization path
still allocates the *full* dense weight plane just to scatter k values
into it.  :class:`PackedModel` skips that inflation entirely: every
``Linear`` weight is packed straight from the payload's flat-index space
into CSR via :func:`repro.tensor.kernels.sparse.pack_from_indices`, and
the forward runs one SpMM per layer through
:func:`~repro.tensor.kernels.sparse.sparse_linear`.  Resident cost is the
packed bytes (≈ ``2 x k`` scalars plus row pointers) instead of the dense
plane — the registry counts exactly that against its LRU byte budget.

Scope (by design, with a dense fallback — never an error):

* the payload must be ``zero_untracked`` — in the regeneration regime the
  untracked weights are W(0), i.e. dense, and packing buys nothing;
* the payload must carry no buffers (BatchNorm statistics imply layers
  this executor does not run);
* the architecture must consist of the plane-free layers this module
  knows how to execute: ``Sequential`` / ``Linear`` / ``ReLU`` /
  ``Flatten`` / ``Identity`` / ``Dropout`` (eval-mode no-op).

Anything outside that scope makes :meth:`PackedModel.try_build` return
``None`` and the registry materializes the entry densely as before.

Parity: packed forwards match dense materialization to the sparse-kernel
tolerance (CSR accumulation order differs from BLAS blocking; see
``docs/sparse.md``).  Construction is deterministic, so evict →
rematerialize of a packed entry is bitwise stable.
"""

from __future__ import annotations

import numpy as np

from repro.io import SparsePayload
from repro.nn import Dropout, Flatten, Identity, Linear, Module, ReLU, Sequential
from repro.tensor import Tensor
from repro.tensor.kernels import sparse

__all__ = ["PackedModel"]

#: Layers executed as pure pass-throughs in eval mode.
_PASSTHROUGH = (Identity, Dropout)


def _param_offsets(model: Module) -> dict[int, int]:
    """Flat-plane offset of every parameter, without finalizing.

    ``Module.finalize`` assigns consecutive index ranges in
    ``named_parameters`` definition order; the same walk over the
    *unfinalized* factory model reproduces those offsets exactly, so the
    payload's flat indices can be sliced per-parameter with no plane.
    """
    offsets: dict[int, int] = {}
    offset = 0
    for _, p in model.named_parameters():
        offsets[id(p)] = offset
        offset += p.size
    return offsets


class _PackedLinear:
    """One Linear layer as (CSR weight pack, dense bias vector)."""

    __slots__ = ("pack", "bias")

    def __init__(self, pack: sparse.PackedWeight, bias: np.ndarray | None):
        self.pack = pack
        self.bias = bias

    @property
    def nbytes(self) -> int:
        return self.pack.nbytes + (self.bias.nbytes if self.bias is not None else 0)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return sparse.sparse_linear(self.pack, x, self.bias)


def _slice_span(payload: SparsePayload, lo: int, size: int) -> tuple[np.ndarray, np.ndarray]:
    """Tracked (local flat indices, values) falling inside ``[lo, lo+size)``."""
    s, e = np.searchsorted(payload.indices, (lo, lo + size))
    return payload.indices[s:e] - lo, payload.values[s:e]


def _build_steps(module: Module, offsets: dict[int, int], payload: SparsePayload) -> list | None:
    """Flatten the module tree into executable steps; None if unsupported."""
    if isinstance(module, Sequential):
        steps: list = []
        for layer in module.layers:
            sub = _build_steps(layer, offsets, payload)
            if sub is None:
                return None
            steps.extend(sub)
        return steps
    if isinstance(module, Linear):
        w = module.weight
        local, values = _slice_span(payload, offsets[id(w)], w.size)
        pack = sparse.pack_from_indices(tuple(w.shape), local, values)
        bias = None
        if module.bias is not None:
            b = module.bias
            bias = np.zeros(b.shape, dtype=np.float32)
            b_local, b_values = _slice_span(payload, offsets[id(b)], b.size)
            bias[b_local] = b_values
        return [_PackedLinear(pack, bias)]
    if isinstance(module, ReLU):
        return [lambda x: np.maximum(x, 0.0)]
    if isinstance(module, Flatten):
        return [lambda x: x.reshape(x.shape[0], -1)]
    if isinstance(module, _PASSTHROUGH):
        return [lambda x: x]
    return None


class PackedModel:
    """A checkpoint executed straight from its packed tracked set.

    Duck-types the slice of ``Module`` the registry's :class:`ModelHandle`
    uses — calling it with a :class:`~repro.tensor.Tensor` returns a
    Tensor — while exposing :attr:`nbytes` as its resident cost.  Build
    via :meth:`try_build`; the constructor is internal.
    """

    def __init__(self, steps: list, num_parameters: int):
        self._steps = steps
        self.num_params = num_parameters

    @classmethod
    def try_build(cls, model: Module, payload: SparsePayload) -> "PackedModel | None":
        """Pack ``payload`` against the (unfinalized) factory ``model``.

        Returns ``None`` whenever the dense path should be used instead:
        scipy missing, regeneration-mode payload, buffer-carrying payload,
        or an architecture with layers this executor does not support.
        """
        if not sparse.is_available():
            return None
        if not payload.zero_untracked or payload.buffers:
            return None
        total = sum(p.size for p in model.parameters())
        if payload.indices.size and int(payload.indices[-1]) >= total:
            raise ValueError("checkpoint indices exceed model parameter count")
        steps = _build_steps(model, _param_offsets(model), payload)
        if steps is None:
            return None
        return cls(steps, total)

    @property
    def nbytes(self) -> int:
        """Resident bytes: packed structures + dense bias vectors."""
        return sum(getattr(step, "nbytes", 0) for step in self._steps)

    def eval(self) -> "PackedModel":
        return self  # forward-only by construction

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float32)
        for step in self._steps:
            out = step(out)
        return out

    def __call__(self, x: Tensor) -> Tensor:
        return Tensor(self.forward(x.numpy()))
