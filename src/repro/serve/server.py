"""Inference server: registry-backed models behind a dynamic batcher.

:class:`InferenceServer` is the serving front door.  Clients submit
single-sample requests against a model digest; the dynamic batcher
coalesces them, the registry materializes (or LRU-recalls) the model's
weight plane, and one batched forward answers the whole batch.  Per-model
forwards are serialized by the registry handle lock, so throughput scales
with batch size rather than thread count — exactly the trade the flat
weight plane was built for.

Typical use::

    registry = ModelRegistry(byte_budget=64 << 20)
    digest = registry.register("lenet", lenet_300_100, "model.npz")
    with InferenceServer(registry, max_batch_size=8, max_wait_ms=2.0) as server:
        logits = server.serve(digest, sample)          # blocking
        future = server.submit(digest, sample)          # async
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.registry import ModelRegistry

__all__ = ["InferenceServer", "ServeStats"]


@dataclass
class ServeStats:
    """Aggregate request/batch accounting for one server."""

    requests: int = 0
    samples: int = 0
    batches: int = 0
    batch_size_sum: int = 0
    batch_size_max: int = 0
    by_digest: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.batch_size_sum / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "samples": self.samples,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "batch_size_max": self.batch_size_max,
            "by_digest": dict(self.by_digest),
        }


class InferenceServer:
    """Dynamic-batching server over a :class:`ModelRegistry`.

    Parameters
    ----------
    registry:
        The model registry (owns checkpoints, materialization, and the
        LRU plane budget).
    max_batch_size, max_wait_ms, workers:
        Batching policy — see :class:`~repro.serve.batcher.DynamicBatcher`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        workers: int = 2,
    ):
        self.registry = registry
        self.policy = BatchPolicy(max_batch_size, max_wait_ms)
        self.batcher = DynamicBatcher(self._forward_batch, policy=self.policy, workers=workers)
        self._stats = ServeStats()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #

    def submit(self, digest: str, x: np.ndarray) -> Future:
        """Async single-sample request; the future resolves to the output row."""
        with self._stats_lock:
            self._stats.requests += 1
        return self.batcher.submit(digest, x)

    def serve(self, digest: str, x: np.ndarray, timeout: float | None = 30.0) -> np.ndarray:
        """Blocking single-sample request."""
        return self.submit(digest, x).result(timeout=timeout)

    def _forward_batch(self, digest: str, xs: np.ndarray) -> np.ndarray:
        handle = self.registry.acquire(digest)
        out = handle.forward(xs)
        with self._stats_lock:
            self._stats.samples += int(xs.shape[0])
            self._stats.batches += 1
            self._stats.batch_size_sum += int(xs.shape[0])
            self._stats.batch_size_max = max(self._stats.batch_size_max, int(xs.shape[0]))
            self._stats.by_digest[digest] = self._stats.by_digest.get(digest, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    # lifecycle + stats
    # ------------------------------------------------------------------ #

    def start(self) -> "InferenceServer":
        self.batcher.start()
        return self

    def stop(self) -> None:
        self.batcher.stop()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def stats(self) -> ServeStats:
        """Snapshot of the request/batch counters."""
        with self._stats_lock:
            snap = ServeStats(
                requests=self._stats.requests,
                samples=self._stats.samples,
                batches=self._stats.batches,
                batch_size_sum=self._stats.batch_size_sum,
                batch_size_max=self._stats.batch_size_max,
                by_digest=dict(self._stats.by_digest),
            )
        return snap
