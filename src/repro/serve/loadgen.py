"""Load generator and latency report for the serving layer.

Drives N concurrent closed-loop clients against an
:class:`~repro.serve.server.InferenceServer` (each client submits a
single-sample request, blocks on the result, repeats) and aggregates
client-observed latency into p50/p99 percentiles plus throughput.

The bench entry point (``benchmarks/bench_serve.py`` and ``python -m
repro serve-bench``) runs the same workload twice — dynamic batching on,
then ``max_batch_size=1`` — and emits a versioned
:class:`~repro.profile.PerfReport` JSON so CI can gate latency the same
way it gates the DropBack step:

* gauge ops (``serve.latency.p50``, ``serve.latency.p99``,
  ``serve.latency.mean``) store the **per-request** seconds in
  ``total_seconds`` with ``calls`` = number of requests measured (the
  batch-size-1 comparison numbers live in meta — too noisy to gate);
* the anchor op ``serve.single_forward`` stores the mean seconds of a
  bare single-sample forward on the same model/machine, so
  ``check_perf_report.py --normalize serve.single_forward`` compares
  machine-independent latency *ratios* against the committed baseline;
* ``meta.speedup_vs_batch1`` (batched vs batch-size-1 throughput) is the
  number the CI ``--gate-meta speedup_vs_batch1:2.0`` gate enforces.
"""

from __future__ import annotations

import argparse
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core import DropBack
from repro.data import DataLoader, synth_mnist
from repro.models import lenet_300_100, mlp, mnist_100_100
from repro.nn import Module
from repro.optim import ConstantLR
from repro.profile import PerfReport
from repro.serve.registry import ModelRegistry
from repro.serve.server import InferenceServer
from repro.train import Trainer

__all__ = [
    "LoadResult",
    "run_load",
    "measure_single_forward",
    "build_report",
    "train_bench_checkpoint",
    "build_arg_parser",
    "run_bench",
    "run_main",
    "main",
]

#: Models small enough to train-and-serve inside the bench itself.  The
#: small MLP is the CI default: its forward pass is cheap, so batching
#: amortizes the fixed per-batch cost (queueing, future fan-out) across
#: many requests and the speedup-vs-batch1 gate sits far above 2x.
BENCH_MODELS: dict[str, Callable[[], Module]] = {
    "mnist-100-100": mnist_100_100,
    "lenet-300-100": lenet_300_100,
    "mlp-800-400": lambda: mlp(784, (800, 400), 10),
}


@dataclass
class LoadResult:
    """Aggregated view of one load-generation run."""

    requests: int
    clients: int
    wall_seconds: float
    latencies: np.ndarray  # per-request seconds, client-observed

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.latencies, q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean(self) -> float:
        return float(self.latencies.mean())


def run_load(
    server: InferenceServer,
    digest: str,
    samples: np.ndarray,
    clients: int = 8,
    requests_per_client: int = 25,
    seed: int = 0,
) -> LoadResult:
    """Closed-loop load: each client thread serves its requests in series.

    Every client draws its sample sequence from a seeded RNG, so runs are
    reproducible; all clients start together on a barrier so the measured
    wall time is pure serving time.
    """
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    barrier = threading.Barrier(clients + 1)
    latencies = [np.zeros(requests_per_client, dtype=np.float64) for _ in range(clients)]
    errors: list[BaseException] = []

    def client(ci: int) -> None:
        rng = np.random.default_rng(seed + ci)
        order = rng.integers(0, len(samples), size=requests_per_client)
        try:
            barrier.wait(timeout=30.0)
            for i, idx in enumerate(order):
                t0 = time.perf_counter()
                server.serve(digest, samples[idx])
                latencies[ci][i] = time.perf_counter() - t0
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(ci,), daemon=True) for ci in range(clients)]
    for t in threads:
        t.start()
    barrier.wait(timeout=30.0)
    t_start = time.perf_counter()
    for t in threads:
        t.join(timeout=120.0)
    wall = time.perf_counter() - t_start
    if errors:
        raise errors[0]
    return LoadResult(
        requests=clients * requests_per_client,
        clients=clients,
        wall_seconds=wall,
        latencies=np.concatenate(latencies),
    )


def measure_single_forward(
    registry: ModelRegistry, digest: str, sample: np.ndarray, reps: int = 50
) -> float:
    """Mean seconds of a bare single-sample forward (the latency anchor)."""
    handle = registry.acquire(digest)
    batch = sample[None]
    handle.forward(batch)  # warm up (materialization, kernel caches)
    t0 = time.perf_counter()
    for _ in range(reps):
        handle.forward(batch)
    return (time.perf_counter() - t0) / reps


def build_report(
    name: str,
    batched: LoadResult,
    batch1: LoadResult,
    single_forward_s: float,
    meta: dict | None = None,
) -> PerfReport:
    """Assemble the versioned serving perf report (see module docstring)."""
    report = PerfReport(name=name, meta=dict(meta or {}))

    def gauge(op: str, seconds: float, calls: int) -> None:
        from repro.profile import OpStat

        report.ops[op] = OpStat(name=op, calls=calls, total_seconds=float(seconds))

    # Only the batched percentiles (the serving SLO) become gauge ops the
    # CI gate diffs; the batch-size-1 run exists for the throughput
    # comparison and lands in meta — its tail is dominated by queueing
    # noise and would make the per-op gate flaky.
    gauge("serve.latency.p50", batched.p50, batched.requests)
    gauge("serve.latency.p99", batched.p99, batched.requests)
    gauge("serve.latency.mean", batched.mean, batched.requests)
    gauge("serve.single_forward", single_forward_s, 1)
    speedup = (
        batched.throughput_rps / batch1.throughput_rps if batch1.throughput_rps > 0 else 0.0
    )
    report.counters["serve.requests"] = batched.requests
    report.counters["serve.batch1.requests"] = batch1.requests
    report.meta.update(
        {
            "latency_unit": "seconds per request (total_seconds of gauge ops)",
            "throughput_rps": round(batched.throughput_rps, 3),
            "batch1_throughput_rps": round(batch1.throughput_rps, 3),
            "batch1_latency_p50": round(batch1.p50, 6),
            "batch1_latency_p99": round(batch1.p99, 6),
            "speedup_vs_batch1": round(speedup, 4),
        }
    )
    return report


# ---------------------------------------------------------------------- #
# bench entry point (benchmarks/bench_serve.py, `repro serve-bench`)
# ---------------------------------------------------------------------- #


def train_bench_checkpoint(
    model_name: str,
    path: str,
    *,
    seed: int = 42,
    density: float | None = None,
    zero_untracked: bool = False,
) -> None:
    """Train a tiny DropBack model and export its sparse checkpoint.

    The shared checkpoint-synthesis helper behind ``bench_serve.py``,
    ``bench_sparse.py``, and the perf microbench tests (via
    ``benchmarks/common.py``).  ``density`` sets the tracked fraction
    (default 0.10); ``zero_untracked=True`` trains the zeroing ablation,
    producing the genuinely sparse payloads the packed serving path and
    sparse kernels consume.
    """
    factory = BENCH_MODELS[model_name]
    from repro.io import save_sparse

    train, test = synth_mnist(n_train=512, n_test=128, seed=0)
    model = factory().finalize(seed)
    n = model.num_parameters()
    k = max(1, round(n * density)) if density is not None else max(1, n // 10)
    opt = DropBack(model, k=k, lr=0.4, zero_untracked=zero_untracked)
    Trainer(model, opt, schedule=ConstantLR(0.4)).fit(
        DataLoader(train, 64, seed=1), test, epochs=1
    )
    save_sparse(model, opt, path)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Serving load bench: dynamic batching vs batch-size-1, p50/p99 + throughput"
    )
    parser.add_argument("--model", choices=sorted(BENCH_MODELS), default="mnist-100-100")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent closed-loop clients (default 16)")
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per client per mode (default 25)")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--wait-ms", type=float, default=5.0,
                        help="max coalescing wait per batch (default 5 ms)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--byte-budget-mb", type=float, default=None,
                        help="registry plane budget in MB (default: unbounded)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default=None, help="write the perf-report JSON here")
    return parser


def run_bench(args: argparse.Namespace) -> PerfReport:
    """Train, register, drive both serving modes, and build the report."""
    budget = int(args.byte_budget_mb * (1 << 20)) if args.byte_budget_mb else None
    factory = BENCH_MODELS[args.model]
    _, test = synth_mnist(n_train=64, n_test=256, seed=0)
    samples = test.images

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "bench_model.npz")
        train_bench_checkpoint(args.model, ckpt, seed=args.seed)
        ckpt_bytes = os.path.getsize(ckpt)
        registry = ModelRegistry(byte_budget=budget)
        digest = registry.register(args.model, factory, ckpt)

    anchor_s = measure_single_forward(registry, digest, samples[0])

    with InferenceServer(registry, max_batch_size=args.max_batch,
                         max_wait_ms=args.wait_ms, workers=args.workers) as server:
        batched = run_load(server, digest, samples, clients=args.clients,
                           requests_per_client=args.requests, seed=args.seed)
        batched_stats = server.stats

    with InferenceServer(registry, max_batch_size=1, max_wait_ms=0.0,
                         workers=args.workers) as server:
        batch1 = run_load(server, digest, samples, clients=args.clients,
                          requests_per_client=args.requests, seed=args.seed)

    info = registry.describe(digest)
    report = build_report(
        "serve",
        batched,
        batch1,
        anchor_s,
        meta={
            "model": args.model,
            "clients": args.clients,
            "requests_per_client": args.requests,
            "max_batch_size": args.max_batch,
            "max_wait_ms": args.wait_ms,
            "workers": args.workers,
            "checkpoint_bytes": ckpt_bytes,
            "plane_bytes": info["plane_bytes"],
            "k": info["k"],
            "mean_batch_size": round(batched_stats.mean_batch_size, 3),
        },
    )
    return report


def _print_summary(report: PerfReport) -> None:
    from repro.utils import format_table

    meta = report.meta

    def ms(op: str) -> str:
        return f"{report.ops[op].total_seconds * 1e3:.2f}"

    rows = [
        ["throughput (req/s)", f"{meta['throughput_rps']:.1f}",
         f"{meta['batch1_throughput_rps']:.1f}"],
        ["p50 latency (ms)", ms("serve.latency.p50"), f"{meta['batch1_latency_p50'] * 1e3:.2f}"],
        ["p99 latency (ms)", ms("serve.latency.p99"), f"{meta['batch1_latency_p99'] * 1e3:.2f}"],
    ]
    print(format_table(["", f"batched (<= {meta['max_batch_size']})", "batch-size-1"], rows))
    print(f"\nsingle forward (anchor): "
          f"{report.ops['serve.single_forward'].total_seconds * 1e3:.3f} ms")
    print(f"mean batch size under load: {meta['mean_batch_size']}")
    print(f"dynamic batching speedup vs batch-size-1: {meta['speedup_vs_batch1']:.2f}x")
    print(f"checkpoint on the wire: {meta['checkpoint_bytes']:,} bytes "
          f"-> plane resident: {meta['plane_bytes']:,} bytes")


def run_main(args: argparse.Namespace) -> int:
    """Run the bench from parsed args (shared with ``repro serve-bench``)."""
    print(f"serving bench: {args.model}, {args.clients} clients x {args.requests} requests, "
          f"max batch {args.max_batch}, wait {args.wait_ms} ms")
    report = run_bench(args)
    print()
    _print_summary(report)
    if args.out:
        path = report.write(args.out)
        print(f"\nperf report written to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    return run_main(build_arg_parser().parse_args(argv))
