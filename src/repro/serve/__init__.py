"""Serving layer: sparse checkpoints in, batched low-latency inference out.

The deployment half of the DropBack story.  A trained model is just
``(xorshift seed, k tracked indices, k tracked values)``; this package
turns that into a service:

* :class:`~repro.serve.registry.ModelRegistry` — digest-keyed sparse
  checkpoints, weight planes materialized on demand, LRU-evicted under a
  byte budget; ``packed=True`` entries serve zero-untracked checkpoints
  straight from CSR weight packs (:class:`~repro.serve.packed.PackedModel`)
  without ever inflating a dense plane;
* :class:`~repro.serve.batcher.DynamicBatcher` — coalesces concurrent
  single-sample requests into batched forward passes
  (``max_batch_size`` / ``max_wait_ms`` policy) served by worker threads;
* :class:`~repro.serve.server.InferenceServer` — the two composed, with
  request/batch statistics;
* :mod:`~repro.serve.loadgen` — the concurrent load generator behind
  ``benchmarks/bench_serve.py`` and the CI p50/p99 latency gate.

See ``docs/serving.md`` for architecture and tuning notes.
"""

from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.loadgen import LoadResult, build_report, measure_single_forward, run_load
from repro.serve.packed import PackedModel
from repro.serve.registry import ModelHandle, ModelRegistry, RegistryStats, checkpoint_digest
from repro.serve.server import InferenceServer, ServeStats

__all__ = [
    "ModelRegistry",
    "ModelHandle",
    "PackedModel",
    "RegistryStats",
    "checkpoint_digest",
    "DynamicBatcher",
    "BatchPolicy",
    "InferenceServer",
    "ServeStats",
    "LoadResult",
    "run_load",
    "measure_single_forward",
    "build_report",
]
