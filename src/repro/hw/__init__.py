"""Accelerator hardware model (memory hierarchy, regeneration unit)."""

from repro.hw.accelerator import AcceleratorModel, StepEnergy
from repro.hw.memory import DRAM, REGISTER, SRAM_1MB, SRAM_64KB, MemoryHierarchy, MemoryLevel
from repro.hw.regen_unit import RegenerationUnit

__all__ = [
    "AcceleratorModel",
    "StepEnergy",
    "MemoryHierarchy",
    "MemoryLevel",
    "RegenerationUnit",
    "REGISTER",
    "SRAM_64KB",
    "SRAM_1MB",
    "DRAM",
]
