"""End-to-end accelerator model: dense vs DropBack training traffic.

Composes the memory hierarchy and the regeneration unit into the paper's
two headline hardware analyses:

* :meth:`AcceleratorModel.training_step_energy` — per-training-step weight
  energy for a given model under dense SGD (whole model resident where it
  fits — usually DRAM) vs DropBack (tracked set resident on-chip, the rest
  regenerated);
* :meth:`AcceleratorModel.max_trainable_params` — the largest model
  trainable from on-chip memory alone, dense vs DropBack, which is the
  paper's "DropBack can be used to train networks 5x-10x larger than
  currently possible with typical hardware" (Section 6).

The weight-traffic model per training step: the forward pass reads every
weight once, the backward pass reads every weight once more (for the
transposed products), and the update writes every *stored* weight once.
Activations and arithmetic are identical between schemes and excluded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.memory import MemoryHierarchy
from repro.hw.regen_unit import RegenerationUnit
from repro.nn import Module

__all__ = ["AcceleratorModel", "StepEnergy"]

_BYTES_PER_WEIGHT = 4
#: Tracked weights also store an index alongside the value.
_BYTES_PER_TRACKED = 8


@dataclass
class StepEnergy:
    """Per-training-step weight-traffic breakdown (picojoules)."""

    weight_access_pj: float
    regen_pj: float
    resident_level: str

    @property
    def total_pj(self) -> float:
        return self.weight_access_pj + self.regen_pj


class AcceleratorModel:
    """Dense-vs-DropBack accelerator analysis.

    Parameters
    ----------
    hierarchy:
        Memory hierarchy; defaults to 64KB + 1MB SRAM backed by DRAM.
    regen_unit:
        Regeneration unit model.
    """

    def __init__(
        self,
        hierarchy: MemoryHierarchy | None = None,
        regen_unit: RegenerationUnit | None = None,
    ):
        self.hierarchy = hierarchy or MemoryHierarchy()
        self.regen = regen_unit or RegenerationUnit()

    # ------------------------------------------------------------------ #

    def dense_step_energy(self, n_params: int) -> StepEnergy:
        """Weight energy of one dense-SGD step (2 reads + 1 write / weight)."""
        if n_params <= 0:
            raise ValueError("n_params must be positive")
        nbytes = n_params * _BYTES_PER_WEIGHT
        level = self.hierarchy.placement(nbytes)
        accesses = 3 * n_params
        return StepEnergy(
            weight_access_pj=level.pj_per_access * accesses,
            regen_pj=0.0,
            resident_level=level.name,
        )

    def dropback_step_energy(self, n_params: int, k: int) -> StepEnergy:
        """Weight energy of one DropBack step.

        The k tracked values (+ indices) are the only stored weights; each
        is read twice and written once per step.  Every untracked weight is
        regenerated twice (forward + backward).
        """
        if n_params <= 0 or k <= 0:
            raise ValueError("n_params and k must be positive")
        k = min(k, n_params)
        nbytes = k * _BYTES_PER_TRACKED
        level = self.hierarchy.placement(nbytes)
        accesses = 3 * k
        regens = 2 * (n_params - k)
        return StepEnergy(
            weight_access_pj=level.pj_per_access * accesses,
            regen_pj=self.regen.energy_pj(regens),
            resident_level=level.name,
        )

    def training_step_energy(self, model: Module, k: int | None = None) -> StepEnergy:
        """Step energy for a model; dense when ``k`` is None."""
        n = model.num_parameters()
        return self.dense_step_energy(n) if k is None else self.dropback_step_energy(n, k)

    def energy_saving(self, n_params: int, k: int) -> float:
        """Dense / DropBack step-energy ratio."""
        return (
            self.dense_step_energy(n_params).total_pj
            / self.dropback_step_energy(n_params, k).total_pj
        )

    # ------------------------------------------------------------------ #

    def max_trainable_params(self, compression: float = 1.0) -> int:
        """Largest model trainable entirely from on-chip weight memory.

        Dense training needs all weights resident (``compression=1``);
        DropBack only needs ``n / compression`` tracked entries (value +
        index).  The ratio of the two is the paper's 5x-10x "train larger
        networks" claim — it equals ``compression x 4/8 x ...`` under this
        model, i.e. grows linearly with the weight budget reduction.
        """
        if compression < 1.0:
            raise ValueError("compression must be >= 1")
        budget = self.hierarchy.largest_fitting_on_chip()
        if compression == 1.0:
            return budget // _BYTES_PER_WEIGHT
        per_param_bytes = _BYTES_PER_TRACKED / compression
        return int(budget / per_param_bytes)

    def capacity_multiplier(self, compression: float) -> float:
        """How many times larger a model fits on-chip under DropBack."""
        return self.max_trainable_params(compression) / self.max_trainable_params(1.0)

    # ------------------------------------------------------------------ #

    def activation_bytes(self, model, input_shape: tuple[int, ...], batch_size: int = 1) -> int:
        """Activation memory a training step must hold for the backward pass.

        Sums the per-layer output sizes of a Sequential model (float32).
        Activations are identical between dense and DropBack training —
        the paper's savings are weight-side — but a complete device budget
        needs this term; it is what ultimately bounds batch size on-chip.
        """
        from repro.analysis.flops import count_flops

        layers = count_flops(model, input_shape)
        total = sum(int(np.prod(lf.out_shape)) for lf in layers)
        return total * 4 * batch_size

    def device_fit_report(
        self, model, input_shape: tuple[int, ...], k: int, batch_size: int = 1
    ) -> dict[str, object]:
        """Whether weights + activations fit on-chip, dense vs DropBack."""
        budget = self.hierarchy.largest_fitting_on_chip()
        act = self.activation_bytes(model, input_shape, batch_size)
        n = model.num_parameters()
        dense_bytes = n * _BYTES_PER_WEIGHT + act
        db_bytes = min(k, n) * _BYTES_PER_TRACKED + act
        return {
            "on_chip_budget_bytes": budget,
            "activation_bytes": act,
            "dense_bytes": dense_bytes,
            "dropback_bytes": db_bytes,
            "dense_fits": dense_bytes <= budget,
            "dropback_fits": db_bytes <= budget,
        }
